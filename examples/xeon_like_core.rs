//! End-to-end tool flow on a processor-shaped synthetic design — the
//! reproduction of the paper's §6.1 proof-of-concept run.
//!
//! Generates a twelve-FUB Xeon-like netlist, runs a workload suite through
//! the ACE-instrumented performance model, maps the measured port AVFs
//! onto the netlist's structures, relaxes the pAVF walks to convergence,
//! and prints the per-FUB report (Figure 9) plus the headline numbers.
//!
//! Run with: `cargo run --release --example xeon_like_core [workloads]`

use seqavf::core::report::SartSummary;
use seqavf::flow::{run_flow, FlowConfig};

fn main() {
    let workloads: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(32);

    let mut cfg = FlowConfig::xeon_like(42);
    cfg.suite.workloads = workloads;
    cfg.suite.len = 5_000;

    println!(
        "Generating design and running {} workloads through the ACE model…",
        cfg.suite.workloads
    );
    let t0 = std::time::Instant::now();
    let out = run_flow(&cfg);
    let nl = &out.design.netlist;

    println!(
        "\ndesign `{}`: {} nodes, {} sequentials, {} ACE structures, {} FUBs",
        nl.design_name(),
        nl.node_count(),
        nl.seq_count(),
        nl.structure_count(),
        nl.fub_count()
    );
    println!(
        "relaxation: {} iterations, visited {:.1}% of nodes, {} control-register bits, {} loop bits\n",
        out.result.iterations(),
        out.result.visited_fraction(nl) * 100.0,
        out.summary.control_reg_bits,
        out.summary.loop_seq_bits,
    );

    let summary = SartSummary::new(nl, &out.result);
    println!("{}", summary.to_table());

    println!(
        "average sequential AVF = {:.1}% (paper reports 14% for the Xeon core)",
        summary.weighted_seq_avf * 100.0
    );
    println!("total flow time: {:?}", t0.elapsed());

    // Show a few individual closed forms — every node has one. Skip
    // injected nodes (control registers, loop boundaries) whose equations
    // are trivially their injected term.
    println!("\nSample closed-form equations:");
    let interesting = nl
        .seq_nodes()
        .filter(|&id| !out.result.roles.role(id).is_injected())
        .take(3);
    for id in interesting {
        println!("  {} = {}", nl.name(id), out.result.closed_form(id));
    }
}
