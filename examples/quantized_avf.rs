//! Quantized (time-windowed) AVF: vulnerability variation over program
//! phases — the related-work extension the paper cites (§2.1, Quantized
//! AVF, SELSE 2009).
//!
//! A phased workload alternates between dead (NOP) stretches and dense
//! compute bursts. The scalar Equation 3 AVF averages the phases away;
//! the windowed view exposes the bursts, which is what matters when
//! choosing checkpoint intervals or duty-cycled protection.
//!
//! Run with: `cargo run --release --example quantized_avf`

use seqavf::perf::pipeline::{run_ace, PerfConfig};
use seqavf::perf::window::WindowStats;
use seqavf::workloads::trace::{Instr, OpClass, Reg, TraceBuilder};

fn main() {
    // Phased trace: 4 × (dead phase, busy phase).
    let mut tb = TraceBuilder::new("phased");
    for _phase in 0..4 {
        for _ in 0..4_000 {
            tb.push(Instr::nop());
        }
        for i in 0..4_000u32 {
            let r = |x: u32| Reg::new((x % 24) as u8);
            tb.push(Instr::alu(OpClass::IntAlu, r(i), r(i + 1), Some(r(i + 2))));
            if i % 16 == 0 {
                tb.push(Instr::store(r(i), None, u64::from(i) * 8));
            }
        }
    }
    let trace = tb.finish();

    let window = 256u64;
    let cfg = PerfConfig {
        quantize_window: Some(window),
        ..PerfConfig::default()
    };
    let report = run_ace(&trace, &cfg);

    println!(
        "Quantized AVF, window = {window} cycles ({} cycles total)\n",
        report.cycles
    );
    for name in ["rob", "issue_queue", "fetch_buffer"] {
        let s = &report.structures[name];
        let stats = WindowStats::of(&s.windows).expect("windows enabled");
        println!(
            "{name:<14} scalar AVF {:.4} | windows: min {:.4} max {:.4} burstiness {:.1}×",
            s.avf, stats.min, stats.max, stats.burstiness
        );
        print!("  ");
        for w in &s.windows {
            let glyph = match (w * 10.0) as u32 {
                0 => '·',
                1..=2 => '▁',
                3..=4 => '▃',
                5..=6 => '▅',
                _ => '█',
            };
            print!("{glyph}");
        }
        println!();
    }
    println!(
        "\nThe busy phases light up while the scalar AVF hides them — the\n\
         information Quantized AVF adds over a single number."
    );

    let rob = &report.structures["rob"];
    let stats = WindowStats::of(&rob.windows).expect("windows enabled");
    assert!(
        stats.burstiness > 1.5,
        "phased workload must look bursty, got {:.2}",
        stats.burstiness
    );
}
