//! The loop-boundary pAVF study of §4.3 (Figure 8), run through the
//! symbolic closed forms: the design is walked **once**, then every sweep
//! point is a pure re-evaluation of the stored equations.
//!
//! Run with: `cargo run --release --example loop_sweep`

use seqavf::flow::{run_flow, FlowConfig};

fn main() {
    let mut cfg = FlowConfig::xeon_like(42);
    cfg.suite.workloads = 16;
    cfg.suite.len = 4_000;
    let out = run_flow(&cfg);
    let nl = &out.design.netlist;

    println!(
        "loop study: {} of {} sequential bits sit on feedback loops ({:.1}%)\n",
        out.summary.loop_seq_bits,
        nl.seq_count(),
        100.0 * out.summary.loop_seq_bits as f64 / nl.seq_count() as f64
    );
    println!("loop pAVF   mean seq AVF");
    for k in 0..=10 {
        let loop_pavf = f64::from(k) / 10.0;
        let mut r = out.result.clone();
        r.config.loop_pavf = loop_pavf;
        let avfs = r.reevaluate(nl, &out.inputs);
        let mean: f64 =
            nl.seq_nodes().map(|id| avfs[id.index()]).sum::<f64>() / nl.seq_count() as f64;
        let bar = "#".repeat((mean * 150.0) as usize);
        println!("{loop_pavf:>9.1}   {mean:.4}  {bar}");
    }
    println!(
        "\nThe curve does not saturate even at 100% — the MIN(F, B) rule and the\n\
         measured port pAVFs bound the ripple (§4.3). The paper picks 0.3 at the heel."
    );
}
