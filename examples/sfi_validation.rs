//! Validating SART against statistical fault injection (§3.1): on an
//! SFI-tractable design, the fully conservative SART bound must dominate
//! the per-node SFI error rate, and SART = 0 must imply no SFI errors.
//!
//! Run with: `cargo run --release --example sfi_validation`

use seqavf::core::engine::{SartConfig, SartEngine};
use seqavf::core::mapping::{PavfInputs, StructureMapping};
use seqavf::netlist::graph::NodeId;
use seqavf::netlist::synth::{generate, SynthConfig};
use seqavf::sfi::campaign::{run_campaign, CampaignConfig};

fn main() {
    let design = generate(&SynthConfig::xeon_like(7).scaled(0.3));
    let nl = &design.netlist;
    let mapping = StructureMapping::from_pairs(design.meta.structure_map.clone());
    println!(
        "design: {} nodes, {} sequentials (small enough for SFI)",
        nl.node_count(),
        nl.seq_count()
    );

    // Fully conservative SART: every source term pinned to 1.0, so a
    // node's AVF is a pure fault-reachability bound.
    let config = SartConfig {
        loop_pavf: 1.0,
        boundary_in_pavf: 1.0,
        boundary_out_pavf: 1.0,
        default_port_pavf: 1.0,
        ..SartConfig::default()
    };
    let engine = SartEngine::new(nl, &mapping, config);
    let sart = engine.run(&PavfInputs::new());

    let targets: Vec<NodeId> = nl.seq_nodes().collect();
    let sample: Vec<NodeId> = targets.iter().step_by(4).copied().collect();
    println!(
        "injecting into {} sampled sequentials × 16 injections…",
        sample.len()
    );
    let camp = run_campaign(
        nl,
        &sample,
        &CampaignConfig {
            injections_per_node: 16,
            threads: 8,
            ..CampaignConfig::default()
        },
    );

    let mut violations = 0;
    let mut masked_found = 0;
    for est in &camp.nodes {
        let bound = sart.avf(est.node);
        let err = est.errors as f64 / est.injections as f64;
        if err > bound + 1e-9 {
            violations += 1;
            println!(
                "  VIOLATION {}: SFI {:.2} > SART {:.2}",
                nl.name(est.node),
                err,
                bound
            );
        }
        if err < 0.5 {
            masked_found += 1;
        }
    }
    println!(
        "\n{} injections across {} nodes; mean SFI AVF = {:.3}",
        camp.total_injections,
        camp.nodes.len(),
        camp.mean_avf()
    );
    println!("conservatism violations: {violations} (expected 0)");
    println!("nodes with >50% logical masking: {masked_found}");
    assert_eq!(violations, 0, "SART must be conservative");
    println!("\nSART's conservative bound dominates SFI ground truth on every node.");
}
