//! Quickstart: the paper's Figure 7 worked example.
//!
//! Builds the S1–S4 circuit from EXLIF text, assigns the figure's port
//! AVFs (`pAVF_1 = 0.10`, `pAVF_2 = 0.02`), runs SART, and prints every
//! sequential's closed-form equation and resolved AVF.
//!
//! Run with: `cargo run --example quickstart`

use seqavf::core::engine::{SartConfig, SartEngine};
use seqavf::core::mapping::{PavfInputs, StructureMapping};
use seqavf::netlist::flatten::parse_netlist;

/// The Figure 7 circuit: S1 and S2 read ports feed a pipeline with a
/// logical join (G1), a second join (G2) and a distribution split, ending
/// at the write ports of S3 and S4.
const FIGURE7: &str = r"
.design figure7
.fub f
  .struct s1 1
  .struct s2 1
  .struct s3 1
  .struct s4 1
  .flop q1a s1[0]
  .flop q1b s2[0]
  .flop q2a q1a
  .gate nor g1 q2a q1b
  .flop q3b g1
  .gate nor g2 q2a g1
  .flop q3a g2
  .sw s3[0] q3a
  .sw s4[0] q3b
.endfub
.end
";

fn main() {
    let netlist = parse_netlist(FIGURE7).expect("the example netlist is valid");

    // Port AVFs as given in the figure. In the real flow these come from
    // the ACE-instrumented performance model (see `seqavf-perf`).
    let mut inputs = PavfInputs::new();
    inputs.set_port("f.s1", 0.10, 0.50); // pAVF_1
    inputs.set_port("f.s2", 0.02, 0.50); // pAVF_2
    inputs.set_port("f.s3", 0.50, 0.90);
    inputs.set_port("f.s4", 0.50, 0.90);

    let engine = SartEngine::new(&netlist, &StructureMapping::new(), SartConfig::default());
    let result = engine.run(&inputs);

    println!(
        "Figure 7 pAVF propagation ({} nodes, {} sequential)\n",
        netlist.node_count(),
        netlist.seq_count()
    );
    println!(
        "{:<8} {:>8} {:>8} {:>8}  closed form",
        "node", "fwd", "bwd", "AVF"
    );
    for id in netlist.seq_nodes() {
        println!(
            "{:<8} {:>8.4} {:>8.4} {:>8.4}  {}",
            netlist.name(id).trim_start_matches("f."),
            result.forward_value(id, &inputs),
            result.backward_value(id, &inputs),
            result.avf(id),
            result.closed_form(id),
        );
    }

    // The union dedup of §4.2: G2 joins pAVF_1 with (pAVF_1 ∪ pAVF_2) and
    // the result stays 0.12, not 0.22.
    let q3a = netlist.lookup("f.q3a").expect("exists");
    assert!((result.forward_value(q3a, &inputs) - 0.12).abs() < 1e-12);
    println!("\nQ3a forward = 0.12: pAVF_1 ∪ (pAVF_1 ∪ pAVF_2) simplified by set union.");
}
