//! Model-to-measurement correlation under a simulated proton beam (§6.2,
//! Figure 10), for the two kernels the paper beam-tested: the 2-D lattice
//! particle workload and the memory-less MD5Sum variant.
//!
//! Run with: `cargo run --release --example beam_correlation`

use seqavf::beam::campaign::{run_beam, BeamConfig};
use seqavf::beam::correlate::{improvement, miscorrelation};
use seqavf::beam::fit::BitPopulation;
use seqavf::flow::{inputs_from_report, run_flow, FlowConfig};
use seqavf::perf::pipeline::run_ace;
use seqavf::workloads::kernels::lattice::{lattice_trace, LatticeConfig};
use seqavf::workloads::kernels::md5::{md5_trace, Md5Config};

fn main() {
    let mut cfg = FlowConfig::xeon_like(42);
    cfg.suite.workloads = 16;
    cfg.suite.len = 4_000;
    let out = run_flow(&cfg);
    let nl = &out.design.netlist;
    let seq_bits = nl.seq_count() as u64;
    let fit_per_bit = 1.0e-3;

    // The conservative proxy the paper previously carried for sequential
    // bits: a suite-wide structure AVF.
    let proxy = 0.35;

    for (name, trace) in [
        ("Lattice", lattice_trace(&LatticeConfig::default())),
        ("MD5Sum ", md5_trace(&Md5Config::default())),
    ] {
        let rep = run_ace(&trace, &cfg.perf);
        let inputs = inputs_from_report(&rep);
        let avfs = out.result.reevaluate(nl, &inputs);
        let seq_avf: f64 = nl.seq_nodes().map(|id| avfs[id.index()]).sum::<f64>() / seq_bits as f64;

        // Simulated device truth: SART's rate estimate derated by a
        // nominal logical-masking factor (see the fig10 harness for the
        // SFI-measured version).
        let truth = seq_avf * 0.85;
        let true_fit = BitPopulation::unprotected("seq", seq_bits, truth, fit_per_bit).fit();
        let before_fit = BitPopulation::unprotected("seq", seq_bits, proxy, fit_per_bit).fit();
        let after_fit = BitPopulation::unprotected("seq", seq_bits, seq_avf, fit_per_bit).fit();

        let m = run_beam(
            true_fit,
            &BeamConfig {
                hours: 24.0,
                ..BeamConfig::default()
            },
        );
        let mis_before = miscorrelation(before_fit, m.measured_fit);
        let mis_after = miscorrelation(after_fit, m.measured_fit);
        println!(
            "{name}: measured {:>6.3} FIT (±{:.0}%) | before {:>6.3} (off {:>5.1}%) | after {:>6.3} (off {:>5.1}%) | improvement {:.0}%",
            m.measured_fit,
            m.relative_error() * 100.0,
            before_fit,
            mis_before * 100.0,
            after_fit,
            mis_after * 100.0,
            improvement(mis_before, mis_after) * 100.0
        );
    }
    println!("\nSee `cargo run --release -p seqavf-bench --bin fig10_beam_correlation`\nfor the full experiment with SFI-derived device truth and AU normalization.");
}
