//! SDC vs DUE decomposition (§1, §3.1) on a hand-written structural
//! Verilog design.
//!
//! The paper notes that fault-injection flows need *separate* campaigns
//! for SDC and DUE because the observation points differ, while the
//! analytical flow yields both from one propagation. Here a datapath
//! splits toward an unprotected buffer and a parity-protected queue; the
//! DUE analysis apportions each flop's AVF by where its faults would land.
//!
//! Run with: `cargo run --example due_analysis`

use std::collections::BTreeSet;

use seqavf::core::due::DueAnalysis;
use seqavf::core::engine::{SartConfig, SartEngine};
use seqavf::core::mapping::{PavfInputs, StructureMapping};
use seqavf::netlist::verilog;

const DESIGN: &str = r"
// A small datapath: one source structure feeding two sinks through a
// shared pipeline. `pqueue` is parity protected; `buffer` is not.
module dp (input din, output dout);
  structure src    [1:0];
  structure buffer [1:0];
  structure pqueue [1:0];
  dff q1 (.q(q1o), .d(src[0]));
  dff q2 (.q(q2o), .d(q1o));
  // Distribution split: the shared value reaches both sinks.
  dff qa (.q(qao), .d(q2o));
  dff qb (.q(qbo), .d(q2o));
  assign buffer[0] = qao;
  assign pqueue[0] = qbo;
  // A second path that only ever reaches the protected queue.
  dff qp (.q(qpo), .d(src[1]));
  assign pqueue[1] = qpo;
  assign dout = q2o;
endmodule
";

fn main() {
    let nl = verilog::parse_netlist(DESIGN).expect("valid design");
    let mut inputs = PavfInputs::new();
    inputs.set_port("dp.src", 0.30, 0.10);
    inputs.set_port("dp.buffer", 0.10, 0.20);
    inputs.set_port("dp.pqueue", 0.10, 0.20);

    let engine = SartEngine::new(&nl, &StructureMapping::new(), SartConfig::default());
    let result = engine.run(&inputs);

    let protected: BTreeSet<String> = ["dp.pqueue".to_owned()].into();
    let due = DueAnalysis::compute(&result, &nl, &inputs, &protected);

    println!("SDC/DUE decomposition (pqueue parity-protected)\n");
    println!("{:<8} {:>8} {:>8} {:>8}", "flop", "AVF", "SDC", "DUE");
    for id in nl.seq_nodes() {
        let s = due.split(id);
        println!(
            "{:<8} {:>8.4} {:>8.4} {:>8.4}",
            nl.name(id).trim_start_matches("dp."),
            result.avf(id),
            s.sdc,
            s.due
        );
    }
    println!(
        "\nmean sequential: SDC = {:.4}, DUE = {:.4} ({:.1}% of faults detected)",
        due.mean_seq_sdc,
        due.mean_seq_due,
        due.due_share() * 100.0
    );

    let qp = nl.lookup("dp.qpo").expect("exists");
    assert_eq!(due.split(qp).sdc, 0.0, "qp only reaches the protected sink");
    println!("\nqp's faults are all DUE: every path from it ends at parity.");
}
