//! # seqavf
//!
//! A reproduction of *"A Fast and Accurate Analytical Technique to Compute
//! the AVF of Sequential Bits in a Processor"* (Raasch, Biswas, Stephan,
//! Racunas, Emer — MICRO-48, 2015) as a Rust workspace.
//!
//! The paper computes the architectural vulnerability factor (AVF) of
//! every flop and latch in a processor by combining **port AVFs** measured
//! with ACE analysis on a performance model with a node graph extracted
//! from RTL, propagating the values through the graph with set-theoretic
//! rules and an iterative relaxation (SART).
//!
//! This umbrella crate re-exports the workspace members and provides
//! [`flow`], the end-to-end four-step tool flow of §5:
//!
//! 1. run the ACE-instrumented performance model over a workload suite
//!    ([`perf`], [`workloads`]),
//! 2. collect port-AVF data,
//! 3. take the compiled/flattened RTL ([`netlist`]),
//! 4. map ACE structure bits to RTL bits and walk the pAVF values through
//!    the node graph ([`core`]).
//!
//! Baselines and validation live in [`sfi`] (statistical fault injection)
//! and [`beam`] (accelerated-measurement simulation).
//!
//! ```
//! use seqavf::flow::{run_flow, FlowConfig};
//!
//! let mut cfg = FlowConfig::small(7);
//! cfg.suite.workloads = 4; // keep the doctest quick
//! let out = run_flow(&cfg);
//! assert!(out.summary.weighted_seq_avf > 0.0);
//! assert!(out.summary.weighted_seq_avf < 1.0);
//! ```

pub use seqavf_beam as beam;
pub use seqavf_core as core;
pub use seqavf_netlist as netlist;
pub use seqavf_obs as obs;
pub use seqavf_perf as perf;
pub use seqavf_sfi as sfi;
pub use seqavf_workloads as workloads;

pub mod flow {
    //! The end-to-end tool flow (§5.1): performance model → port AVFs →
    //! structure mapping → SART.

    use std::path::PathBuf;

    use seqavf_core::engine::{SartConfig, SartEngine, SartResult};
    use seqavf_core::mapping::{PavfInputs, StructureMapping};
    use seqavf_core::report::SartSummary;
    use seqavf_netlist::graph::{Netlist, StructId};
    use seqavf_netlist::scc::{find_loops_traced, LoopAnalysis};
    use seqavf_netlist::snapshot;
    use seqavf_netlist::synth::{generate, SynthConfig, SynthDesign, SynthMeta};
    use seqavf_netlist::Fnv1a64;
    use seqavf_obs::Collector;
    use seqavf_perf::pipeline::{run_ace_traced, PerfConfig};
    use seqavf_perf::report::{AceReport, SuiteReport};
    use seqavf_workloads::suite::{standard_suite, SuiteConfig};
    use seqavf_workloads::trace::Trace;

    /// Configuration of a full flow run.
    #[derive(Debug, Clone)]
    pub struct FlowConfig {
        /// Synthetic design to generate (stands in for the compiled RTL).
        pub design: SynthConfig,
        /// Workload suite for the performance model.
        pub suite: SuiteConfig,
        /// Performance-model parameters.
        pub perf: PerfConfig,
        /// SART parameters.
        pub sart: SartConfig,
        /// Graph-snapshot cache directory. When set, the generated design
        /// (netlist + loop analysis + ground-truth metadata) is persisted
        /// as a `seqavf-graph/2` snapshot keyed by the design
        /// configuration, so repeat runs skip synthesis, flattening and
        /// the SCC pass. `None` disables the cache.
        pub graph_cache: Option<PathBuf>,
    }

    impl FlowConfig {
        /// A full-scale configuration: the Xeon-like design and the
        /// 547-workload suite.
        ///
        /// The RTL-boundary pseudo-structures (§5.1: "circuits that lie
        /// outside of the RTL being analyzed are grouped together into one
        /// or more pseudo-structures, with its own pAVF_R and pAVF_W
        /// values") are given calibrated uncore-traffic values rather than
        /// the fully conservative 1.0 defaults.
        pub fn xeon_like(seed: u64) -> Self {
            FlowConfig {
                design: SynthConfig::xeon_like(seed),
                suite: SuiteConfig::default(),
                perf: PerfConfig::default(),
                sart: SartConfig {
                    boundary_in_pavf: 0.35,
                    boundary_out_pavf: 0.35,
                    ..SartConfig::default()
                },
                graph_cache: None,
            }
        }

        /// A scaled-down configuration for tests and quick studies.
        pub fn small(seed: u64) -> Self {
            FlowConfig {
                design: SynthConfig::xeon_like(seed).scaled(0.4),
                suite: SuiteConfig {
                    workloads: 8,
                    len: 2_000,
                    ..SuiteConfig::default()
                },
                perf: PerfConfig::default(),
                sart: SartConfig {
                    boundary_in_pavf: 0.35,
                    boundary_out_pavf: 0.35,
                    ..SartConfig::default()
                },
                graph_cache: None,
            }
        }
    }

    /// Everything a flow run produces.
    #[derive(Debug, Clone)]
    pub struct FlowOutput {
        /// The generated design and its ground-truth metadata.
        pub design: SynthDesign,
        /// Per-workload ACE reports.
        pub suite_report: SuiteReport,
        /// The measured pAVF table fed to SART.
        pub inputs: PavfInputs,
        /// The structure mapping used (from generator ground truth).
        pub mapping: StructureMapping,
        /// SART's full result (closed forms + AVFs).
        pub result: SartResult,
        /// Per-FUB summary (Figure 9 data).
        pub summary: SartSummary,
    }

    /// Converts a suite's mean ACE measurements into SART inputs.
    pub fn inputs_from_suite(report: &SuiteReport) -> PavfInputs {
        let mut inputs = PavfInputs::new();
        for (name, pavf) in report.mean_port_avfs() {
            inputs.set_port(name, pavf.read, pavf.write);
        }
        for (name, avf) in report.mean_structure_avfs() {
            inputs.set_structure_avf(name, avf);
        }
        inputs
    }

    /// Converts a single workload's ACE report into SART inputs.
    pub fn inputs_from_report(report: &AceReport) -> PavfInputs {
        let mut inputs = PavfInputs::new();
        for (name, pavf) in report.port_avfs() {
            inputs.set_port(name, pavf.read, pavf.write);
        }
        for (name, s) in &report.structures {
            inputs.set_structure_avf(name.clone(), s.avf);
        }
        inputs
    }

    /// Runs the performance model over every trace.
    pub fn run_suite(traces: &[Trace], perf: &PerfConfig) -> SuiteReport {
        run_suite_traced(traces, perf, &Collector::disabled())
    }

    /// [`run_suite`] with observability: an `ace.suite` span wraps the
    /// whole sweep, and every workload records its own `ace.workload`
    /// span.
    pub fn run_suite_traced(traces: &[Trace], perf: &PerfConfig, obs: &Collector) -> SuiteReport {
        let mut span = obs.span("ace.suite");
        span.field_u64("workloads", traces.len() as u64);
        SuiteReport::new(
            traces
                .iter()
                .map(|t| run_ace_traced(t, perf, obs))
                .collect(),
        )
    }

    /// Runs the complete flow: generate the design, simulate the suite,
    /// extract pAVFs, map structures, and resolve sequential AVFs.
    pub fn run_flow(config: &FlowConfig) -> FlowOutput {
        run_flow_traced(config, &Collector::disabled())
    }

    /// Header line of the synthesis-metadata sidecar stored next to a flow
    /// graph snapshot.
    const SYNTHMETA_MAGIC: &str = "seqavf-synthmeta/1";

    /// Renders the generator's ground-truth metadata as the text sidecar.
    fn meta_to_text(meta: &SynthMeta) -> String {
        let mut out = String::from(SYNTHMETA_MAGIC);
        out.push('\n');
        for (sid, perf) in &meta.structure_map {
            out.push_str(&format!("struct {} {perf}\n", sid.index()));
        }
        for name in &meta.control_reg_names {
            out.push_str(&format!("creg {name}\n"));
        }
        out
    }

    /// Parses the sidecar back, validating every structure id against the
    /// restored netlist. Any malformed line means `None` (→ regenerate).
    fn meta_from_text(text: &str, nl: &Netlist) -> Option<SynthMeta> {
        let mut lines = text.lines();
        if lines.next()? != SYNTHMETA_MAGIC {
            return None;
        }
        let mut structure_map = Vec::new();
        let mut control_reg_names = Vec::new();
        for line in lines {
            let mut it = line.split_whitespace();
            match it.next() {
                None => continue,
                Some("struct") => {
                    let sid: usize = it.next()?.parse().ok()?;
                    let perf = it.next()?.to_owned();
                    if it.next().is_some() || sid >= nl.structure_count() {
                        return None;
                    }
                    structure_map.push((StructId::from_index(sid), perf));
                }
                Some("creg") => {
                    let name = it.next()?.to_owned();
                    if it.next().is_some() {
                        return None;
                    }
                    control_reg_names.push(name);
                }
                Some(_) => return None,
            }
        }
        Some(SynthMeta {
            structure_map,
            control_reg_names,
        })
    }

    /// Obtains the flow's design: from the graph-snapshot cache when
    /// configured and intact (returning the restored loop analysis too),
    /// otherwise by running the generator (and, with a cache directory,
    /// storing the snapshot plus metadata sidecar for next time). Any
    /// cache damage — missing files, corrupt snapshot, malformed sidecar —
    /// degrades to a regenerate-and-rewrite, never an error.
    fn obtain_design(config: &FlowConfig, obs: &Collector) -> (SynthDesign, Option<LoopAnalysis>) {
        let generate_traced = || {
            let mut span = obs.span("flow.generate");
            let design = generate(&config.design);
            span.field_u64("nodes", design.netlist.node_count() as u64);
            span.field_u64("fubs", design.netlist.fub_count() as u64);
            design
        };
        let Some(dir) = &config.graph_cache else {
            return (generate_traced(), None);
        };
        let key = {
            let mut h = Fnv1a64::new();
            h.update(format!("{:?}", config.design).as_bytes());
            h.finish()
        };
        let snap_path = dir.join(format!("graph-{key:016x}.bin"));
        let meta_path = dir.join(format!("graph-{key:016x}.meta"));
        let cached = std::fs::read(&snap_path).ok().and_then(|bytes| {
            let (netlist, loops) = snapshot::load(&bytes).ok()?;
            let meta_text = std::fs::read_to_string(&meta_path).ok()?;
            let meta = meta_from_text(&meta_text, &netlist)?;
            Some((SynthDesign { netlist, meta }, loops))
        });
        if let Some((design, loops)) = cached {
            obs.count("frontend.snapshot.hit", 1);
            return (design, Some(loops));
        }
        obs.count("frontend.snapshot.miss", 1);
        let design = generate_traced();
        let loops = find_loops_traced(&design.netlist, obs);
        let _ = std::fs::create_dir_all(dir);
        let _ = std::fs::write(&snap_path, snapshot::save(&design.netlist, &loops));
        let _ = std::fs::write(&meta_path, meta_to_text(&design.meta));
        (design, Some(loops))
    }

    /// [`run_flow`] with observability: every stage reports through the
    /// collector — `flow.generate` (design synthesis), `ace.suite` /
    /// `ace.workload` (performance model), `netlist.scc` / `sart.prepare`
    /// (engine preparation), `relax.sweep` (each relaxation sweep) and
    /// `sart.resolve` (closed-form resolution). With a `graph_cache`
    /// directory configured, snapshot consultations additionally bump
    /// `frontend.snapshot.hit` / `frontend.snapshot.miss`.
    pub fn run_flow_traced(config: &FlowConfig, obs: &Collector) -> FlowOutput {
        let (design, loops) = obtain_design(config, obs);
        let traces = standard_suite(&config.suite);
        let suite_report = run_suite_traced(&traces, &config.perf, obs);
        let inputs = inputs_from_suite(&suite_report);
        let mapping = StructureMapping::from_pairs(design.meta.structure_map.clone());
        let engine = match &loops {
            Some(l) => SartEngine::new_with_loops_traced(
                &design.netlist,
                &mapping,
                config.sart.clone(),
                l,
                obs,
            ),
            None => SartEngine::new_traced(&design.netlist, &mapping, config.sart.clone(), obs),
        };
        let result = engine.run_traced(&inputs, obs);
        let summary = SartSummary::new(&design.netlist, &result);
        FlowOutput {
            design,
            suite_report,
            inputs,
            mapping,
            result,
            summary,
        }
    }
}
