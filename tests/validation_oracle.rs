//! The exhaustive-injection oracle: on tiny, fully-enumerable netlists the
//! fault-injection AVF must equal SART's analytical AVF *exactly*.
//!
//! The netlist family is chosen so both engines have the same ground
//! truth: single-fanin trees of flops and buf/not gates rooted at one
//! primary input, with outputs attached to a random subset of nodes. In
//! such a tree a flipped state bit propagates to an output iff an output
//! is reachable in its fanout cone (inverters propagate flips unchanged,
//! and with exactly one fanin per node no reconvergent path can cancel a
//! fault), so every flop's true AVF is exactly 0 or 1 — and SART's
//! min(forward, backward) walk with conservative boundary pAVFs (1.0)
//! resolves to exactly the same bit, as does the propagation-probability
//! fast-path model. Exhaustive injection (every site × every flip cycle)
//! therefore has to agree with both, with `==`, not a tolerance.

use proptest::prelude::*;

use seqavf::core::engine::{SartConfig, SartEngine};
use seqavf::core::mapping::{PavfInputs, StructureMapping};
use seqavf::netlist::flatten::parse_netlist;
use seqavf::netlist::graph::{Netlist, NodeId, NodeKind};
use seqavf::sfi::campaign::{run_exhaustive, run_trials, TrialConfig};
use seqavf::sfi::inject::observation_points;
use seqavf::sfi::logic::PropModel;

/// Most state bits a generated tree may hold — small enough that the
/// exhaustive campaign (`bits × cycles` simulations) stays trivial.
const MAX_STATE_BITS: usize = 12;

/// One generated tree node: which element to grow, onto which existing
/// node, and whether to hang a primary output off it.
type Step = (u8, u8, bool);

/// Renders a recipe as EXLIF. Deterministic and valid by construction:
/// every step appends one single-fanin element (flop, buf, or not) whose
/// parent is picked from the already-defined nodes, so the result is
/// always a tree rooted at the primary input.
fn tree_exlif(recipe: &[Step]) -> String {
    let mut text = String::from(".design oracle\n.fub f\n  .input i\n");
    let mut pool: Vec<String> = vec!["i".to_owned()];
    let mut flops = 0usize;
    let mut outputs = 0usize;
    for (j, &(kind, parent, output_here)) in recipe.iter().enumerate() {
        let parent = pool[parent as usize % pool.len()].clone();
        let name = format!("n{j}");
        // Flops are the commonest element but capped at MAX_STATE_BITS;
        // overflow degrades to buffers so the recipe length is free.
        match kind % 4 {
            0 | 1 if flops < MAX_STATE_BITS => {
                text.push_str(&format!("  .flop {name} {parent}\n"));
                flops += 1;
            }
            2 => text.push_str(&format!("  .gate not {name} {parent}\n")),
            _ => text.push_str(&format!("  .gate buf {name} {parent}\n")),
        }
        if output_here {
            text.push_str(&format!("  .output o{outputs} {name}\n"));
            outputs += 1;
        }
        pool.push(name);
    }
    text.push_str(".endfub\n.end\n");
    text
}

/// Ground truth on a tree: a flop's AVF is 1 iff an `Output` node is
/// reachable from it in the fanout graph, else 0.
fn reaches_an_output(nl: &Netlist, from: NodeId) -> bool {
    let mut seen = vec![false; nl.node_count()];
    let mut stack = vec![from];
    while let Some(id) = stack.pop() {
        if std::mem::replace(&mut seen[id.index()], true) {
            continue;
        }
        if matches!(nl.kind(id), NodeKind::Output) {
            return true;
        }
        stack.extend(nl.fanout(id));
    }
    false
}

fn recipe_strategy() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 1..24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// On the tree family, exhaustive injection, SART, the propagation
    /// model, and a trial-indexed campaign all compute the identical
    /// {0, 1} AVF for every state bit.
    #[test]
    fn exhaustive_injection_equals_sart_exactly(recipe in recipe_strategy()) {
        let nl = parse_netlist(&tree_exlif(&recipe)).expect("generated EXLIF is valid");
        let targets: Vec<NodeId> = nl.seq_nodes().collect();
        prop_assume!(!targets.is_empty());
        prop_assert!(targets.len() <= MAX_STATE_BITS);

        let engine = SartEngine::new(&nl, &StructureMapping::new(), SartConfig::default());
        let analytical = engine.run(&PavfInputs::new());
        let model = PropModel::build(&nl, &observation_points(&nl));

        // Exhaustive: every site × every flip cycle. The horizon exceeds
        // any possible tree depth, so no fault is left in flight.
        let exhaustive = run_exhaustive(&nl, &targets, 8, 128, 0x0e5eed);

        for &bit in &targets {
            let truth = if reaches_an_output(&nl, bit) { 1.0 } else { 0.0 };
            let injected = exhaustive.estimate(bit).expect("targeted").avf;
            prop_assert_eq!(
                injected, truth,
                "injection disagrees with reachability at {}", nl.name(bit)
            );
            // == on purpose: SART emits -0.0 for dead bits, and
            // -0.0 == 0.0, so no tolerance is needed or wanted.
            prop_assert_eq!(
                analytical.avf(bit), truth,
                "SART disagrees with injection at {}", nl.name(bit)
            );
            prop_assert_eq!(
                model.propagation(bit), truth,
                "propagation model disagrees at {}", nl.name(bit)
            );
        }

        // The trial-indexed estimator inherits the same exactness: every
        // trial on a live bit errors, every trial on a dead bit masks.
        let cfg = TrialConfig {
            trials: targets.len() * 4,
            threads: 2,
            horizon: 128,
            ..TrialConfig::default()
        };
        let sampled = run_trials(&nl, &targets, None, &cfg);
        for tally in &sampled.tallies {
            if tally.trials > 0 {
                let truth = if reaches_an_output(&nl, tally.node) { 1.0 } else { 0.0 };
                prop_assert_eq!(
                    tally.avf(), truth,
                    "trial campaign disagrees at {}", nl.name(tally.node)
                );
            }
        }
    }
}
