//! The SDC-virus stress workload (§6.2's measurement companion) should be
//! the high-water mark of the workload population: with no dead code and
//! every value consumed and committed, its ACE rates — and therefore the
//! sequential AVFs SART derives — must exceed those of the mixed suite.

use seqavf::flow::{inputs_from_report, run_flow, FlowConfig};
use seqavf::perf::pipeline::{run_ace, PerfConfig};
use seqavf::workloads::kernels::sdc_virus::{sdc_virus_trace, SdcVirusConfig};
use seqavf::workloads::suite::MixFamily;

#[test]
fn virus_maximizes_sequential_avf() {
    let mut cfg = FlowConfig::small(31);
    cfg.suite.workloads = 6;
    cfg.suite.len = 1_500;
    let out = run_flow(&cfg);
    let nl = &out.design.netlist;

    let virus = sdc_virus_trace(&SdcVirusConfig {
        len: 4_000,
        ..SdcVirusConfig::default()
    });
    let mixed = MixFamily::builtin()[3].generate(0, 4_000, 7); // web mix

    let virus_rep = run_ace(&virus, &PerfConfig::default());
    let mixed_rep = run_ace(&mixed, &PerfConfig::default());

    // Architectural ACE fraction: the virus has essentially zero slack.
    let virus_ace = seqavf::perf::ace::analyze_trace(&virus).ace_fraction();
    let mixed_ace = seqavf::perf::ace::analyze_trace(&mixed).ace_fraction();
    assert!(virus_ace > 0.99, "virus ACE fraction {virus_ace}");
    assert!(virus_ace > mixed_ace);

    // And the derived sequential AVFs follow.
    let mean = |avfs: &[f64]| {
        nl.seq_nodes().map(|id| avfs[id.index()]).sum::<f64>() / nl.seq_count() as f64
    };
    let virus_avf = mean(&out.result.reevaluate(nl, &inputs_from_report(&virus_rep)));
    let mixed_avf = mean(&out.result.reevaluate(nl, &inputs_from_report(&mixed_rep)));
    assert!(
        virus_avf > mixed_avf,
        "virus {virus_avf} must exceed mixed {mixed_avf}"
    );
}
