//! E1 — the paper's Figure 7 worked example, asserted end to end across
//! `seqavf-netlist` (EXLIF parse) and `seqavf-core` (SART).
//!
//! Figure 7: structures S1 (pAVF_R = 0.10) and S2 (pAVF_R = 0.02) feed a
//! network of pipeline flops, two NOR joins and a distribution split,
//! terminating at the write ports of S3 and S4. The walk annotates:
//! Q1a = Q2a = 0.10, Q1b = 0.02, and both join outputs 0.12 — with the
//! nested union `pAVF_1 ∪ (pAVF_1 ∪ pAVF_2)` simplifying to 0.12 by set
//! semantics, not 0.22.

use seqavf::core::engine::{SartConfig, SartEngine};
use seqavf::core::mapping::{PavfInputs, StructureMapping};
use seqavf::netlist::flatten::parse_netlist;

const FIGURE7: &str = r"
.design figure7
.fub f
  .struct s1 1
  .struct s2 1
  .struct s3 1
  .struct s4 1
  .flop q1a s1[0]
  .flop q1b s2[0]
  .flop q2a q1a
  .gate nor g1 q2a q1b
  .flop q3b g1
  .gate nor g2 q2a g1
  .flop q3a g2
  .sw s3[0] q3a
  .sw s4[0] q3b
.endfub
.end
";

fn inputs() -> PavfInputs {
    let mut p = PavfInputs::new();
    p.set_port("f.s1", 0.10, 0.60);
    p.set_port("f.s2", 0.02, 0.60);
    p.set_port("f.s3", 0.50, 0.80);
    p.set_port("f.s4", 0.50, 0.80);
    p
}

#[test]
fn figure7_forward_annotations_match_paper() {
    let nl = parse_netlist(FIGURE7).unwrap();
    let engine = SartEngine::new(&nl, &StructureMapping::new(), SartConfig::default());
    let r = engine.run(&inputs());
    let inputs = inputs();
    let fwd = |name: &str| r.forward_value(nl.lookup(name).unwrap(), &inputs);

    // "The first phase of the pAVF walk begins with the walk from the S1
    // read-port … Both of these signals are annotated with 0.10".
    assert!((fwd("f.q1a") - 0.10).abs() < 1e-12);
    assert!((fwd("f.q2a") - 0.10).abs() < 1e-12);
    // "the S2 read-port pAVF … is walked forward to the output of Q1b,
    // which is annotated with 0.02".
    assert!((fwd("f.q1b") - 0.02).abs() < 1e-12);
    // "the output is annotated with a pAVF value of 0.12 … propagated
    // forward through Q3b".
    assert!((fwd("f.g1") - 0.12).abs() < 1e-12);
    assert!((fwd("f.q3b") - 0.12).abs() < 1e-12);
    // "The union of these values is (pAVF_1 ∪ (pAVF_1 ∪ pAVF_2)), which
    // simplifies to just (pAVF_1 ∪ pAVF_2) … 0.12 (0.10 + 0.02)".
    assert!((fwd("f.g2") - 0.12).abs() < 1e-12);
    assert!((fwd("f.q3a") - 0.12).abs() < 1e-12);
}

#[test]
fn figure7_table1_resolution_rules() {
    let nl = parse_netlist(FIGURE7).unwrap();
    let engine = SartEngine::new(&nl, &StructureMapping::new(), SartConfig::default());
    let r = engine.run(&inputs());
    let inputs = inputs();
    // Table 1: AVF = MIN(forward union, backward union) for every node.
    for id in nl.seq_nodes() {
        let f = r.forward_value(id, &inputs);
        let b = r.backward_value(id, &inputs);
        assert!((r.avf(id) - f.min(b)).abs() < 1e-12, "{}", nl.name(id));
    }
}

#[test]
fn figure7_backward_dominates_when_writes_are_rare() {
    // Drop the write rates: the backward walk becomes the binding estimate
    // (the "Logical Join" and "Distribution Split" rows of Table 1).
    let nl = parse_netlist(FIGURE7).unwrap();
    let mut p = inputs();
    p.set_port("f.s3", 0.50, 0.03);
    p.set_port("f.s4", 0.50, 0.01);
    let engine = SartEngine::new(&nl, &StructureMapping::new(), SartConfig::default());
    let r = engine.run(&p);
    // Q2a feeds both G1 and G2, reaching both sinks; backward = 0.03 + 0.01.
    let q2a = nl.lookup("f.q2a").unwrap();
    assert!((r.avf(q2a) - 0.04).abs() < 1e-12, "got {}", r.avf(q2a));
    // Q3b feeds only S4.
    let q3b = nl.lookup("f.q3b").unwrap();
    assert!((r.avf(q3b) - 0.01).abs() < 1e-12);
    // Q3a feeds only S3.
    let q3a = nl.lookup("f.q3a").unwrap();
    assert!((r.avf(q3a) - 0.03).abs() < 1e-12);
}

#[test]
fn figure7_closed_forms_are_reported() {
    let nl = parse_netlist(FIGURE7).unwrap();
    let engine = SartEngine::new(&nl, &StructureMapping::new(), SartConfig::default());
    let r = engine.run(&inputs());
    let q3a = nl.lookup("f.q3a").unwrap();
    let form = r.closed_form(q3a);
    assert!(form.contains("pAVF_R(f.s1)"), "{form}");
    assert!(form.contains("pAVF_R(f.s2)"), "{form}");
    assert!(form.contains("pAVF_W(f.s3)"), "{form}");
}
