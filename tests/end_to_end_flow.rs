//! Cross-crate integration: the full §5 tool flow from workload traces to
//! resolved sequential AVFs, exercised through the umbrella `flow` module.

use seqavf::core::report::SartSummary;
use seqavf::flow::{inputs_from_report, run_flow, FlowConfig};
use seqavf::netlist::scc::find_loops;
use seqavf::netlist::stats::DesignCensus;
use seqavf::perf::pipeline::{run_ace, PerfConfig};
use seqavf::workloads::suite::MixFamily;

fn small_flow(seed: u64) -> seqavf::flow::FlowOutput {
    let mut cfg = FlowConfig::small(seed);
    cfg.suite.workloads = 6;
    cfg.suite.len = 1_500;
    run_flow(&cfg)
}

#[test]
fn flow_produces_consistent_summary() {
    let out = small_flow(1);
    let nl = &out.design.netlist;
    let summary = SartSummary::new(nl, &out.result);
    assert_eq!(summary.rows.len(), nl.fub_count());
    let seq_total: usize = summary.rows.iter().map(|r| r.seq_count).sum();
    assert_eq!(seq_total, nl.seq_count());
    assert!(summary.weighted_seq_avf > 0.0 && summary.weighted_seq_avf < 1.0);
    assert!(summary.visited_fraction > 0.98);
    assert!(out.result.outcome.converged);
}

#[test]
fn flow_is_deterministic() {
    let a = small_flow(2);
    let b = small_flow(2);
    assert_eq!(a.design.netlist.node_count(), b.design.netlist.node_count());
    for id in a.design.netlist.nodes() {
        assert_eq!(a.result.avf(id), b.result.avf(id));
    }
}

#[test]
fn loop_census_matches_netlist_analysis() {
    let out = small_flow(3);
    let nl = &out.design.netlist;
    let loops = find_loops(nl);
    let census = DesignCensus::new(nl, &loops);
    // SART's loop census can only differ from the raw SCC census by
    // sequentials it classified as control registers instead.
    assert!(out.result.roles.loop_seq_bits() <= census.total_loop_sequential());
    assert!(out.result.roles.loop_seq_bits() > 0);
}

#[test]
fn per_workload_inputs_shift_node_avfs() {
    let out = small_flow(4);
    let nl = &out.design.netlist;
    // A NOP-heavy workload must produce lower AVFs than a busy one.
    let busy = MixFamily::builtin()[0].generate(0, 2_000, 9);
    let mut nops = Vec::new();
    for _ in 0..2_000 {
        nops.push(seqavf::workloads::trace::Instr::nop());
    }
    let nop_trace = seqavf::workloads::trace::Trace::new("nops", nops);

    let busy_rep = run_ace(&busy, &PerfConfig::default());
    let nop_rep = run_ace(&nop_trace, &PerfConfig::default());
    let busy_avfs = out.result.reevaluate(nl, &inputs_from_report(&busy_rep));
    let nop_avfs = out.result.reevaluate(nl, &inputs_from_report(&nop_rep));
    let mean =
        |v: &[f64]| nl.seq_nodes().map(|id| v[id.index()]).sum::<f64>() / nl.seq_count() as f64;
    assert!(
        mean(&nop_avfs) < mean(&busy_avfs),
        "un-ACE workload {} must yield lower AVFs than busy {}",
        mean(&nop_avfs),
        mean(&busy_avfs)
    );
}

#[test]
fn structure_avfs_flow_into_cell_values() {
    let out = small_flow(5);
    let nl = &out.design.netlist;
    // Every structure cell whose structure has a measured AVF takes it.
    for sid in nl.structure_ids() {
        let perf_name = out.mapping.perf_name(sid).expect("generator maps all");
        if let Some(avf) = out.inputs.structure_avf(perf_name) {
            for &cell in nl.structure(sid).cells() {
                assert!(
                    (out.result.avf(cell) - avf).abs() < 1e-12,
                    "cell {} of {}",
                    nl.name(cell),
                    perf_name
                );
            }
        }
    }
}

#[test]
fn mapping_text_roundtrip_through_cli_formats() {
    // The same path the CLI uses: EXLIF text + mapping text + JSON inputs.
    let out = small_flow(6);
    let nl = &out.design.netlist;
    let exlif_text = seqavf::netlist::exlif::write(nl);
    let map_text = out.mapping.to_text(nl);
    let inputs_json = serde_json::to_string(&out.inputs).unwrap();

    let nl2 = seqavf::netlist::flatten::parse_netlist(&exlif_text).unwrap();
    let mapping2 = seqavf::core::mapping::StructureMapping::from_text(&nl2, &map_text).unwrap();
    let inputs2: seqavf::core::mapping::PavfInputs = serde_json::from_str(&inputs_json).unwrap();
    let engine = seqavf::core::engine::SartEngine::new(&nl2, &mapping2, out.result.config.clone());
    let result2 = engine.run(&inputs2);
    // Same design, same inputs, same config → same AVFs (matched by name;
    // node ids are preserved by the writer's id-order emission).
    for id in nl.nodes() {
        let id2 = nl2.lookup(nl.name(id)).expect("names preserved");
        assert!(
            (out.result.avf(id) - result2.avf(id2)).abs() < 1e-12,
            "{}",
            nl.name(id)
        );
    }
}

#[test]
fn kernels_run_through_entire_flow() {
    let out = small_flow(7);
    let nl = &out.design.netlist;
    for trace in [
        seqavf::workloads::kernels::lattice::lattice_trace(&Default::default()),
        seqavf::workloads::kernels::md5::md5_trace(&Default::default()),
    ] {
        let rep = run_ace(&trace, &PerfConfig::default());
        assert_eq!(rep.instructions as usize, trace.len());
        let avfs = out.result.reevaluate(nl, &inputs_from_report(&rep));
        for id in nl.nodes() {
            assert!((0.0..=1.0).contains(&avfs[id.index()]));
        }
    }
}
