//! The flow on the second design preset: a small in-order embedded core
//! (the class of design the paper's related work fault-injects directly).
//! Checks that the methodology is not tuned to one topology — the same
//! invariants hold on a very different design shape.

use seqavf::core::engine::{SartConfig, SartEngine};
use seqavf::core::mapping::StructureMapping;
use seqavf::core::report::SartSummary;
use seqavf::flow::{inputs_from_suite, run_suite};
use seqavf::netlist::synth::{generate, SynthConfig};
use seqavf::sfi::campaign::{run_campaign, CampaignConfig};
use seqavf::workloads::suite::{standard_suite, SuiteConfig};

#[test]
fn embedded_core_flow_end_to_end() {
    let design = generate(&SynthConfig::embedded_like(11));
    let nl = &design.netlist;
    assert_eq!(nl.fub_count(), 5);

    let traces = standard_suite(&SuiteConfig {
        workloads: 6,
        len: 1_500,
        ..SuiteConfig::default()
    });
    let suite = run_suite(&traces, &Default::default());
    let inputs = inputs_from_suite(&suite);
    let mapping = StructureMapping::from_pairs(design.meta.structure_map.clone());
    let engine = SartEngine::new(nl, &mapping, SartConfig::default());
    let result = engine.run(&inputs);

    assert!(result.outcome.converged);
    let summary = SartSummary::new(nl, &result);
    assert!(summary.weighted_seq_avf > 0.0 && summary.weighted_seq_avf < 1.0);
    assert!(summary.visited_fraction > 0.98);
    // The control-heavy `ctl` FUB exists and its census is populated.
    assert!(summary.rows.iter().any(|r| r.fub == "ctl"));
    assert!(summary.control_reg_bits > 0);
    assert!(summary.loop_seq_bits > 0);
}

#[test]
fn embedded_core_is_sfi_tractable_and_sart_conservative() {
    // The embedded preset is small enough to fault-inject every sequential.
    let design = generate(&SynthConfig::embedded_like(13));
    let nl = &design.netlist;
    assert!(nl.seq_count() < 400, "embedded preset should be tiny");

    let config = SartConfig {
        loop_pavf: 1.0,
        boundary_in_pavf: 1.0,
        boundary_out_pavf: 1.0,
        default_port_pavf: 1.0,
        ..SartConfig::default()
    };
    let mapping = StructureMapping::from_pairs(design.meta.structure_map.clone());
    let sart = SartEngine::new(nl, &mapping, config).run(&Default::default());

    let targets: Vec<_> = nl.seq_nodes().collect();
    let camp = run_campaign(
        nl,
        &targets,
        &CampaignConfig {
            injections_per_node: 6,
            threads: 8,
            ..CampaignConfig::default()
        },
    );
    for est in &camp.nodes {
        let err = est.errors as f64 / est.injections as f64;
        assert!(
            sart.avf(est.node) + 1e-9 >= err,
            "{}: SFI {} exceeds SART bound {}",
            nl.name(est.node),
            err,
            sart.avf(est.node)
        );
    }
}
