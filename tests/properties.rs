//! Property-based tests over randomly generated circuits, checking the
//! invariants listed in DESIGN.md §6: range, the MIN resolution rule,
//! partitioned/global equivalence, closed-form reuse, monotonicity in the
//! measured inputs, EXLIF round-tripping, and SART's conservatism against
//! fault injection.

use proptest::prelude::*;

use seqavf::core::engine::{SartConfig, SartEngine};
use seqavf::core::mapping::{PavfInputs, StructureMapping};
use seqavf::netlist::graph::{GateOp, Netlist, NetlistBuilder, NodeId, NodeKind, SeqKind};
use seqavf::sfi::campaign::{run_campaign, CampaignConfig};

/// Deterministically builds a valid circuit from a byte recipe: bytes
/// select operations (gates, flops, FSM rings, structure writes, outputs)
/// over a growing signal pool, so every generated netlist is valid by
/// construction.
fn build_circuit(recipe: &[(u8, u8, u8)], fubs: usize) -> Netlist {
    let mut b = NetlistBuilder::new("prop");
    let fubs: Vec<_> = (0..fubs.max(1))
        .map(|i| b.add_fub(format!("f{i}")))
        .collect();
    let mut pool: Vec<NodeId> = Vec::new();
    // Two structures of three bits each plus two inputs seed the pool.
    let s1 = b.add_structure("f0.sa", 3, fubs[0]);
    let s2 = b.add_structure("f0.sb", 3, fubs[0]);
    for bit in 0..3 {
        pool.push(b.structure_cell(s1, bit));
        pool.push(b.structure_cell(s2, bit));
    }
    for i in 0..2 {
        pool.push(b.add_node(format!("f0.in{i}"), NodeKind::Input, fubs[0]));
    }

    let flop = NodeKind::Seq {
        kind: SeqKind::Flop,
        has_enable: false,
    };
    let gates = [
        GateOp::And,
        GateOp::Or,
        GateOp::Nor,
        GateOp::Xor,
        GateOp::Nand,
    ];
    let mut struct_writes = 0usize;
    for (i, &(kind, x, y)) in recipe.iter().enumerate() {
        let fub = fubs[i % fubs.len()];
        let fname = |n: &str| format!("f{}.{n}{i}", i % fubs.len());
        let pick = |k: u8| pool[k as usize % pool.len()];
        match kind % 6 {
            0 | 1 => {
                // Two-input gate followed by a flop (pipeline + join).
                let g = b.add_node(
                    fname("g"),
                    NodeKind::Comb(gates[x as usize % gates.len()]),
                    fub,
                );
                b.connect(pick(x), g);
                b.connect(pick(y), g);
                let q = b.add_node(fname("q"), flop, fub);
                b.connect(g, q);
                pool.push(q);
            }
            2 => {
                // Plain pipeline flop.
                let q = b.add_node(fname("p"), flop, fub);
                b.connect(pick(x), q);
                pool.push(q);
            }
            3 => {
                // FSM loop: two flops closed through an OR with an entry.
                let a = b.add_node(fname("la"), flop, fub);
                let l2 = b.add_node(fname("lb"), flop, fub);
                let g = b.add_node(fname("lg"), NodeKind::Comb(GateOp::Or), fub);
                b.connect(a, l2);
                b.connect(l2, g);
                b.connect(pick(x), g);
                b.connect(g, a);
                pool.push(l2);
            }
            4 => {
                // Structure write (bounded so some cells stay read-only).
                if struct_writes < 4 {
                    let cell = b.structure_cell(if x % 2 == 0 { s1 } else { s2 }, u32::from(y) % 3);
                    b.connect(pick(x), cell);
                    struct_writes += 1;
                } else {
                    let q = b.add_node(fname("pw"), flop, fub);
                    b.connect(pick(x), q);
                    pool.push(q);
                }
            }
            _ => {
                // Boundary output.
                let o = b.add_node(fname("o"), NodeKind::Output, fub);
                b.connect(pick(x), o);
            }
        }
    }
    // Guarantee at least one sink.
    let last = *pool.last().expect("pool non-empty");
    let o = b.add_node("f0.final_out", NodeKind::Output, fubs[0]);
    b.connect(last, o);
    b.finish().expect("recipe-built netlists are valid")
}

/// Builds a multi-FUB circuit stressing the partition machinery:
/// configuration control registers (classified by the `creg` name
/// pattern), FSM rings whose flops live in *different* FUBs (loop-cut
/// nodes on partition boundaries), join gates, and cross-FUB pipeline
/// flops. Deterministic in the recipe, valid by construction.
fn build_partition_stress_circuit(recipe: &[(u8, u8, u8)], fubs: usize) -> Netlist {
    let mut b = NetlistBuilder::new("stress");
    let fub_ids: Vec<_> = (0..fubs.max(2))
        .map(|i| b.add_fub(format!("g{i}")))
        .collect();
    let s1 = b.add_structure("g0.sa", 2, fub_ids[0]);
    let flop = NodeKind::Seq {
        kind: SeqKind::Flop,
        has_enable: false,
    };
    let mut pool: Vec<NodeId> = vec![b.structure_cell(s1, 0), b.structure_cell(s1, 1)];
    pool.push(b.add_node("g0.cfg", NodeKind::Input, fub_ids[0]));
    for (i, &(kind, x, y)) in recipe.iter().enumerate() {
        let here = i % fub_ids.len();
        let next = (i + 1) % fub_ids.len();
        let pick = |k: u8| pool[k as usize % pool.len()];
        match kind % 4 {
            0 => {
                // Control register (the name makes classify() tag it).
                let c = b.add_node(format!("g{here}.creg{i}"), flop, fub_ids[here]);
                b.connect(pick(x), c);
                pool.push(c);
            }
            1 => {
                // FSM ring spanning two FUBs: the loop cut happens on a
                // partition boundary.
                let la = b.add_node(format!("g{here}.xla{i}"), flop, fub_ids[here]);
                let lb = b.add_node(format!("g{next}.xlb{i}"), flop, fub_ids[next]);
                let g = b.add_node(
                    format!("g{here}.xlg{i}"),
                    NodeKind::Comb(GateOp::Or),
                    fub_ids[here],
                );
                b.connect(la, lb);
                b.connect(lb, g);
                b.connect(pick(x), g);
                b.connect(g, la);
                pool.push(lb);
            }
            2 => {
                // Join gate feeding a flop.
                let g = b.add_node(
                    format!("g{here}.jg{i}"),
                    NodeKind::Comb(GateOp::And),
                    fub_ids[here],
                );
                b.connect(pick(x), g);
                b.connect(pick(y), g);
                let q = b.add_node(format!("g{here}.jq{i}"), flop, fub_ids[here]);
                b.connect(g, q);
                pool.push(q);
            }
            _ => {
                // Pipeline flop in the *next* FUB: a cross-partition edge.
                let q = b.add_node(format!("g{next}.pq{i}"), flop, fub_ids[next]);
                b.connect(pick(x), q);
                pool.push(q);
            }
        }
    }
    // A structure write and an output keep both walks anchored.
    let wcell = b.structure_cell(s1, 1);
    b.connect(*pool.last().expect("pool non-empty"), wcell);
    let o = b.add_node("g0.out", NodeKind::Output, fub_ids[0]);
    b.connect(pool[pool.len() / 2], o);
    b.finish().expect("stress-built netlists are valid")
}

fn recipe_strategy() -> impl Strategy<Value = (Vec<(u8, u8, u8)>, usize)> {
    (
        prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 4..60),
        1usize..4,
    )
}

fn inputs_with(v: f64, w: f64) -> PavfInputs {
    let mut p = PavfInputs::new();
    p.set_port("f0.sa", v, w);
    p.set_port("f0.sb", v / 2.0, w / 2.0);
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn avf_is_min_of_walks_and_in_range((recipe, fubs) in recipe_strategy()) {
        let nl = build_circuit(&recipe, fubs);
        let inputs = inputs_with(0.3, 0.4);
        let engine = SartEngine::new(&nl, &StructureMapping::new(), SartConfig::default());
        let r = engine.run(&inputs);
        for id in nl.nodes() {
            let avf = r.avf(id);
            prop_assert!((0.0..=1.0).contains(&avf), "{}", nl.name(id));
            if !r.roles.role(id).is_injected() {
                let f = r.forward_value(id, &inputs);
                let b = r.backward_value(id, &inputs);
                prop_assert!((avf - f.min(b)).abs() < 1e-12, "{}", nl.name(id));
                prop_assert!(avf <= f + 1e-12);
                prop_assert!(avf <= b + 1e-12);
            }
        }
    }

    #[test]
    fn partitioned_equals_global((recipe, fubs) in recipe_strategy()) {
        let nl = build_circuit(&recipe, fubs);
        let inputs = inputs_with(0.25, 0.35);
        let part = SartEngine::new(&nl, &StructureMapping::new(), SartConfig::default())
            .run(&inputs);
        let glob = SartEngine::new(
            &nl,
            &StructureMapping::new(),
            SartConfig { partitioned: false, ..SartConfig::default() },
        )
        .run(&inputs);
        prop_assert!(part.outcome.converged);
        for id in nl.nodes() {
            prop_assert!(
                (part.avf(id) - glob.avf(id)).abs() < 1e-12,
                "{} partitioned {} vs global {}",
                nl.name(id), part.avf(id), glob.avf(id)
            );
        }
    }

    #[test]
    fn closed_form_reuse_is_exact((recipe, fubs) in recipe_strategy(),
                                  v in 0.0f64..1.0, w in 0.0f64..1.0) {
        let nl = build_circuit(&recipe, fubs);
        let engine = SartEngine::new(&nl, &StructureMapping::new(), SartConfig::default());
        let first = engine.run(&inputs_with(0.5, 0.5));
        let new_inputs = inputs_with(v, w);
        let cheap = first.reevaluate(&nl, &new_inputs);
        let fresh = engine.run(&new_inputs);
        for id in nl.nodes() {
            prop_assert!((cheap[id.index()] - fresh.avf(id)).abs() < 1e-12);
        }
    }

    #[test]
    fn avf_is_monotone_in_port_pavfs((recipe, fubs) in recipe_strategy(),
                                     lo in 0.0f64..0.5) {
        let nl = build_circuit(&recipe, fubs);
        let engine = SartEngine::new(&nl, &StructureMapping::new(), SartConfig::default());
        let low = engine.run(&inputs_with(lo, lo));
        let high = engine.run(&inputs_with(lo + 0.4, lo + 0.4));
        for id in nl.nodes() {
            prop_assert!(
                high.avf(id) + 1e-12 >= low.avf(id),
                "{}: raising inputs lowered AVF {} -> {}",
                nl.name(id), low.avf(id), high.avf(id)
            );
        }
    }

    #[test]
    fn partitioned_equals_global_with_loops_and_ctrl((recipe, fubs) in recipe_strategy()) {
        // Multi-FUB netlists with cross-partition FSM loops and control
        // registers: the partitioned relaxation must still converge to
        // the global fixpoint. A generous iteration cap keeps deep
        // cross-FUB chains from hitting the limit.
        let nl = build_partition_stress_circuit(&recipe, fubs);
        let mut inputs = PavfInputs::new();
        inputs.set_port("g0.sa", 0.2, 0.6);
        let config = SartConfig { max_iterations: 64, ..SartConfig::default() };
        let part = SartEngine::new(&nl, &StructureMapping::new(), config.clone())
            .run(&inputs);
        let glob = SartEngine::new(
            &nl,
            &StructureMapping::new(),
            SartConfig { partitioned: false, ..config },
        )
        .run(&inputs);
        prop_assert!(part.outcome.converged);
        prop_assert!(glob.outcome.converged);
        for id in nl.nodes() {
            prop_assert!(
                (part.avf(id) - glob.avf(id)).abs() < 1e-12,
                "{} partitioned {} vs global {}",
                nl.name(id), part.avf(id), glob.avf(id)
            );
        }
    }

    #[test]
    fn parallel_relax_is_bit_identical_to_sequential((recipe, fubs) in recipe_strategy()) {
        // The sharded parallel engine's contract: any thread count yields
        // the same SetId annotations, arena size, and bitwise-equal AVFs.
        let nl = build_partition_stress_circuit(&recipe, fubs);
        let mut inputs = PavfInputs::new();
        inputs.set_port("g0.sa", 0.35, 0.15);
        let config = SartConfig { max_iterations: 64, ..SartConfig::default() };
        let seq = SartEngine::new(&nl, &StructureMapping::new(), config.clone())
            .run(&inputs);
        let par = SartEngine::new(
            &nl,
            &StructureMapping::new(),
            SartConfig { threads: 5, ..config },
        )
        .run(&inputs);
        prop_assert_eq!(&seq.fwd, &par.fwd);
        prop_assert_eq!(&seq.bwd, &par.bwd);
        prop_assert_eq!(seq.arena.len(), par.arena.len());
        for id in nl.nodes() {
            prop_assert_eq!(seq.avf(id).to_bits(), par.avf(id).to_bits(), "{}", nl.name(id));
        }
    }

    #[test]
    fn incremental_relax_equals_full_and_global((recipe, fubs) in recipe_strategy()) {
        // The incremental dirty-FUB engine's contract: skipping clean FUBs
        // must be invisible. At any thread count, incremental and full
        // sweeps produce the same SetId annotations, arena size, iteration
        // count, and bitwise-equal AVFs — and both match the global
        // (unpartitioned) fixpoint in resolved values.
        let nl = build_partition_stress_circuit(&recipe, fubs);
        let mut inputs = PavfInputs::new();
        inputs.set_port("g0.sa", 0.3, 0.45);
        let config = SartConfig { max_iterations: 64, ..SartConfig::default() };
        let glob = SartEngine::new(
            &nl,
            &StructureMapping::new(),
            SartConfig { partitioned: false, ..config.clone() },
        )
        .run(&inputs);
        for threads in [1usize, 2, 8] {
            let full = SartEngine::new(
                &nl,
                &StructureMapping::new(),
                SartConfig { threads, incremental: false, ..config.clone() },
            )
            .run(&inputs);
            let inc = SartEngine::new(
                &nl,
                &StructureMapping::new(),
                SartConfig { threads, incremental: true, ..config.clone() },
            )
            .run(&inputs);
            prop_assert!(inc.outcome.converged);
            prop_assert_eq!(&full.fwd, &inc.fwd, "fwd mismatch at {} threads", threads);
            prop_assert_eq!(&full.bwd, &inc.bwd, "bwd mismatch at {} threads", threads);
            prop_assert_eq!(full.arena.len(), inc.arena.len());
            prop_assert_eq!(full.outcome.iterations, inc.outcome.iterations);
            prop_assert!(
                inc.outcome.total_walked_nodes() <= full.outcome.total_walked_nodes(),
                "incremental walked more nodes ({}) than full sweeps ({})",
                inc.outcome.total_walked_nodes(), full.outcome.total_walked_nodes()
            );
            for id in nl.nodes() {
                prop_assert_eq!(
                    full.avf(id).to_bits(), inc.avf(id).to_bits(),
                    "{} at {} threads", nl.name(id), threads
                );
                prop_assert!(
                    (inc.avf(id) - glob.avf(id)).abs() < 1e-12,
                    "{} incremental {} vs global {}",
                    nl.name(id), inc.avf(id), glob.avf(id)
                );
            }
        }
    }

    #[test]
    fn exlif_roundtrip_preserves_graph((recipe, fubs) in recipe_strategy()) {
        let nl = build_circuit(&recipe, fubs);
        let text = seqavf::netlist::exlif::write(&nl);
        let nl2 = seqavf::netlist::flatten::parse_netlist(&text).unwrap();
        prop_assert_eq!(nl.node_count(), nl2.node_count());
        prop_assert_eq!(nl.edge_count(), nl2.edge_count());
        prop_assert_eq!(nl.seq_count(), nl2.seq_count());
        for id in nl.nodes() {
            let id2 = nl2.lookup(nl.name(id)).expect("name preserved");
            prop_assert_eq!(nl.kind(id), nl2.kind(id2));
        }
    }
}

/// Replays the shrunk failing case recorded in
/// `tests/properties.proptest-regressions` for `closed_form_reuse_is_exact`.
/// The offline proptest stand-in does not read regression files, so the
/// seed is pinned here as a plain test.
#[test]
fn closed_form_reuse_regression_seed() {
    let recipe: Vec<(u8, u8, u8)> = vec![
        (94, 0, 0),
        (160, 0, 0),
        (184, 0, 0),
        (214, 0, 0),
        (46, 0, 0),
        (0, 0, 0),
        (0, 0, 0),
        (0, 0, 0),
        (0, 0, 3),
        (217, 174, 150),
        (168, 19, 112),
        (25, 111, 184),
        (195, 92, 195),
        (88, 172, 60),
        (165, 60, 188),
        (136, 149, 183),
        (186, 163, 67),
        (216, 100, 4),
        (90, 214, 83),
        (55, 40, 14),
        (23, 55, 242),
        (144, 167, 235),
        (7, 47, 204),
        (30, 26, 203),
        (128, 52, 150),
    ];
    let (fubs, v, w) = (2usize, 0.4015249373321048f64, 0.06049688487082415f64);
    let nl = build_circuit(&recipe, fubs);
    let engine = SartEngine::new(&nl, &StructureMapping::new(), SartConfig::default());
    let first = engine.run(&inputs_with(0.5, 0.5));
    let cheap = first.reevaluate(&nl, &inputs_with(v, w));
    let fresh = engine.run(&inputs_with(v, w));
    for id in nl.nodes() {
        assert!(
            (cheap[id.index()] - fresh.avf(id)).abs() < 1e-12,
            "{}: reused {} vs fresh {}",
            nl.name(id),
            cheap[id.index()],
            fresh.avf(id)
        );
    }
}

proptest! {
    // SFI pairs are comparatively expensive; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn conservative_sart_dominates_sfi((recipe, fubs) in recipe_strategy()) {
        let nl = build_circuit(&recipe, fubs);
        let config = SartConfig {
            loop_pavf: 1.0,
            boundary_in_pavf: 1.0,
            boundary_out_pavf: 1.0,
            default_port_pavf: 1.0,
            ..SartConfig::default()
        };
        let sart = SartEngine::new(&nl, &StructureMapping::new(), config)
            .run(&PavfInputs::new());
        let targets: Vec<NodeId> = nl.seq_nodes().collect();
        let camp = run_campaign(
            &nl,
            &targets,
            &CampaignConfig {
                injections_per_node: 4,
                threads: 1,
                max_warmup: 8,
                horizon: 60,
                ..CampaignConfig::default()
            },
        );
        for est in &camp.nodes {
            let err = est.errors as f64 / est.injections as f64;
            prop_assert!(
                sart.avf(est.node) + 1e-9 >= err,
                "{}: SFI {} > SART bound {}",
                nl.name(est.node), err, sart.avf(est.node)
            );
        }
    }
}
