//! Robustness properties for the two text frontends: arbitrary input must
//! produce an error, never a panic, and valid-vocabulary token soup must
//! never crash the flattener either.

use proptest::prelude::*;

use seqavf_netlist::exlif;
use seqavf_netlist::flatten;
use seqavf_netlist::verilog;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn exlif_parser_never_panics(src in "\\PC{0,400}") {
        let _ = exlif::parse(&src);
    }

    #[test]
    fn verilog_parser_never_panics(src in "\\PC{0,400}") {
        let _ = verilog::parse_to_ast(&src);
    }

    #[test]
    fn exlif_token_soup_never_panics(words in prop::collection::vec(
        prop::sample::select(vec![
            ".design", ".fub", ".endfub", ".end", ".model", ".endmodel",
            ".minput", ".moutput", ".input", ".output", ".struct", ".sw",
            ".gate", ".flop", ".latch", ".subckt", "and", "nor", "mux",
            "a", "b", "q", "s", "st[0]", "st[1]", "x=y", "3", "-1", "#",
        ]),
        0..60,
    )) {
        let src = words.join(" ").replace("# ", "#c\n") + "\n";
        // Parsing may fail; building may fail; neither may panic.
        if let Ok(ast) = exlif::parse(&src) {
            let _ = flatten::build_netlist(&ast);
        }
    }

    #[test]
    fn verilog_token_soup_never_panics(words in prop::collection::vec(
        prop::sample::select(vec![
            "module", "endmodule", "input", "output", "wire", "structure",
            "assign", "dff", "latch", "and", "or", "not", "(", ")", ",",
            ";", "=", ".q", ".d", ".en", "a", "b", "w", "st[0]", "[3:0]",
            "m", "//x",
        ]),
        0..60,
    )) {
        let src = words.join(" ") + "\n";
        if let Ok(ast) = verilog::parse_to_ast(&src) {
            let _ = flatten::build_netlist(&ast);
        }
    }

    #[test]
    fn valid_designs_with_random_identifiers_roundtrip(
        names in prop::collection::vec("[a-z][a-z0-9_]{0,12}", 3..8),
    ) {
        // Unique-ify the names to build a legal pipeline design.
        let mut names = names;
        names.sort();
        names.dedup();
        prop_assume!(names.len() >= 3);
        let mut src = String::from(".design d\n.fub f\n.input clk_in\n");
        let mut prev = "clk_in".to_owned();
        for n in &names {
            src.push_str(&format!(".flop {n} {prev}\n"));
            prev = n.clone();
        }
        src.push_str(&format!(".output out {prev}\n.endfub\n.end\n"));
        let nl = flatten::parse_netlist(&src).unwrap();
        prop_assert_eq!(nl.seq_count(), names.len());
        let text = exlif::write(&nl);
        let nl2 = flatten::parse_netlist(&text).unwrap();
        prop_assert_eq!(nl2.node_count(), nl.node_count());
    }
}
