//! Robustness properties for the two text frontends: arbitrary input must
//! produce an error, never a panic, and valid-vocabulary token soup must
//! never crash the flattener either.

use proptest::prelude::*;

use seqavf_netlist::exlif;
use seqavf_netlist::flatten;
use seqavf_netlist::verilog;

/// A known-good EXLIF design used as the seed for truncation fuzzing.
const VALID_EXLIF: &str = "\
.design trunc
.model stage
  .minput d
  .moutput q
  .flop q d
.endmodel
.fub f0
  .input din
  .struct st 2
  .gate and g1 din st[0]
  .flop q1 g1
  .sw st[1] q1
  .subckt stage u0 d=q1
  .output dout u0.q
.endfub
.end
";

/// A known-good structural-Verilog module used as the truncation seed.
const VALID_VERILOG: &str = "\
// truncation seed
module core (input a, input b, output y);
  wire w1, w2;
  structure st [1:0];
  and g1 (w1, a, st[0]);
  not g2 (w2, w1);
  dff q1 (.q(q1_out), .d(w2));
  dff q2 (.q(q2_out), .d(w1), .en(b));
  assign st[1] = q2_out;
  assign y = q1_out;
endmodule
";

/// Cut `src` to `len` bytes, snapping down to a char boundary so the
/// result is still a `&str` (the lossy-bytes tests cover invalid UTF-8).
fn truncate_at(src: &str, len: usize) -> &str {
    let mut cut = len.min(src.len());
    while !src.is_char_boundary(cut) {
        cut -= 1;
    }
    &src[..cut]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn exlif_parser_never_panics(src in "\\PC{0,400}") {
        let _ = exlif::parse(&src);
    }

    #[test]
    fn verilog_parser_never_panics(src in "\\PC{0,400}") {
        let _ = verilog::parse_to_ast(&src);
    }

    #[test]
    fn exlif_token_soup_never_panics(words in prop::collection::vec(
        prop::sample::select(vec![
            ".design", ".fub", ".endfub", ".end", ".model", ".endmodel",
            ".minput", ".moutput", ".input", ".output", ".struct", ".sw",
            ".gate", ".flop", ".latch", ".subckt", "and", "nor", "mux",
            "a", "b", "q", "s", "st[0]", "st[1]", "x=y", "3", "-1", "#",
        ]),
        0..60,
    )) {
        let src = words.join(" ").replace("# ", "#c\n") + "\n";
        // Parsing may fail; building may fail; neither may panic.
        if let Ok(ast) = exlif::parse(&src) {
            let _ = flatten::build_netlist(&ast);
        }
    }

    #[test]
    fn verilog_token_soup_never_panics(words in prop::collection::vec(
        prop::sample::select(vec![
            "module", "endmodule", "input", "output", "wire", "structure",
            "assign", "dff", "latch", "and", "or", "not", "(", ")", ",",
            ";", "=", ".q", ".d", ".en", "a", "b", "w", "st[0]", "[3:0]",
            "m", "//x",
        ]),
        0..60,
    )) {
        let src = words.join(" ") + "\n";
        if let Ok(ast) = verilog::parse_to_ast(&src) {
            let _ = flatten::build_netlist(&ast);
        }
    }

    #[test]
    fn exlif_parser_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..400),
    ) {
        // Raw bytes reach the parser the same way `load_design` feeds a
        // file read with lossy UTF-8 decoding: replacement chars and all.
        let src = String::from_utf8_lossy(&bytes);
        if let Ok(ast) = exlif::parse(&src) {
            let _ = flatten::build_netlist(&ast);
        }
    }

    #[test]
    fn verilog_parser_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..400),
    ) {
        let src = String::from_utf8_lossy(&bytes);
        if let Ok(ast) = verilog::parse_to_ast(&src) {
            let _ = flatten::build_netlist(&ast);
        }
    }

    #[test]
    fn exlif_parser_never_panics_on_truncated_valid_input(
        len in 0usize..VALID_EXLIF.len(),
        garbage in "\\PC{0,16}",
    ) {
        // A file cut off mid-write (plus optional trailing garbage from a
        // torn page) must error cleanly, never panic.
        let src = format!("{}{garbage}", truncate_at(VALID_EXLIF, len));
        if let Ok(ast) = exlif::parse(&src) {
            let _ = flatten::build_netlist(&ast);
        }
    }

    #[test]
    fn verilog_parser_never_panics_on_truncated_valid_input(
        len in 0usize..VALID_VERILOG.len(),
        garbage in "\\PC{0,16}",
    ) {
        let src = format!("{}{garbage}", truncate_at(VALID_VERILOG, len));
        if let Ok(ast) = verilog::parse_to_ast(&src) {
            let _ = flatten::build_netlist(&ast);
        }
    }

    #[test]
    fn full_valid_seeds_still_parse(
        // Degenerate corner pinned as a property so shrinking never hides
        // it: untruncated seeds must flatten end to end.
        which in any::<bool>(),
    ) {
        if which {
            flatten::parse_netlist(VALID_EXLIF).expect("EXLIF seed is valid");
        } else {
            verilog::parse_netlist(VALID_VERILOG).expect("Verilog seed is valid");
        }
    }

    #[test]
    fn valid_designs_with_random_identifiers_roundtrip(
        names in prop::collection::vec("[a-z][a-z0-9_]{0,12}", 3..8),
    ) {
        // Unique-ify the names to build a legal pipeline design.
        let mut names = names;
        names.sort();
        names.dedup();
        prop_assume!(names.len() >= 3);
        let mut src = String::from(".design d\n.fub f\n.input clk_in\n");
        let mut prev = "clk_in".to_owned();
        for n in &names {
            src.push_str(&format!(".flop {n} {prev}\n"));
            prev = n.clone();
        }
        src.push_str(&format!(".output out {prev}\n.endfub\n.end\n"));
        let nl = flatten::parse_netlist(&src).unwrap();
        prop_assert_eq!(nl.seq_count(), names.len());
        let text = exlif::write(&nl);
        let nl2 = flatten::parse_netlist(&text).unwrap();
        prop_assert_eq!(nl2.node_count(), nl.node_count());
    }
}
