//! Determinism of the parallel flattener: for any generated design —
//! hierarchy, structures, FSM loops and all — every thread count must
//! produce a bit-identical graph, and invalid designs must report the
//! same (document-order) error regardless of which worker hit it first.

mod common;

use proptest::prelude::*;

use seqavf_netlist::exlif;
use seqavf_netlist::flatten;
use seqavf_netlist::synth::{generate, SynthConfig};

/// At production scale (≥100k nodes, 8 replicated cores behind an
/// uncore), the *public* threaded entry point runs its parallel phases —
/// the work estimate clears the sequential-fallback threshold — and must
/// still be bit-identical to the sequential build.
#[test]
fn production_scale_design_is_thread_equivalent() {
    let design = generate(&SynthConfig::xeon_like(42).scaled(2.0).with_cores(8));
    assert!(
        design.netlist.node_count() >= 100_000,
        "scaled design too small: {}",
        design.netlist.node_count()
    );
    let text = exlif::write(&design.netlist);
    let ast = exlif::parse(&text).expect("generated EXLIF parses");
    assert!(flatten::estimated_flat_stmts(&ast) >= 100_000);
    let seq = flatten::build_netlist_threaded(&ast, 1).expect("flattens");
    let par = flatten::build_netlist_threaded(&ast, 8).expect("flattens");
    assert_eq!(seq, par);
    assert_eq!(seq.content_digest(), par.content_digest());
    // The flattened graph reproduces the generated one node for node.
    assert_eq!(seq.node_count(), design.netlist.node_count());
    assert_eq!(seq.edge_count(), design.netlist.edge_count());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn thread_counts_yield_identical_graphs(src in common::arb_design()) {
        let ast = exlif::parse(&src).expect("generated design parses");
        // `_exact` bypasses the small-design sequential fallback, so the
        // parallel phases genuinely run on these small generated designs.
        let seq = flatten::build_netlist_threaded_exact(&ast, 1).expect("flattens");
        for threads in [2usize, 3, 8] {
            let par = flatten::build_netlist_threaded_exact(&ast, threads).unwrap();
            prop_assert_eq!(&par, &seq);
            prop_assert_eq!(par.content_digest(), seq.content_digest());
            prop_assert_eq!(par.node_count(), seq.node_count());
            for id in seq.nodes() {
                prop_assert_eq!(par.name(id), seq.name(id));
                prop_assert_eq!(par.kind(id), seq.kind(id));
                prop_assert_eq!(par.fanin(id), seq.fanin(id));
            }
        }
    }

    #[test]
    fn thread_counts_agree_on_errors(src in common::arb_design()) {
        // Inject an undefined-net reference into the first FUB: every
        // thread count must pick the same document-order error.
        let src = src.replacen(
            ".endfub",
            "  .gate and badg in0_undefined also_undefined\n.endfub",
            1,
        );
        let ast = exlif::parse(&src).expect("still parses");
        let seq_err = flatten::build_netlist_threaded_exact(&ast, 1)
            .expect_err("undefined net must not flatten");
        for threads in [2usize, 8] {
            let par_err = flatten::build_netlist_threaded_exact(&ast, threads)
                .expect_err("undefined net must not flatten");
            prop_assert_eq!(par_err.to_string(), seq_err.to_string());
        }
    }
}
