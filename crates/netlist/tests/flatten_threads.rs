//! Determinism of the parallel flattener: for any generated design —
//! hierarchy, structures, FSM loops and all — every thread count must
//! produce a bit-identical graph, and invalid designs must report the
//! same (document-order) error regardless of which worker hit it first.

mod common;

use proptest::prelude::*;

use seqavf_netlist::exlif;
use seqavf_netlist::flatten;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn thread_counts_yield_identical_graphs(src in common::arb_design()) {
        let ast = exlif::parse(&src).expect("generated design parses");
        let seq = flatten::build_netlist_threaded(&ast, 1).expect("flattens");
        for threads in [2usize, 3, 8] {
            let par = flatten::build_netlist_threaded(&ast, threads).unwrap();
            prop_assert_eq!(&par, &seq);
            prop_assert_eq!(par.content_digest(), seq.content_digest());
            prop_assert_eq!(par.node_count(), seq.node_count());
            for id in seq.nodes() {
                prop_assert_eq!(par.name(id), seq.name(id));
                prop_assert_eq!(par.kind(id), seq.kind(id));
                prop_assert_eq!(par.fanin(id), seq.fanin(id));
            }
        }
    }

    #[test]
    fn thread_counts_agree_on_errors(src in common::arb_design()) {
        // Inject an undefined-net reference into the first FUB: every
        // thread count must pick the same document-order error.
        let src = src.replacen(
            ".endfub",
            "  .gate and badg in0_undefined also_undefined\n.endfub",
            1,
        );
        let ast = exlif::parse(&src).expect("still parses");
        let seq_err = flatten::build_netlist_threaded(&ast, 1)
            .expect_err("undefined net must not flatten");
        for threads in [2usize, 8] {
            let par_err = flatten::build_netlist_threaded(&ast, threads)
                .expect_err("undefined net must not flatten");
            prop_assert_eq!(par_err.to_string(), seq_err.to_string());
        }
    }
}
