//! Shared generator of valid EXLIF designs for the snapshot and
//! parallel-flatten property tests: every produced source must parse and
//! flatten cleanly, while covering structures, struct writes, latches,
//! FSM feedback loops and hierarchical `.subckt` instances across a
//! variable number of FUBs.
#![allow(dead_code)]

use proptest::prelude::*;

/// Shape parameters of one generated FUB.
#[derive(Debug, Clone)]
pub struct FubShape {
    /// Pipeline depth in sequential stages.
    pub flops: usize,
    /// ACE-structure width in bit cells.
    pub width: u32,
    /// Number of `stage` model instances to inline.
    pub insts: usize,
    /// Whether to add a two-flop FSM feedback loop.
    pub fsm: bool,
    /// Whether to alternate latches into the pipeline.
    pub latches: bool,
}

fn arb_fub_shape() -> impl Strategy<Value = FubShape> {
    (1usize..8, 1u32..5, 0usize..3, any::<bool>(), any::<bool>()).prop_map(
        |(flops, width, insts, fsm, latches)| FubShape {
            flops,
            width,
            insts,
            fsm,
            latches,
        },
    )
}

/// A random multi-FUB EXLIF design source.
pub fn arb_design() -> impl Strategy<Value = String> {
    prop::collection::vec(arb_fub_shape(), 1..5).prop_map(render_design)
}

/// Renders the FUB shapes as EXLIF text.
pub fn render_design(fubs: Vec<FubShape>) -> String {
    let mut s = String::from(".design gen\n");
    s.push_str(
        ".model stage\n  .minput d\n  .moutput q\n  .gate not gi d\n  .flop q gi\n.endmodel\n",
    );
    for (fi, f) in fubs.iter().enumerate() {
        s.push_str(&format!(".fub f{fi}\n  .input in{fi}\n"));
        s.push_str(&format!("  .struct st{fi} {}\n", f.width));
        s.push_str(&format!("  .gate and g{fi}_0 in{fi} st{fi}[0]\n"));
        let mut prev = format!("g{fi}_0");
        for i in 0..f.flops {
            let kind = if f.latches && i % 2 == 1 {
                ".latch"
            } else {
                ".flop"
            };
            s.push_str(&format!("  {kind} q{fi}_{i} {prev}\n"));
            prev = format!("q{fi}_{i}");
        }
        for b in 1..f.width {
            s.push_str(&format!("  .sw st{fi}[{b}] {prev}\n"));
        }
        if f.fsm {
            // Forward references are legal: the loop gate reads a flop
            // declared below it.
            s.push_str(&format!("  .gate or lg{fi} a{fi}_1 {prev}\n"));
            s.push_str(&format!("  .flop a{fi}_0 lg{fi}\n"));
            s.push_str(&format!("  .flop a{fi}_1 a{fi}_0\n"));
        }
        for k in 0..f.insts {
            s.push_str(&format!("  .subckt stage u{fi}_{k} d={prev}\n"));
            s.push_str(&format!("  .output sout{fi}_{k} u{fi}_{k}.q\n"));
        }
        s.push_str(&format!("  .output out{fi} {prev}\n.endfub\n"));
    }
    s.push_str(".end\n");
    s
}
