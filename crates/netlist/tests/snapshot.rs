//! End-to-end properties of the `seqavf-graph/2` binary snapshot over
//! randomly generated designs: a save/load roundtrip restores an equal
//! graph (node for node), and damaged snapshots of any kind error cleanly
//! — they never panic and never load as a different graph, so callers can
//! always degrade to a recompute.

mod common;

use proptest::prelude::*;

use seqavf_netlist::flatten;
use seqavf_netlist::graph::{NetlistBuilder, NodeKind, SeqKind};
use seqavf_netlist::scc::find_loops;
use seqavf_netlist::snapshot;
use seqavf_netlist::synth::{generate, SynthConfig};

#[test]
fn synthetic_design_roundtrips() {
    let design = generate(&SynthConfig::xeon_like(7).scaled(0.2));
    let loops = find_loops(&design.netlist);
    let bytes = snapshot::save(&design.netlist, &loops);
    let (nl2, loops2) = snapshot::load(&bytes).expect("snapshot loads");
    assert_eq!(nl2, design.netlist);
    assert_eq!(loops2, loops);
    assert_eq!(nl2.content_digest(), design.netlist.content_digest());
}

#[test]
fn snapshot_is_smaller_than_exlif_source() {
    // The v2 varint/delta encoding must beat the text it caches — v1 was
    // 1.7× *larger* than the EXLIF source for the reference design.
    let design = generate(&SynthConfig::xeon_like(11));
    let exlif_text = seqavf_netlist::exlif::write(&design.netlist);
    let loops = find_loops(&design.netlist);
    let bytes = snapshot::save(&design.netlist, &loops);
    assert!(
        bytes.len() < exlif_text.len(),
        "snapshot ({} bytes) must be smaller than its EXLIF source ({} bytes)",
        bytes.len(),
        exlif_text.len(),
    );
}

proptest! {
    // Expensive cases (65k FUBs each): a handful is enough to straddle
    // the boundary.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// v1 wrote FUB indices as `as u16` casts, so any design past 65,535
    /// FUBs round-tripped to a silently corrupted graph. v2 must restore
    /// FUB assignments exactly on both sides of that boundary.
    #[test]
    fn fub_counts_straddling_u16_boundary_roundtrip(
        fub_count in 65_534usize..65_601,
    ) {
        let mut b = NetlistBuilder::new("wide");
        let mut prev = None;
        for i in 0..fub_count {
            let fub = b.add_fub(format!("f{i}"));
            let kind = if prev.is_none() {
                NodeKind::Input
            } else {
                NodeKind::Seq { kind: SeqKind::Flop, has_enable: false }
            };
            let n = b.add_node(format!("f{i}.n"), kind, fub);
            if let Some(p) = prev {
                b.connect(p, n);
            }
            prev = Some(n);
        }
        let nl = b.finish().expect("valid 1-node-per-FUB chain");
        prop_assert_eq!(nl.fub_count(), fub_count);
        let loops = find_loops(&nl);
        let bytes = snapshot::save(&nl, &loops);
        let (nl2, loops2) = snapshot::load(&bytes).expect("snapshot loads");
        prop_assert_eq!(&nl2, &nl);
        prop_assert_eq!(&loops2, &loops);
        // Spot-check FUB assignment above the u16 horizon: node i lives
        // in FUB i, including for i > 65,535.
        for id in nl.nodes() {
            prop_assert_eq!(nl2.fub(id), nl.fub(id));
        }
        let last = nl.nodes().last().expect("non-empty");
        prop_assert_eq!(nl2.fub(last).index(), fub_count - 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_designs_roundtrip_node_for_node(src in common::arb_design()) {
        let nl = flatten::parse_netlist(&src).expect("generated design is valid");
        let loops = find_loops(&nl);
        let bytes = snapshot::save(&nl, &loops);
        let (nl2, loops2) = snapshot::load(&bytes).expect("snapshot loads");
        prop_assert_eq!(&nl2, &nl);
        prop_assert_eq!(&loops2, &loops);
        prop_assert_eq!(nl2.content_digest(), nl.content_digest());
        for id in nl.nodes() {
            prop_assert_eq!(nl2.name(id), nl.name(id));
            prop_assert_eq!(nl2.kind(id), nl.kind(id));
            prop_assert_eq!(nl2.fanin(id), nl.fanin(id));
            prop_assert_eq!(nl2.fanout(id), nl.fanout(id));
        }
        // Re-saving the restored graph is byte-identical: the format is
        // canonical, so cache files never churn.
        prop_assert_eq!(snapshot::save(&nl2, &loops2), bytes);
    }

    #[test]
    fn truncated_snapshots_error_cleanly(
        src in common::arb_design(),
        frac in 0.0f64..1.0,
    ) {
        let nl = flatten::parse_netlist(&src).unwrap();
        let loops = find_loops(&nl);
        let bytes = snapshot::save(&nl, &loops);
        let cut = ((bytes.len() as f64 * frac) as usize).min(bytes.len() - 1);
        prop_assert!(snapshot::load(&bytes[..cut]).is_err());
    }

    #[test]
    fn corrupted_snapshots_error_cleanly(
        src in common::arb_design(),
        pos_frac in 0.0f64..1.0,
        mask in 1u32..256,
    ) {
        let nl = flatten::parse_netlist(&src).unwrap();
        let loops = find_loops(&nl);
        let mut bytes = snapshot::save(&nl, &loops);
        let pos = ((bytes.len() as f64 * pos_frac) as usize).min(bytes.len() - 1);
        bytes[pos] ^= mask as u8;
        // The whole-file checksum covers every byte (the trailer guards
        // itself), so any single-byte change must be rejected.
        prop_assert!(snapshot::load(&bytes).is_err());
    }

    #[test]
    fn wrong_version_snapshots_error_cleanly(
        src in common::arb_design(),
        version in 0u32..10,
    ) {
        prop_assume!(version != 2);
        let nl = flatten::parse_netlist(&src).unwrap();
        let loops = find_loops(&nl);
        let mut bytes = snapshot::save(&nl, &loops);
        // `seqavf-graph/2\n` — the version digit sits at offset 13.
        assert_eq!(bytes[13], b'2');
        bytes[13] = b'0' + version as u8;
        prop_assert_eq!(
            snapshot::load(&bytes),
            Err(snapshot::SnapshotError::UnsupportedVersion)
        );
    }
}
