//! Node censuses over a [`Netlist`], mirroring the counts the paper reports
//! in §6.1 (sequential totals, loop membership, structure bits, per-FUB
//! breakdowns).

use crate::graph::{Netlist, NodeKind};
use crate::scc::LoopAnalysis;

/// Per-FUB node counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FubCensus {
    /// FUB name.
    pub name: String,
    /// Flop/latch count.
    pub sequential: usize,
    /// Combinational gate count.
    pub combinational: usize,
    /// ACE-structure bit cells.
    pub struct_cells: usize,
    /// Boundary (input/output) nodes.
    pub boundary: usize,
    /// Sequential nodes that lie on loops.
    pub loop_sequential: usize,
}

impl FubCensus {
    /// Total nodes in the FUB.
    pub fn total(&self) -> usize {
        self.sequential + self.combinational + self.struct_cells + self.boundary
    }
}

/// Whole-design census.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesignCensus {
    /// One entry per FUB, in FUB-id order.
    pub fubs: Vec<FubCensus>,
}

impl DesignCensus {
    /// Computes the census for a netlist, using `loops` for loop membership.
    pub fn new(nl: &Netlist, loops: &LoopAnalysis) -> Self {
        let mut fubs: Vec<FubCensus> = nl
            .fub_ids()
            .map(|f| FubCensus {
                name: nl.fub_name(f).to_owned(),
                ..FubCensus::default()
            })
            .collect();
        for id in nl.nodes() {
            let c = &mut fubs[nl.fub(id).index()];
            match nl.kind(id) {
                NodeKind::Seq { .. } => {
                    c.sequential += 1;
                    if loops.is_loop_node(id) {
                        c.loop_sequential += 1;
                    }
                }
                NodeKind::Comb(_) => c.combinational += 1,
                NodeKind::StructCell { .. } => c.struct_cells += 1,
                NodeKind::Input | NodeKind::Output => c.boundary += 1,
            }
        }
        DesignCensus { fubs }
    }

    /// Total sequential nodes across the design.
    pub fn total_sequential(&self) -> usize {
        self.fubs.iter().map(|f| f.sequential).sum()
    }

    /// Total nodes across the design.
    pub fn total_nodes(&self) -> usize {
        self.fubs.iter().map(|f| f.total()).sum()
    }

    /// Total sequential nodes on loops (the paper's "bits belonging to
    /// loops").
    pub fn total_loop_sequential(&self) -> usize {
        self.fubs.iter().map(|f| f.loop_sequential).sum()
    }

    /// Fraction of sequentials that lie on loops (the paper observes
    /// 2–3%).
    pub fn loop_fraction(&self) -> f64 {
        let s = self.total_sequential();
        if s == 0 {
            0.0
        } else {
            self.total_loop_sequential() as f64 / s as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flatten::parse_netlist;
    use crate::scc::find_loops;

    #[test]
    fn census_counts_kinds() {
        let text = r"
.design x
.fub a
  .input i
  .struct st 3
  .sw st[0] i
  .gate not g st[0]
  .flop q g
  .flop r q
  .output o r
.endfub
.fub b
  .flop s1 s2
  .flop s2 s1
.endfub
.end
";
        let nl = parse_netlist(text).unwrap();
        let loops = find_loops(&nl);
        let census = DesignCensus::new(&nl, &loops);
        assert_eq!(census.fubs.len(), 2);
        let a = &census.fubs[0];
        assert_eq!(a.name, "a");
        assert_eq!(a.sequential, 2);
        assert_eq!(a.combinational, 1);
        assert_eq!(a.struct_cells, 3);
        assert_eq!(a.boundary, 2);
        assert_eq!(a.loop_sequential, 0);
        let b = &census.fubs[1];
        assert_eq!(b.sequential, 2);
        assert_eq!(b.loop_sequential, 2);
        assert_eq!(census.total_sequential(), 4);
        assert_eq!(census.total_loop_sequential(), 2);
        assert!((census.loop_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(census.total_nodes(), nl.node_count());
    }

    #[test]
    fn empty_design_census() {
        let nl = parse_netlist(".design x\n.end\n").unwrap();
        let loops = find_loops(&nl);
        let census = DesignCensus::new(&nl, &loops);
        assert_eq!(census.total_nodes(), 0);
        assert_eq!(census.loop_fraction(), 0.0);
    }
}
