//! A structural-Verilog frontend.
//!
//! Production flows extract the node graph from compiled RTL; this module
//! accepts a gate-level structural subset of Verilog directly, so designs
//! written or synthesized outside this crate can be analyzed without
//! converting to EXLIF by hand. The subset:
//!
//! ```verilog
//! // line and /* block */ comments
//! module fetch (input a, input b, output y);
//!   wire w1, w2;
//!   structure st [7:0];          // ACE structure: cells st[0]..st[7]
//!   and  g1 (w1, a, st[0]);      // primitives: and or nand nor xor xnor
//!   not  g2 (w2, w1);            //             not buf mux
//!   dff  q1 (.q(q1_out), .d(w2));          // flop
//!   dff  q2 (.q(q2_out), .d(w1), .en(a));  // enabled flop
//!   latch l1 (.q(l1_out), .d(w2));
//!   assign st[1] = w2;           // structure write port
//!   assign y = q1_out;           // output driver
//! endmodule
//! ```
//!
//! Each `module` becomes one FUB. Nets referenced as `other.net` resolve
//! across modules (the same convention as the EXLIF format); `.subckt`
//! hierarchy is the EXLIF format's job — module instantiation is not part
//! of this subset. The parser lowers to the EXLIF AST, so
//! [`crate::flatten::build_netlist`] performs all semantic checking.
//!
//! Tokens are zero-copy `&str` slices over the source buffer; identifiers
//! are interned directly into the AST's [`SymbolTable`].

use crate::error::{ExlifError, ExlifErrorKind};
use crate::exlif::{DesignAst, FubAst, Stmt};
use crate::graph::{GateOp, Netlist, SeqKind};
use crate::intern::{Sym, SymbolTable};

/// A token (a slice of the source text) with its source line.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Tok<'a> {
    text: &'a str,
    line: usize,
}

fn err(line: usize, kind: ExlifErrorKind) -> ExlifError {
    ExlifError { line, kind }
}

/// Splits source text into zero-copy tokens, stripping `//` and `/* */`
/// comments. Punctuation characters are individual tokens; `[`, `]` and
/// `.` stay inside identifiers.
fn tokenize(src: &str) -> Vec<Tok<'_>> {
    const NONE: usize = usize::MAX;
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    let mut start = NONE;
    macro_rules! flush {
        () => {
            if start != NONE {
                toks.push(Tok {
                    text: &src[start..i],
                    line,
                });
                start = NONE;
            }
        };
    }
    while i < b.len() {
        match b[i] {
            b'\n' => {
                flush!();
                line += 1;
                i += 1;
            }
            b'/' if b.get(i + 1) == Some(&b'/') => {
                flush!();
                i += 2;
                while i < b.len() {
                    let c = b[i];
                    i += 1;
                    if c == b'\n' {
                        line += 1;
                        break;
                    }
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                flush!();
                i += 2;
                let mut prev = b' ';
                while i < b.len() {
                    let c = b[i];
                    if c == b'\n' {
                        line += 1;
                    }
                    i += 1;
                    if prev == b'*' && c == b'/' {
                        break;
                    }
                    prev = c;
                }
            }
            c if c.is_ascii_whitespace() => {
                flush!();
                i += 1;
            }
            b'(' | b')' | b',' | b';' | b'=' => {
                flush!();
                toks.push(Tok {
                    text: &src[i..i + 1],
                    line,
                });
                i += 1;
            }
            // Bit selects and dotted references stay inside identifiers.
            _ => {
                if start == NONE {
                    start = i;
                }
                i += 1;
            }
        }
    }
    if start != NONE {
        toks.push(Tok {
            text: &src[start..],
            line,
        });
    }
    toks
}

/// Parses the structural-Verilog subset into the EXLIF AST.
pub fn parse_to_ast(src: &str) -> Result<DesignAst, ExlifError> {
    let toks = tokenize(src);
    let mut p = Parser {
        toks,
        pos: 0,
        syms: SymbolTable::new(),
    };
    let mut fubs = Vec::new();
    while !p.at_end() {
        fubs.push(p.module()?);
    }
    Ok(DesignAst {
        name: "verilog".to_owned(),
        models: Vec::new(),
        fubs,
        symbols: p.syms,
    })
}

/// Parses structural Verilog and builds the flattened netlist.
pub fn parse_netlist(src: &str) -> Result<Netlist, ExlifError> {
    parse_netlist_traced(src, &seqavf_obs::Collector::disabled())
}

/// [`parse_netlist`] with observability: `frontend.parse` covers the
/// Verilog parse, `frontend.flatten` the hierarchy expansion.
pub fn parse_netlist_traced(src: &str, obs: &seqavf_obs::Collector) -> Result<Netlist, ExlifError> {
    let ast = {
        let mut span = obs.span("frontend.parse");
        let ast = parse_to_ast(src)?;
        span.field_str("frontend", "verilog");
        span.field_u64("fubs", ast.fubs.len() as u64);
        span.field_u64("symbols", ast.symbols.len() as u64);
        ast
    };
    let mut span = obs.span("frontend.flatten");
    let nl = crate::flatten::build_netlist(&ast)?;
    span.field_u64("nodes", nl.node_count() as u64);
    span.field_u64("seq_nodes", nl.seq_count() as u64);
    span.field_u64("structures", nl.structure_count() as u64);
    Ok(nl)
}

struct Parser<'a> {
    toks: Vec<Tok<'a>>,
    pos: usize,
    syms: SymbolTable,
}

impl<'a> Parser<'a> {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map_or(0, |t| t.line)
    }

    fn peek(&self) -> Option<&'a str> {
        self.toks.get(self.pos).map(|t| t.text)
    }

    fn next(&mut self, what: &'static str) -> Result<&'a str, ExlifError> {
        let t = self
            .toks
            .get(self.pos)
            .ok_or_else(|| err(self.line(), ExlifErrorKind::UnexpectedEof(what)))?;
        self.pos += 1;
        Ok(t.text)
    }

    fn expect(&mut self, text: &'static str) -> Result<(), ExlifError> {
        let line = self.line();
        let t = self.next(text)?;
        if t == text {
            Ok(())
        } else {
            Err(err(line, ExlifErrorKind::UnknownDirective(t.to_owned())))
        }
    }

    fn module(&mut self) -> Result<FubAst, ExlifError> {
        self.expect("module")?;
        let name_str = self.next("module name")?;
        let name = self.syms.intern(name_str);
        let mut stmts = Vec::new();
        // Port list.
        self.expect("(")?;
        let mut outputs: Vec<Sym> = Vec::new();
        loop {
            match self.peek() {
                Some(")") => {
                    self.pos += 1;
                    break;
                }
                Some(",") => {
                    self.pos += 1;
                }
                Some("input") => {
                    self.pos += 1;
                    let net = self.next("input port name")?;
                    let net = self.syms.intern(net);
                    stmts.push(Stmt::Input(net));
                }
                Some("output") => {
                    self.pos += 1;
                    let net = self.next("output port name")?;
                    outputs.push(self.syms.intern(net));
                }
                _ => {
                    let line = self.line();
                    let t = self.next("port declaration")?;
                    return Err(err(line, ExlifErrorKind::UnknownDirective(t.to_owned())));
                }
            }
        }
        self.expect(";")?;

        // Body.
        let mut assigns: Vec<(usize, &'a str, &'a str)> = Vec::new();
        loop {
            let line = self.line();
            let head = self.next("statement or endmodule")?;
            match head {
                "endmodule" => break,
                "wire" => {
                    // Declarations carry no information for the graph.
                    while self.peek() != Some(";") {
                        self.pos += 1;
                        if self.at_end() {
                            return Err(err(line, ExlifErrorKind::UnexpectedEof("wire list")));
                        }
                    }
                    self.pos += 1;
                }
                "structure" => {
                    let sname = self.next("structure name")?;
                    let sname = self.syms.intern(sname);
                    // [hi:lo]
                    let range = self.next("structure range")?;
                    let (hi, lo) = parse_range(range)
                        .ok_or_else(|| err(line, ExlifErrorKind::BadBitRef(range.to_owned())))?;
                    self.expect(";")?;
                    stmts.push(Stmt::Struct {
                        name: sname,
                        width: hi - lo + 1,
                    });
                }
                "assign" => {
                    let lhs = self.next("assign target")?;
                    self.expect("=")?;
                    let rhs = self.next("assign source")?;
                    self.expect(";")?;
                    assigns.push((line, lhs, rhs));
                }
                "dff" | "latch" => {
                    let kind = if head == "dff" {
                        SeqKind::Flop
                    } else {
                        SeqKind::Latch
                    };
                    let _inst = self.next("instance name")?;
                    let conns = self.named_conns()?;
                    self.expect(";")?;
                    let find = |port: &str| conns.iter().find(|(p, _)| *p == port).map(|&(_, n)| n);
                    let q = find("q").ok_or_else(|| {
                        err(line, ExlifErrorKind::MissingOperand("dff .q() connection"))
                    })?;
                    let d = find("d").ok_or_else(|| {
                        err(line, ExlifErrorKind::MissingOperand("dff .d() connection"))
                    })?;
                    stmts.push(Stmt::Seq {
                        kind,
                        out: q,
                        d,
                        en: find("en"),
                    });
                }
                prim => {
                    let op = GateOp::from_mnemonic(prim).ok_or_else(|| {
                        err(line, ExlifErrorKind::UnknownDirective(prim.to_owned()))
                    })?;
                    let _inst = self.next("instance name")?;
                    let nets = self.positional_conns()?;
                    self.expect(";")?;
                    let mut it = nets.into_iter();
                    let out = it.next().ok_or_else(|| {
                        err(line, ExlifErrorKind::MissingOperand("gate output net"))
                    })?;
                    stmts.push(Stmt::Gate {
                        op,
                        out,
                        ins: it.collect(),
                    });
                }
            }
        }

        // Lower assigns: struct-bit targets become write ports, output
        // ports become .output statements, everything else a buffer.
        for (line, lhs, rhs) in assigns {
            let src = self.syms.intern(rhs);
            if let Some((structure, bit)) = split_bit_ref(lhs) {
                stmts.push(Stmt::StructWrite {
                    structure: self.syms.intern(structure),
                    bit,
                    src,
                });
            } else {
                let lhs = self.syms.intern(lhs);
                if outputs.contains(&lhs) {
                    stmts.push(Stmt::Output { name: lhs, src });
                } else {
                    let _ = line;
                    stmts.push(Stmt::Gate {
                        op: GateOp::Buf,
                        out: lhs,
                        ins: vec![src],
                    });
                }
            }
        }
        // Outputs never assigned are an error surfaced by netlist
        // validation (an Output node without a fan-in cannot exist because
        // it is never created); report them here with a line number.
        for &o in &outputs {
            let driven = stmts
                .iter()
                .any(|s| matches!(s, Stmt::Output { name, .. } if *name == o));
            if !driven {
                return Err(err(
                    0,
                    ExlifErrorKind::UndefinedNet(format!(
                        "{name_str}.{} (undriven output)",
                        self.syms.resolve(o)
                    )),
                ));
            }
        }
        Ok(FubAst { name, stmts })
    }

    /// `(.port(net), .port(net), …)`
    fn named_conns(&mut self) -> Result<Vec<(&'a str, Sym)>, ExlifError> {
        self.expect("(")?;
        let mut conns = Vec::new();
        loop {
            match self.peek() {
                Some(")") => {
                    self.pos += 1;
                    break;
                }
                Some(",") => {
                    self.pos += 1;
                }
                _ => {
                    let line = self.line();
                    let t = self.next("named connection")?;
                    let Some(port) = t.strip_prefix('.') else {
                        return Err(err(line, ExlifErrorKind::UnknownDirective(t.to_owned())));
                    };
                    self.expect("(")?;
                    let net = self.next("connection net")?;
                    let net = self.syms.intern(net);
                    self.expect(")")?;
                    conns.push((port, net));
                }
            }
        }
        Ok(conns)
    }

    /// `(net, net, …)`
    fn positional_conns(&mut self) -> Result<Vec<Sym>, ExlifError> {
        self.expect("(")?;
        let mut nets = Vec::new();
        loop {
            match self.peek() {
                Some(")") => {
                    self.pos += 1;
                    break;
                }
                Some(",") => {
                    self.pos += 1;
                }
                _ => {
                    let net = self.next("connection net")?;
                    nets.push(self.syms.intern(net));
                }
            }
        }
        Ok(nets)
    }
}

/// `[7:0]` → `(7, 0)`.
fn parse_range(s: &str) -> Option<(u32, u32)> {
    let inner = s.strip_prefix('[')?.strip_suffix(']')?;
    let (hi, lo) = inner.split_once(':')?;
    let hi: u32 = hi.parse().ok()?;
    let lo: u32 = lo.parse().ok()?;
    (hi >= lo).then_some((hi, lo))
}

/// `st[3]` → `("st", 3)`.
fn split_bit_ref(s: &str) -> Option<(&str, u32)> {
    let open = s.find('[')?;
    let bit: u32 = s[open + 1..].strip_suffix(']')?.parse().ok()?;
    Some((&s[..open], bit))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeKind;

    const SMALL: &str = r"
// a small structural module
module core (input a, input b, output y);
  wire w1, w2;
  structure st [1:0];
  and g1 (w1, a, st[0]);
  not g2 (w2, w1);
  dff q1 (.q(q1_out), .d(w2));
  dff q2 (.q(q2_out), .d(w1), .en(b));
  assign st[1] = q2_out;
  assign y = q1_out;
endmodule
";

    #[test]
    fn parses_small_module() {
        let nl = parse_netlist(SMALL).unwrap();
        assert_eq!(nl.fub_count(), 1);
        assert_eq!(nl.seq_count(), 2);
        assert_eq!(nl.structure_count(), 1);
        let q1 = nl.lookup("core.q1_out").unwrap();
        assert!(nl.kind(q1).is_sequential());
        let q2 = nl.lookup("core.q2_out").unwrap();
        assert!(matches!(
            nl.kind(q2),
            NodeKind::Seq {
                has_enable: true,
                ..
            }
        ));
        // Structure write landed on st[1].
        let sid = nl.lookup_structure("core.st").unwrap();
        let cell1 = nl.structure(sid).cells()[1];
        assert_eq!(nl.fanin(cell1), &[q2]);
        // Output wired.
        let y = nl.lookup("core.y").unwrap();
        assert_eq!(nl.fanin(y), &[q1]);
    }

    #[test]
    fn comments_are_stripped() {
        let src = "module m (input a, output y);\n/* block\ncomment */ wire w;\nassign y = a; // ok\nendmodule\n";
        let nl = parse_netlist(src).unwrap();
        assert_eq!(nl.node_count(), 2);
    }

    #[test]
    fn cross_module_reference_resolves() {
        let src = r"
module a (input i, output o);
  dff q (.q(qo), .d(i));
  assign o = qo;
endmodule
module b (output o2);
  not g (n, a.o);
  assign o2 = n;
endmodule
";
        let nl = parse_netlist(src).unwrap();
        assert_eq!(nl.fub_count(), 2);
        let g = nl
            .lookup("b.g")
            .unwrap_or_else(|| nl.lookup("b.n").unwrap());
        let o = nl.lookup("a.o").unwrap();
        assert!(nl.fanin(g).contains(&o));
    }

    #[test]
    fn undriven_output_rejected() {
        let src = "module m (input a, output y);\nwire w;\nendmodule\n";
        let e = parse_netlist(src).unwrap_err();
        assert!(matches!(e.kind, ExlifErrorKind::UndefinedNet(_)));
    }

    #[test]
    fn dff_missing_d_rejected() {
        let src = "module m (input a, output y);\ndff q (.q(x));\nassign y = a;\nendmodule\n";
        let e = parse_netlist(src).unwrap_err();
        assert!(matches!(e.kind, ExlifErrorKind::MissingOperand(_)));
    }

    #[test]
    fn unknown_primitive_rejected() {
        let src = "module m (input a, output y);\nfoo g (x, a);\nassign y = a;\nendmodule\n";
        let e = parse_netlist(src).unwrap_err();
        assert!(matches!(e.kind, ExlifErrorKind::UnknownDirective(_)));
    }

    #[test]
    fn bad_structure_range_rejected() {
        let src = "module m (input a, output y);\nstructure st [0:3];\nassign y = a;\nendmodule\n";
        let e = parse_netlist(src).unwrap_err();
        assert!(matches!(e.kind, ExlifErrorKind::BadBitRef(_)));
    }

    #[test]
    fn parsed_design_runs_through_exlif_writer() {
        let nl = parse_netlist(SMALL).unwrap();
        let text = crate::exlif::write(&nl);
        let nl2 = crate::flatten::parse_netlist(&text).unwrap();
        assert_eq!(nl.node_count(), nl2.node_count());
        assert_eq!(nl.edge_count(), nl2.edge_count());
    }

    #[test]
    fn tokens_are_slices_of_the_source() {
        let src = "module m (input a);";
        for t in tokenize(src) {
            let off = t.text.as_ptr() as usize - src.as_ptr() as usize;
            assert_eq!(&src[off..off + t.text.len()], t.text);
        }
    }

    #[test]
    fn helpers() {
        assert_eq!(parse_range("[7:0]"), Some((7, 0)));
        assert_eq!(parse_range("[3:3]"), Some((3, 3)));
        assert_eq!(parse_range("[0:3]"), None);
        assert_eq!(parse_range("7:0"), None);
        assert_eq!(split_bit_ref("st[3]"), Some(("st", 3)));
        assert_eq!(split_bit_ref("st"), None);
    }
}
