//! The flattened RTL node graph.
//!
//! A [`Netlist`] is a directed graph over typed nodes: primary inputs and
//! outputs (the RTL boundary of §4.1), sequential elements (flops and
//! latches), combinational gates, and *structure bit cells* — the storage
//! bits of ACE-modeled structures (§4). Structure cells are the sources and
//! sinks of port-AVF walks: a forward walk starts at a cell's fan-out (its
//! read port) and a backward walk starts at a cell's fan-in (its write port).
//!
//! The graph is immutable once built; construction goes through
//! [`NetlistBuilder`], which validates arity, name uniqueness, and the
//! absence of combinational cycles, then freezes adjacency into compact CSR
//! arrays suitable for designs with millions of nodes.
//!
//! Node names are interned [`Sym`] handles into a per-design
//! [`SymbolTable`]; the hot paths (adjacency, kinds, FUB labels) carry no
//! owned strings, and [`Netlist::name`] materializes a `&str` view only at
//! report and trace boundaries.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::BuildError;
use crate::intern::{Fnv1a64, Sym, SymbolTable};
use crate::scc::LoopAnalysis;

/// Identifier of a node in a [`Netlist`]. Dense, 0-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a raw index.
    pub fn from_index(i: usize) -> Self {
        NodeId(u32::try_from(i).expect("node index exceeds u32 range"))
    }

    /// Returns the raw dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a functional block (FUB) in a [`Netlist`].
///
/// Internally `u32`: production-scale designs (many replicated cores, each
/// with hundreds of FUBs) overflow the 65,535-FUB ceiling a `u16` would
/// impose, and the snapshot format (`seqavf-graph/2`) serializes FUB
/// indices as full 32-bit values for the same reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FubId(u32);

impl FubId {
    /// Creates a FUB id from a raw index.
    pub fn from_index(i: usize) -> Self {
        FubId(u32::try_from(i).expect("FUB index exceeds u32 range"))
    }

    /// Returns the raw dense index of this FUB.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FubId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fub{}", self.0)
    }
}

/// Identifier of an ACE-modeled structure declared in a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StructId(u32);

impl StructId {
    /// Creates a structure id from a raw index.
    pub fn from_index(i: usize) -> Self {
        StructId(u32::try_from(i).expect("structure index exceeds u32 range"))
    }

    /// Returns the raw dense index of this structure.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StructId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Kind of sequential element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SeqKind {
    /// Edge-triggered flip-flop.
    Flop,
    /// Level-sensitive latch.
    Latch,
}

/// Combinational gate operator.
///
/// The propagation analysis is function-agnostic (§4.1: "the function is not
/// of consequence"), but the gate-level simulator in `seqavf-sfi` evaluates
/// these operators, so the netlist records them faithfully.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GateOp {
    /// Identity buffer (1 input).
    Buf,
    /// Inverter (1 input).
    Not,
    /// Logical AND (2+ inputs).
    And,
    /// Logical OR (2+ inputs).
    Or,
    /// Logical NAND (2+ inputs).
    Nand,
    /// Logical NOR (2+ inputs).
    Nor,
    /// Logical XOR (2+ inputs).
    Xor,
    /// Logical XNOR (2+ inputs).
    Xnor,
    /// 2:1 multiplexer; fan-ins are `(select, if0, if1)` (exactly 3).
    Mux,
    /// Constant logic zero (0 inputs).
    Const0,
    /// Constant logic one (0 inputs).
    Const1,
}

impl GateOp {
    /// Lowercase mnemonic used in the EXLIF format.
    pub fn mnemonic(self) -> &'static str {
        match self {
            GateOp::Buf => "buf",
            GateOp::Not => "not",
            GateOp::And => "and",
            GateOp::Or => "or",
            GateOp::Nand => "nand",
            GateOp::Nor => "nor",
            GateOp::Xor => "xor",
            GateOp::Xnor => "xnor",
            GateOp::Mux => "mux",
            GateOp::Const0 => "const0",
            GateOp::Const1 => "const1",
        }
    }

    /// Parses a mnemonic as produced by [`GateOp::mnemonic`].
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        Some(match s {
            "buf" => GateOp::Buf,
            "not" => GateOp::Not,
            "and" => GateOp::And,
            "or" => GateOp::Or,
            "nand" => GateOp::Nand,
            "nor" => GateOp::Nor,
            "xor" => GateOp::Xor,
            "xnor" => GateOp::Xnor,
            "mux" => GateOp::Mux,
            "const0" => GateOp::Const0,
            "const1" => GateOp::Const1,
            _ => return None,
        })
    }

    /// Dense code for binary serialization ([`GateOp::from_code`] inverts).
    pub fn code(self) -> u8 {
        match self {
            GateOp::Buf => 0,
            GateOp::Not => 1,
            GateOp::And => 2,
            GateOp::Or => 3,
            GateOp::Nand => 4,
            GateOp::Nor => 5,
            GateOp::Xor => 6,
            GateOp::Xnor => 7,
            GateOp::Mux => 8,
            GateOp::Const0 => 9,
            GateOp::Const1 => 10,
        }
    }

    /// Inverse of [`GateOp::code`].
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => GateOp::Buf,
            1 => GateOp::Not,
            2 => GateOp::And,
            3 => GateOp::Or,
            4 => GateOp::Nand,
            5 => GateOp::Nor,
            6 => GateOp::Xor,
            7 => GateOp::Xnor,
            8 => GateOp::Mux,
            9 => GateOp::Const0,
            10 => GateOp::Const1,
            _ => return None,
        })
    }

    /// Checks whether `n` fan-ins is a legal arity for this operator.
    pub fn arity_ok(self, n: usize) -> bool {
        match self {
            GateOp::Buf | GateOp::Not => n == 1,
            GateOp::Mux => n == 3,
            GateOp::Const0 | GateOp::Const1 => n == 0,
            _ => n >= 2,
        }
    }

    /// Human-readable description of the expected arity.
    pub fn arity_description(self) -> &'static str {
        match self {
            GateOp::Buf | GateOp::Not => "exactly 1",
            GateOp::Mux => "exactly 3",
            GateOp::Const0 | GateOp::Const1 => "exactly 0",
            _ => "2 or more",
        }
    }
}

impl fmt::Display for GateOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// The type of a node in the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// Primary input: a net entering the RTL under analysis. Walks terminate
    /// here (an "RTL boundary", §4.1); pseudo-structure pAVFs may be attached
    /// by the analysis.
    Input,
    /// Primary output: a net leaving the RTL under analysis.
    Output,
    /// A sequential element (flop or latch). When `has_enable` is true the
    /// *last* fan-in is the enable net; the remaining fan-in is data.
    Seq {
        /// Flop or latch.
        kind: SeqKind,
        /// Whether the element has a write-enable input.
        has_enable: bool,
    },
    /// A combinational gate.
    Comb(GateOp),
    /// One storage bit of an ACE-modeled structure. Fan-ins are its write
    /// port(s), fan-outs its read port(s).
    StructCell {
        /// The structure this cell belongs to.
        structure: StructId,
        /// Bit index within the structure.
        bit: u32,
    },
}

impl NodeKind {
    /// Whether this node is a flop or latch (the population whose AVF the
    /// paper computes).
    pub fn is_sequential(self) -> bool {
        matches!(self, NodeKind::Seq { .. })
    }

    /// Whether this node is a storage bit of an ACE structure.
    pub fn is_struct_cell(self) -> bool {
        matches!(self, NodeKind::StructCell { .. })
    }

    /// Whether this node is combinational logic.
    pub fn is_comb(self) -> bool {
        matches!(self, NodeKind::Comb(_))
    }

    /// Whether this node is a boundary (primary input or output).
    pub fn is_boundary(self) -> bool {
        matches!(self, NodeKind::Input | NodeKind::Output)
    }

    /// Appends a stable binary encoding (shared by the snapshot format and
    /// the content digest).
    pub(crate) fn encode(self, out: &mut Vec<u8>) {
        match self {
            NodeKind::Input => out.push(0),
            NodeKind::Output => out.push(1),
            NodeKind::Seq { kind, has_enable } => {
                out.push(2);
                out.push(match kind {
                    SeqKind::Flop => 0,
                    SeqKind::Latch => 1,
                });
                out.push(u8::from(has_enable));
            }
            NodeKind::Comb(op) => {
                out.push(3);
                out.push(op.code());
            }
            NodeKind::StructCell { structure, bit } => {
                out.push(4);
                out.extend_from_slice(&(structure.0).to_le_bytes());
                out.extend_from_slice(&bit.to_le_bytes());
            }
        }
    }
}

/// Declaration of an ACE-modeled structure: a named bank of storage cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructureDecl {
    name: String,
    sym: Sym,
    width: u32,
    fub: FubId,
    cells: Vec<NodeId>,
}

impl StructureDecl {
    /// The structure's name (e.g. `"rob"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The interned symbol of the structure's name.
    pub fn sym(&self) -> Sym {
        self.sym
    }

    /// Number of bit cells.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// FUB the structure's cells live in.
    pub fn fub(&self) -> FubId {
        self.fub
    }

    /// The node ids of the structure's bit cells, indexed by bit.
    pub fn cells(&self) -> &[NodeId] {
        &self.cells
    }
}

const NO_NODE: u32 = u32::MAX;

/// Incremental builder for a [`Netlist`].
///
/// All mutation happens here; [`NetlistBuilder::finish`] validates the graph
/// and freezes it.
#[derive(Debug, Clone)]
pub struct NetlistBuilder {
    design: String,
    symbols: SymbolTable,
    syms: Vec<Sym>,
    /// `Sym` index → node id (`NO_NODE` when the symbol names no node).
    node_of_sym: Vec<u32>,
    kinds: Vec<NodeKind>,
    fub_of: Vec<FubId>,
    fanin: Vec<Vec<NodeId>>,
    fubs: Vec<Sym>,
    structures: Vec<StructureDecl>,
    duplicate: Option<Sym>,
}

impl NetlistBuilder {
    /// Starts a new empty design with the given name.
    pub fn new(design: impl Into<String>) -> Self {
        Self::with_symbols(design, SymbolTable::new())
    }

    /// Starts a design seeded with an existing symbol table (the frontend
    /// hands over the table it interned the source identifiers into, so
    /// flattening never re-copies strings).
    pub fn with_symbols(design: impl Into<String>, symbols: SymbolTable) -> Self {
        NetlistBuilder {
            design: design.into(),
            symbols,
            syms: Vec::new(),
            node_of_sym: Vec::new(),
            kinds: Vec::new(),
            fub_of: Vec::new(),
            fanin: Vec::new(),
            fubs: Vec::new(),
            structures: Vec::new(),
            duplicate: None,
        }
    }

    /// The builder's symbol table.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Mutable access to the symbol table (for interning compound names
    /// during flattening).
    pub fn symbols_mut(&mut self) -> &mut SymbolTable {
        &mut self.symbols
    }

    /// Declares a functional block. Nodes reference FUBs by the returned id.
    pub fn add_fub(&mut self, name: impl AsRef<str>) -> FubId {
        let sym = self.symbols.intern(name.as_ref());
        self.add_fub_sym(sym)
    }

    /// [`NetlistBuilder::add_fub`] with a pre-interned name.
    pub fn add_fub_sym(&mut self, sym: Sym) -> FubId {
        let id = FubId::from_index(self.fubs.len());
        self.fubs.push(sym);
        id
    }

    /// Adds a node of the given kind. Names must be unique design-wide;
    /// a duplicate is recorded and reported by [`NetlistBuilder::finish`].
    pub fn add_node(&mut self, name: impl AsRef<str>, kind: NodeKind, fub: FubId) -> NodeId {
        let sym = self.symbols.intern(name.as_ref());
        self.add_node_sym(sym, kind, fub)
    }

    /// [`NetlistBuilder::add_node`] with a pre-interned name.
    pub fn add_node_sym(&mut self, sym: Sym, kind: NodeKind, fub: FubId) -> NodeId {
        let id = NodeId::from_index(self.kinds.len());
        if self.node_of_sym.len() <= sym.index() {
            self.node_of_sym
                .resize(self.symbols.len().max(sym.index() + 1), NO_NODE);
        }
        let slot = &mut self.node_of_sym[sym.index()];
        if *slot != NO_NODE {
            if self.duplicate.is_none() {
                self.duplicate = Some(sym);
            }
        } else {
            *slot = id.0;
        }
        self.syms.push(sym);
        self.kinds.push(kind);
        self.fub_of.push(fub);
        self.fanin.push(Vec::new());
        id
    }

    /// Declares an ACE structure of `width` bits; creates cell nodes named
    /// `name[0]` … `name[width-1]`.
    pub fn add_structure(&mut self, name: impl AsRef<str>, width: u32, fub: FubId) -> StructId {
        let sym = self.symbols.intern(name.as_ref());
        self.add_structure_sym(sym, width, fub)
    }

    /// [`NetlistBuilder::add_structure`] with a pre-interned name.
    pub fn add_structure_sym(&mut self, sym: Sym, width: u32, fub: FubId) -> StructId {
        let sid = StructId::from_index(self.structures.len());
        let cells = (0..width)
            .map(|bit| {
                let cell = self.symbols.intern_bit(sym, bit);
                self.add_node_sym(
                    cell,
                    NodeKind::StructCell {
                        structure: sid,
                        bit,
                    },
                    fub,
                )
            })
            .collect();
        self.structures.push(StructureDecl {
            name: self.symbols.resolve(sym).to_owned(),
            sym,
            width,
            fub,
            cells,
        });
        sid
    }

    /// Returns the cell node for `structure[bit]`.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is out of range for the structure.
    pub fn structure_cell(&self, structure: StructId, bit: u32) -> NodeId {
        self.structures[structure.index()].cells[bit as usize]
    }

    /// Declared width of a structure.
    pub fn structure_width(&self, structure: StructId) -> u32 {
        self.structures[structure.index()].width
    }

    /// Adds a directed edge `from -> to` (i.e. `from` becomes a fan-in of
    /// `to`). For [`NodeKind::Seq`] nodes with an enable, connect the data
    /// net first and the enable net last.
    pub fn connect(&mut self, from: NodeId, to: NodeId) {
        self.fanin[to.index()].push(from);
    }

    /// Looks up a node by name.
    pub fn lookup(&self, name: &str) -> Option<NodeId> {
        self.symbols
            .lookup(name)
            .and_then(|sym| self.lookup_sym(sym))
    }

    /// Looks up a node by interned name.
    pub fn lookup_sym(&self, sym: Sym) -> Option<NodeId> {
        match self.node_of_sym.get(sym.index()) {
            Some(&id) if id != NO_NODE => Some(NodeId(id)),
            _ => None,
        }
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.kinds.len()
    }

    fn node_name(&self, i: usize) -> String {
        self.symbols.resolve(self.syms[i]).to_owned()
    }

    /// Validates and freezes the graph.
    ///
    /// # Errors
    ///
    /// Returns the first violation found among: duplicate names, dangling
    /// edge endpoints, gate/sequential arity, inputs with fan-in, and
    /// combinational cycles.
    pub fn finish(self) -> Result<Netlist, BuildError> {
        if let Some(sym) = self.duplicate {
            return Err(BuildError::DuplicateName(
                self.symbols.resolve(sym).to_owned(),
            ));
        }
        let n = self.kinds.len();
        // Arity and endpoint validation.
        for (i, ins) in self.fanin.iter().enumerate() {
            for from in ins {
                if from.index() >= n {
                    return Err(BuildError::UnknownNode(from.index() as u32));
                }
            }
            let found = ins.len();
            match self.kinds[i] {
                NodeKind::Input => {
                    if found != 0 {
                        return Err(BuildError::InputHasFanin(self.node_name(i)));
                    }
                }
                NodeKind::Output => {
                    if found != 1 {
                        return Err(BuildError::BadArity {
                            node: self.node_name(i),
                            found,
                            expected: "exactly 1",
                        });
                    }
                }
                NodeKind::Seq { has_enable, .. } => {
                    let want = if has_enable { 2 } else { 1 };
                    if found != want {
                        return Err(BuildError::BadArity {
                            node: self.node_name(i),
                            found,
                            expected: if has_enable { "exactly 2" } else { "exactly 1" },
                        });
                    }
                }
                NodeKind::Comb(op) => {
                    if !op.arity_ok(found) {
                        return Err(BuildError::BadArity {
                            node: self.node_name(i),
                            found,
                            expected: op.arity_description(),
                        });
                    }
                }
                // Structure cells may have any number of write ports,
                // including zero (read-only architectural state).
                NodeKind::StructCell { .. } => {}
            }
        }
        self.check_comb_cycles()?;

        // Freeze adjacency into CSR form.
        let mut fanin_off = Vec::with_capacity(n + 1);
        let mut fanin_dat = Vec::new();
        fanin_off.push(0u32);
        for ins in &self.fanin {
            fanin_dat.extend_from_slice(ins);
            fanin_off.push(fanin_dat.len() as u32);
        }
        let (fanout_off, fanout_dat) = transpose_csr(n, &fanin_off, &fanin_dat);

        let seq_count = self.kinds.iter().filter(|k| k.is_sequential()).count();
        let mut node_of_sym = self.node_of_sym;
        node_of_sym.resize(self.symbols.len(), NO_NODE);
        Ok(Netlist {
            design: self.design,
            symbols: self.symbols,
            syms: self.syms,
            node_of_sym,
            kinds: self.kinds,
            fub_of: self.fub_of,
            fubs: self.fubs,
            structures: self.structures,
            fanin_off,
            fanin_dat,
            fanout_off,
            fanout_dat,
            seq_count,
        })
    }

    /// Detects cycles that pass through combinational nodes only.
    fn check_comb_cycles(&self) -> Result<(), BuildError> {
        // Iterative three-color DFS over comb-only edges.
        const WHITE: u8 = 0;
        const GRAY: u8 = 1;
        const BLACK: u8 = 2;
        let n = self.kinds.len();
        let mut color = vec![WHITE; n];
        let mut stack: Vec<(usize, usize)> = Vec::new();
        for start in 0..n {
            if color[start] != WHITE || !self.kinds[start].is_comb() {
                continue;
            }
            color[start] = GRAY;
            stack.push((start, 0));
            while let Some(top) = stack.last_mut() {
                let v = top.0;
                let ins = &self.fanin[v];
                if top.1 < ins.len() {
                    let u = ins[top.1].index();
                    top.1 += 1;
                    if !self.kinds[u].is_comb() {
                        continue;
                    }
                    match color[u] {
                        WHITE => {
                            color[u] = GRAY;
                            stack.push((u, 0));
                        }
                        GRAY => {
                            return Err(BuildError::CombinationalCycle {
                                witness: self.node_name(u),
                            });
                        }
                        _ => {}
                    }
                } else {
                    color[v] = BLACK;
                    stack.pop();
                }
            }
        }
        Ok(())
    }
}

/// Transposes a CSR fan-in adjacency into fan-out form (shared by the
/// builder and the snapshot loader).
pub(crate) fn transpose_csr(
    n: usize,
    fanin_off: &[u32],
    fanin_dat: &[NodeId],
) -> (Vec<u32>, Vec<NodeId>) {
    let mut fanout_cnt = vec![0u32; n];
    for from in fanin_dat {
        fanout_cnt[from.index()] += 1;
    }
    let mut fanout_off = Vec::with_capacity(n + 1);
    fanout_off.push(0u32);
    for c in &fanout_cnt {
        let last = *fanout_off.last().expect("non-empty offsets");
        fanout_off.push(last + c);
    }
    let mut fanout_dat = vec![NodeId(0); fanin_dat.len()];
    let mut cursor: Vec<u32> = fanout_off[..n].to_vec();
    for to in 0..n {
        let ins = &fanin_dat[fanin_off[to] as usize..fanin_off[to + 1] as usize];
        for from in ins {
            let c = &mut cursor[from.index()];
            fanout_dat[*c as usize] = NodeId::from_index(to);
            *c += 1;
        }
    }
    (fanout_off, fanout_dat)
}

/// An immutable, flattened RTL node graph.
///
/// See the [module documentation](self) for the data model.
#[derive(Debug, Clone)]
pub struct Netlist {
    design: String,
    symbols: SymbolTable,
    syms: Vec<Sym>,
    node_of_sym: Vec<u32>,
    kinds: Vec<NodeKind>,
    fub_of: Vec<FubId>,
    fubs: Vec<Sym>,
    structures: Vec<StructureDecl>,
    fanin_off: Vec<u32>,
    fanin_dat: Vec<NodeId>,
    fanout_off: Vec<u32>,
    fanout_dat: Vec<NodeId>,
    seq_count: usize,
}

impl Netlist {
    /// The design name.
    pub fn design_name(&self) -> &str {
        &self.design
    }

    /// The design's symbol table.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Total number of nodes.
    pub fn node_count(&self) -> usize {
        self.kinds.len()
    }

    /// Number of sequential (flop/latch) nodes.
    pub fn seq_count(&self) -> usize {
        self.seq_count
    }

    /// Iterates over all node ids in dense order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.kinds.len()).map(NodeId::from_index)
    }

    /// Iterates over the ids of all sequential nodes.
    pub fn seq_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(|&id| self.kind(id).is_sequential())
    }

    /// The kind of a node.
    pub fn kind(&self, id: NodeId) -> NodeKind {
        self.kinds[id.index()]
    }

    /// The hierarchical name of a node.
    pub fn name(&self, id: NodeId) -> &str {
        self.symbols.resolve(self.syms[id.index()])
    }

    /// The interned name symbol of a node.
    pub fn node_sym(&self, id: NodeId) -> Sym {
        self.syms[id.index()]
    }

    /// The FUB a node belongs to.
    pub fn fub(&self, id: NodeId) -> FubId {
        self.fub_of[id.index()]
    }

    /// Number of declared FUBs.
    pub fn fub_count(&self) -> usize {
        self.fubs.len()
    }

    /// The name of a FUB.
    pub fn fub_name(&self, id: FubId) -> &str {
        self.symbols.resolve(self.fubs[id.index()])
    }

    /// Iterates over all FUB ids.
    pub fn fub_ids(&self) -> impl Iterator<Item = FubId> {
        (0..self.fubs.len()).map(FubId::from_index)
    }

    /// Looks up a node by its hierarchical name.
    pub fn lookup(&self, name: &str) -> Option<NodeId> {
        self.symbols
            .lookup(name)
            .and_then(|sym| self.lookup_sym(sym))
    }

    /// Looks up a node by interned name.
    pub fn lookup_sym(&self, sym: Sym) -> Option<NodeId> {
        match self.node_of_sym.get(sym.index()) {
            Some(&id) if id != NO_NODE => Some(NodeId(id)),
            _ => None,
        }
    }

    /// The fan-in (driver) nodes of `id`, in connection order.
    pub fn fanin(&self, id: NodeId) -> &[NodeId] {
        let i = id.index();
        &self.fanin_dat[self.fanin_off[i] as usize..self.fanin_off[i + 1] as usize]
    }

    /// The fan-out (consumer) nodes of `id`.
    pub fn fanout(&self, id: NodeId) -> &[NodeId] {
        let i = id.index();
        &self.fanout_dat[self.fanout_off[i] as usize..self.fanout_off[i + 1] as usize]
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.fanin_dat.len()
    }

    /// Number of declared ACE structures.
    pub fn structure_count(&self) -> usize {
        self.structures.len()
    }

    /// The declaration of a structure.
    pub fn structure(&self, id: StructId) -> &StructureDecl {
        &self.structures[id.index()]
    }

    /// Iterates over all structure ids.
    pub fn structure_ids(&self) -> impl Iterator<Item = StructId> {
        (0..self.structures.len()).map(StructId::from_index)
    }

    /// Looks up a structure by name.
    pub fn lookup_structure(&self, name: &str) -> Option<StructId> {
        self.structures
            .iter()
            .position(|s| s.name == name)
            .map(StructId::from_index)
    }

    /// FNV-1a 64-bit digest of the graph's *semantic* content: design name,
    /// per-node names/kinds/FUBs, FUB names, structure declarations, and
    /// the fan-in adjacency. Two graphs compare [`PartialEq`]-equal exactly
    /// when their digests agree (modulo hash collisions); interner state
    /// that names no node (e.g. raw source tokens) does not contribute.
    ///
    /// The sweep-artifact cache keys on this digest, and the binary
    /// snapshot embeds it for integrity checking.
    pub fn content_digest(&self) -> u64 {
        let mut h = Fnv1a64::new();
        let mut scratch = Vec::with_capacity(16);
        h.update(self.design.as_bytes());
        h.update(&[0xFF]);
        h.update(&(self.kinds.len() as u64).to_le_bytes());
        for i in 0..self.kinds.len() {
            h.update(self.symbols.resolve(self.syms[i]).as_bytes());
            h.update(&[0]);
            scratch.clear();
            self.kinds[i].encode(&mut scratch);
            h.update(&scratch);
            h.update(&(self.fub_of[i].0).to_le_bytes());
        }
        h.update(&(self.fubs.len() as u64).to_le_bytes());
        for &f in &self.fubs {
            h.update(self.symbols.resolve(f).as_bytes());
            h.update(&[0]);
        }
        h.update(&(self.structures.len() as u64).to_le_bytes());
        for s in &self.structures {
            h.update(s.name.as_bytes());
            h.update(&[0]);
            h.update(&s.width.to_le_bytes());
            h.update(&(s.fub.0).to_le_bytes());
        }
        for off in &self.fanin_off {
            h.update(&off.to_le_bytes());
        }
        for from in &self.fanin_dat {
            h.update(&(from.0).to_le_bytes());
        }
        h.finish()
    }

    /// Per-FUB content digests for cross-run change detection (the
    /// `seqavf-fixpoint/1` warm-start artifact). Each FUB's digest covers
    /// everything that can change the walk behavior of *its* nodes:
    ///
    /// - the FUB name and, per node in dense-id order: the node name, its
    ///   kind (structure cells by structure *name*, width and bit — never
    ///   by index, which shifts under unrelated edits),
    /// - the node's loop membership (an edit elsewhere can thread a new
    ///   sequential feedback loop through an untouched FUB, changing its
    ///   nodes' roles — the flag makes that visible as a digest change),
    /// - the full fan-in *and* fan-out lists by node name. Fan-out names
    ///   matter because the backward walk reads fan-out annotations: a
    ///   removed cross-FUB consumer edge changes this FUB's backward
    ///   values while leaving its fan-ins untouched.
    ///
    /// Names, not ids, identify neighbours: node ids shift when unrelated
    /// FUBs grow or shrink, but an untouched FUB keeps its names, local
    /// order, and wiring — and therefore its digest.
    pub fn fub_digests(&self, loops: &LoopAnalysis) -> Vec<u64> {
        let mut hs: Vec<Fnv1a64> = self
            .fubs
            .iter()
            .map(|&f| {
                let mut h = Fnv1a64::new();
                h.update(self.symbols.resolve(f).as_bytes());
                h.update(&[0xFE]);
                h
            })
            .collect();
        for i in 0..self.kinds.len() {
            let id = NodeId::from_index(i);
            let h = &mut hs[self.fub_of[i].index()];
            h.update(self.symbols.resolve(self.syms[i]).as_bytes());
            h.update(&[0]);
            match self.kinds[i] {
                NodeKind::Input => h.update(&[1]),
                NodeKind::Output => h.update(&[2]),
                NodeKind::Seq { kind, has_enable } => {
                    h.update(&[
                        3,
                        match kind {
                            SeqKind::Flop => 0,
                            SeqKind::Latch => 1,
                        },
                        u8::from(has_enable),
                    ]);
                }
                NodeKind::Comb(op) => h.update(&[4, op.code()]),
                NodeKind::StructCell { structure, bit } => {
                    let decl = &self.structures[structure.index()];
                    h.update(&[5]);
                    h.update(decl.name.as_bytes());
                    h.update(&[0]);
                    h.update(&bit.to_le_bytes());
                    h.update(&decl.width.to_le_bytes());
                }
            }
            h.update(&[0x10 | u8::from(loops.is_loop_node(id))]);
            for &from in self.fanin(id) {
                h.update(self.symbols.resolve(self.syms[from.index()]).as_bytes());
                h.update(&[1]);
            }
            h.update(&[0xFD]);
            for &to in self.fanout(id) {
                h.update(self.symbols.resolve(self.syms[to.index()]).as_bytes());
                h.update(&[2]);
            }
            h.update(&[0xFC]);
        }
        hs.into_iter().map(|h| h.finish()).collect()
    }

    // Raw accessors used by the snapshot serializer (crate-private).
    #[allow(clippy::type_complexity)]
    pub(crate) fn raw_parts(
        &self,
    ) -> (
        &SymbolTable,
        &[Sym],
        &[NodeKind],
        &[FubId],
        &[Sym],
        &[StructureDecl],
        &[u32],
        &[NodeId],
    ) {
        (
            &self.symbols,
            &self.syms,
            &self.kinds,
            &self.fub_of,
            &self.fubs,
            &self.structures,
            &self.fanin_off,
            &self.fanin_dat,
        )
    }

    /// Reassembles a netlist from validated parts (snapshot load). The
    /// caller guarantees index validity; derived state (fan-out transpose,
    /// name index, sequential census, structure name strings) is rebuilt
    /// here.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_raw_parts(
        design: String,
        symbols: SymbolTable,
        syms: Vec<Sym>,
        kinds: Vec<NodeKind>,
        fub_of: Vec<FubId>,
        fubs: Vec<Sym>,
        structures: Vec<(Sym, u32, FubId, Vec<NodeId>)>,
        fanin_off: Vec<u32>,
        fanin_dat: Vec<NodeId>,
    ) -> Netlist {
        let n = kinds.len();
        let mut node_of_sym = vec![NO_NODE; symbols.len()];
        for (i, sym) in syms.iter().enumerate() {
            node_of_sym[sym.index()] = i as u32;
        }
        let (fanout_off, fanout_dat) = transpose_csr(n, &fanin_off, &fanin_dat);
        let seq_count = kinds.iter().filter(|k| k.is_sequential()).count();
        let structures = structures
            .into_iter()
            .map(|(sym, width, fub, cells)| StructureDecl {
                name: symbols.resolve(sym).to_owned(),
                sym,
                width,
                fub,
                cells,
            })
            .collect();
        Netlist {
            design,
            symbols,
            syms,
            node_of_sym,
            kinds,
            fub_of,
            fubs,
            structures,
            fanin_off,
            fanin_dat,
            fanout_off,
            fanout_dat,
            seq_count,
        }
    }
}

impl PartialEq for Netlist {
    /// Semantic graph equality: same design name, same nodes (name, kind,
    /// FUB) in the same order, same FUB and structure declarations, same
    /// fan-in adjacency. Interner bookkeeping (extra interned strings that
    /// name no node) is ignored.
    fn eq(&self, other: &Self) -> bool {
        self.design == other.design
            && self.kinds == other.kinds
            && self.fub_of == other.fub_of
            && self.fanin_off == other.fanin_off
            && self.fanin_dat == other.fanin_dat
            && self.structures == other.structures
            && self.syms.len() == other.syms.len()
            && self
                .syms
                .iter()
                .zip(&other.syms)
                .all(|(&a, &b)| self.symbols.resolve(a) == other.symbols.resolve(b))
            && self.fubs.len() == other.fubs.len()
            && self
                .fubs
                .iter()
                .zip(&other.fubs)
                .all(|(&a, &b)| self.symbols.resolve(a) == other.symbols.resolve(b))
    }
}

impl Eq for Netlist {}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> NetlistBuilder {
        let mut b = NetlistBuilder::new("t");
        let fub = b.add_fub("f0");
        let i = b.add_node("in", NodeKind::Input, fub);
        let g = b.add_node("g", NodeKind::Comb(GateOp::Not), fub);
        let q = b.add_node(
            "q",
            NodeKind::Seq {
                kind: SeqKind::Flop,
                has_enable: false,
            },
            fub,
        );
        let o = b.add_node("out", NodeKind::Output, fub);
        b.connect(i, g);
        b.connect(g, q);
        b.connect(q, o);
        b
    }

    #[test]
    fn build_and_query_roundtrip() {
        let nl = simple().finish().unwrap();
        assert_eq!(nl.node_count(), 4);
        assert_eq!(nl.seq_count(), 1);
        assert_eq!(nl.edge_count(), 3);
        let g = nl.lookup("g").unwrap();
        let q = nl.lookup("q").unwrap();
        assert_eq!(nl.fanin(q), &[g]);
        assert_eq!(nl.fanout(g), &[q]);
        assert_eq!(nl.name(q), "q");
        assert!(nl.kind(q).is_sequential());
        assert_eq!(nl.fub_name(nl.fub(q)), "f0");
        // Symbol round trip.
        assert_eq!(nl.lookup_sym(nl.node_sym(q)), Some(q));
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut b = NetlistBuilder::new("t");
        let fub = b.add_fub("f0");
        b.add_node("x", NodeKind::Input, fub);
        b.add_node("x", NodeKind::Input, fub);
        assert_eq!(
            b.finish().unwrap_err(),
            BuildError::DuplicateName("x".into())
        );
    }

    #[test]
    fn bad_gate_arity_rejected() {
        let mut b = NetlistBuilder::new("t");
        let fub = b.add_fub("f0");
        let i = b.add_node("i", NodeKind::Input, fub);
        let g = b.add_node("g", NodeKind::Comb(GateOp::And), fub);
        b.connect(i, g);
        assert!(matches!(
            b.finish().unwrap_err(),
            BuildError::BadArity { .. }
        ));
    }

    #[test]
    fn input_with_fanin_rejected() {
        let mut b = NetlistBuilder::new("t");
        let fub = b.add_fub("f0");
        let a = b.add_node("a", NodeKind::Input, fub);
        let c = b.add_node("c", NodeKind::Input, fub);
        b.connect(a, c);
        assert_eq!(
            b.finish().unwrap_err(),
            BuildError::InputHasFanin("c".into())
        );
    }

    #[test]
    fn comb_cycle_rejected() {
        let mut b = NetlistBuilder::new("t");
        let fub = b.add_fub("f0");
        let i = b.add_node("i", NodeKind::Input, fub);
        let g1 = b.add_node("g1", NodeKind::Comb(GateOp::And), fub);
        let g2 = b.add_node("g2", NodeKind::Comb(GateOp::Not), fub);
        b.connect(i, g1);
        b.connect(g2, g1);
        b.connect(g1, g2);
        assert!(matches!(
            b.finish().unwrap_err(),
            BuildError::CombinationalCycle { .. }
        ));
    }

    #[test]
    fn seq_cycle_allowed() {
        let mut b = NetlistBuilder::new("t");
        let fub = b.add_fub("f0");
        let q = b.add_node(
            "q",
            NodeKind::Seq {
                kind: SeqKind::Flop,
                has_enable: false,
            },
            fub,
        );
        let g = b.add_node("g", NodeKind::Comb(GateOp::Not), fub);
        b.connect(q, g);
        b.connect(g, q);
        assert!(b.finish().is_ok());
    }

    #[test]
    fn structure_cells_created_and_named() {
        let mut b = NetlistBuilder::new("t");
        let fub = b.add_fub("f0");
        let s = b.add_structure("rob", 4, fub);
        let nl = simple_with_struct(b, s);
        let decl = nl.structure(s);
        assert_eq!(decl.name(), "rob");
        assert_eq!(decl.width(), 4);
        assert_eq!(decl.cells().len(), 4);
        assert_eq!(nl.name(decl.cells()[2]), "rob[2]");
        assert_eq!(nl.lookup_structure("rob"), Some(s));
        assert!(nl.kind(decl.cells()[0]).is_struct_cell());
    }

    fn simple_with_struct(b: NetlistBuilder, _s: StructId) -> Netlist {
        b.finish().unwrap()
    }

    #[test]
    fn enabled_flop_requires_two_fanins() {
        let mut b = NetlistBuilder::new("t");
        let fub = b.add_fub("f0");
        let i = b.add_node("i", NodeKind::Input, fub);
        let q = b.add_node(
            "q",
            NodeKind::Seq {
                kind: SeqKind::Flop,
                has_enable: true,
            },
            fub,
        );
        b.connect(i, q);
        assert!(matches!(
            b.finish().unwrap_err(),
            BuildError::BadArity { .. }
        ));
    }

    #[test]
    fn gate_op_mnemonic_roundtrip() {
        for op in [
            GateOp::Buf,
            GateOp::Not,
            GateOp::And,
            GateOp::Or,
            GateOp::Nand,
            GateOp::Nor,
            GateOp::Xor,
            GateOp::Xnor,
            GateOp::Mux,
            GateOp::Const0,
            GateOp::Const1,
        ] {
            assert_eq!(GateOp::from_mnemonic(op.mnemonic()), Some(op));
            assert_eq!(GateOp::from_code(op.code()), Some(op));
        }
        assert_eq!(GateOp::from_mnemonic("zzz"), None);
        assert_eq!(GateOp::from_code(200), None);
    }

    #[test]
    fn fanout_matches_fanin_transpose() {
        let nl = simple().finish().unwrap();
        for id in nl.nodes() {
            for &to in nl.fanout(id) {
                assert!(nl.fanin(to).contains(&id));
            }
            for &from in nl.fanin(id) {
                assert!(nl.fanout(from).contains(&id));
            }
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId::from_index(7).to_string(), "n7");
        assert_eq!(FubId::from_index(2).to_string(), "fub2");
        assert_eq!(StructId::from_index(1).to_string(), "s1");
    }

    #[test]
    fn content_digest_tracks_semantics_not_interner_state() {
        let nl1 = simple().finish().unwrap();
        // Same graph built with extra junk interned first.
        let mut b = NetlistBuilder::new("t");
        b.symbols_mut().intern("unused_token");
        b.symbols_mut().intern("another_one");
        let fub = b.add_fub("f0");
        let i = b.add_node("in", NodeKind::Input, fub);
        let g = b.add_node("g", NodeKind::Comb(GateOp::Not), fub);
        let q = b.add_node(
            "q",
            NodeKind::Seq {
                kind: SeqKind::Flop,
                has_enable: false,
            },
            fub,
        );
        let o = b.add_node("out", NodeKind::Output, fub);
        b.connect(i, g);
        b.connect(g, q);
        b.connect(q, o);
        let nl2 = b.finish().unwrap();
        assert_eq!(nl1, nl2);
        assert_eq!(nl1.content_digest(), nl2.content_digest());

        // A one-gate change moves the digest.
        let mut b = simple();
        let fub = FubId::from_index(0);
        let extra = b.add_node("extra", NodeKind::Comb(GateOp::Not), fub);
        let q = b.lookup("q").unwrap();
        b.connect(q, extra);
        let nl3 = b.finish().unwrap();
        assert_ne!(nl1, nl3);
        assert_ne!(nl1.content_digest(), nl3.content_digest());
    }
}
