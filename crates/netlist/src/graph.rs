//! The flattened RTL node graph.
//!
//! A [`Netlist`] is a directed graph over typed nodes: primary inputs and
//! outputs (the RTL boundary of §4.1), sequential elements (flops and
//! latches), combinational gates, and *structure bit cells* — the storage
//! bits of ACE-modeled structures (§4). Structure cells are the sources and
//! sinks of port-AVF walks: a forward walk starts at a cell's fan-out (its
//! read port) and a backward walk starts at a cell's fan-in (its write port).
//!
//! The graph is immutable once built; construction goes through
//! [`NetlistBuilder`], which validates arity, name uniqueness, and the
//! absence of combinational cycles, then freezes adjacency into compact CSR
//! arrays suitable for designs with millions of nodes.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::BuildError;

/// Identifier of a node in a [`Netlist`]. Dense, 0-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a raw index.
    pub fn from_index(i: usize) -> Self {
        NodeId(u32::try_from(i).expect("node index exceeds u32 range"))
    }

    /// Returns the raw dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a functional block (FUB) in a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FubId(u16);

impl FubId {
    /// Creates a FUB id from a raw index.
    pub fn from_index(i: usize) -> Self {
        FubId(u16::try_from(i).expect("FUB index exceeds u16 range"))
    }

    /// Returns the raw dense index of this FUB.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FubId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fub{}", self.0)
    }
}

/// Identifier of an ACE-modeled structure declared in a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StructId(u32);

impl StructId {
    /// Creates a structure id from a raw index.
    pub fn from_index(i: usize) -> Self {
        StructId(u32::try_from(i).expect("structure index exceeds u32 range"))
    }

    /// Returns the raw dense index of this structure.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StructId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Kind of sequential element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SeqKind {
    /// Edge-triggered flip-flop.
    Flop,
    /// Level-sensitive latch.
    Latch,
}

/// Combinational gate operator.
///
/// The propagation analysis is function-agnostic (§4.1: "the function is not
/// of consequence"), but the gate-level simulator in `seqavf-sfi` evaluates
/// these operators, so the netlist records them faithfully.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GateOp {
    /// Identity buffer (1 input).
    Buf,
    /// Inverter (1 input).
    Not,
    /// Logical AND (2+ inputs).
    And,
    /// Logical OR (2+ inputs).
    Or,
    /// Logical NAND (2+ inputs).
    Nand,
    /// Logical NOR (2+ inputs).
    Nor,
    /// Logical XOR (2+ inputs).
    Xor,
    /// Logical XNOR (2+ inputs).
    Xnor,
    /// 2:1 multiplexer; fan-ins are `(select, if0, if1)` (exactly 3).
    Mux,
    /// Constant logic zero (0 inputs).
    Const0,
    /// Constant logic one (0 inputs).
    Const1,
}

impl GateOp {
    /// Lowercase mnemonic used in the EXLIF format.
    pub fn mnemonic(self) -> &'static str {
        match self {
            GateOp::Buf => "buf",
            GateOp::Not => "not",
            GateOp::And => "and",
            GateOp::Or => "or",
            GateOp::Nand => "nand",
            GateOp::Nor => "nor",
            GateOp::Xor => "xor",
            GateOp::Xnor => "xnor",
            GateOp::Mux => "mux",
            GateOp::Const0 => "const0",
            GateOp::Const1 => "const1",
        }
    }

    /// Parses a mnemonic as produced by [`GateOp::mnemonic`].
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        Some(match s {
            "buf" => GateOp::Buf,
            "not" => GateOp::Not,
            "and" => GateOp::And,
            "or" => GateOp::Or,
            "nand" => GateOp::Nand,
            "nor" => GateOp::Nor,
            "xor" => GateOp::Xor,
            "xnor" => GateOp::Xnor,
            "mux" => GateOp::Mux,
            "const0" => GateOp::Const0,
            "const1" => GateOp::Const1,
            _ => return None,
        })
    }

    /// Checks whether `n` fan-ins is a legal arity for this operator.
    pub fn arity_ok(self, n: usize) -> bool {
        match self {
            GateOp::Buf | GateOp::Not => n == 1,
            GateOp::Mux => n == 3,
            GateOp::Const0 | GateOp::Const1 => n == 0,
            _ => n >= 2,
        }
    }

    /// Human-readable description of the expected arity.
    pub fn arity_description(self) -> &'static str {
        match self {
            GateOp::Buf | GateOp::Not => "exactly 1",
            GateOp::Mux => "exactly 3",
            GateOp::Const0 | GateOp::Const1 => "exactly 0",
            _ => "2 or more",
        }
    }
}

impl fmt::Display for GateOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// The type of a node in the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// Primary input: a net entering the RTL under analysis. Walks terminate
    /// here (an "RTL boundary", §4.1); pseudo-structure pAVFs may be attached
    /// by the analysis.
    Input,
    /// Primary output: a net leaving the RTL under analysis.
    Output,
    /// A sequential element (flop or latch). When `has_enable` is true the
    /// *last* fan-in is the enable net; the remaining fan-in is data.
    Seq {
        /// Flop or latch.
        kind: SeqKind,
        /// Whether the element has a write-enable input.
        has_enable: bool,
    },
    /// A combinational gate.
    Comb(GateOp),
    /// One storage bit of an ACE-modeled structure. Fan-ins are its write
    /// port(s), fan-outs its read port(s).
    StructCell {
        /// The structure this cell belongs to.
        structure: StructId,
        /// Bit index within the structure.
        bit: u32,
    },
}

impl NodeKind {
    /// Whether this node is a flop or latch (the population whose AVF the
    /// paper computes).
    pub fn is_sequential(self) -> bool {
        matches!(self, NodeKind::Seq { .. })
    }

    /// Whether this node is a storage bit of an ACE structure.
    pub fn is_struct_cell(self) -> bool {
        matches!(self, NodeKind::StructCell { .. })
    }

    /// Whether this node is combinational logic.
    pub fn is_comb(self) -> bool {
        matches!(self, NodeKind::Comb(_))
    }

    /// Whether this node is a boundary (primary input or output).
    pub fn is_boundary(self) -> bool {
        matches!(self, NodeKind::Input | NodeKind::Output)
    }
}

/// Declaration of an ACE-modeled structure: a named bank of storage cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructureDecl {
    name: String,
    width: u32,
    fub: FubId,
    cells: Vec<NodeId>,
}

impl StructureDecl {
    /// The structure's name (e.g. `"rob"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of bit cells.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// FUB the structure's cells live in.
    pub fn fub(&self) -> FubId {
        self.fub
    }

    /// The node ids of the structure's bit cells, indexed by bit.
    pub fn cells(&self) -> &[NodeId] {
        &self.cells
    }
}

/// Incremental builder for a [`Netlist`].
///
/// All mutation happens here; [`NetlistBuilder::finish`] validates the graph
/// and freezes it.
#[derive(Debug, Clone)]
pub struct NetlistBuilder {
    design: String,
    names: Vec<String>,
    name_index: HashMap<String, NodeId>,
    kinds: Vec<NodeKind>,
    fub_of: Vec<FubId>,
    fanin: Vec<Vec<NodeId>>,
    fubs: Vec<String>,
    structures: Vec<StructureDecl>,
    duplicate: Option<String>,
}

impl NetlistBuilder {
    /// Starts a new empty design with the given name.
    pub fn new(design: impl Into<String>) -> Self {
        NetlistBuilder {
            design: design.into(),
            names: Vec::new(),
            name_index: HashMap::new(),
            kinds: Vec::new(),
            fub_of: Vec::new(),
            fanin: Vec::new(),
            fubs: Vec::new(),
            structures: Vec::new(),
            duplicate: None,
        }
    }

    /// Declares a functional block. Nodes reference FUBs by the returned id.
    pub fn add_fub(&mut self, name: impl Into<String>) -> FubId {
        let id = FubId::from_index(self.fubs.len());
        self.fubs.push(name.into());
        id
    }

    /// Adds a node of the given kind. Names must be unique design-wide;
    /// a duplicate is recorded and reported by [`NetlistBuilder::finish`].
    pub fn add_node(&mut self, name: impl Into<String>, kind: NodeKind, fub: FubId) -> NodeId {
        let name = name.into();
        let id = NodeId::from_index(self.kinds.len());
        if self.name_index.insert(name.clone(), id).is_some() && self.duplicate.is_none() {
            self.duplicate = Some(name.clone());
        }
        self.names.push(name);
        self.kinds.push(kind);
        self.fub_of.push(fub);
        self.fanin.push(Vec::new());
        id
    }

    /// Declares an ACE structure of `width` bits; creates cell nodes named
    /// `name[0]` … `name[width-1]`.
    pub fn add_structure(&mut self, name: impl Into<String>, width: u32, fub: FubId) -> StructId {
        let name = name.into();
        let sid = StructId::from_index(self.structures.len());
        let cells = (0..width)
            .map(|bit| {
                self.add_node(
                    format!("{name}[{bit}]"),
                    NodeKind::StructCell {
                        structure: sid,
                        bit,
                    },
                    fub,
                )
            })
            .collect();
        self.structures.push(StructureDecl {
            name,
            width,
            fub,
            cells,
        });
        sid
    }

    /// Returns the cell node for `structure[bit]`.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is out of range for the structure.
    pub fn structure_cell(&self, structure: StructId, bit: u32) -> NodeId {
        self.structures[structure.index()].cells[bit as usize]
    }

    /// Declared width of a structure.
    pub fn structure_width(&self, structure: StructId) -> u32 {
        self.structures[structure.index()].width
    }

    /// Adds a directed edge `from -> to` (i.e. `from` becomes a fan-in of
    /// `to`). For [`NodeKind::Seq`] nodes with an enable, connect the data
    /// net first and the enable net last.
    pub fn connect(&mut self, from: NodeId, to: NodeId) {
        self.fanin[to.index()].push(from);
    }

    /// Looks up a node by name.
    pub fn lookup(&self, name: &str) -> Option<NodeId> {
        self.name_index.get(name).copied()
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.kinds.len()
    }

    /// Validates and freezes the graph.
    ///
    /// # Errors
    ///
    /// Returns the first violation found among: duplicate names, dangling
    /// edge endpoints, gate/sequential arity, inputs with fan-in, and
    /// combinational cycles.
    pub fn finish(self) -> Result<Netlist, BuildError> {
        if let Some(name) = self.duplicate {
            return Err(BuildError::DuplicateName(name));
        }
        let n = self.kinds.len();
        // Arity and endpoint validation.
        for (i, ins) in self.fanin.iter().enumerate() {
            for from in ins {
                if from.index() >= n {
                    return Err(BuildError::UnknownNode(from.index() as u32));
                }
            }
            let found = ins.len();
            match self.kinds[i] {
                NodeKind::Input => {
                    if found != 0 {
                        return Err(BuildError::InputHasFanin(self.names[i].clone()));
                    }
                }
                NodeKind::Output => {
                    if found != 1 {
                        return Err(BuildError::BadArity {
                            node: self.names[i].clone(),
                            found,
                            expected: "exactly 1",
                        });
                    }
                }
                NodeKind::Seq { has_enable, .. } => {
                    let want = if has_enable { 2 } else { 1 };
                    if found != want {
                        return Err(BuildError::BadArity {
                            node: self.names[i].clone(),
                            found,
                            expected: if has_enable { "exactly 2" } else { "exactly 1" },
                        });
                    }
                }
                NodeKind::Comb(op) => {
                    if !op.arity_ok(found) {
                        return Err(BuildError::BadArity {
                            node: self.names[i].clone(),
                            found,
                            expected: op.arity_description(),
                        });
                    }
                }
                // Structure cells may have any number of write ports,
                // including zero (read-only architectural state).
                NodeKind::StructCell { .. } => {}
            }
        }
        self.check_comb_cycles()?;

        // Freeze adjacency into CSR form.
        let mut fanin_off = Vec::with_capacity(n + 1);
        let mut fanin_dat = Vec::new();
        fanin_off.push(0u32);
        for ins in &self.fanin {
            fanin_dat.extend_from_slice(ins);
            fanin_off.push(fanin_dat.len() as u32);
        }
        let mut fanout_cnt = vec![0u32; n];
        for ins in &self.fanin {
            for from in ins {
                fanout_cnt[from.index()] += 1;
            }
        }
        let mut fanout_off = Vec::with_capacity(n + 1);
        fanout_off.push(0u32);
        for c in &fanout_cnt {
            let last = *fanout_off.last().expect("non-empty offsets");
            fanout_off.push(last + c);
        }
        let mut fanout_dat = vec![NodeId(0); fanin_dat.len()];
        let mut cursor: Vec<u32> = fanout_off[..n].to_vec();
        for (to, ins) in self.fanin.iter().enumerate() {
            for from in ins {
                let c = &mut cursor[from.index()];
                fanout_dat[*c as usize] = NodeId::from_index(to);
                *c += 1;
            }
        }

        let seq_count = self.kinds.iter().filter(|k| k.is_sequential()).count();
        Ok(Netlist {
            design: self.design,
            names: self.names,
            name_index: self.name_index,
            kinds: self.kinds,
            fub_of: self.fub_of,
            fubs: self.fubs,
            structures: self.structures,
            fanin_off,
            fanin_dat,
            fanout_off,
            fanout_dat,
            seq_count,
        })
    }

    /// Detects cycles that pass through combinational nodes only.
    fn check_comb_cycles(&self) -> Result<(), BuildError> {
        // Iterative three-color DFS over comb-only edges.
        const WHITE: u8 = 0;
        const GRAY: u8 = 1;
        const BLACK: u8 = 2;
        let n = self.kinds.len();
        let mut color = vec![WHITE; n];
        let mut stack: Vec<(usize, usize)> = Vec::new();
        for start in 0..n {
            if color[start] != WHITE || !self.kinds[start].is_comb() {
                continue;
            }
            color[start] = GRAY;
            stack.push((start, 0));
            while let Some(top) = stack.last_mut() {
                let v = top.0;
                let ins = &self.fanin[v];
                if top.1 < ins.len() {
                    let u = ins[top.1].index();
                    top.1 += 1;
                    if !self.kinds[u].is_comb() {
                        continue;
                    }
                    match color[u] {
                        WHITE => {
                            color[u] = GRAY;
                            stack.push((u, 0));
                        }
                        GRAY => {
                            return Err(BuildError::CombinationalCycle {
                                witness: self.names[u].clone(),
                            });
                        }
                        _ => {}
                    }
                } else {
                    color[v] = BLACK;
                    stack.pop();
                }
            }
        }
        Ok(())
    }
}

/// An immutable, flattened RTL node graph.
///
/// See the [module documentation](self) for the data model.
#[derive(Debug, Clone)]
pub struct Netlist {
    design: String,
    names: Vec<String>,
    name_index: HashMap<String, NodeId>,
    kinds: Vec<NodeKind>,
    fub_of: Vec<FubId>,
    fubs: Vec<String>,
    structures: Vec<StructureDecl>,
    fanin_off: Vec<u32>,
    fanin_dat: Vec<NodeId>,
    fanout_off: Vec<u32>,
    fanout_dat: Vec<NodeId>,
    seq_count: usize,
}

impl Netlist {
    /// The design name.
    pub fn design_name(&self) -> &str {
        &self.design
    }

    /// Total number of nodes.
    pub fn node_count(&self) -> usize {
        self.kinds.len()
    }

    /// Number of sequential (flop/latch) nodes.
    pub fn seq_count(&self) -> usize {
        self.seq_count
    }

    /// Iterates over all node ids in dense order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.kinds.len()).map(NodeId::from_index)
    }

    /// Iterates over the ids of all sequential nodes.
    pub fn seq_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(|&id| self.kind(id).is_sequential())
    }

    /// The kind of a node.
    pub fn kind(&self, id: NodeId) -> NodeKind {
        self.kinds[id.index()]
    }

    /// The hierarchical name of a node.
    pub fn name(&self, id: NodeId) -> &str {
        &self.names[id.index()]
    }

    /// The FUB a node belongs to.
    pub fn fub(&self, id: NodeId) -> FubId {
        self.fub_of[id.index()]
    }

    /// Number of declared FUBs.
    pub fn fub_count(&self) -> usize {
        self.fubs.len()
    }

    /// The name of a FUB.
    pub fn fub_name(&self, id: FubId) -> &str {
        &self.fubs[id.index()]
    }

    /// Iterates over all FUB ids.
    pub fn fub_ids(&self) -> impl Iterator<Item = FubId> {
        (0..self.fubs.len()).map(FubId::from_index)
    }

    /// Looks up a node by its hierarchical name.
    pub fn lookup(&self, name: &str) -> Option<NodeId> {
        self.name_index.get(name).copied()
    }

    /// The fan-in (driver) nodes of `id`, in connection order.
    pub fn fanin(&self, id: NodeId) -> &[NodeId] {
        let i = id.index();
        &self.fanin_dat[self.fanin_off[i] as usize..self.fanin_off[i + 1] as usize]
    }

    /// The fan-out (consumer) nodes of `id`.
    pub fn fanout(&self, id: NodeId) -> &[NodeId] {
        let i = id.index();
        &self.fanout_dat[self.fanout_off[i] as usize..self.fanout_off[i + 1] as usize]
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.fanin_dat.len()
    }

    /// Number of declared ACE structures.
    pub fn structure_count(&self) -> usize {
        self.structures.len()
    }

    /// The declaration of a structure.
    pub fn structure(&self, id: StructId) -> &StructureDecl {
        &self.structures[id.index()]
    }

    /// Iterates over all structure ids.
    pub fn structure_ids(&self) -> impl Iterator<Item = StructId> {
        (0..self.structures.len()).map(StructId::from_index)
    }

    /// Looks up a structure by name.
    pub fn lookup_structure(&self, name: &str) -> Option<StructId> {
        self.structures
            .iter()
            .position(|s| s.name == name)
            .map(StructId::from_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> NetlistBuilder {
        let mut b = NetlistBuilder::new("t");
        let fub = b.add_fub("f0");
        let i = b.add_node("in", NodeKind::Input, fub);
        let g = b.add_node("g", NodeKind::Comb(GateOp::Not), fub);
        let q = b.add_node(
            "q",
            NodeKind::Seq {
                kind: SeqKind::Flop,
                has_enable: false,
            },
            fub,
        );
        let o = b.add_node("out", NodeKind::Output, fub);
        b.connect(i, g);
        b.connect(g, q);
        b.connect(q, o);
        b
    }

    #[test]
    fn build_and_query_roundtrip() {
        let nl = simple().finish().unwrap();
        assert_eq!(nl.node_count(), 4);
        assert_eq!(nl.seq_count(), 1);
        assert_eq!(nl.edge_count(), 3);
        let g = nl.lookup("g").unwrap();
        let q = nl.lookup("q").unwrap();
        assert_eq!(nl.fanin(q), &[g]);
        assert_eq!(nl.fanout(g), &[q]);
        assert_eq!(nl.name(q), "q");
        assert!(nl.kind(q).is_sequential());
        assert_eq!(nl.fub_name(nl.fub(q)), "f0");
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut b = NetlistBuilder::new("t");
        let fub = b.add_fub("f0");
        b.add_node("x", NodeKind::Input, fub);
        b.add_node("x", NodeKind::Input, fub);
        assert_eq!(
            b.finish().unwrap_err(),
            BuildError::DuplicateName("x".into())
        );
    }

    #[test]
    fn bad_gate_arity_rejected() {
        let mut b = NetlistBuilder::new("t");
        let fub = b.add_fub("f0");
        let i = b.add_node("i", NodeKind::Input, fub);
        let g = b.add_node("g", NodeKind::Comb(GateOp::And), fub);
        b.connect(i, g);
        assert!(matches!(
            b.finish().unwrap_err(),
            BuildError::BadArity { .. }
        ));
    }

    #[test]
    fn input_with_fanin_rejected() {
        let mut b = NetlistBuilder::new("t");
        let fub = b.add_fub("f0");
        let a = b.add_node("a", NodeKind::Input, fub);
        let c = b.add_node("c", NodeKind::Input, fub);
        b.connect(a, c);
        assert_eq!(
            b.finish().unwrap_err(),
            BuildError::InputHasFanin("c".into())
        );
    }

    #[test]
    fn comb_cycle_rejected() {
        let mut b = NetlistBuilder::new("t");
        let fub = b.add_fub("f0");
        let i = b.add_node("i", NodeKind::Input, fub);
        let g1 = b.add_node("g1", NodeKind::Comb(GateOp::And), fub);
        let g2 = b.add_node("g2", NodeKind::Comb(GateOp::Not), fub);
        b.connect(i, g1);
        b.connect(g2, g1);
        b.connect(g1, g2);
        assert!(matches!(
            b.finish().unwrap_err(),
            BuildError::CombinationalCycle { .. }
        ));
    }

    #[test]
    fn seq_cycle_allowed() {
        let mut b = NetlistBuilder::new("t");
        let fub = b.add_fub("f0");
        let q = b.add_node(
            "q",
            NodeKind::Seq {
                kind: SeqKind::Flop,
                has_enable: false,
            },
            fub,
        );
        let g = b.add_node("g", NodeKind::Comb(GateOp::Not), fub);
        b.connect(q, g);
        b.connect(g, q);
        assert!(b.finish().is_ok());
    }

    #[test]
    fn structure_cells_created_and_named() {
        let mut b = NetlistBuilder::new("t");
        let fub = b.add_fub("f0");
        let s = b.add_structure("rob", 4, fub);
        let nl = simple_with_struct(b, s);
        let decl = nl.structure(s);
        assert_eq!(decl.name(), "rob");
        assert_eq!(decl.width(), 4);
        assert_eq!(decl.cells().len(), 4);
        assert_eq!(nl.name(decl.cells()[2]), "rob[2]");
        assert_eq!(nl.lookup_structure("rob"), Some(s));
        assert!(nl.kind(decl.cells()[0]).is_struct_cell());
    }

    fn simple_with_struct(b: NetlistBuilder, _s: StructId) -> Netlist {
        b.finish().unwrap()
    }

    #[test]
    fn enabled_flop_requires_two_fanins() {
        let mut b = NetlistBuilder::new("t");
        let fub = b.add_fub("f0");
        let i = b.add_node("i", NodeKind::Input, fub);
        let q = b.add_node(
            "q",
            NodeKind::Seq {
                kind: SeqKind::Flop,
                has_enable: true,
            },
            fub,
        );
        b.connect(i, q);
        assert!(matches!(
            b.finish().unwrap_err(),
            BuildError::BadArity { .. }
        ));
    }

    #[test]
    fn gate_op_mnemonic_roundtrip() {
        for op in [
            GateOp::Buf,
            GateOp::Not,
            GateOp::And,
            GateOp::Or,
            GateOp::Nand,
            GateOp::Nor,
            GateOp::Xor,
            GateOp::Xnor,
            GateOp::Mux,
            GateOp::Const0,
            GateOp::Const1,
        ] {
            assert_eq!(GateOp::from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(GateOp::from_mnemonic("zzz"), None);
    }

    #[test]
    fn fanout_matches_fanin_transpose() {
        let nl = simple().finish().unwrap();
        for id in nl.nodes() {
            for &to in nl.fanout(id) {
                assert!(nl.fanin(to).contains(&id));
            }
            for &from in nl.fanin(id) {
                assert!(nl.fanout(from).contains(&id));
            }
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId::from_index(7).to_string(), "n7");
        assert_eq!(FubId::from_index(2).to_string(), "fub2");
        assert_eq!(StructId::from_index(1).to_string(), "s1");
    }
}
