//! Hierarchy expansion: turns a parsed [`DesignAst`] into a flat
//! [`Netlist`].
//!
//! The paper's flow compiles RTL into per-FUB EXLIF files and then "fully
//! expands each FUB module by instantiating all sub-circuits within that
//! module … with all hierarchy removed" (§5.1). This module performs that
//! expansion: every `.subckt` instance of a `.model` is inlined, with
//! internal nets renamed `fub.inst.net`, and formal input ports substituted
//! by the actual nets of the instantiating scope.

use std::collections::HashMap;

use crate::error::{ExlifError, ExlifErrorKind};
use crate::exlif::{self, DesignAst, ModelAst, Stmt};
use crate::graph::{FubId, Netlist, NetlistBuilder, NodeId, NodeKind, StructId};

/// A net reference captured during expansion, resolved after all
/// definitions are known (EXLIF allows forward references).
#[derive(Debug, Clone)]
struct Ref {
    scope: usize,
    raw: String,
}

#[derive(Debug)]
struct Scope {
    /// Absolute name prefix including trailing dot (e.g. `"f0."`,
    /// `"f0.u0."`). Empty only for the virtual design root.
    prefix: String,
    parent: Option<usize>,
    /// Formal input name → raw actual reference (resolved in `parent`).
    subst: HashMap<String, String>,
}

#[derive(Debug)]
enum FlatStmt {
    Output {
        node: NodeId,
        src: Ref,
    },
    Gate {
        node: NodeId,
        ins: Vec<Ref>,
    },
    Seq {
        node: NodeId,
        d: Ref,
        en: Option<Ref>,
    },
    StructWrite {
        structure: StructId,
        bit: u32,
        src: Ref,
    },
}

fn err0(kind: ExlifErrorKind) -> ExlifError {
    ExlifError { line: 0, kind }
}

/// Expands hierarchy and builds the flattened [`Netlist`] for a design.
///
/// # Errors
///
/// Reports undefined nets, unknown models/ports, recursive models,
/// out-of-range structure bits, and any graph-validation failure from
/// [`NetlistBuilder::finish`]. Semantic errors carry line number 0 (the AST
/// does not retain source positions) but name the offending entity.
pub fn build_netlist(ast: &DesignAst) -> Result<Netlist, ExlifError> {
    let models: HashMap<&str, &ModelAst> =
        ast.models.iter().map(|m| (m.name.as_str(), m)).collect();

    let mut builder = NetlistBuilder::new(ast.name.clone());
    let mut scopes: Vec<Scope> = Vec::new();
    let mut flat: Vec<FlatStmt> = Vec::new();
    let mut structs_by_name: HashMap<String, StructId> = HashMap::new();

    for fub_ast in &ast.fubs {
        let fub = builder.add_fub(fub_ast.name.clone());
        let scope = scopes.len();
        scopes.push(Scope {
            prefix: format!("{}.", fub_ast.name),
            parent: None,
            subst: HashMap::new(),
        });
        let mut model_stack: Vec<&str> = Vec::new();
        expand_stmts(
            &fub_ast.stmts,
            scope,
            fub,
            &models,
            &mut builder,
            &mut scopes,
            &mut flat,
            &mut structs_by_name,
            &mut model_stack,
        )?;
    }

    // Resolve references and connect.
    for stmt in &flat {
        match stmt {
            FlatStmt::Output { node, src } => {
                let s = resolve(&builder, &scopes, src)?;
                builder.connect(s, *node);
            }
            FlatStmt::Gate { node, ins } => {
                for r in ins {
                    let s = resolve(&builder, &scopes, r)?;
                    builder.connect(s, *node);
                }
            }
            FlatStmt::Seq { node, d, en } => {
                let s = resolve(&builder, &scopes, d)?;
                builder.connect(s, *node);
                if let Some(en) = en {
                    let e = resolve(&builder, &scopes, en)?;
                    builder.connect(e, *node);
                }
            }
            FlatStmt::StructWrite {
                structure,
                bit,
                src,
            } => {
                let cell = builder.structure_cell(*structure, *bit);
                let s = resolve(&builder, &scopes, src)?;
                builder.connect(s, cell);
            }
        }
    }

    builder.finish().map_err(|e| err0(e.into()))
}

/// Convenience: [`exlif::parse`] followed by [`build_netlist`].
pub fn parse_netlist(text: &str) -> Result<Netlist, ExlifError> {
    parse_netlist_traced(text, &seqavf_obs::Collector::disabled())
}

/// [`parse_netlist`] with observability: records a `netlist.parse` span
/// over the EXLIF parse and a `netlist.flatten` span over hierarchy
/// expansion, with design-size fields.
pub fn parse_netlist_traced(
    text: &str,
    obs: &seqavf_obs::Collector,
) -> Result<Netlist, ExlifError> {
    let ast = {
        let mut span = obs.span("netlist.parse");
        let ast = exlif::parse(text)?;
        span.field_str("frontend", "exlif");
        span.field_u64("models", ast.models.len() as u64);
        span.field_u64("fubs", ast.fubs.len() as u64);
        ast
    };
    let mut span = obs.span("netlist.flatten");
    let nl = build_netlist(&ast)?;
    span.field_u64("nodes", nl.node_count() as u64);
    span.field_u64("seq_nodes", nl.seq_count() as u64);
    span.field_u64("structures", nl.structure_count() as u64);
    Ok(nl)
}

#[allow(clippy::too_many_arguments)]
fn expand_stmts<'a>(
    stmts: &'a [Stmt],
    scope: usize,
    fub: FubId,
    models: &HashMap<&'a str, &'a ModelAst>,
    builder: &mut NetlistBuilder,
    scopes: &mut Vec<Scope>,
    flat: &mut Vec<FlatStmt>,
    structs_by_name: &mut HashMap<String, StructId>,
    model_stack: &mut Vec<&'a str>,
) -> Result<(), ExlifError> {
    for stmt in stmts {
        match stmt {
            Stmt::Input(name) => {
                let abs = format!("{}{}", scopes[scope].prefix, name);
                builder.add_node(abs, NodeKind::Input, fub);
            }
            Stmt::Output { name, src } => {
                let abs = format!("{}{}", scopes[scope].prefix, name);
                let node = builder.add_node(abs, NodeKind::Output, fub);
                flat.push(FlatStmt::Output {
                    node,
                    src: Ref {
                        scope,
                        raw: src.clone(),
                    },
                });
            }
            Stmt::Struct { name, width } => {
                let abs = format!("{}{}", scopes[scope].prefix, name);
                let sid = builder.add_structure(abs.clone(), *width, fub);
                structs_by_name.insert(abs, sid);
            }
            Stmt::StructWrite {
                structure,
                bit,
                src,
            } => {
                let abs = format!("{}{}", scopes[scope].prefix, structure);
                let sid = structs_by_name
                    .get(&abs)
                    .or_else(|| structs_by_name.get(structure.as_str()))
                    .copied()
                    .ok_or_else(|| err0(ExlifErrorKind::UndefinedNet(structure.clone())))?;
                let width = builder.structure_width(sid);
                if *bit >= width {
                    return Err(err0(ExlifErrorKind::Build(
                        crate::error::BuildError::StructBitOutOfRange {
                            structure: structure.clone(),
                            bit: *bit,
                            width,
                        },
                    )));
                }
                flat.push(FlatStmt::StructWrite {
                    structure: sid,
                    bit: *bit,
                    src: Ref {
                        scope,
                        raw: src.clone(),
                    },
                });
            }
            Stmt::Gate { op, out, ins } => {
                let abs = format!("{}{}", scopes[scope].prefix, out);
                let node = builder.add_node(abs, NodeKind::Comb(*op), fub);
                flat.push(FlatStmt::Gate {
                    node,
                    ins: ins
                        .iter()
                        .map(|i| Ref {
                            scope,
                            raw: i.clone(),
                        })
                        .collect(),
                });
            }
            Stmt::Seq { kind, out, d, en } => {
                let abs = format!("{}{}", scopes[scope].prefix, out);
                let node = builder.add_node(
                    abs,
                    NodeKind::Seq {
                        kind: *kind,
                        has_enable: en.is_some(),
                    },
                    fub,
                );
                flat.push(FlatStmt::Seq {
                    node,
                    d: Ref {
                        scope,
                        raw: d.clone(),
                    },
                    en: en.as_ref().map(|e| Ref {
                        scope,
                        raw: e.clone(),
                    }),
                });
            }
            Stmt::Subckt { model, inst, conns } => {
                let m = models
                    .get(model.as_str())
                    .ok_or_else(|| err0(ExlifErrorKind::UnknownModel(model.clone())))?;
                if model_stack.contains(&model.as_str()) {
                    return Err(err0(ExlifErrorKind::RecursiveModel(model.clone())));
                }
                let mut subst = HashMap::new();
                for (formal, actual) in conns {
                    if !m.inputs.iter().any(|i| i == formal) {
                        return Err(err0(ExlifErrorKind::UnknownPort {
                            model: model.clone(),
                            port: formal.clone(),
                        }));
                    }
                    subst.insert(formal.clone(), actual.clone());
                }
                let child = scopes.len();
                scopes.push(Scope {
                    prefix: format!("{}{}.", scopes[scope].prefix, inst),
                    parent: Some(scope),
                    subst,
                });
                model_stack.push(m.name.as_str());
                expand_stmts(
                    &m.stmts,
                    child,
                    fub,
                    models,
                    builder,
                    scopes,
                    flat,
                    structs_by_name,
                    model_stack,
                )?;
                model_stack.pop();
            }
        }
    }
    Ok(())
}

/// Resolves a reference: formal substitution first, then scope-local, then
/// design-global.
fn resolve(builder: &NetlistBuilder, scopes: &[Scope], r: &Ref) -> Result<NodeId, ExlifError> {
    let scope = &scopes[r.scope];
    if let Some(actual) = scope.subst.get(&r.raw) {
        let parent = scope.parent.expect("substitution implies a parent scope");
        return resolve(
            builder,
            scopes,
            &Ref {
                scope: parent,
                raw: actual.clone(),
            },
        );
    }
    let local = format!("{}{}", scope.prefix, r.raw);
    if let Some(id) = builder.lookup(&local) {
        return Ok(id);
    }
    if r.raw.contains('.') {
        if let Some(id) = builder.lookup(&r.raw) {
            return Ok(id);
        }
    }
    Err(err0(ExlifErrorKind::UndefinedNet(r.raw.clone())))
}

#[cfg(test)]
mod tests {
    use super::*;

    const HIER: &str = r"
.design hier
.model stage
  .minput d
  .moutput q
  .flop q d
.endmodel
.model twostage
  .minput d
  .moutput q
  .subckt stage s0 d=d
  .subckt stage s1 d=s0.q
  .gate buf q s1.q
.endmodel
.fub f0
  .input din
  .subckt twostage u d=din
  .output dout u.q
.endfub
.end
";

    #[test]
    fn nested_models_flatten() {
        let nl = parse_netlist(HIER).unwrap();
        // din, u.s0.q, u.s1.q, u.q (buf), dout
        assert_eq!(nl.node_count(), 5);
        assert_eq!(nl.seq_count(), 2);
        let q0 = nl.lookup("f0.u.s0.q").unwrap();
        let q1 = nl.lookup("f0.u.s1.q").unwrap();
        assert_eq!(nl.fanin(q1), &[q0]);
        let din = nl.lookup("f0.din").unwrap();
        assert_eq!(nl.fanin(q0), &[din]);
        let dout = nl.lookup("f0.dout").unwrap();
        let buf = nl.lookup("f0.u.q").unwrap();
        assert_eq!(nl.fanin(dout), &[buf]);
    }

    #[test]
    fn cross_fub_reference_resolves_globally() {
        let text = r"
.design x
.fub a
  .input i
  .flop q i
.endfub
.fub b
  .gate not g a.q
  .output o g
.endfub
.end
";
        let nl = parse_netlist(text).unwrap();
        let q = nl.lookup("a.q").unwrap();
        let g = nl.lookup("b.g").unwrap();
        assert_eq!(nl.fanin(g), &[q]);
        assert_ne!(nl.fub(q), nl.fub(g));
    }

    #[test]
    fn struct_write_and_read_connect() {
        let text = r"
.design x
.fub f
  .input i
  .struct st 2
  .sw st[0] i
  .gate buf r st[0]
  .output o r
.endfub
.end
";
        let nl = parse_netlist(text).unwrap();
        let sid = nl.lookup_structure("f.st").unwrap();
        let cell0 = nl.structure(sid).cells()[0];
        let i = nl.lookup("f.i").unwrap();
        assert_eq!(nl.fanin(cell0), &[i]);
        let r = nl.lookup("f.r").unwrap();
        assert_eq!(nl.fanin(r), &[cell0]);
    }

    #[test]
    fn undefined_net_reported() {
        let text = ".design x\n.fub f\n.gate not g nosuch\n.endfub\n.end\n";
        let e = parse_netlist(text).unwrap_err();
        assert!(matches!(e.kind, ExlifErrorKind::UndefinedNet(_)));
    }

    #[test]
    fn unknown_model_reported() {
        let text = ".design x\n.fub f\n.subckt nomodel u\n.endfub\n.end\n";
        let e = parse_netlist(text).unwrap_err();
        assert!(matches!(e.kind, ExlifErrorKind::UnknownModel(_)));
    }

    #[test]
    fn unknown_port_reported() {
        let text = r"
.design x
.model m
  .minput a
  .gate buf g a
.endmodel
.fub f
  .input i
  .subckt m u bogus=i
.endfub
.end
";
        let e = parse_netlist(text).unwrap_err();
        assert!(matches!(e.kind, ExlifErrorKind::UnknownPort { .. }));
    }

    #[test]
    fn recursive_model_reported() {
        let text = r"
.design x
.model m
  .minput a
  .subckt m u a=a
.endmodel
.fub f
  .input i
  .subckt m u a=i
.endfub
.end
";
        let e = parse_netlist(text).unwrap_err();
        assert!(matches!(e.kind, ExlifErrorKind::RecursiveModel(_)));
    }

    #[test]
    fn struct_bit_out_of_range_reported() {
        let text = ".design x\n.fub f\n.input i\n.struct s 2\n.sw s[5] i\n.endfub\n.end\n";
        let e = parse_netlist(text).unwrap_err();
        assert!(matches!(
            e.kind,
            ExlifErrorKind::Build(crate::error::BuildError::StructBitOutOfRange { .. })
        ));
    }

    #[test]
    fn writer_roundtrip_preserves_graph() {
        let nl = parse_netlist(HIER).unwrap();
        let text = crate::exlif::write(&nl);
        let nl2 = parse_netlist(&text).unwrap();
        assert_eq!(nl.node_count(), nl2.node_count());
        assert_eq!(nl.edge_count(), nl2.edge_count());
        assert_eq!(nl.seq_count(), nl2.seq_count());
        for id in nl.nodes() {
            let id2 = nl2.lookup(nl.name(id)).expect("name preserved");
            assert_eq!(nl.kind(id), nl2.kind(id2));
            let f1: Vec<_> = nl.fanin(id).iter().map(|&x| nl.name(x)).collect();
            let f2: Vec<_> = nl2.fanin(id2).iter().map(|&x| nl2.name(x)).collect();
            assert_eq!(f1, f2);
        }
    }
}
