//! Hierarchy expansion: turns a parsed [`DesignAst`] into a flat
//! [`Netlist`].
//!
//! The paper's flow compiles RTL into per-FUB EXLIF files and then "fully
//! expands each FUB module by instantiating all sub-circuits within that
//! module … with all hierarchy removed" (§5.1). This module performs that
//! expansion: every `.subckt` instance of a `.model` is inlined, with
//! internal nets renamed `fub.inst.net`, and formal input ports substituted
//! by the actual nets of the instantiating scope.
//!
//! # Parallel pipeline
//!
//! Flattening runs as four phases so that FUBs expand and references
//! resolve on worker threads while every identifier is interned exactly
//! once, and the output is bit-identical at any thread count:
//!
//! 1. **Expand (parallel, per FUB)** — walk each FUB's AST into a flat
//!    event list. Workers only read the parse-time [`SymbolTable`]; they
//!    never intern, so no synchronization is needed.
//! 2. **Merge (sequential, FUB order)** — replay the event lists in
//!    document order: intern hierarchical names, create nodes/structures,
//!    and resolve structure-write targets. All table mutation happens here,
//!    so symbol and node ids are independent of the thread count.
//! 3. **Resolve (parallel, chunked)** — look up every fan-in reference
//!    (substitution chain → scope-local → design-global). Pure reads.
//! 4. **Connect (sequential)** — surface the first error in document
//!    order, apply edges in order, and validate via
//!    [`NetlistBuilder::finish`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::error::{ExlifError, ExlifErrorKind};
use crate::exlif::{self, DesignAst, FubAst, ModelAst, Stmt};
use crate::graph::{FubId, GateOp, Netlist, NetlistBuilder, NodeId, NodeKind, SeqKind, StructId};
use crate::intern::{Sym, SymbolTable};

/// Maximum worker count picked by [`build_netlist`] when the caller does
/// not specify one.
const MAX_DEFAULT_THREADS: usize = 8;

/// Minimum estimated flat-statement count before
/// [`build_netlist_threaded`] engages worker threads. Below this the
/// spawn/join overhead of the expand and resolve phases exceeds the work
/// they split — BENCH_5 measured a 0.67× *slowdown* on the ~3k-node
/// reference design — so small ASTs take the sequential path.
const PARALLEL_WORK_THRESHOLD: usize = 20_000;

/// A scope recorded during expansion, local to one FUB's expansion.
#[derive(Debug)]
struct ScopeRec {
    /// Parent scope index within the same expansion (`None` for the FUB
    /// root).
    parent: Option<u32>,
    /// Instance name introducing this scope (`None` for the FUB root,
    /// whose prefix is the FUB name itself).
    inst: Option<Sym>,
    /// Formal input name → raw actual reference (resolved in `parent`).
    /// Later bindings of the same formal overwrite earlier ones.
    subst: Vec<(Sym, Sym)>,
}

/// One flattened statement, recorded in document order. `scope` indexes
/// the expansion-local scope list.
#[derive(Debug)]
enum Event {
    Input {
        scope: u32,
        name: Sym,
    },
    Output {
        scope: u32,
        name: Sym,
        src: Sym,
    },
    Struct {
        scope: u32,
        name: Sym,
        width: u32,
    },
    StructWrite {
        scope: u32,
        structure: Sym,
        bit: u32,
        src: Sym,
    },
    Gate {
        scope: u32,
        op: GateOp,
        out: Sym,
        ins: Vec<Sym>,
    },
    Seq {
        scope: u32,
        kind: SeqKind,
        out: Sym,
        d: Sym,
        en: Option<Sym>,
    },
}

/// Result of expanding one FUB on a worker.
#[derive(Debug)]
struct FubExpansion {
    scopes: Vec<ScopeRec>,
    events: Vec<Event>,
    /// First eager error (unknown model/port, recursive model). Expansion
    /// stops at the error, so every recorded event precedes it in document
    /// order — the merge phase replays events first and reports whichever
    /// failure comes first.
    err: Option<ExlifError>,
}

/// A scope after merging: prefix interned, parent index global.
#[derive(Debug)]
struct GlobalScope {
    /// Absolute name prefix including trailing dot (e.g. `"f0."`,
    /// `"f0.u0."`).
    prefix: Sym,
    parent: Option<usize>,
    subst: Vec<(Sym, Sym)>,
}

/// A net reference awaiting resolution (EXLIF allows forward references).
#[derive(Debug, Clone, Copy)]
struct Ref {
    /// Global scope index.
    scope: usize,
    raw: Sym,
}

/// A node plus its unresolved fan-in references, in connection order.
#[derive(Debug)]
struct FlatConn {
    node: NodeId,
    ins: Vec<Ref>,
}

fn err0(kind: ExlifErrorKind) -> ExlifError {
    ExlifError { line: 0, kind }
}

/// Expands hierarchy and builds the flattened [`Netlist`] for a design,
/// using up to [`available_parallelism`](std::thread::available_parallelism)
/// (capped at 8) worker threads. The result is bit-identical to
/// [`build_netlist_threaded`] at any other thread count.
///
/// # Errors
///
/// Reports undefined nets, unknown models/ports, recursive models,
/// out-of-range structure bits, and any graph-validation failure from
/// [`NetlistBuilder::finish`]. Semantic errors carry line number 0 (the AST
/// does not retain source positions) but name the offending entity.
pub fn build_netlist(ast: &DesignAst) -> Result<Netlist, ExlifError> {
    build_netlist_threaded(ast, default_threads())
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(MAX_DEFAULT_THREADS))
        .unwrap_or(1)
}

/// [`build_netlist`] with an explicit worker-thread count (`0` and `1`
/// both mean sequential). Output is bit-identical for every `threads`
/// value: node ids, symbol ids, edge order, and error selection are all
/// decided in the sequential merge/connect phases.
///
/// `threads` is a *ceiling*, not a demand: designs whose estimated flat
/// size falls below the parallel crossover run sequentially regardless
/// (see [`estimated_flat_stmts`]). Benchmarks and equivalence tests that
/// must exercise the parallel phases on small inputs use
/// [`build_netlist_threaded_exact`].
pub fn build_netlist_threaded(ast: &DesignAst, threads: usize) -> Result<Netlist, ExlifError> {
    let threads = if threads > 1 && estimated_flat_stmts(ast) < PARALLEL_WORK_THRESHOLD {
        1
    } else {
        threads
    };
    build_netlist_threaded_exact(ast, threads)
}

/// Estimates the design's flattened statement count without expanding it:
/// each model's expanded size is computed once (memoized) and then each
/// FUB sums its statements plus the expanded size of every `.subckt` it
/// instantiates. Recursive models are counted shallowly — flattening will
/// reject them anyway.
///
/// This drives the sequential-fallback decision in
/// [`build_netlist_threaded`], and is exported so benchmarks can report
/// which side of the crossover a design landed on.
pub fn estimated_flat_stmts(ast: &DesignAst) -> usize {
    let models: HashMap<Sym, &ModelAst> = ast.models.iter().map(|m| (m.name, m)).collect();
    let mut memo: HashMap<Sym, usize> = HashMap::new();
    let mut visiting: Vec<Sym> = Vec::new();
    ast.fubs
        .iter()
        .map(|f| stmts_work(&f.stmts, &models, &mut memo, &mut visiting))
        .sum()
}

fn stmts_work(
    stmts: &[Stmt],
    models: &HashMap<Sym, &ModelAst>,
    memo: &mut HashMap<Sym, usize>,
    visiting: &mut Vec<Sym>,
) -> usize {
    let mut total = stmts.len();
    for stmt in stmts {
        if let Stmt::Subckt { model, .. } = stmt {
            total += model_work(*model, models, memo, visiting);
        }
    }
    total
}

fn model_work(
    model: Sym,
    models: &HashMap<Sym, &ModelAst>,
    memo: &mut HashMap<Sym, usize>,
    visiting: &mut Vec<Sym>,
) -> usize {
    if let Some(&w) = memo.get(&model) {
        return w;
    }
    let Some(m) = models.get(&model).copied() else {
        return 0;
    };
    if visiting.contains(&model) {
        return 0;
    }
    visiting.push(model);
    let w = stmts_work(&m.stmts, models, memo, visiting);
    visiting.pop();
    memo.insert(model, w);
    w
}

/// [`build_netlist_threaded`] without the small-design sequential
/// fallback: the requested thread count is honoured exactly (clamped only
/// to the available work items). This is the hook for thread-equivalence
/// proptests and crossover benchmarks, which need the parallel phases to
/// actually run on arbitrarily small inputs.
pub fn build_netlist_threaded_exact(
    ast: &DesignAst,
    threads: usize,
) -> Result<Netlist, ExlifError> {
    let models: HashMap<Sym, &ModelAst> = ast.models.iter().map(|m| (m.name, m)).collect();

    // Phase 1: expand every FUB (parallel, read-only).
    let n_fubs = ast.fubs.len();
    let workers = threads.max(1).min(n_fubs.max(1));
    let mut expansions: Vec<Option<FubExpansion>> = (0..n_fubs).map(|_| None).collect();
    if workers <= 1 {
        for (i, fub) in ast.fubs.iter().enumerate() {
            expansions[i] = Some(expand_fub(fub, &models, &ast.symbols));
        }
    } else {
        let next = AtomicUsize::new(0);
        let models_ref = &models;
        let ast_ref = ast;
        let next_ref = &next;
        let collected: Vec<Vec<(usize, FubExpansion)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(move || {
                        let mut local = Vec::new();
                        loop {
                            let i = next_ref.fetch_add(1, Ordering::Relaxed);
                            if i >= n_fubs {
                                break;
                            }
                            local.push((
                                i,
                                expand_fub(&ast_ref.fubs[i], models_ref, &ast_ref.symbols),
                            ));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("flatten worker panicked"))
                .collect()
        });
        for (i, exp) in collected.into_iter().flatten() {
            expansions[i] = Some(exp);
        }
    }

    // Phase 2: merge (sequential). All interning and id assignment lives
    // here, which is what makes the pipeline thread-count-invariant.
    let mut builder = NetlistBuilder::with_symbols(ast.name.clone(), ast.symbols.clone());
    let mut scopes: Vec<GlobalScope> = Vec::new();
    let mut flat: Vec<FlatConn> = Vec::new();
    let mut structs_by_sym: HashMap<Sym, StructId> = HashMap::new();
    for (fub_idx, slot) in expansions.iter_mut().enumerate() {
        let exp = slot.take().expect("every FUB expanded");
        let fub_ast = &ast.fubs[fub_idx];
        let fub = builder.add_fub_sym(fub_ast.name);
        let base = scopes.len();
        for rec in exp.scopes {
            let (prefix, parent) = match rec.inst {
                None => (
                    builder.symbols_mut().intern_prefix(None, fub_ast.name),
                    None,
                ),
                Some(inst) => {
                    let parent = base + rec.parent.expect("child scope has a parent") as usize;
                    let parent_prefix = scopes[parent].prefix;
                    (
                        builder
                            .symbols_mut()
                            .intern_prefix(Some(parent_prefix), inst),
                        Some(parent),
                    )
                }
            };
            scopes.push(GlobalScope {
                prefix,
                parent,
                subst: rec.subst,
            });
        }
        replay_events(
            exp.events,
            base,
            fub,
            &mut builder,
            &scopes,
            &mut flat,
            &mut structs_by_sym,
        )?;
        // Worker errors come after every replayed event in document order.
        if let Some(e) = exp.err {
            return Err(e);
        }
    }

    // Phase 3: resolve references (parallel, read-only).
    let mut resolved: Vec<Option<Result<Vec<NodeId>, ExlifError>>> =
        (0..flat.len()).map(|_| None).collect();
    let workers = threads.max(1).min(flat.len().max(1));
    if workers <= 1 {
        for (conn, out) in flat.iter().zip(resolved.iter_mut()) {
            *out = Some(resolve_conn(&builder, &scopes, conn));
        }
    } else {
        let chunk = flat.len().div_ceil(workers);
        let builder_ref = &builder;
        let scopes_ref = &scopes;
        std::thread::scope(|s| {
            for (fslice, rslice) in flat.chunks(chunk).zip(resolved.chunks_mut(chunk)) {
                s.spawn(move || {
                    for (conn, out) in fslice.iter().zip(rslice.iter_mut()) {
                        *out = Some(resolve_conn(builder_ref, scopes_ref, conn));
                    }
                });
            }
        });
    }

    // Phase 4: first error in document order wins; connect in order.
    for (conn, res) in flat.iter().zip(resolved) {
        let ids = res.expect("every connection resolved")?;
        for id in ids {
            builder.connect(id, conn.node);
        }
    }
    builder.finish().map_err(|e| err0(e.into()))
}

/// Phase-1 worker: expands one FUB into scope records and events without
/// touching the symbol table.
fn expand_fub(
    fub: &FubAst,
    models: &HashMap<Sym, &ModelAst>,
    symbols: &SymbolTable,
) -> FubExpansion {
    let mut exp = FubExpansion {
        scopes: vec![ScopeRec {
            parent: None,
            inst: None,
            subst: Vec::new(),
        }],
        events: Vec::new(),
        err: None,
    };
    let mut model_stack: Vec<Sym> = Vec::new();
    if let Err(e) = expand_stmts(&fub.stmts, 0, models, symbols, &mut exp, &mut model_stack) {
        exp.err = Some(e);
    }
    exp
}

fn expand_stmts(
    stmts: &[Stmt],
    scope: u32,
    models: &HashMap<Sym, &ModelAst>,
    symbols: &SymbolTable,
    exp: &mut FubExpansion,
    model_stack: &mut Vec<Sym>,
) -> Result<(), ExlifError> {
    for stmt in stmts {
        match stmt {
            Stmt::Input(name) => exp.events.push(Event::Input { scope, name: *name }),
            Stmt::Output { name, src } => exp.events.push(Event::Output {
                scope,
                name: *name,
                src: *src,
            }),
            Stmt::Struct { name, width } => exp.events.push(Event::Struct {
                scope,
                name: *name,
                width: *width,
            }),
            Stmt::StructWrite {
                structure,
                bit,
                src,
            } => exp.events.push(Event::StructWrite {
                scope,
                structure: *structure,
                bit: *bit,
                src: *src,
            }),
            Stmt::Gate { op, out, ins } => exp.events.push(Event::Gate {
                scope,
                op: *op,
                out: *out,
                ins: ins.clone(),
            }),
            Stmt::Seq { kind, out, d, en } => exp.events.push(Event::Seq {
                scope,
                kind: *kind,
                out: *out,
                d: *d,
                en: *en,
            }),
            Stmt::Subckt { model, inst, conns } => {
                let m = models.get(model).ok_or_else(|| {
                    err0(ExlifErrorKind::UnknownModel(
                        symbols.resolve(*model).to_owned(),
                    ))
                })?;
                if model_stack.contains(model) {
                    return Err(err0(ExlifErrorKind::RecursiveModel(
                        symbols.resolve(*model).to_owned(),
                    )));
                }
                let mut subst: Vec<(Sym, Sym)> = Vec::with_capacity(conns.len());
                for &(formal, actual) in conns {
                    if !m.inputs.contains(&formal) {
                        return Err(err0(ExlifErrorKind::UnknownPort {
                            model: symbols.resolve(*model).to_owned(),
                            port: symbols.resolve(formal).to_owned(),
                        }));
                    }
                    match subst.iter_mut().find(|(f, _)| *f == formal) {
                        Some(entry) => entry.1 = actual,
                        None => subst.push((formal, actual)),
                    }
                }
                let child = u32::try_from(exp.scopes.len()).expect("scope count fits u32");
                exp.scopes.push(ScopeRec {
                    parent: Some(scope),
                    inst: Some(*inst),
                    subst,
                });
                model_stack.push(*model);
                expand_stmts(&m.stmts, child, models, symbols, exp, model_stack)?;
                model_stack.pop();
            }
        }
    }
    Ok(())
}

/// Phase-2 replay: creates nodes and structures for one FUB's events in
/// document order.
fn replay_events(
    events: Vec<Event>,
    base: usize,
    fub: FubId,
    builder: &mut NetlistBuilder,
    scopes: &[GlobalScope],
    flat: &mut Vec<FlatConn>,
    structs_by_sym: &mut HashMap<Sym, StructId>,
) -> Result<(), ExlifError> {
    for ev in events {
        match ev {
            Event::Input { scope, name } => {
                let prefix = scopes[base + scope as usize].prefix;
                let abs = builder.symbols_mut().intern_join(prefix, name);
                builder.add_node_sym(abs, NodeKind::Input, fub);
            }
            Event::Output { scope, name, src } => {
                let gscope = base + scope as usize;
                let abs = builder
                    .symbols_mut()
                    .intern_join(scopes[gscope].prefix, name);
                let node = builder.add_node_sym(abs, NodeKind::Output, fub);
                flat.push(FlatConn {
                    node,
                    ins: vec![Ref {
                        scope: gscope,
                        raw: src,
                    }],
                });
            }
            Event::Struct { scope, name, width } => {
                let prefix = scopes[base + scope as usize].prefix;
                let abs = builder.symbols_mut().intern_join(prefix, name);
                let sid = builder.add_structure_sym(abs, width, fub);
                structs_by_sym.insert(abs, sid);
            }
            Event::StructWrite {
                scope,
                structure,
                bit,
                src,
            } => {
                let gscope = base + scope as usize;
                let abs = builder
                    .symbols()
                    .lookup_join(scopes[gscope].prefix, structure);
                let sid = abs
                    .and_then(|a| structs_by_sym.get(&a))
                    .or_else(|| structs_by_sym.get(&structure))
                    .copied()
                    .ok_or_else(|| {
                        err0(ExlifErrorKind::UndefinedNet(
                            builder.symbols().resolve(structure).to_owned(),
                        ))
                    })?;
                let width = builder.structure_width(sid);
                if bit >= width {
                    return Err(err0(ExlifErrorKind::Build(
                        crate::error::BuildError::StructBitOutOfRange {
                            structure: builder.symbols().resolve(structure).to_owned(),
                            bit,
                            width,
                        },
                    )));
                }
                let cell = builder.structure_cell(sid, bit);
                flat.push(FlatConn {
                    node: cell,
                    ins: vec![Ref {
                        scope: gscope,
                        raw: src,
                    }],
                });
            }
            Event::Gate {
                scope,
                op,
                out,
                ins,
            } => {
                let gscope = base + scope as usize;
                let abs = builder
                    .symbols_mut()
                    .intern_join(scopes[gscope].prefix, out);
                let node = builder.add_node_sym(abs, NodeKind::Comb(op), fub);
                flat.push(FlatConn {
                    node,
                    ins: ins
                        .into_iter()
                        .map(|raw| Ref { scope: gscope, raw })
                        .collect(),
                });
            }
            Event::Seq {
                scope,
                kind,
                out,
                d,
                en,
            } => {
                let gscope = base + scope as usize;
                let abs = builder
                    .symbols_mut()
                    .intern_join(scopes[gscope].prefix, out);
                let node = builder.add_node_sym(
                    abs,
                    NodeKind::Seq {
                        kind,
                        has_enable: en.is_some(),
                    },
                    fub,
                );
                let mut ins = vec![Ref {
                    scope: gscope,
                    raw: d,
                }];
                if let Some(en) = en {
                    ins.push(Ref {
                        scope: gscope,
                        raw: en,
                    });
                }
                flat.push(FlatConn { node, ins });
            }
        }
    }
    Ok(())
}

/// Phase-3 worker: resolves one node's fan-in references (pure reads).
fn resolve_conn(
    builder: &NetlistBuilder,
    scopes: &[GlobalScope],
    conn: &FlatConn,
) -> Result<Vec<NodeId>, ExlifError> {
    conn.ins
        .iter()
        .map(|r| resolve_ref(builder, scopes, r.scope, r.raw))
        .collect()
}

/// Resolves a reference: formal substitution first (walking up the scope
/// chain), then scope-local, then design-global. Misses never intern.
fn resolve_ref(
    builder: &NetlistBuilder,
    scopes: &[GlobalScope],
    mut scope: usize,
    mut raw: Sym,
) -> Result<NodeId, ExlifError> {
    loop {
        let sc = &scopes[scope];
        match sc.subst.iter().find(|(f, _)| *f == raw) {
            Some(&(_, actual)) => {
                scope = sc.parent.expect("substitution implies a parent scope");
                raw = actual;
            }
            None => break,
        }
    }
    let sc = &scopes[scope];
    if let Some(abs) = builder.symbols().lookup_join(sc.prefix, raw) {
        if let Some(id) = builder.lookup_sym(abs) {
            return Ok(id);
        }
    }
    let raw_str = builder.symbols().resolve(raw);
    if raw_str.contains('.') {
        if let Some(id) = builder.lookup_sym(raw) {
            return Ok(id);
        }
    }
    Err(err0(ExlifErrorKind::UndefinedNet(raw_str.to_owned())))
}

/// Convenience: [`exlif::parse`] followed by [`build_netlist`].
pub fn parse_netlist(text: &str) -> Result<Netlist, ExlifError> {
    parse_netlist_traced(text, &seqavf_obs::Collector::disabled())
}

/// [`parse_netlist`] with observability: records a `frontend.parse` span
/// over the EXLIF parse and a `frontend.flatten` span over hierarchy
/// expansion, with design-size fields.
pub fn parse_netlist_traced(
    text: &str,
    obs: &seqavf_obs::Collector,
) -> Result<Netlist, ExlifError> {
    let ast = {
        let mut span = obs.span("frontend.parse");
        let ast = exlif::parse(text)?;
        span.field_str("frontend", "exlif");
        span.field_u64("models", ast.models.len() as u64);
        span.field_u64("fubs", ast.fubs.len() as u64);
        span.field_u64("symbols", ast.symbols.len() as u64);
        ast
    };
    let mut span = obs.span("frontend.flatten");
    let nl = build_netlist(&ast)?;
    span.field_u64("nodes", nl.node_count() as u64);
    span.field_u64("seq_nodes", nl.seq_count() as u64);
    span.field_u64("structures", nl.structure_count() as u64);
    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;

    const HIER: &str = r"
.design hier
.model stage
  .minput d
  .moutput q
  .flop q d
.endmodel
.model twostage
  .minput d
  .moutput q
  .subckt stage s0 d=d
  .subckt stage s1 d=s0.q
  .gate buf q s1.q
.endmodel
.fub f0
  .input din
  .subckt twostage u d=din
  .output dout u.q
.endfub
.end
";

    #[test]
    fn nested_models_flatten() {
        let nl = parse_netlist(HIER).unwrap();
        // din, u.s0.q, u.s1.q, u.q (buf), dout
        assert_eq!(nl.node_count(), 5);
        assert_eq!(nl.seq_count(), 2);
        let q0 = nl.lookup("f0.u.s0.q").unwrap();
        let q1 = nl.lookup("f0.u.s1.q").unwrap();
        assert_eq!(nl.fanin(q1), &[q0]);
        let din = nl.lookup("f0.din").unwrap();
        assert_eq!(nl.fanin(q0), &[din]);
        let dout = nl.lookup("f0.dout").unwrap();
        let buf = nl.lookup("f0.u.q").unwrap();
        assert_eq!(nl.fanin(dout), &[buf]);
    }

    #[test]
    fn thread_counts_are_bit_identical() {
        let ast = exlif::parse(HIER).unwrap();
        let n1 = build_netlist_threaded_exact(&ast, 1).unwrap();
        let n2 = build_netlist_threaded_exact(&ast, 2).unwrap();
        let n8 = build_netlist_threaded_exact(&ast, 8).unwrap();
        assert_eq!(n1, n2);
        assert_eq!(n1, n8);
        assert_eq!(n1.content_digest(), n8.content_digest());
        // Node ids, not just content, must match.
        for id in n1.nodes() {
            assert_eq!(n1.name(id), n8.name(id));
        }
    }

    #[test]
    fn work_estimate_counts_model_expansion() {
        let ast = exlif::parse(HIER).unwrap();
        // f0: 3 own statements; twostage expands to 3 + 2×(stage = 1).
        let est = estimated_flat_stmts(&ast);
        assert_eq!(est, 3 + 3 + 2);
        // Well under the crossover, so the threaded entry point must
        // clamp to the sequential path — and still match exactly.
        assert!(est < PARALLEL_WORK_THRESHOLD);
        let clamped = build_netlist_threaded(&ast, 8).unwrap();
        let seq = build_netlist_threaded_exact(&ast, 1).unwrap();
        assert_eq!(clamped, seq);
    }

    #[test]
    fn work_estimate_survives_recursive_models() {
        let text = r"
.design x
.model m
  .minput a
  .subckt m u a=a
.endmodel
.fub f
  .input i
  .subckt m u a=i
.endfub
.end
";
        let ast = exlif::parse(text).unwrap();
        // Recursive models count shallowly instead of diverging.
        assert!(estimated_flat_stmts(&ast) < 10);
    }

    #[test]
    fn cross_fub_reference_resolves_globally() {
        let text = r"
.design x
.fub a
  .input i
  .flop q i
.endfub
.fub b
  .gate not g a.q
  .output o g
.endfub
.end
";
        let nl = parse_netlist(text).unwrap();
        let q = nl.lookup("a.q").unwrap();
        let g = nl.lookup("b.g").unwrap();
        assert_eq!(nl.fanin(g), &[q]);
        assert_ne!(nl.fub(q), nl.fub(g));
    }

    #[test]
    fn struct_write_and_read_connect() {
        let text = r"
.design x
.fub f
  .input i
  .struct st 2
  .sw st[0] i
  .gate buf r st[0]
  .output o r
.endfub
.end
";
        let nl = parse_netlist(text).unwrap();
        let sid = nl.lookup_structure("f.st").unwrap();
        let cell0 = nl.structure(sid).cells()[0];
        let i = nl.lookup("f.i").unwrap();
        assert_eq!(nl.fanin(cell0), &[i]);
        let r = nl.lookup("f.r").unwrap();
        assert_eq!(nl.fanin(r), &[cell0]);
    }

    #[test]
    fn undefined_net_reported() {
        let text = ".design x\n.fub f\n.gate not g nosuch\n.endfub\n.end\n";
        let e = parse_netlist(text).unwrap_err();
        assert!(matches!(e.kind, ExlifErrorKind::UndefinedNet(_)));
    }

    #[test]
    fn unknown_model_reported() {
        let text = ".design x\n.fub f\n.subckt nomodel u\n.endfub\n.end\n";
        let e = parse_netlist(text).unwrap_err();
        assert!(matches!(e.kind, ExlifErrorKind::UnknownModel(_)));
    }

    #[test]
    fn unknown_port_reported() {
        let text = r"
.design x
.model m
  .minput a
  .gate buf g a
.endmodel
.fub f
  .input i
  .subckt m u bogus=i
.endfub
.end
";
        let e = parse_netlist(text).unwrap_err();
        assert!(matches!(e.kind, ExlifErrorKind::UnknownPort { .. }));
    }

    #[test]
    fn recursive_model_reported() {
        let text = r"
.design x
.model m
  .minput a
  .subckt m u a=a
.endmodel
.fub f
  .input i
  .subckt m u a=i
.endfub
.end
";
        let e = parse_netlist(text).unwrap_err();
        assert!(matches!(e.kind, ExlifErrorKind::RecursiveModel(_)));
    }

    #[test]
    fn struct_bit_out_of_range_reported() {
        let text = ".design x\n.fub f\n.input i\n.struct s 2\n.sw s[5] i\n.endfub\n.end\n";
        let e = parse_netlist(text).unwrap_err();
        assert!(matches!(
            e.kind,
            ExlifErrorKind::Build(crate::error::BuildError::StructBitOutOfRange { .. })
        ));
    }

    #[test]
    fn writer_roundtrip_preserves_graph() {
        let nl = parse_netlist(HIER).unwrap();
        let text = crate::exlif::write(&nl);
        let nl2 = parse_netlist(&text).unwrap();
        assert_eq!(nl.node_count(), nl2.node_count());
        assert_eq!(nl.edge_count(), nl2.edge_count());
        assert_eq!(nl.seq_count(), nl2.seq_count());
        for id in nl.nodes() {
            let id2 = nl2.lookup(nl.name(id)).expect("name preserved");
            assert_eq!(nl.kind(id), nl2.kind(id2));
            let f1: Vec<_> = nl.fanin(id).iter().map(|&x| nl.name(x)).collect();
            let f2: Vec<_> = nl2.fanin(id2).iter().map(|&x| nl2.name(x)).collect();
            assert_eq!(f1, f2);
        }
    }
}
