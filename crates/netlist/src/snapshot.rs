//! `seqavf-graph/2` — a versioned binary snapshot of a flattened graph.
//!
//! Parsing, flattening, synthesis and SCC detection are pure functions of
//! the source text; the snapshot caches their combined result so repeated
//! analyses of the same design skip the frontend entirely. The format is:
//!
//! ```text
//! magic    b"seqavf-graph/2\n"
//! digest   u64 LE   — semantic content digest (Netlist::content_digest)
//! sections tag u8, len u64 LE, payload — in fixed order:
//!            8 HEADER  varint node/edge/FUB/structure/symbol/loop counts
//!            1 DESIGN  design name bytes
//!            2 SYMS    symbol heap (one contiguous slice) + varint spans
//!            3 NODES   per-node name syms, FUB ids, kinds (varint/delta)
//!            4 FUBS    FUB name syms (varint/delta)
//!            5 STRUCTS structure decls + cell node ids (varint/delta)
//!            6 EDGES   fan-in CSR (delta-varint offsets, local-delta ids)
//!            7 LOOPS   SCC component node lists (varint/delta)
//! trailer  u64 LE   — WideFnv64 over every preceding byte
//! ```
//!
//! Version 2 replaces v1's fixed-width arrays with LEB128 varints and
//! delta coding chosen for the data's shape: CSR offsets are monotone (the
//! per-node fan-in degree is a tiny varint), fan-in ids are mostly local
//! (zigzag of `from - to` is one byte for neighbours), node name symbols
//! are interned in near-ascending order, and FUB labels arrive in long
//! runs. Together these make the snapshot *smaller* than the EXLIF source
//! it caches (v1 was 1.7× larger). FUB indices are serialized at full
//! `u32` width — v1's `u16` fields silently truncated designs with more
//! than 65,535 FUBs, which production-scale multi-core designs exceed.
//!
//! The leading HEADER section carries every section's element count, so
//! the loader allocates each vector — and the symbol table's hash index —
//! exactly once before touching any payload; the symbol heap is restored
//! with a single bulk copy.
//!
//! Loading is defensive end to end: every length and index is bounds
//! checked, header counts are sanity-bounded by the file size before any
//! allocation, the trailer checksum is verified before any section is
//! parsed, and the content digest is recomputed from the rebuilt graph
//! and compared against the header. Any mismatch yields a
//! [`SnapshotError`] — never a panic — so callers degrade to a recompute
//! exactly like a sweep-cache miss. Old `seqavf-graph/1` files are
//! rejected up front with [`SnapshotError::UnsupportedVersion`].

use std::fmt;

use crate::graph::{FubId, GateOp, Netlist, NodeId, NodeKind, SeqKind, StructId};
use crate::intern::{Sym, SymbolTable, WideFnv64};
use crate::scc::LoopAnalysis;

/// Format magic, bumped whenever the layout changes.
pub const MAGIC: &[u8] = b"seqavf-graph/2\n";

/// Shared prefix of every snapshot version's magic; anything carrying it
/// but not [`MAGIC`] is a snapshot from another format version.
const MAGIC_FAMILY: &[u8] = b"seqavf-graph/";

/// Magic of the companion warm-start artifact: the converged relaxation
/// fixpoint stored alongside a graph snapshot (`seqavf-fixpoint/1`). The
/// payload is encoded by `seqavf-core` (it stores arena sets and walk
/// annotations the netlist crate has no types for), but the envelope —
/// magic, version gating, whole-file checksum — is this module's, shared
/// through [`seal`] and [`open_sealed`] so every on-disk artifact family
/// degrades identically on corruption.
pub const FIXPOINT_MAGIC: &[u8] = b"seqavf-fixpoint/1\n";

/// Version-family prefix of [`FIXPOINT_MAGIC`].
pub const FIXPOINT_MAGIC_FAMILY: &[u8] = b"seqavf-fixpoint/";

const TAG_DESIGN: u8 = 1;
const TAG_SYMS: u8 = 2;
const TAG_NODES: u8 = 3;
const TAG_FUBS: u8 = 4;
const TAG_STRUCTS: u8 = 5;
const TAG_EDGES: u8 = 6;
const TAG_LOOPS: u8 = 7;
const TAG_HEADER: u8 = 8;

/// Why a snapshot could not be loaded. All variants are recoverable — the
/// caller recomputes from source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file does not start with the `seqavf-graph/` magic family
    /// (wrong file entirely).
    BadMagic,
    /// The file is a snapshot, but of a different format version (e.g. a
    /// stale `seqavf-graph/1` cache entry). Rebuild and re-save.
    UnsupportedVersion,
    /// The whole-file checksum trailer does not match (truncation or
    /// corruption).
    ChecksumMismatch,
    /// A section or field extends past the end of the file.
    Truncated,
    /// A section appeared with an unexpected tag.
    BadSection(u8),
    /// The symbol table failed validation (bad span, UTF-8, or duplicate).
    BadSymbolTable,
    /// A node/FUB/structure/edge index is out of range or inconsistent.
    BadIndex,
    /// The rebuilt graph's content digest differs from the header.
    DigestMismatch,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a seqavf-graph snapshot"),
            SnapshotError::UnsupportedVersion => {
                write!(f, "unsupported snapshot version (expected seqavf-graph/2)")
            }
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadSection(t) => write!(f, "unexpected snapshot section tag {t}"),
            SnapshotError::BadSymbolTable => write!(f, "snapshot symbol table invalid"),
            SnapshotError::BadIndex => write!(f, "snapshot index out of range"),
            SnapshotError::DigestMismatch => write!(f, "snapshot content digest mismatch"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Appends a fixed-width little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// LEB128: 7 value bits per byte, high bit = continuation.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Zigzag-maps a signed delta onto the varint-friendly unsigned range.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends `zigzag(cur - prev)` — the workhorse of the delta-coded
/// sections (symbol ids, FUB runs, cell and loop member lists).
pub fn put_delta(out: &mut Vec<u8>, prev: usize, cur: usize) {
    put_varint(out, zigzag(cur as i64 - prev as i64));
}

/// Appends a tagged, length-prefixed section.
pub fn put_section(out: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    out.push(tag);
    put_u64(out, payload.len() as u64);
    out.extend_from_slice(payload);
}

/// Appends the whole-file [`WideFnv64`] checksum trailer. The final step
/// of writing any artifact in the snapshot family.
pub fn seal(out: &mut Vec<u8>) {
    let mut h = WideFnv64::new();
    h.update(out);
    put_u64(out, h.finish());
}

/// Validates the envelope of a sealed artifact — exact magic, version
/// family, and the whole-file checksum trailer — and returns the body
/// between magic and trailer. Shared by the graph snapshot and the
/// fixpoint artifact so corruption degrades to the same recoverable
/// errors everywhere.
pub fn open_sealed<'a>(
    bytes: &'a [u8],
    magic: &[u8],
    family: &[u8],
) -> Result<&'a [u8], SnapshotError> {
    if bytes.len() < magic.len() + 8 {
        return Err(if bytes.starts_with(magic) || magic.starts_with(bytes) {
            SnapshotError::Truncated
        } else if bytes.starts_with(family) {
            SnapshotError::UnsupportedVersion
        } else {
            SnapshotError::BadMagic
        });
    }
    if &bytes[..magic.len()] != magic {
        return Err(if bytes.starts_with(family) {
            SnapshotError::UnsupportedVersion
        } else {
            SnapshotError::BadMagic
        });
    }
    let body = &bytes[..bytes.len() - 8];
    let mut h = WideFnv64::new();
    h.update(body);
    let trailer_bytes: [u8; 8] = match bytes[bytes.len() - 8..].try_into() {
        Ok(b) => b,
        Err(_) => return Err(SnapshotError::Truncated),
    };
    if h.finish() != u64::from_le_bytes(trailer_bytes) {
        return Err(SnapshotError::ChecksumMismatch);
    }
    Ok(&body[magic.len()..])
}

/// Every section's element count, written first so the loader can size
/// every allocation before decoding any payload.
struct Header {
    nodes: usize,
    edges: usize,
    fubs: usize,
    structs: usize,
    syms: usize,
    sym_bytes: usize,
    loop_components: usize,
}

/// Serializes a graph and its loop analysis into snapshot bytes.
pub fn save(nl: &Netlist, loops: &LoopAnalysis) -> Vec<u8> {
    let (symbols, syms, kinds, fub_of, fubs, structures, fanin_off, fanin_dat) = nl.raw_parts();
    let (buf, spans) = symbols.raw();
    let mut out = Vec::with_capacity(buf.len() + fanin_dat.len() * 2 + kinds.len() * 4 + 256);
    out.extend_from_slice(MAGIC);
    put_u64(&mut out, nl.content_digest());

    let mut p = Vec::new();
    for count in [
        kinds.len(),
        fanin_dat.len(),
        fubs.len(),
        structures.len(),
        spans.len(),
        buf.len(),
        loops.components().len(),
    ] {
        put_varint(&mut p, count as u64);
    }
    put_section(&mut out, TAG_HEADER, &p);

    put_section(&mut out, TAG_DESIGN, nl.design_name().as_bytes());

    // SYMS: the heap in one contiguous slice, then per-symbol spans as
    // (start delta from the end of the previous span, length). Freshly
    // interned tables are densely packed, so the start delta is almost
    // always zero — one byte.
    let mut p = Vec::with_capacity(buf.len() + spans.len() * 2);
    p.extend_from_slice(buf);
    let mut expected_start = 0u64;
    for &(start, len) in spans {
        put_varint(&mut p, zigzag(i64::from(start) - expected_start as i64));
        put_varint(&mut p, u64::from(len));
        expected_start = u64::from(start) + u64::from(len);
    }
    put_section(&mut out, TAG_SYMS, &p);

    // NODES: name symbols delta-coded (interning order tracks node order),
    // FUB ids delta-coded (long runs of the same FUB), then kinds with
    // varint structure/bit fields.
    let mut p = Vec::with_capacity(kinds.len() * 3);
    let mut prev = 0usize;
    for s in syms {
        put_delta(&mut p, prev, s.index());
        prev = s.index();
    }
    let mut prev = 0usize;
    for f in fub_of {
        put_delta(&mut p, prev, f.index());
        prev = f.index();
    }
    for k in kinds {
        encode_kind(&mut p, *k);
    }
    put_section(&mut out, TAG_NODES, &p);

    let mut p = Vec::new();
    let mut prev = 0usize;
    for f in fubs {
        put_delta(&mut p, prev, f.index());
        prev = f.index();
    }
    put_section(&mut out, TAG_FUBS, &p);

    // STRUCTS: cell lists are consecutive node-id runs, so the cell delta
    // is one byte per cell. The cell count is the width — not repeated.
    let mut p = Vec::new();
    for s in structures {
        put_varint(&mut p, s.sym().index() as u64);
        put_varint(&mut p, u64::from(s.width()));
        put_varint(&mut p, s.fub().index() as u64);
        let mut prev = 0usize;
        for c in s.cells() {
            put_delta(&mut p, prev, c.index());
            prev = c.index();
        }
    }
    put_section(&mut out, TAG_STRUCTS, &p);

    // EDGES: the monotone CSR offsets become per-node degrees (tiny
    // varints); fan-in ids become zigzag deltas against the consuming
    // node — mostly-local wiring compresses to a byte per edge.
    let mut p = Vec::with_capacity(fanin_dat.len() + fanin_off.len());
    for w in fanin_off.windows(2) {
        put_varint(&mut p, u64::from(w[1] - w[0]));
    }
    for (to, w) in fanin_off.windows(2).enumerate() {
        for from in &fanin_dat[w[0] as usize..w[1] as usize] {
            put_varint(&mut p, zigzag(from.index() as i64 - to as i64));
        }
    }
    put_section(&mut out, TAG_EDGES, &p);

    let mut p = Vec::new();
    for c in loops.components() {
        put_varint(&mut p, c.len() as u64);
        let mut prev = 0usize;
        for m in c {
            put_delta(&mut p, prev, m.index());
            prev = m.index();
        }
    }
    put_section(&mut out, TAG_LOOPS, &p);

    let mut h = WideFnv64::new();
    h.update(&out);
    put_u64(&mut out, h.finish());
    out
}

fn encode_kind(out: &mut Vec<u8>, kind: NodeKind) {
    match kind {
        NodeKind::Input => out.push(0),
        NodeKind::Output => out.push(1),
        NodeKind::Seq { kind, has_enable } => {
            out.push(2);
            out.push(match kind {
                SeqKind::Flop => 0,
                SeqKind::Latch => 1,
            });
            out.push(u8::from(has_enable));
        }
        NodeKind::Comb(op) => {
            out.push(3);
            out.push(op.code());
        }
        NodeKind::StructCell { structure, bit } => {
            out.push(4);
            put_varint(out, structure.index() as u64);
            put_varint(out, u64::from(bit));
        }
    }
}

/// Bounds-checked reader over one section (or the whole body). Every
/// accessor returns a recoverable [`SnapshotError`] instead of panicking,
/// so artifact loaders can stay defensive end to end.
pub struct Cursor<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Wraps a byte slice.
    pub fn new(b: &'a [u8]) -> Self {
        Cursor { b, pos: 0 }
    }

    /// Takes the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        let s = self.b.get(self.pos..end).ok_or(SnapshotError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    /// Remaining unread bytes.
    pub fn remaining(&self) -> usize {
        self.b.len() - self.pos
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a fixed-width little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a LEB128 varint, rejecting non-canonical overlong encodings.
    pub fn varint(&mut self) -> Result<u64, SnapshotError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift >= 63 && b > 1 {
                // A canonical u64 never needs more than 9 full bytes and a
                // one-bit tail; anything longer is corruption.
                return Err(SnapshotError::BadIndex);
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// A zigzag varint delta applied to `prev`, bounds-checked into
    /// `0..limit`.
    pub fn delta_index(&mut self, prev: usize, limit: usize) -> Result<usize, SnapshotError> {
        let d = unzigzag(self.varint()?);
        let v = (prev as i64)
            .checked_add(d)
            .ok_or(SnapshotError::BadIndex)?;
        if v < 0 || v as usize >= limit {
            return Err(SnapshotError::BadIndex);
        }
        Ok(v as usize)
    }

    /// Enters the next tagged, length-prefixed section.
    pub fn section(&mut self, tag: u8) -> Result<Cursor<'a>, SnapshotError> {
        let t = self.u8()?;
        if t != tag {
            return Err(SnapshotError::BadSection(t));
        }
        let len = self.u64()?;
        let len = usize::try_from(len).map_err(|_| SnapshotError::Truncated)?;
        Ok(Cursor::new(self.take(len)?))
    }

    /// Whether every byte has been consumed.
    pub fn at_end(&self) -> bool {
        self.pos == self.b.len()
    }
}

fn decode_kind(c: &mut Cursor<'_>, struct_count: usize) -> Result<NodeKind, SnapshotError> {
    Ok(match c.u8()? {
        0 => NodeKind::Input,
        1 => NodeKind::Output,
        2 => {
            let kind = match c.u8()? {
                0 => SeqKind::Flop,
                1 => SeqKind::Latch,
                _ => return Err(SnapshotError::BadIndex),
            };
            let has_enable = match c.u8()? {
                0 => false,
                1 => true,
                _ => return Err(SnapshotError::BadIndex),
            };
            NodeKind::Seq { kind, has_enable }
        }
        3 => NodeKind::Comb(GateOp::from_code(c.u8()?).ok_or(SnapshotError::BadIndex)?),
        4 => {
            let structure = usize::try_from(c.varint()?).map_err(|_| SnapshotError::BadIndex)?;
            let bit = u32::try_from(c.varint()?).map_err(|_| SnapshotError::BadIndex)?;
            if structure >= struct_count {
                return Err(SnapshotError::BadIndex);
            }
            NodeKind::StructCell {
                structure: StructId::from_index(structure),
                bit,
            }
        }
        _ => return Err(SnapshotError::BadIndex),
    })
}

impl Header {
    /// Decodes the HEADER section and sanity-bounds every count against
    /// the file size — each element costs at least one payload byte, so a
    /// count exceeding the byte budget is corruption, caught *before* any
    /// `with_capacity` allocation could amplify it.
    fn decode(s: &mut Cursor<'_>, budget: usize) -> Result<Header, SnapshotError> {
        let mut counts = [0usize; 7];
        for c in &mut counts {
            let v = usize::try_from(s.varint()?).map_err(|_| SnapshotError::Truncated)?;
            if v > budget {
                return Err(SnapshotError::Truncated);
            }
            *c = v;
        }
        if !s.at_end() {
            return Err(SnapshotError::BadIndex);
        }
        let [nodes, edges, fubs, structs, syms, sym_bytes, loop_components] = counts;
        Ok(Header {
            nodes,
            edges,
            fubs,
            structs,
            syms,
            sym_bytes,
            loop_components,
        })
    }
}

/// Deserializes snapshot bytes back into a graph and its loop analysis.
///
/// # Errors
///
/// Returns a [`SnapshotError`] for any malformed input — wrong magic or
/// version, failed checksum, truncation, invalid indices, or a digest that
/// does not match the rebuilt graph. Corruption never panics.
pub fn load(bytes: &[u8]) -> Result<(Netlist, LoopAnalysis), SnapshotError> {
    if bytes.len() < MAGIC.len() + 16 {
        return Err(if bytes.starts_with(MAGIC) || MAGIC.starts_with(bytes) {
            SnapshotError::Truncated
        } else if bytes.starts_with(MAGIC_FAMILY) {
            SnapshotError::UnsupportedVersion
        } else {
            SnapshotError::BadMagic
        });
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(if bytes.starts_with(MAGIC_FAMILY) {
            SnapshotError::UnsupportedVersion
        } else {
            SnapshotError::BadMagic
        });
    }
    // Verify the whole-file checksum before trusting any section length.
    let body = &bytes[..bytes.len() - 8];
    let mut h = WideFnv64::new();
    h.update(body);
    // The length guard above makes this slice exactly 8 bytes, but a
    // resident server cannot afford a panic path on untrusted input —
    // degrade to a checksum error instead.
    let trailer_bytes: [u8; 8] = match bytes[bytes.len() - 8..].try_into() {
        Ok(b) => b,
        Err(_) => return Err(SnapshotError::Truncated),
    };
    let trailer = u64::from_le_bytes(trailer_bytes);
    if h.finish() != trailer {
        return Err(SnapshotError::ChecksumMismatch);
    }

    let mut c = Cursor::new(&body[MAGIC.len()..]);
    let header_digest = c.u64()?;

    let mut s = c.section(TAG_HEADER)?;
    let hdr = Header::decode(&mut s, bytes.len())?;

    let mut s = c.section(TAG_DESIGN)?;
    let design = std::str::from_utf8(s.take(s.b.len())?)
        .map_err(|_| SnapshotError::BadSymbolTable)?
        .to_owned();

    // SYMS: the heap restores with one bulk copy; the span vector and the
    // table's hash index are sized once from the header.
    let mut s = c.section(TAG_SYMS)?;
    let buf = s.take(hdr.sym_bytes)?.to_vec();
    let mut spans = Vec::with_capacity(hdr.syms);
    let mut expected_start = 0i64;
    for _ in 0..hdr.syms {
        let start = expected_start
            .checked_add(unzigzag(s.varint()?))
            .ok_or(SnapshotError::BadIndex)?;
        let len = s.varint()?;
        let start = u32::try_from(start).map_err(|_| SnapshotError::BadSymbolTable)?;
        let len = u32::try_from(len).map_err(|_| SnapshotError::BadSymbolTable)?;
        spans.push((start, len));
        expected_start = i64::from(start) + i64::from(len);
    }
    if !s.at_end() {
        return Err(SnapshotError::BadIndex);
    }
    let symbols = SymbolTable::from_raw(buf, spans).ok_or(SnapshotError::BadSymbolTable)?;

    let mut s = c.section(TAG_NODES)?;
    let mut node_syms = Vec::with_capacity(hdr.nodes);
    let mut sym_seen = vec![false; symbols.len()];
    let mut prev = 0usize;
    for _ in 0..hdr.nodes {
        let i = s.delta_index(prev, symbols.len())?;
        if sym_seen[i] {
            // Two nodes sharing a name.
            return Err(SnapshotError::BadIndex);
        }
        sym_seen[i] = true;
        node_syms.push(Sym::from_index(i));
        prev = i;
    }
    let mut fub_of = Vec::with_capacity(hdr.nodes);
    let mut prev = 0usize;
    for _ in 0..hdr.nodes {
        let i = s.delta_index(prev, hdr.fubs)?;
        fub_of.push(FubId::from_index(i));
        prev = i;
    }
    let mut kinds = Vec::with_capacity(hdr.nodes);
    for _ in 0..hdr.nodes {
        kinds.push(decode_kind(&mut s, hdr.structs)?);
    }
    if !s.at_end() {
        return Err(SnapshotError::BadIndex);
    }

    let mut s = c.section(TAG_FUBS)?;
    let mut fubs = Vec::with_capacity(hdr.fubs);
    let mut prev = 0usize;
    for _ in 0..hdr.fubs {
        let i = s.delta_index(prev, symbols.len())?;
        fubs.push(Sym::from_index(i));
        prev = i;
    }
    if !s.at_end() {
        return Err(SnapshotError::BadIndex);
    }

    let mut s = c.section(TAG_STRUCTS)?;
    let mut structures = Vec::with_capacity(hdr.structs);
    for _ in 0..hdr.structs {
        let sym_i = usize::try_from(s.varint()?).map_err(|_| SnapshotError::BadIndex)?;
        let width = u32::try_from(s.varint()?).map_err(|_| SnapshotError::BadIndex)?;
        let fub_i = usize::try_from(s.varint()?).map_err(|_| SnapshotError::BadIndex)?;
        if sym_i >= symbols.len() || fub_i >= hdr.fubs {
            return Err(SnapshotError::BadIndex);
        }
        if width as usize > hdr.nodes {
            return Err(SnapshotError::BadIndex);
        }
        let mut cells = Vec::with_capacity(width as usize);
        let mut prev = 0usize;
        for _ in 0..width {
            let i = s.delta_index(prev, hdr.nodes)?;
            cells.push(NodeId::from_index(i));
            prev = i;
        }
        structures.push((
            Sym::from_index(sym_i),
            width,
            FubId::from_index(fub_i),
            cells,
        ));
    }
    if !s.at_end() {
        return Err(SnapshotError::BadIndex);
    }

    let mut s = c.section(TAG_EDGES)?;
    let mut fanin_off = Vec::with_capacity(hdr.nodes + 1);
    fanin_off.push(0u32);
    let mut total = 0u64;
    for _ in 0..hdr.nodes {
        total += s.varint()?;
        if total > hdr.edges as u64 {
            return Err(SnapshotError::BadIndex);
        }
        fanin_off.push(total as u32);
    }
    if total != hdr.edges as u64 {
        return Err(SnapshotError::BadIndex);
    }
    let mut fanin_dat = Vec::with_capacity(hdr.edges);
    for (to, w) in fanin_off.windows(2).enumerate() {
        for _ in w[0]..w[1] {
            let i = s.delta_index(to, hdr.nodes)?;
            fanin_dat.push(NodeId::from_index(i));
        }
    }
    if !s.at_end() {
        return Err(SnapshotError::BadIndex);
    }

    let mut s = c.section(TAG_LOOPS)?;
    let mut components = Vec::with_capacity(hdr.loop_components);
    for _ in 0..hdr.loop_components {
        let len = usize::try_from(s.varint()?).map_err(|_| SnapshotError::BadIndex)?;
        if len > hdr.nodes {
            return Err(SnapshotError::BadIndex);
        }
        let mut comp = Vec::with_capacity(len);
        let mut prev = 0usize;
        for _ in 0..len {
            let i = s.delta_index(prev, hdr.nodes)?;
            comp.push(NodeId::from_index(i));
            prev = i;
        }
        components.push(comp);
    }
    if !s.at_end() || !c.at_end() {
        return Err(SnapshotError::BadIndex);
    }

    let nl = Netlist::from_raw_parts(
        design, symbols, node_syms, kinds, fub_of, fubs, structures, fanin_off, fanin_dat,
    );
    if nl.content_digest() != header_digest {
        return Err(SnapshotError::DigestMismatch);
    }
    let loops = LoopAnalysis::from_parts(&nl, components).ok_or(SnapshotError::BadIndex)?;
    Ok((nl, loops))
}

impl Netlist {
    /// [`save`] as a method.
    pub fn to_snapshot(&self, loops: &LoopAnalysis) -> Vec<u8> {
        save(self, loops)
    }

    /// [`load`] as an associated function.
    pub fn from_snapshot(bytes: &[u8]) -> Result<(Netlist, LoopAnalysis), SnapshotError> {
        load(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flatten::parse_netlist;
    use crate::scc::find_loops;

    const DESIGN: &str = r"
.design snap
.model stage
  .minput d
  .moutput q
  .flop q d
.endmodel
.fub f0
  .input din
  .struct st 3
  .gate and g1 din st[0]
  .flop q1 g1
  .gate not fb q1
  .flop q2 fb
  .gate buf loopg q2
  .sw st[1] q1
  .subckt stage u0 d=q1
  .output dout u0.q
.endfub
.fub f1
  .gate xor g2 f0.q1 f0.din
  .flop q3 g2 g2
  .output o g2
.endfub
.end
";

    fn build() -> (Netlist, LoopAnalysis) {
        let nl = parse_netlist(DESIGN).unwrap();
        let loops = find_loops(&nl);
        (nl, loops)
    }

    #[test]
    fn roundtrip_is_equal() {
        let (nl, loops) = build();
        let bytes = save(&nl, &loops);
        let (nl2, loops2) = load(&bytes).unwrap();
        assert_eq!(nl, nl2);
        assert_eq!(nl.content_digest(), nl2.content_digest());
        assert_eq!(nl.design_name(), nl2.design_name());
        assert_eq!(nl.edge_count(), nl2.edge_count());
        assert_eq!(nl.seq_count(), nl2.seq_count());
        for id in nl.nodes() {
            assert_eq!(nl.name(id), nl2.name(id));
            assert_eq!(nl.kind(id), nl2.kind(id));
            assert_eq!(nl.fanin(id), nl2.fanin(id));
            assert_eq!(nl.fanout(id), nl2.fanout(id));
            assert_eq!(loops.is_loop_node(id), loops2.is_loop_node(id));
        }
        assert_eq!(loops.components().len(), loops2.components().len());
        assert_eq!(loops.loop_seq_count(), loops2.loop_seq_count());
        // Lookups work on the rebuilt graph.
        for id in nl.nodes() {
            assert_eq!(nl2.lookup(nl.name(id)), Some(id));
        }
    }

    #[test]
    fn save_is_deterministic() {
        let (nl, loops) = build();
        assert_eq!(save(&nl, &loops), save(&nl, &loops));
    }

    #[test]
    fn varint_roundtrip() {
        let vals = [
            0u64,
            1,
            0x7f,
            0x80,
            0x3fff,
            0x4000,
            u64::from(u32::MAX),
            u64::MAX,
        ];
        let mut buf = Vec::new();
        for &v in &vals {
            put_varint(&mut buf, v);
        }
        let mut c = Cursor::new(&buf);
        for &v in &vals {
            assert_eq!(c.varint().unwrap(), v);
        }
        assert!(c.at_end());
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn overlong_varint_rejected() {
        // 11 continuation bytes cannot be a canonical u64.
        let buf = [0xFFu8; 11];
        let mut c = Cursor::new(&buf);
        assert_eq!(c.varint(), Err(SnapshotError::BadIndex));
    }

    #[test]
    fn wrong_magic_rejected() {
        let (nl, loops) = build();
        let mut bytes = save(&nl, &loops);
        bytes[0] = b'X';
        assert_eq!(load(&bytes), Err(SnapshotError::BadMagic));
    }

    #[test]
    fn other_versions_rejected() {
        let (nl, loops) = build();
        let v = MAGIC.len() - 2;
        // Both the retired v1 and any future version must be refused up
        // front, before the checksum has a chance to reject them as mere
        // corruption.
        for digit in [b'1', b'3', b'9'] {
            let mut bytes = save(&nl, &loops);
            bytes[v] = digit;
            assert_eq!(load(&bytes), Err(SnapshotError::UnsupportedVersion));
        }
    }

    #[test]
    fn truncation_never_panics() {
        let (nl, loops) = build();
        let bytes = save(&nl, &loops);
        for len in 0..bytes.len() {
            assert!(load(&bytes[..len]).is_err(), "truncated to {len} bytes");
        }
    }

    #[test]
    fn bit_flips_never_panic() {
        let (nl, loops) = build();
        let bytes = save(&nl, &loops);
        for pos in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x40;
            // Either detected as an error or (for a flip inside an unused
            // padding-free format there is none) rejected — but never a
            // panic and never a silently different graph.
            if let Ok((nl2, _)) = load(&corrupt) {
                assert_eq!(nl2, nl, "flip at {pos} silently changed the graph");
            }
        }
    }

    #[test]
    fn digest_header_guards_payload() {
        let (nl, loops) = build();
        let mut bytes = save(&nl, &loops);
        // Flip a digest byte, then re-seal the trailer so only the digest
        // check can catch it.
        bytes[MAGIC.len()] ^= 0xFF;
        let body_len = bytes.len() - 8;
        let mut h = WideFnv64::new();
        h.update(&bytes[..body_len]);
        let t = h.finish().to_le_bytes();
        bytes[body_len..].copy_from_slice(&t);
        assert_eq!(load(&bytes), Err(SnapshotError::DigestMismatch));
    }

    #[test]
    fn oversized_header_counts_rejected_before_allocation() {
        let (nl, loops) = build();
        let bytes = save(&nl, &loops);
        // Re-author the header with an absurd node count and re-seal the
        // checksum: the budget check must refuse it (as Truncated) without
        // attempting a giant allocation.
        let mut forged = Vec::new();
        forged.extend_from_slice(MAGIC);
        forged.extend_from_slice(&bytes[MAGIC.len()..MAGIC.len() + 8]);
        let mut p = Vec::new();
        for _ in 0..7 {
            put_varint(&mut p, u64::MAX / 2);
        }
        put_section(&mut forged, TAG_HEADER, &p);
        let body_len = forged.len();
        let mut h = WideFnv64::new();
        h.update(&forged[..body_len]);
        forged.extend_from_slice(&h.finish().to_le_bytes());
        assert_eq!(load(&forged), Err(SnapshotError::Truncated));
    }
}
