//! `seqavf-graph/1` — a versioned binary snapshot of a flattened graph.
//!
//! Parsing, flattening, synthesis and SCC detection are pure functions of
//! the source text; the snapshot caches their combined result so repeated
//! analyses of the same design skip the frontend entirely. The format is:
//!
//! ```text
//! magic    b"seqavf-graph/1\n"
//! digest   u64 LE   — semantic content digest (Netlist::content_digest)
//! sections tag u8, len u64 LE, payload — in fixed order:
//!            1 DESIGN   design name bytes
//!            2 SYMS     symbol-table heap + spans
//!            3 NODES    per-node name syms, kinds, FUB ids
//!            4 FUBS     FUB name syms
//!            5 STRUCTS  structure decls + cell node ids
//!            6 EDGES    fan-in CSR (offsets + data)
//!            7 LOOPS    SCC component node lists
//! trailer  u64 LE   — WideFnv64 over every preceding byte
//! ```
//!
//! Loading is defensive end to end: every length and index is bounds
//! checked, the trailer checksum is verified before any section is parsed,
//! and the content digest is recomputed from the rebuilt graph and compared
//! against the header. Any mismatch yields a [`SnapshotError`] — never a
//! panic — so callers degrade to a recompute exactly like a sweep-cache
//! miss.

use std::fmt;

use crate::graph::{FubId, GateOp, Netlist, NodeId, NodeKind, SeqKind, StructId};
use crate::intern::{Sym, SymbolTable, WideFnv64};
use crate::scc::LoopAnalysis;

/// Format magic, bumped whenever the layout changes.
pub const MAGIC: &[u8] = b"seqavf-graph/1\n";

const TAG_DESIGN: u8 = 1;
const TAG_SYMS: u8 = 2;
const TAG_NODES: u8 = 3;
const TAG_FUBS: u8 = 4;
const TAG_STRUCTS: u8 = 5;
const TAG_EDGES: u8 = 6;
const TAG_LOOPS: u8 = 7;

/// Why a snapshot could not be loaded. All variants are recoverable — the
/// caller recomputes from source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file does not start with the `seqavf-graph/1` magic (wrong file
    /// or wrong format version).
    BadMagic,
    /// The whole-file checksum trailer does not match (truncation or
    /// corruption).
    ChecksumMismatch,
    /// A section or field extends past the end of the file.
    Truncated,
    /// A section appeared with an unexpected tag.
    BadSection(u8),
    /// The symbol table failed validation (bad span, UTF-8, or duplicate).
    BadSymbolTable,
    /// A node/FUB/structure/edge index is out of range or inconsistent.
    BadIndex,
    /// The rebuilt graph's content digest differs from the header.
    DigestMismatch,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a seqavf-graph/1 snapshot"),
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadSection(t) => write!(f, "unexpected snapshot section tag {t}"),
            SnapshotError::BadSymbolTable => write!(f, "snapshot symbol table invalid"),
            SnapshotError::BadIndex => write!(f, "snapshot index out of range"),
            SnapshotError::DigestMismatch => write!(f, "snapshot content digest mismatch"),
        }
    }
}

impl std::error::Error for SnapshotError {}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_section(out: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    out.push(tag);
    put_u64(out, payload.len() as u64);
    out.extend_from_slice(payload);
}

/// Serializes a graph and its loop analysis into snapshot bytes.
pub fn save(nl: &Netlist, loops: &LoopAnalysis) -> Vec<u8> {
    let (symbols, syms, kinds, fub_of, fubs, structures, fanin_off, fanin_dat) = nl.raw_parts();
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    put_u64(&mut out, nl.content_digest());

    put_section(&mut out, TAG_DESIGN, nl.design_name().as_bytes());

    let mut p = Vec::new();
    let (buf, spans) = symbols.raw();
    put_u64(&mut p, spans.len() as u64);
    put_u64(&mut p, buf.len() as u64);
    p.extend_from_slice(buf);
    for &(start, len) in spans {
        put_u32(&mut p, start);
        put_u32(&mut p, len);
    }
    put_section(&mut out, TAG_SYMS, &p);

    let mut p = Vec::new();
    put_u64(&mut p, syms.len() as u64);
    for s in syms {
        put_u32(&mut p, s.index() as u32);
    }
    for f in fub_of {
        put_u16(&mut p, f.index() as u16);
    }
    for k in kinds {
        k.encode(&mut p);
    }
    put_section(&mut out, TAG_NODES, &p);

    let mut p = Vec::new();
    put_u64(&mut p, fubs.len() as u64);
    for f in fubs {
        put_u32(&mut p, f.index() as u32);
    }
    put_section(&mut out, TAG_FUBS, &p);

    let mut p = Vec::new();
    put_u64(&mut p, structures.len() as u64);
    for s in structures {
        put_u32(&mut p, s.sym().index() as u32);
        put_u32(&mut p, s.width());
        put_u16(&mut p, s.fub().index() as u16);
        put_u64(&mut p, s.cells().len() as u64);
        for c in s.cells() {
            put_u32(&mut p, c.index() as u32);
        }
    }
    put_section(&mut out, TAG_STRUCTS, &p);

    let mut p = Vec::new();
    put_u64(&mut p, fanin_off.len() as u64);
    for &o in fanin_off {
        put_u32(&mut p, o);
    }
    put_u64(&mut p, fanin_dat.len() as u64);
    for d in fanin_dat {
        put_u32(&mut p, d.index() as u32);
    }
    put_section(&mut out, TAG_EDGES, &p);

    let mut p = Vec::new();
    put_u64(&mut p, loops.components().len() as u64);
    for c in loops.components() {
        put_u64(&mut p, c.len() as u64);
        for m in c {
            put_u32(&mut p, m.index() as u32);
        }
    }
    put_section(&mut out, TAG_LOOPS, &p);

    let mut h = WideFnv64::new();
    h.update(&out);
    put_u64(&mut out, h.finish());
    out
}

/// Bounds-checked little-endian reader.
struct Cursor<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(b: &'a [u8]) -> Self {
        Cursor { b, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        let s = self.b.get(self.pos..end).ok_or(SnapshotError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, SnapshotError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// A u64 length that must also fit in usize and be a sane element
    /// count for the remaining bytes (each element ≥ 1 byte).
    fn count(&mut self) -> Result<usize, SnapshotError> {
        let n = self.u64()?;
        let n = usize::try_from(n).map_err(|_| SnapshotError::Truncated)?;
        if n > self.b.len().saturating_sub(self.pos) {
            return Err(SnapshotError::Truncated);
        }
        Ok(n)
    }

    fn section(&mut self, tag: u8) -> Result<Cursor<'a>, SnapshotError> {
        let t = self.u8()?;
        if t != tag {
            return Err(SnapshotError::BadSection(t));
        }
        let len = self.u64()?;
        let len = usize::try_from(len).map_err(|_| SnapshotError::Truncated)?;
        Ok(Cursor::new(self.take(len)?))
    }

    fn at_end(&self) -> bool {
        self.pos == self.b.len()
    }
}

fn decode_kind(c: &mut Cursor<'_>, struct_count: usize) -> Result<NodeKind, SnapshotError> {
    Ok(match c.u8()? {
        0 => NodeKind::Input,
        1 => NodeKind::Output,
        2 => {
            let kind = match c.u8()? {
                0 => SeqKind::Flop,
                1 => SeqKind::Latch,
                _ => return Err(SnapshotError::BadIndex),
            };
            let has_enable = match c.u8()? {
                0 => false,
                1 => true,
                _ => return Err(SnapshotError::BadIndex),
            };
            NodeKind::Seq { kind, has_enable }
        }
        3 => NodeKind::Comb(GateOp::from_code(c.u8()?).ok_or(SnapshotError::BadIndex)?),
        4 => {
            let structure = c.u32()? as usize;
            let bit = c.u32()?;
            if structure >= struct_count {
                return Err(SnapshotError::BadIndex);
            }
            NodeKind::StructCell {
                structure: StructId::from_index(structure),
                bit,
            }
        }
        _ => return Err(SnapshotError::BadIndex),
    })
}

/// Deserializes snapshot bytes back into a graph and its loop analysis.
///
/// # Errors
///
/// Returns a [`SnapshotError`] for any malformed input — wrong magic,
/// failed checksum, truncation, invalid indices, or a digest that does not
/// match the rebuilt graph. Corruption never panics.
pub fn load(bytes: &[u8]) -> Result<(Netlist, LoopAnalysis), SnapshotError> {
    if bytes.len() < MAGIC.len() + 16 {
        return Err(if bytes.starts_with(MAGIC) || MAGIC.starts_with(bytes) {
            SnapshotError::Truncated
        } else {
            SnapshotError::BadMagic
        });
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    // Verify the whole-file checksum before trusting any section length.
    let body = &bytes[..bytes.len() - 8];
    let mut h = WideFnv64::new();
    h.update(body);
    let trailer = u64::from_le_bytes(
        bytes[bytes.len() - 8..]
            .try_into()
            .expect("8-byte trailer slice"),
    );
    if h.finish() != trailer {
        return Err(SnapshotError::ChecksumMismatch);
    }

    let mut c = Cursor::new(&body[MAGIC.len()..]);
    let header_digest = c.u64()?;

    let mut s = c.section(TAG_DESIGN)?;
    let design = std::str::from_utf8(s.take(s.b.len())?)
        .map_err(|_| SnapshotError::BadSymbolTable)?
        .to_owned();

    let mut s = c.section(TAG_SYMS)?;
    let sym_count = s.count()?;
    let buf_len = s.count()?;
    let buf = s.take(buf_len)?.to_vec();
    let mut spans = Vec::with_capacity(sym_count);
    for _ in 0..sym_count {
        let start = s.u32()?;
        let len = s.u32()?;
        spans.push((start, len));
    }
    let symbols = SymbolTable::from_raw(buf, spans).ok_or(SnapshotError::BadSymbolTable)?;

    let mut s = c.section(TAG_NODES)?;
    let node_count = s.count()?;
    let mut node_syms = Vec::with_capacity(node_count);
    let mut sym_seen = vec![false; symbols.len()];
    for _ in 0..node_count {
        let i = s.u32()? as usize;
        if i >= symbols.len() || sym_seen[i] {
            // Unknown symbol, or two nodes sharing a name.
            return Err(SnapshotError::BadIndex);
        }
        sym_seen[i] = true;
        node_syms.push(Sym::from_index(i));
    }
    let mut fub_of_raw = Vec::with_capacity(node_count);
    for _ in 0..node_count {
        fub_of_raw.push(s.u16()? as usize);
    }
    // Kinds are decoded after STRUCTS would be natural, but struct count
    // arrives later; decode with a placeholder bound and re-check below.
    let nodes_rest = Cursor::new(s.take(s.b.len() - s.pos)?);

    let mut s = c.section(TAG_FUBS)?;
    let fub_count = s.count()?;
    let mut fubs = Vec::with_capacity(fub_count);
    for _ in 0..fub_count {
        let i = s.u32()? as usize;
        if i >= symbols.len() {
            return Err(SnapshotError::BadIndex);
        }
        fubs.push(Sym::from_index(i));
    }
    let fub_of: Vec<FubId> = fub_of_raw
        .into_iter()
        .map(|i| {
            if i < fub_count {
                Ok(FubId::from_index(i))
            } else {
                Err(SnapshotError::BadIndex)
            }
        })
        .collect::<Result<_, _>>()?;

    let mut s = c.section(TAG_STRUCTS)?;
    let struct_count = s.count()?;
    let mut structures = Vec::with_capacity(struct_count);
    for _ in 0..struct_count {
        let sym_i = s.u32()? as usize;
        let width = s.u32()?;
        let fub_i = s.u16()? as usize;
        if sym_i >= symbols.len() || fub_i >= fub_count {
            return Err(SnapshotError::BadIndex);
        }
        let cell_count = s.count()?;
        if cell_count != width as usize {
            return Err(SnapshotError::BadIndex);
        }
        let mut cells = Vec::with_capacity(cell_count);
        for _ in 0..cell_count {
            let i = s.u32()? as usize;
            if i >= node_count {
                return Err(SnapshotError::BadIndex);
            }
            cells.push(NodeId::from_index(i));
        }
        structures.push((
            Sym::from_index(sym_i),
            width,
            FubId::from_index(fub_i),
            cells,
        ));
    }

    // Now decode node kinds with the real structure count.
    let mut kc = nodes_rest;
    let mut kinds = Vec::with_capacity(node_count);
    for _ in 0..node_count {
        kinds.push(decode_kind(&mut kc, struct_count)?);
    }
    if !kc.at_end() {
        return Err(SnapshotError::BadIndex);
    }

    let mut s = c.section(TAG_EDGES)?;
    let off_count = s.count()?;
    if off_count != node_count + 1 {
        return Err(SnapshotError::BadIndex);
    }
    let mut fanin_off = Vec::with_capacity(off_count);
    for _ in 0..off_count {
        fanin_off.push(s.u32()?);
    }
    let dat_count = s.count()?;
    if fanin_off[0] != 0
        || fanin_off.windows(2).any(|w| w[0] > w[1])
        || fanin_off[node_count] as usize != dat_count
    {
        return Err(SnapshotError::BadIndex);
    }
    let mut fanin_dat = Vec::with_capacity(dat_count);
    for _ in 0..dat_count {
        let i = s.u32()? as usize;
        if i >= node_count {
            return Err(SnapshotError::BadIndex);
        }
        fanin_dat.push(NodeId::from_index(i));
    }

    let mut s = c.section(TAG_LOOPS)?;
    let comp_count = s.count()?;
    let mut components = Vec::with_capacity(comp_count);
    for _ in 0..comp_count {
        let len = s.count()?;
        let mut comp = Vec::with_capacity(len);
        for _ in 0..len {
            let i = s.u32()? as usize;
            if i >= node_count {
                return Err(SnapshotError::BadIndex);
            }
            comp.push(NodeId::from_index(i));
        }
        components.push(comp);
    }
    if !c.at_end() {
        return Err(SnapshotError::BadIndex);
    }

    let nl = Netlist::from_raw_parts(
        design, symbols, node_syms, kinds, fub_of, fubs, structures, fanin_off, fanin_dat,
    );
    if nl.content_digest() != header_digest {
        return Err(SnapshotError::DigestMismatch);
    }
    let loops = LoopAnalysis::from_parts(&nl, components).ok_or(SnapshotError::BadIndex)?;
    Ok((nl, loops))
}

impl Netlist {
    /// [`save`] as a method.
    pub fn to_snapshot(&self, loops: &LoopAnalysis) -> Vec<u8> {
        save(self, loops)
    }

    /// [`load`] as an associated function.
    pub fn from_snapshot(bytes: &[u8]) -> Result<(Netlist, LoopAnalysis), SnapshotError> {
        load(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flatten::parse_netlist;
    use crate::scc::find_loops;

    const DESIGN: &str = r"
.design snap
.model stage
  .minput d
  .moutput q
  .flop q d
.endmodel
.fub f0
  .input din
  .struct st 3
  .gate and g1 din st[0]
  .flop q1 g1
  .gate not fb q1
  .flop q2 fb
  .gate buf loopg q2
  .sw st[1] q1
  .subckt stage u0 d=q1
  .output dout u0.q
.endfub
.fub f1
  .gate xor g2 f0.q1 f0.din
  .flop q3 g2 g2
  .output o g2
.endfub
.end
";

    fn build() -> (Netlist, LoopAnalysis) {
        let nl = parse_netlist(DESIGN).unwrap();
        let loops = find_loops(&nl);
        (nl, loops)
    }

    #[test]
    fn roundtrip_is_equal() {
        let (nl, loops) = build();
        let bytes = save(&nl, &loops);
        let (nl2, loops2) = load(&bytes).unwrap();
        assert_eq!(nl, nl2);
        assert_eq!(nl.content_digest(), nl2.content_digest());
        assert_eq!(nl.design_name(), nl2.design_name());
        assert_eq!(nl.edge_count(), nl2.edge_count());
        assert_eq!(nl.seq_count(), nl2.seq_count());
        for id in nl.nodes() {
            assert_eq!(nl.name(id), nl2.name(id));
            assert_eq!(nl.kind(id), nl2.kind(id));
            assert_eq!(nl.fanin(id), nl2.fanin(id));
            assert_eq!(nl.fanout(id), nl2.fanout(id));
            assert_eq!(loops.is_loop_node(id), loops2.is_loop_node(id));
        }
        assert_eq!(loops.components().len(), loops2.components().len());
        assert_eq!(loops.loop_seq_count(), loops2.loop_seq_count());
        // Lookups work on the rebuilt graph.
        for id in nl.nodes() {
            assert_eq!(nl2.lookup(nl.name(id)), Some(id));
        }
    }

    #[test]
    fn save_is_deterministic() {
        let (nl, loops) = build();
        assert_eq!(save(&nl, &loops), save(&nl, &loops));
    }

    #[test]
    fn wrong_magic_rejected() {
        let (nl, loops) = build();
        let mut bytes = save(&nl, &loops);
        bytes[0] = b'X';
        assert_eq!(load(&bytes), Err(SnapshotError::BadMagic));
    }

    #[test]
    fn wrong_version_rejected() {
        let (nl, loops) = build();
        let mut bytes = save(&nl, &loops);
        // "seqavf-graph/1\n" -> "seqavf-graph/2\n"
        let v = MAGIC.len() - 2;
        bytes[v] = b'2';
        assert_eq!(load(&bytes), Err(SnapshotError::BadMagic));
    }

    #[test]
    fn truncation_never_panics() {
        let (nl, loops) = build();
        let bytes = save(&nl, &loops);
        for len in 0..bytes.len() {
            assert!(load(&bytes[..len]).is_err(), "truncated to {len} bytes");
        }
    }

    #[test]
    fn bit_flips_never_panic() {
        let (nl, loops) = build();
        let bytes = save(&nl, &loops);
        for pos in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x40;
            // Either detected as an error or (for a flip inside an unused
            // padding-free format there is none) rejected — but never a
            // panic and never a silently different graph.
            if let Ok((nl2, _)) = load(&corrupt) {
                assert_eq!(nl2, nl, "flip at {pos} silently changed the graph");
            }
        }
    }

    #[test]
    fn digest_header_guards_payload() {
        let (nl, loops) = build();
        let mut bytes = save(&nl, &loops);
        // Flip a digest byte, then re-seal the trailer so only the digest
        // check can catch it.
        bytes[MAGIC.len()] ^= 0xFF;
        let body_len = bytes.len() - 8;
        let mut h = WideFnv64::new();
        h.update(&bytes[..body_len]);
        let t = h.finish().to_le_bytes();
        bytes[body_len..].copy_from_slice(&t);
        assert_eq!(load(&bytes), Err(SnapshotError::DigestMismatch));
    }
}
