//! Loop detection via strongly-connected components (paper §4.3).
//!
//! State-machine feedback paths (stall loops, head/tail pointer updates, …)
//! form cycles in the node graph. The paper observes that loops "behave like
//! structures": they can retain state, so port-AVF values must not propagate
//! *through* them. The SART stage therefore breaks every loop and injects a
//! static loop-boundary pAVF (0.3 in the paper) at the sequential nodes
//! inside loops.
//!
//! This module finds those nodes: it runs Tarjan's algorithm over the
//! subgraph of sequential and combinational nodes (structure cells already
//! terminate walks, so a path through a structure is not a loop for this
//! purpose) and reports every node that belongs to a non-trivial SCC or has
//! a self-edge.

use crate::graph::{Netlist, NodeId};

/// Result of loop detection over a [`Netlist`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopAnalysis {
    in_loop: Vec<bool>,
    components: Vec<Vec<NodeId>>,
    loop_node_count: usize,
    loop_seq_count: usize,
}

impl LoopAnalysis {
    /// Whether `id` lies on at least one cycle.
    pub fn is_loop_node(&self, id: NodeId) -> bool {
        self.in_loop[id.index()]
    }

    /// The non-trivial strongly connected components, each listed as the
    /// nodes it contains (unordered).
    pub fn components(&self) -> &[Vec<NodeId>] {
        &self.components
    }

    /// Total number of nodes that lie on cycles.
    pub fn loop_node_count(&self) -> usize {
        self.loop_node_count
    }

    /// Number of *sequential* nodes that lie on cycles — the population that
    /// receives the injected loop-boundary pAVF (the paper's Xeon core had
    /// 201,530 such bits).
    pub fn loop_seq_count(&self) -> usize {
        self.loop_seq_count
    }

    /// Iterates over all loop-member node ids.
    pub fn loop_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.components.iter().flatten().copied()
    }

    /// Rebuilds a `LoopAnalysis` from its component lists (the only part a
    /// graph snapshot stores — membership flags and censuses are derived).
    /// Returns `None` if any component member is out of range for `nl`.
    pub fn from_parts(nl: &Netlist, components: Vec<Vec<NodeId>>) -> Option<Self> {
        let n = nl.node_count();
        let mut in_loop = vec![false; n];
        for c in &components {
            for m in c {
                if m.index() >= n {
                    return None;
                }
                in_loop[m.index()] = true;
            }
        }
        let loop_node_count = in_loop.iter().filter(|&&b| b).count();
        let loop_seq_count = nl.seq_nodes().filter(|&id| in_loop[id.index()]).count();
        Some(LoopAnalysis {
            in_loop,
            components,
            loop_node_count,
            loop_seq_count,
        })
    }
}

/// Finds all cycles among sequential and combinational nodes.
///
/// Structure cells, primary inputs and primary outputs are treated as cut
/// points: paths through them do not count as loops because pAVF walks
/// already terminate there (§4.1).
pub fn find_loops(nl: &Netlist) -> LoopAnalysis {
    find_loops_traced(nl, &seqavf_obs::Collector::disabled())
}

/// [`find_loops`] with observability: records a `netlist.scc` span with
/// loop-population fields.
pub fn find_loops_traced(nl: &Netlist, obs: &seqavf_obs::Collector) -> LoopAnalysis {
    let mut span = obs.span("netlist.scc");
    let la = find_loops_impl(nl);
    span.field_u64("nodes", nl.node_count() as u64);
    span.field_u64("components", la.components.len() as u64);
    span.field_u64("loop_nodes", la.loop_node_count as u64);
    span.field_u64("loop_seq_nodes", la.loop_seq_count as u64);
    la
}

fn find_loops_impl(nl: &Netlist) -> LoopAnalysis {
    let n = nl.node_count();
    let passable = |id: NodeId| {
        let k = nl.kind(id);
        // Output nodes can sit on cross-FUB feedback paths (a FUB export
        // consumed by an upstream FUB), so they are passable; structure
        // cells terminate walks and therefore break cycles.
        k.is_sequential() || k.is_comb() || matches!(k, crate::graph::NodeKind::Output)
    };

    // Iterative Tarjan.
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut comp_stack: Vec<u32> = Vec::new();
    let mut next_index: u32 = 0;
    let mut in_loop = vec![false; n];
    let mut components: Vec<Vec<NodeId>> = Vec::new();

    // DFS frames: (node, next fan-out edge offset, child awaiting lowlink merge)
    let mut frames: Vec<(u32, usize)> = Vec::new();

    for start in 0..n {
        let sid = NodeId::from_index(start);
        if index[start] != UNVISITED || !passable(sid) {
            continue;
        }
        index[start] = next_index;
        lowlink[start] = next_index;
        next_index += 1;
        on_stack[start] = true;
        comp_stack.push(start as u32);
        frames.push((start as u32, 0));

        while let Some(frame) = frames.last_mut() {
            let v = frame.0 as usize;
            let outs = nl.fanout(NodeId::from_index(v));
            if frame.1 < outs.len() {
                let w = outs[frame.1];
                frame.1 += 1;
                let wi = w.index();
                if !passable(w) {
                    continue;
                }
                if index[wi] == UNVISITED {
                    index[wi] = next_index;
                    lowlink[wi] = next_index;
                    next_index += 1;
                    on_stack[wi] = true;
                    comp_stack.push(wi as u32);
                    frames.push((wi as u32, 0));
                } else if on_stack[wi] {
                    lowlink[v] = lowlink[v].min(index[wi]);
                }
            } else {
                frames.pop();
                if let Some(parent) = frames.last() {
                    let p = parent.0 as usize;
                    lowlink[p] = lowlink[p].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    // Root of an SCC: pop its members.
                    let mut members = Vec::new();
                    loop {
                        let w = comp_stack.pop().expect("SCC stack underflow") as usize;
                        on_stack[w] = false;
                        members.push(NodeId::from_index(w));
                        if w == v {
                            break;
                        }
                    }
                    let self_loop = members.len() == 1 && {
                        let m = members[0];
                        nl.fanout(m).contains(&m)
                    };
                    if members.len() > 1 || self_loop {
                        for &m in &members {
                            in_loop[m.index()] = true;
                        }
                        components.push(members);
                    }
                }
            }
        }
    }

    let loop_node_count = in_loop.iter().filter(|&&b| b).count();
    let loop_seq_count = nl.seq_nodes().filter(|&id| in_loop[id.index()]).count();
    LoopAnalysis {
        in_loop,
        components,
        loop_node_count,
        loop_seq_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{GateOp, NetlistBuilder, NodeKind, SeqKind};

    fn flop(b: &mut NetlistBuilder, name: &str, fub: crate::graph::FubId) -> NodeId {
        b.add_node(
            name,
            NodeKind::Seq {
                kind: SeqKind::Flop,
                has_enable: false,
            },
            fub,
        )
    }

    #[test]
    fn straight_pipeline_has_no_loops() {
        let mut b = NetlistBuilder::new("t");
        let fub = b.add_fub("f");
        let i = b.add_node("i", NodeKind::Input, fub);
        let q1 = flop(&mut b, "q1", fub);
        let q2 = flop(&mut b, "q2", fub);
        b.connect(i, q1);
        b.connect(q1, q2);
        let nl = b.finish().unwrap();
        let la = find_loops(&nl);
        assert_eq!(la.loop_node_count(), 0);
        assert!(la.components().is_empty());
    }

    #[test]
    fn fsm_feedback_detected() {
        // q1 -> g -> q2 -> q1 : a 3-node cycle.
        let mut b = NetlistBuilder::new("t");
        let fub = b.add_fub("f");
        let i = b.add_node("i", NodeKind::Input, fub);
        let q1 = flop(&mut b, "q1", fub);
        let g = b.add_node("g", NodeKind::Comb(GateOp::And), fub);
        let q2 = flop(&mut b, "q2", fub);
        b.connect(q2, q1);
        b.connect(q1, g);
        b.connect(i, g);
        b.connect(g, q2);
        let nl = b.finish().unwrap();
        let la = find_loops(&nl);
        assert_eq!(la.components().len(), 1);
        assert_eq!(la.loop_node_count(), 3);
        assert_eq!(la.loop_seq_count(), 2);
        assert!(la.is_loop_node(q1));
        assert!(la.is_loop_node(q2));
        assert!(la.is_loop_node(g));
        assert!(!la.is_loop_node(i));
    }

    #[test]
    fn self_loop_flop_detected() {
        let mut b = NetlistBuilder::new("t");
        let fub = b.add_fub("f");
        let q = flop(&mut b, "q", fub);
        b.connect(q, q);
        let nl = b.finish().unwrap();
        let la = find_loops(&nl);
        assert_eq!(la.loop_node_count(), 1);
        assert_eq!(la.loop_seq_count(), 1);
        assert!(la.is_loop_node(q));
    }

    #[test]
    fn path_through_structure_is_not_a_loop() {
        // q1 feeds struct cell; struct cell feeds q1 again. The structure
        // breaks the cycle because walks terminate there.
        let mut b = NetlistBuilder::new("t");
        let fub = b.add_fub("f");
        let s = b.add_structure("st", 1, fub);
        let cell = b.structure_cell(s, 0);
        let q1 = flop(&mut b, "q1", fub);
        b.connect(q1, cell);
        b.connect(cell, q1);
        let nl = b.finish().unwrap();
        let la = find_loops(&nl);
        assert_eq!(la.loop_node_count(), 0);
    }

    #[test]
    fn nested_loops_merge_into_one_component() {
        // Two overlapping cycles: q1->q2->q1 and q2->q3->q2.
        let mut b = NetlistBuilder::new("t");
        let fub = b.add_fub("f");
        let q1 = flop(&mut b, "q1", fub);
        let q2 = flop(&mut b, "q2", fub);
        let q3 = flop(&mut b, "q3", fub);
        // q1 has two drivers? Flop needs exactly one fan-in; route through a gate.
        let g = b.add_node("g", NodeKind::Comb(GateOp::Or), fub);
        b.connect(q1, q2);
        b.connect(q2, g);
        b.connect(q3, g);
        b.connect(g, q1);
        b.connect(q2, q3);
        let nl = b.finish().unwrap();
        let la = find_loops(&nl);
        assert_eq!(la.components().len(), 1);
        assert_eq!(la.loop_node_count(), 4);
        assert_eq!(la.loop_seq_count(), 3);
    }

    #[test]
    fn two_disjoint_loops_are_separate_components() {
        let mut b = NetlistBuilder::new("t");
        let fub = b.add_fub("f");
        let a1 = flop(&mut b, "a1", fub);
        let a2 = flop(&mut b, "a2", fub);
        b.connect(a1, a2);
        b.connect(a2, a1);
        let b1 = flop(&mut b, "b1", fub);
        let b2 = flop(&mut b, "b2", fub);
        b.connect(b1, b2);
        b.connect(b2, b1);
        let nl = b.finish().unwrap();
        let la = find_loops(&nl);
        assert_eq!(la.components().len(), 2);
        assert_eq!(la.loop_seq_count(), 4);
        let total: usize = la.loop_nodes().count();
        assert_eq!(total, 4);
    }
}
