//! Seeded generator of processor-shaped synthetic designs.
//!
//! The paper runs its tool flow on proprietary Intel Xeon RTL, which is not
//! available; this module substitutes a generator that emits designs built
//! from the same topological vocabulary the propagation rules operate on
//! (§4.1): simple pipelines between ACE-structure ports, logical join
//! points, distribution split points, FSM feedback loops (§4.3), and
//! configuration control registers (§5.1). Proportions are configurable and
//! default to the paper's observations (a few percent of sequentials on
//! loops, control registers identified by naming convention).
//!
//! The generator also returns [`SynthMeta`] ground truth: which netlist
//! structures correspond to which performance-model structures, so the
//! mapping stage of the tool flow (§5.1 step 4) can be exercised end to end.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::graph::{FubId, GateOp, Netlist, NetlistBuilder, NodeId, NodeKind, SeqKind, StructId};

/// Recipe for one ACE structure inside a FUB.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructureRecipe {
    /// Netlist-local structure name (unique within the FUB).
    pub name: String,
    /// Name of the performance-model structure whose port AVFs drive this
    /// structure's cells (see `seqavf-perf`).
    pub perf_name: String,
    /// Number of bit cells.
    pub width: u32,
}

/// Recipe for one functional block.
#[derive(Debug, Clone, PartialEq)]
pub struct FubRecipe {
    /// FUB name.
    pub name: String,
    /// ACE structures living in this FUB.
    pub structures: Vec<StructureRecipe>,
    /// Number of independent data-path channels.
    pub channels: usize,
    /// Bits per channel.
    pub channel_width: usize,
    /// Pipeline stages per channel, inclusive range.
    pub stages: (usize, usize),
    /// Probability that a stage is a logical join with an auxiliary signal.
    pub join_prob: f64,
    /// Probability that a stage tees off a distribution split branch.
    pub split_prob: f64,
    /// Number of FSM feedback loops.
    pub fsm_loops: usize,
    /// FSM ring length, inclusive range.
    pub fsm_size: (usize, usize),
    /// Number of configuration control-register bits (named `creg_*`).
    pub control_regs: usize,
    /// Clock/ownership domain. `0` is the shared (uncore) domain; cores
    /// are `1..=N`. A FUB sources upstream exports only from earlier FUBs
    /// in its own domain or in domain 0, so replicated cores stay
    /// topologically independent except through the shared uncore.
    pub domain: usize,
}

impl FubRecipe {
    /// A small default recipe used as a template.
    pub fn basic(name: &str) -> Self {
        FubRecipe {
            name: name.to_owned(),
            structures: Vec::new(),
            channels: 4,
            channel_width: 4,
            stages: (2, 5),
            join_prob: 0.3,
            split_prob: 0.15,
            fsm_loops: 1,
            fsm_size: (2, 4),
            control_regs: 4,
            domain: 0,
        }
    }
}

/// Configuration for a whole synthetic design.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthConfig {
    /// RNG seed: identical configs with identical seeds generate identical
    /// designs.
    pub seed: u64,
    /// Design name.
    pub name: String,
    /// FUBs in pipeline order; channel sinks of FUB *i* feed sources of FUB
    /// *i+1*.
    pub fubs: Vec<FubRecipe>,
    /// Number of cross-FUB feedback (stall-style) loops to add.
    pub cross_fub_loops: usize,
}

impl SynthConfig {
    /// A processor-core-shaped default: twelve FUBs covering fetch through
    /// retire, with structures mapped onto the `seqavf-perf` pipeline-model
    /// structures.
    pub fn xeon_like(seed: u64) -> Self {
        let s = |name: &str, perf: &str, width: u32| StructureRecipe {
            name: name.to_owned(),
            perf_name: perf.to_owned(),
            width,
        };
        let fub = |name: &str,
                   structures: Vec<StructureRecipe>,
                   channels: usize,
                   fsm_loops: usize,
                   control_regs: usize| {
            FubRecipe {
                name: name.to_owned(),
                structures,
                channels,
                channel_width: 6,
                stages: (2, 6),
                join_prob: 0.16,
                split_prob: 0.10,
                fsm_loops,
                fsm_size: (2, 5),
                control_regs,
                domain: 0,
            }
        };
        SynthConfig {
            seed,
            name: "xeon_like".to_owned(),
            fubs: vec![
                fub(
                    "ifu",
                    vec![s("fb", "fetch_buffer", 48), s("itlb", "itlb", 16)],
                    6,
                    2,
                    3,
                ),
                fub(
                    "bpu",
                    vec![s("btb", "btb", 32), s("ras", "ras", 12)],
                    4,
                    2,
                    2,
                ),
                fub("idu", vec![s("uq", "uop_queue", 40)], 6, 1, 3),
                fub(
                    "rat",
                    vec![s("map", "rat", 24), s("fl", "free_list", 16)],
                    4,
                    2,
                    2,
                ),
                fub("rs", vec![s("iq", "issue_queue", 48)], 8, 2, 3),
                fub("alu0", vec![s("byp0", "bypass", 16)], 6, 1, 1),
                fub("alu1", vec![s("byp1", "bypass", 16)], 6, 1, 1),
                fub("fpu", vec![s("frf", "fp_regfile", 32)], 6, 1, 2),
                fub("agu", vec![s("tlb", "dtlb", 16)], 4, 1, 1),
                fub(
                    "lsu",
                    vec![s("ldq", "load_queue", 32), s("stq", "store_queue", 32)],
                    6,
                    3,
                    2,
                ),
                fub(
                    "rob",
                    vec![s("rob", "rob", 64), s("prf", "prf", 48)],
                    8,
                    2,
                    3,
                ),
                fub("mce", vec![s("csr", "csr_bank", 16)], 3, 1, 6),
            ],
            cross_fub_loops: 4,
        }
    }

    /// A small in-order embedded-core shape: five FUBs, shallower pipes,
    /// a single FSM-heavy control block — the kind of design the paper's
    /// related work fault-injects directly (Blome et al.'s ARM core).
    pub fn embedded_like(seed: u64) -> Self {
        let s = |name: &str, perf: &str, width: u32| StructureRecipe {
            name: name.to_owned(),
            perf_name: perf.to_owned(),
            width,
        };
        let fub = |name: &str,
                   structures: Vec<StructureRecipe>,
                   channels: usize,
                   fsm_loops: usize,
                   control_regs: usize| FubRecipe {
            name: name.to_owned(),
            structures,
            channels,
            channel_width: 4,
            stages: (1, 3),
            join_prob: 0.12,
            split_prob: 0.08,
            fsm_loops,
            fsm_size: (2, 4),
            control_regs,
            domain: 0,
        };
        SynthConfig {
            seed,
            name: "embedded_like".to_owned(),
            fubs: vec![
                fub("fetch", vec![s("fb", "fetch_buffer", 16)], 3, 1, 1),
                fub("decode", vec![s("uq", "uop_queue", 12)], 3, 1, 1),
                fub("exec", vec![s("rf", "prf", 32)], 4, 1, 1),
                fub("mem", vec![s("lsq", "load_queue", 12)], 3, 1, 1),
                fub("ctl", vec![s("csr", "csr_bank", 8)], 2, 3, 4),
            ],
            cross_fub_loops: 2,
        }
    }

    /// Scales channel counts and structure widths by `factor` (≥ 0.1),
    /// producing larger or smaller designs with the same shape. Factors
    /// above 1 also deepen the pipeline (stage ceiling grows with
    /// `sqrt(factor)`), so production-size designs get longer
    /// source-to-sink chains rather than just wider ones.
    pub fn scaled(mut self, factor: f64) -> Self {
        let f = factor.max(0.1);
        for fub in &mut self.fubs {
            fub.channels = ((fub.channels as f64 * f).round() as usize).max(1);
            fub.channel_width = ((fub.channel_width as f64 * f).round() as usize).max(1);
            fub.control_regs = ((fub.control_regs as f64 * f).round() as usize).max(1);
            fub.fsm_loops = ((fub.fsm_loops as f64 * f).round() as usize).max(1);
            for s in &mut fub.structures {
                s.width = ((f64::from(s.width) * f).round() as u32).max(2);
            }
            if f > 1.0 {
                let deep = (fub.stages.1 as f64 * f.sqrt()).round() as usize;
                fub.stages.1 = deep.max(fub.stages.0);
            }
        }
        self
    }

    /// Replicates this config's FUBs as `cores` independent cores sharing
    /// a synthetic uncore (LLC slice, ring stop, memory controller). The
    /// uncore FUBs come first in pipeline order — and in domain 0 — so
    /// every core can source from them, while core-private FUBs (domains
    /// `1..=cores`) never wire into a sibling core. Cross-FUB stall loops
    /// scale with the core count; `cores <= 1` is the identity.
    pub fn with_cores(mut self, cores: usize) -> Self {
        if cores <= 1 {
            return self;
        }
        let s = |name: &str, perf: &str, width: u32| StructureRecipe {
            name: name.to_owned(),
            perf_name: perf.to_owned(),
            width,
        };
        let unc = |name: &str, structures: Vec<StructureRecipe>, channels: usize| FubRecipe {
            name: name.to_owned(),
            structures,
            channels,
            channel_width: 6,
            stages: (2, 5),
            join_prob: 0.14,
            split_prob: 0.10,
            fsm_loops: 2,
            fsm_size: (2, 5),
            control_regs: 4,
            domain: 0,
        };
        let core_fubs = std::mem::take(&mut self.fubs);
        // Uncore structures reuse perf-catalog table names: the catalog is
        // the fixed vocabulary the port-AVF tables are keyed by.
        self.fubs = vec![
            unc(
                "unc_llc",
                vec![s("tag", "dtlb", 48), s("dat", "prf", 64)],
                6,
            ),
            unc("unc_ring", vec![s("rq", "uop_queue", 32)], 8),
            unc(
                "unc_mc",
                vec![
                    s("wq", "store_queue", 32),
                    s("rdq", "load_queue", 32),
                    s("cfg", "csr_bank", 16),
                ],
                4,
            ),
        ];
        for k in 0..cores {
            for recipe in &core_fubs {
                let mut r = recipe.clone();
                r.name = format!("c{k}_{}", r.name);
                r.domain = k + 1;
                self.fubs.push(r);
            }
        }
        self.cross_fub_loops *= cores;
        self.name = format!("{}_x{cores}", self.name);
        self
    }
}

/// Ground-truth metadata emitted alongside the generated netlist.
#[derive(Debug, Clone)]
pub struct SynthMeta {
    /// `(netlist structure id, perf-model structure name)` pairs — the
    /// content of the structure-to-RTL mapping step (§5.1).
    pub structure_map: Vec<(StructId, String)>,
    /// Names of generated control-register nodes.
    pub control_reg_names: Vec<String>,
}

/// A generated design: flattened netlist plus ground truth.
#[derive(Debug, Clone)]
pub struct SynthDesign {
    /// The generated netlist.
    pub netlist: Netlist,
    /// Ground-truth metadata.
    pub meta: SynthMeta,
}

/// Generates a design from a configuration.
///
/// # Panics
///
/// Panics only on internal invariant violations; any [`SynthConfig`] with
/// non-empty FUBs produces a valid netlist.
pub fn generate(config: &SynthConfig) -> SynthDesign {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut b = NetlistBuilder::new(config.name.clone());
    let mut meta = SynthMeta {
        structure_map: Vec::new(),
        control_reg_names: Vec::new(),
    };

    // Per-FUB export nodes available as sources to downstream FUBs, and
    // multi-input gates eligible to absorb cross-FUB feedback.
    let mut exports: Vec<Vec<NodeId>> = Vec::new();
    let mut feedback_gates: Vec<Vec<NodeId>> = Vec::new();
    let mut fub_ids: Vec<FubId> = Vec::new();

    for recipe in &config.fubs {
        // Domain fencing: a core FUB sees exports from its own core and
        // the shared uncore (domain 0), never from a sibling core.
        let upstream: Vec<NodeId> = exports
            .iter()
            .zip(&config.fubs)
            .filter(|(_, up)| up.domain == recipe.domain || up.domain == 0)
            .flat_map(|(ex, _)| ex)
            .copied()
            .collect();
        let (ex, fg, fub) = generate_fub(&mut b, recipe, &upstream, &mut meta, &mut rng);
        exports.push(ex);
        feedback_gates.push(fg);
        fub_ids.push(fub);
    }

    // Cross-FUB feedback loops: route a late FUB's export back into an
    // earlier FUB's join gate through a couple of staging flops.
    let n_fubs = config.fubs.len();
    if n_fubs >= 2 {
        for li in 0..config.cross_fub_loops {
            let late = rng.gen_range(1..n_fubs);
            let early = rng.gen_range(0..late);
            // Stall loops respect domain fencing too: same core, or
            // through the shared uncore.
            let (ld, ed) = (config.fubs[late].domain, config.fubs[early].domain);
            if ld != ed && ld != 0 && ed != 0 {
                continue;
            }
            let (Some(&src), true) = (
                pick(&exports[late], &mut rng),
                !feedback_gates[early].is_empty(),
            ) else {
                continue;
            };
            let &gate = pick(&feedback_gates[early], &mut rng).expect("non-empty");
            let f1 = b.add_node(
                format!("{}.fbk{li}_a", config.fubs[early].name),
                flop(),
                fub_ids[early],
            );
            let f2 = b.add_node(
                format!("{}.fbk{li}_b", config.fubs[early].name),
                flop(),
                fub_ids[early],
            );
            b.connect(src, f1);
            b.connect(f1, f2);
            b.connect(f2, gate);
        }
    }

    let netlist = b.finish().expect("generator produces valid netlists");
    SynthDesign { netlist, meta }
}

fn flop() -> NodeKind {
    NodeKind::Seq {
        kind: SeqKind::Flop,
        has_enable: false,
    }
}

fn pick<'a, T>(v: &'a [T], rng: &mut ChaCha8Rng) -> Option<&'a T> {
    if v.is_empty() {
        None
    } else {
        Some(&v[rng.gen_range(0..v.len())])
    }
}

fn rand_gate2(rng: &mut ChaCha8Rng) -> GateOp {
    match rng.gen_range(0..5) {
        0 => GateOp::And,
        1 => GateOp::Or,
        2 => GateOp::Nand,
        3 => GateOp::Nor,
        _ => GateOp::Xor,
    }
}

/// Generates one FUB; returns its export nodes and feedback-eligible gates.
fn generate_fub(
    b: &mut NetlistBuilder,
    recipe: &FubRecipe,
    upstream: &[NodeId],
    meta: &mut SynthMeta,
    rng: &mut ChaCha8Rng,
) -> (Vec<NodeId>, Vec<NodeId>, FubId) {
    let fub = b.add_fub(recipe.name.clone());
    let p = |local: &str| format!("{}.{local}", recipe.name);

    // Primary inputs: a small config/data bus.
    let inputs: Vec<NodeId> = (0..4)
        .map(|i| b.add_node(p(&format!("in{i}")), NodeKind::Input, fub))
        .collect();

    // Structures.
    let mut struct_ids: Vec<StructId> = Vec::new();
    for s in &recipe.structures {
        let sid = b.add_structure(p(&s.name), s.width, fub);
        meta.structure_map.push((sid, s.perf_name.clone()));
        struct_ids.push(sid);
    }

    // Control registers: enabled flops loaded from the config bus, named by
    // the `creg` convention the SART control-register identifier matches.
    let mut aux_pool: Vec<NodeId> = Vec::new();
    for i in 0..recipe.control_regs {
        let name = p(&format!("creg_{i}"));
        let q = b.add_node(
            name.clone(),
            NodeKind::Seq {
                kind: SeqKind::Flop,
                has_enable: true,
            },
            fub,
        );
        let d = inputs[i % inputs.len()];
        let en = inputs[(i + 1) % inputs.len()];
        b.connect(d, q);
        b.connect(en, q);
        meta.control_reg_names.push(name);
        aux_pool.push(q);
    }

    // FSM loops: a ring of flops closed through a 2-input gate that also
    // samples an external signal, so the loop has an entry point.
    for l in 0..recipe.fsm_loops {
        let len = rng.gen_range(recipe.fsm_size.0..=recipe.fsm_size.1).max(2);
        let mut ring: Vec<NodeId> = Vec::new();
        for k in 0..len {
            ring.push(b.add_node(p(&format!("fsm{l}_q{k}")), flop(), fub));
        }
        let g = b.add_node(
            p(&format!("fsm{l}_g")),
            NodeKind::Comb(rand_gate2(rng)),
            fub,
        );
        for k in 1..len {
            b.connect(ring[k - 1], ring[k]);
        }
        b.connect(ring[len - 1], g);
        let ext = *pick(upstream, rng)
            .or_else(|| pick(&inputs, rng))
            .expect("inputs are non-empty");
        b.connect(ext, g);
        b.connect(g, ring[0]);
        // FSM state is visible to the datapath (loop AVF ripples outward).
        aux_pool.extend(ring);
    }

    // Data-path channels.
    let mut exports: Vec<NodeId> = Vec::new();
    let mut feedback_gates: Vec<NodeId> = Vec::new();
    let mut split_taps: Vec<NodeId> = Vec::new();
    let mut gate_seq = 0usize;

    for c in 0..recipe.channels {
        let depth = rng.gen_range(recipe.stages.0..=recipe.stages.1).max(1);
        for bit in 0..recipe.channel_width {
            // Source: a structure cell (read port) when available, else an
            // upstream FUB export, else a primary input.
            let mut cur = source_node(b, &struct_ids, upstream, &inputs, rng);
            for stage in 0..depth {
                if rng.gen_bool(recipe.join_prob) && !aux_pool.is_empty() {
                    let aux = *pick(&aux_pool, rng).expect("non-empty");
                    let g = b.add_node(
                        p(&format!("ch{c}_b{bit}_s{stage}_j{gate_seq}")),
                        NodeKind::Comb(rand_gate2(rng)),
                        fub,
                    );
                    gate_seq += 1;
                    b.connect(cur, g);
                    b.connect(aux, g);
                    feedback_gates.push(g);
                    cur = g;
                }
                let q = b.add_node(p(&format!("ch{c}_b{bit}_q{stage}")), flop(), fub);
                b.connect(cur, q);
                cur = q;
                if rng.gen_bool(recipe.split_prob) {
                    split_taps.push(cur);
                }
            }
            // Sink: a structure write port or an exported output.
            sink_node(
                b,
                cur,
                &struct_ids,
                &mut exports,
                fub,
                &p(&format!("ch{c}_b{bit}_out")),
                rng,
            );
            // Channel state becomes join material for later channels;
            // the pool is a sliding window so cross-coupling stays sparse
            // (real datapaths do not join every prior signal).
            aux_pool.push(cur);
            if aux_pool.len() > 24 {
                aux_pool.remove(0);
            }
        }
    }

    // Distribution-split branches: taps flow through a short staging pipe to
    // a secondary sink.
    for (ti, tap) in split_taps.iter().enumerate() {
        let q1 = b.add_node(p(&format!("sp{ti}_q0")), flop(), fub);
        b.connect(*tap, q1);
        let q2 = b.add_node(p(&format!("sp{ti}_q1")), flop(), fub);
        b.connect(q1, q2);
        sink_node(
            b,
            q2,
            &struct_ids,
            &mut exports,
            fub,
            &p(&format!("sp{ti}_out")),
            rng,
        );
    }

    (exports, feedback_gates, fub)
}

/// Picks a data source: structure read cell, upstream export, or input.
fn source_node(
    b: &mut NetlistBuilder,
    struct_ids: &[StructId],
    upstream: &[NodeId],
    inputs: &[NodeId],
    rng: &mut ChaCha8Rng,
) -> NodeId {
    let roll: f64 = rng.gen();
    if roll < 0.6 && !struct_ids.is_empty() {
        let sid = *pick(struct_ids, rng).expect("non-empty");
        let w = b.structure_width(sid);
        b.structure_cell(sid, rng.gen_range(0..w))
    } else if roll < 0.9 && !upstream.is_empty() {
        *pick(upstream, rng).expect("non-empty")
    } else {
        *pick(inputs, rng).expect("non-empty")
    }
}

/// Routes `cur` into a structure write cell or an exported FUB output.
fn sink_node(
    b: &mut NetlistBuilder,
    cur: NodeId,
    struct_ids: &[StructId],
    exports: &mut Vec<NodeId>,
    fub: FubId,
    out_name: &str,
    rng: &mut ChaCha8Rng,
) {
    if rng.gen_bool(0.8) && !struct_ids.is_empty() {
        let sid = *pick(struct_ids, rng).expect("non-empty");
        let w = b.structure_width(sid);
        let cell = b.structure_cell(sid, rng.gen_range(0..w));
        b.connect(cur, cell);
    } else {
        let o = b.add_node(out_name, NodeKind::Output, fub);
        b.connect(cur, o);
        exports.push(o);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scc::find_loops;
    use crate::stats::DesignCensus;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SynthConfig::xeon_like(42);
        let d1 = generate(&cfg);
        let d2 = generate(&cfg);
        assert_eq!(d1.netlist.node_count(), d2.netlist.node_count());
        assert_eq!(d1.netlist.edge_count(), d2.netlist.edge_count());
        for id in d1.netlist.nodes() {
            assert_eq!(d1.netlist.name(id), d2.netlist.name(id));
            assert_eq!(d1.netlist.kind(id), d2.netlist.kind(id));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&SynthConfig::xeon_like(1));
        let b = generate(&SynthConfig::xeon_like(2));
        assert_ne!(a.netlist.node_count(), b.netlist.node_count());
    }

    #[test]
    fn xeon_like_has_expected_shape() {
        let d = generate(&SynthConfig::xeon_like(7));
        let nl = &d.netlist;
        assert_eq!(nl.fub_count(), 12);
        assert!(nl.seq_count() > 500, "seq_count = {}", nl.seq_count());
        assert!(nl.structure_count() >= 12);
        assert!(!d.meta.control_reg_names.is_empty());
        // Control registers resolve to enabled flops.
        for name in &d.meta.control_reg_names {
            let id = nl.lookup(name).expect("creg exists");
            assert!(matches!(
                nl.kind(id),
                NodeKind::Seq {
                    has_enable: true,
                    ..
                }
            ));
        }
        // Structure map covers every declared structure.
        assert_eq!(d.meta.structure_map.len(), nl.structure_count());
    }

    #[test]
    fn loops_exist_and_are_minority() {
        let d = generate(&SynthConfig::xeon_like(5));
        let loops = find_loops(&d.netlist);
        assert!(loops.loop_seq_count() > 0, "generator must make FSM loops");
        let census = DesignCensus::new(&d.netlist, &loops);
        let frac = census.loop_fraction();
        assert!(
            frac > 0.0 && frac < 0.5,
            "loop fraction {frac} out of expected band"
        );
    }

    #[test]
    fn embedded_preset_is_small_and_valid() {
        let d = generate(&SynthConfig::embedded_like(9));
        assert_eq!(d.netlist.fub_count(), 5);
        assert!(d.netlist.node_count() < 1000);
        assert!(d.netlist.seq_count() > 30);
        let loops = find_loops(&d.netlist);
        assert!(loops.loop_seq_count() > 0);
    }

    #[test]
    fn scaled_config_changes_size() {
        let small = generate(&SynthConfig::xeon_like(3).scaled(0.5));
        let big = generate(&SynthConfig::xeon_like(3).scaled(2.0));
        assert!(big.netlist.node_count() > small.netlist.node_count() * 2);
    }

    #[test]
    fn multicore_design_is_domain_fenced() {
        let cfg = SynthConfig::xeon_like(13).with_cores(3);
        assert_eq!(cfg.name, "xeon_like_x3");
        // 3 uncore FUBs + 3 × 12 core FUBs.
        assert_eq!(cfg.fubs.len(), 3 + 3 * 12);
        let d = generate(&cfg);
        let nl = &d.netlist;
        assert_eq!(nl.fub_count(), 39);
        // Core ownership from the FUB name prefix; uncore FUBs have none.
        let core_of = |fub: FubId| -> Option<u32> {
            let name = nl.fub_name(fub);
            name.strip_prefix('c')?
                .split('_')
                .next()?
                .parse::<u32>()
                .ok()
        };
        // No edge may connect two *different* cores directly; everything
        // cross-core must route through the uncore (domain 0).
        for to in nl.nodes() {
            let td = core_of(nl.fub(to));
            for &from in nl.fanin(to) {
                let fd = core_of(nl.fub(from));
                if let (Some(a), Some(b)) = (fd, td) {
                    assert_eq!(a, b, "cross-core edge {} -> {}", nl.name(from), nl.name(to));
                }
            }
        }
        // Replication is real: each core contributes roughly one single
        // core's worth of nodes.
        let single = generate(&SynthConfig::xeon_like(13));
        assert!(nl.node_count() > single.netlist.node_count() * 2);
    }

    #[test]
    fn with_cores_one_is_identity() {
        let base = SynthConfig::xeon_like(5);
        assert_eq!(base.clone().with_cores(1), base);
    }

    #[test]
    fn scaling_up_deepens_pipelines() {
        let base = SynthConfig::xeon_like(1);
        let deep = SynthConfig::xeon_like(1).scaled(4.0);
        for (b, d) in base.fubs.iter().zip(&deep.fubs) {
            assert!(d.stages.1 >= b.stages.1 * 2, "{}: {:?}", d.name, d.stages);
        }
        // Scaling *down* leaves depth alone.
        let shallow = SynthConfig::xeon_like(1).scaled(0.5);
        for (b, s) in base.fubs.iter().zip(&shallow.fubs) {
            assert_eq!(b.stages, s.stages);
        }
    }

    #[test]
    fn exlif_roundtrip_of_generated_design() {
        let d = generate(&SynthConfig::xeon_like(11).scaled(0.3));
        let text = crate::exlif::write(&d.netlist);
        let nl2 = crate::flatten::parse_netlist(&text).unwrap();
        assert_eq!(nl2.node_count(), d.netlist.node_count());
        assert_eq!(nl2.edge_count(), d.netlist.edge_count());
        assert_eq!(nl2.seq_count(), d.netlist.seq_count());
    }
}
