//! RTL node-graph substrate for sequential-AVF analysis.
//!
//! This crate provides everything the SART stage (in `seqavf-core`) needs to
//! know about a design's *structure*, without modelling its logic values:
//!
//! - [`graph`] — the flattened node graph ([`Netlist`], [`NodeId`],
//!   [`NodeKind`]) with CSR fan-in/fan-out adjacency, functional-block (FUB)
//!   labels, and ACE-structure bit cells.
//! - [`exlif`] — a textual structural netlist format modelled on the
//!   intermediate "EXLIF" files the paper's tool flow consumes, with a parser
//!   and writer.
//! - [`flatten`] — hierarchy expansion: `.subckt` instances of `.model`
//!   blocks are inlined so that each FUB becomes a single flat model,
//!   mirroring the paper's post-compilation expansion step (§5.1).
//! - [`intern`] — the global symbol interner ([`Sym`], [`SymbolTable`])
//!   that keeps owned strings off the graph's hot paths.
//! - [`scc`] — Tarjan strongly-connected-component detection used to find
//!   state-machine feedback loops (§4.3).
//! - [`snapshot`] — the `seqavf-graph/2` versioned binary format for
//!   caching flattened graphs (plus their loop analysis) on disk.
//! - [`synth`] — a seeded generator of processor-shaped synthetic designs
//!   (pipelines, logical joins, distribution splits, FSM loops, control
//!   registers) standing in for the proprietary Intel Xeon RTL.
//! - [`stats`] — node censuses used by the paper's reporting (§6.1).
//!
//! # Quick tour
//!
//! ```
//! use seqavf_netlist::graph::{NetlistBuilder, NodeKind, GateOp, SeqKind};
//!
//! let mut b = NetlistBuilder::new("demo");
//! let fub = b.add_fub("exec");
//! let s1 = b.add_structure("rs", 1, fub);
//! let rd = b.structure_cell(s1, 0);
//! let q = b.add_node("q1", NodeKind::Seq { kind: SeqKind::Flop, has_enable: false }, fub);
//! let g = b.add_node("g1", NodeKind::Comb(GateOp::Not), fub);
//! b.connect(rd, q);
//! b.connect(q, g);
//! let netlist = b.finish().unwrap();
//! assert_eq!(netlist.node_count(), 3);
//! ```

pub mod error;
pub mod exlif;
pub mod flatten;
pub mod graph;
pub mod intern;
pub mod scc;
pub mod snapshot;
pub mod stats;
pub mod synth;
pub mod verilog;

pub use error::{BuildError, ExlifError};
pub use graph::{FubId, GateOp, Netlist, NetlistBuilder, NodeId, NodeKind, SeqKind, StructId};
pub use intern::{Fnv1a64, Sym, SymbolTable, WideFnv64};
pub use snapshot::SnapshotError;
