//! EXLIF — a textual structural netlist format.
//!
//! The paper's tool flow compiles production RTL into intermediate "EXLIF"
//! files, one per functional block (FUB), then expands all hierarchy so each
//! file is a single flat model (§5.1). This module defines an equivalent
//! text format with a parser ([`parse`]) and writer ([`write()`]); the
//! companion [`crate::flatten`] module expands `.subckt` hierarchy and
//! builds a [`crate::Netlist`].
//!
//! The parser lexes lines as zero-copy `&str` slices over the input buffer
//! and interns every identifier into the AST's [`SymbolTable`]; no owned
//! `String` is allocated per token (only error payloads materialize names).
//!
//! # Grammar
//!
//! Line-oriented; `#` starts a comment; blank lines are ignored.
//!
//! ```text
//! .design <name>
//!
//! .model <name>               # reusable sub-circuit
//!   .minput <port>...
//!   .moutput <net>...         # exported internal nets
//!   <gate/flop/latch/subckt statements>
//! .endmodel
//!
//! .fub <name>
//!   .input <net>              # design-boundary input
//!   .output <net> <src>       # design/FUB-boundary output
//!   .struct <name> <width>    # ACE structure: cells <name>[0..width)
//!   .sw <name>[<bit>] <src>   # structure write-port connection
//!   .gate <op> <out> <in>...  # op: buf not and or nand nor xor xnor mux const0 const1
//!   .flop <out> <d> [<en>]    # flip-flop, optional write enable
//!   .latch <out> <d> [<en>]   # level-sensitive latch
//!   .subckt <model> <inst> <formal>=<actual>...
//! .endfub
//!
//! .end
//! ```
//!
//! Net names are FUB-local; a reference containing a dot (`other_fub.net`)
//! resolves design-globally, which is how inter-FUB wiring is expressed.

use crate::error::{ExlifError, ExlifErrorKind};
use crate::graph::{GateOp, Netlist, NodeKind, SeqKind};
use crate::intern::{Sym, SymbolTable};

/// A parsed EXLIF design, prior to hierarchy expansion.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignAst {
    /// Design name from the `.design` directive.
    pub name: String,
    /// Reusable `.model` blocks.
    pub models: Vec<ModelAst>,
    /// Top-level functional blocks.
    pub fubs: Vec<FubAst>,
    /// Interner holding every identifier referenced by the AST. The table
    /// is handed to [`crate::flatten::build_netlist`], which extends it with
    /// flattened hierarchical names.
    pub symbols: SymbolTable,
}

/// A reusable sub-circuit template.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelAst {
    /// Model name.
    pub name: Sym,
    /// Formal input port names.
    pub inputs: Vec<Sym>,
    /// Exported internal net names.
    pub outputs: Vec<Sym>,
    /// Body statements (gates, sequentials, nested `.subckt`s).
    pub stmts: Vec<Stmt>,
}

/// One functional block.
#[derive(Debug, Clone, PartialEq)]
pub struct FubAst {
    /// FUB name.
    pub name: Sym,
    /// Body statements.
    pub stmts: Vec<Stmt>,
}

/// A single EXLIF statement. Identifiers are interned [`Sym`]s into the
/// owning [`DesignAst::symbols`] table.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `.input <net>` — design-boundary input.
    Input(Sym),
    /// `.output <net> <src>` — boundary output driven by `src`.
    Output {
        /// Output net name.
        name: Sym,
        /// Driving net.
        src: Sym,
    },
    /// `.struct <name> <width>` — ACE structure declaration.
    Struct {
        /// Structure name.
        name: Sym,
        /// Number of bit cells.
        width: u32,
    },
    /// `.sw <name>[<bit>] <src>` — connects `src` to a structure cell's
    /// write port.
    StructWrite {
        /// Structure name.
        structure: Sym,
        /// Bit index.
        bit: u32,
        /// Driving net.
        src: Sym,
    },
    /// `.gate <op> <out> <ins>...`
    Gate {
        /// Gate operator.
        op: GateOp,
        /// Output net name.
        out: Sym,
        /// Input nets in order.
        ins: Vec<Sym>,
    },
    /// `.flop`/`.latch <out> <d> [<en>]`
    Seq {
        /// Flop or latch.
        kind: SeqKind,
        /// Output net name.
        out: Sym,
        /// Data net.
        d: Sym,
        /// Optional write-enable net.
        en: Option<Sym>,
    },
    /// `.subckt <model> <inst> <formal>=<actual>...`
    Subckt {
        /// Referenced model name.
        model: Sym,
        /// Instance name (prefixes internal nets after flattening).
        inst: Sym,
        /// `(formal, actual)` port connections.
        conns: Vec<(Sym, Sym)>,
    },
}

fn err(line: usize, kind: ExlifErrorKind) -> ExlifError {
    ExlifError { line, kind }
}

/// Splits `name[bit]` into its components.
pub(crate) fn parse_bit_ref(s: &str) -> Option<(&str, u32)> {
    let open = s.find('[')?;
    let close = s.strip_suffix(']')?;
    let bit: u32 = close[open + 1..].parse().ok()?;
    Some((&s[..open], bit))
}

/// Pops the next whitespace token as a zero-copy slice.
fn operand<'a>(
    tok: &mut std::str::SplitWhitespace<'a>,
    line: usize,
    what: &'static str,
) -> Result<&'a str, ExlifError> {
    tok.next()
        .ok_or_else(|| err(line, ExlifErrorKind::MissingOperand(what)))
}

/// Parses EXLIF text into a [`DesignAst`].
///
/// # Errors
///
/// Returns an [`ExlifError`] carrying the 1-based line number of the first
/// syntactic problem. Semantic problems (undefined nets, unknown models) are
/// reported by [`crate::flatten::build_netlist`].
pub fn parse(text: &str) -> Result<DesignAst, ExlifError> {
    #[derive(PartialEq)]
    enum Scope {
        Top,
        Model,
        Fub,
    }
    let mut scope = Scope::Top;
    let mut symbols = SymbolTable::new();
    let mut design_name: Option<String> = None;
    let mut models: Vec<ModelAst> = Vec::new();
    let mut fubs: Vec<FubAst> = Vec::new();
    let mut cur_model: Option<ModelAst> = None;
    let mut cur_fub: Option<FubAst> = None;
    let mut ended = false;

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let content = match raw.find('#') {
            Some(i) => &raw[..i],
            None => raw,
        };
        let mut tok = content.split_whitespace();
        let Some(head) = tok.next() else { continue };
        if ended {
            return Err(err(line, ExlifErrorKind::OutOfScope("after .end")));
        }
        match head {
            ".design" => {
                if scope != Scope::Top || design_name.is_some() {
                    return Err(err(line, ExlifErrorKind::OutOfScope(".design")));
                }
                design_name = Some(operand(&mut tok, line, "design name")?.to_owned());
            }
            ".model" => {
                if scope != Scope::Top {
                    return Err(err(line, ExlifErrorKind::OutOfScope(".model")));
                }
                let name = symbols.intern(operand(&mut tok, line, "model name")?);
                cur_model = Some(ModelAst {
                    name,
                    inputs: Vec::new(),
                    outputs: Vec::new(),
                    stmts: Vec::new(),
                });
                scope = Scope::Model;
            }
            ".endmodel" => {
                if scope != Scope::Model {
                    return Err(err(line, ExlifErrorKind::OutOfScope(".endmodel")));
                }
                models.push(cur_model.take().expect("model scope open"));
                scope = Scope::Top;
            }
            ".minput" => {
                let m = cur_model
                    .as_mut()
                    .ok_or_else(|| err(line, ExlifErrorKind::OutOfScope(".minput")))?;
                m.inputs.extend(tok.map(|t| symbols.intern(t)));
            }
            ".moutput" => {
                let m = cur_model
                    .as_mut()
                    .ok_or_else(|| err(line, ExlifErrorKind::OutOfScope(".moutput")))?;
                m.outputs.extend(tok.map(|t| symbols.intern(t)));
            }
            ".fub" => {
                if scope != Scope::Top {
                    return Err(err(line, ExlifErrorKind::OutOfScope(".fub")));
                }
                let name = symbols.intern(operand(&mut tok, line, "fub name")?);
                cur_fub = Some(FubAst {
                    name,
                    stmts: Vec::new(),
                });
                scope = Scope::Fub;
            }
            ".endfub" => {
                if scope != Scope::Fub {
                    return Err(err(line, ExlifErrorKind::OutOfScope(".endfub")));
                }
                fubs.push(cur_fub.take().expect("fub scope open"));
                scope = Scope::Top;
            }
            ".end" => {
                if scope != Scope::Top {
                    return Err(err(
                        line,
                        ExlifErrorKind::UnexpectedEof("open scope at .end"),
                    ));
                }
                ended = true;
            }
            ".input" => {
                let s = Stmt::Input(symbols.intern(operand(&mut tok, line, "input net")?));
                push_stmt(&mut cur_model, &mut cur_fub, s, line, ".input", false)?;
            }
            ".output" => {
                let name = symbols.intern(operand(&mut tok, line, "output net")?);
                let src = symbols.intern(operand(&mut tok, line, "output source")?);
                let s = Stmt::Output { name, src };
                push_stmt(&mut cur_model, &mut cur_fub, s, line, ".output", false)?;
            }
            ".struct" => {
                let name = symbols.intern(operand(&mut tok, line, "structure name")?);
                let w = operand(&mut tok, line, "structure width")?;
                let width: u32 = w
                    .parse()
                    .map_err(|_| err(line, ExlifErrorKind::BadNumber(w.to_owned())))?;
                let s = Stmt::Struct { name, width };
                push_stmt(&mut cur_model, &mut cur_fub, s, line, ".struct", false)?;
            }
            ".sw" => {
                let target = operand(&mut tok, line, "structure bit")?;
                let src = symbols.intern(operand(&mut tok, line, "write source")?);
                let (structure, bit) = parse_bit_ref(target)
                    .ok_or_else(|| err(line, ExlifErrorKind::BadBitRef(target.to_owned())))?;
                let s = Stmt::StructWrite {
                    structure: symbols.intern(structure),
                    bit,
                    src,
                };
                push_stmt(&mut cur_model, &mut cur_fub, s, line, ".sw", false)?;
            }
            ".gate" => {
                let opname = operand(&mut tok, line, "gate op")?;
                let op = GateOp::from_mnemonic(opname).ok_or_else(|| {
                    err(line, ExlifErrorKind::UnknownDirective(opname.to_owned()))
                })?;
                let out = symbols.intern(operand(&mut tok, line, "gate output")?);
                let ins: Vec<Sym> = tok.map(|t| symbols.intern(t)).collect();
                let s = Stmt::Gate { op, out, ins };
                push_stmt(&mut cur_model, &mut cur_fub, s, line, ".gate", true)?;
            }
            ".flop" | ".latch" => {
                let kind = if head == ".flop" {
                    SeqKind::Flop
                } else {
                    SeqKind::Latch
                };
                let out = symbols.intern(operand(&mut tok, line, "sequential output")?);
                let d = symbols.intern(operand(&mut tok, line, "data net")?);
                let en = tok.next().map(|t| symbols.intern(t));
                let s = Stmt::Seq { kind, out, d, en };
                let directive: &'static str = if head == ".flop" { ".flop" } else { ".latch" };
                push_stmt(&mut cur_model, &mut cur_fub, s, line, directive, true)?;
            }
            ".subckt" => {
                let model = symbols.intern(operand(&mut tok, line, "model name")?);
                let inst = symbols.intern(operand(&mut tok, line, "instance name")?);
                let mut conns = Vec::new();
                for pair in tok {
                    let Some((f, a)) = pair.split_once('=') else {
                        return Err(err(line, ExlifErrorKind::BadBitRef(pair.to_owned())));
                    };
                    conns.push((symbols.intern(f), symbols.intern(a)));
                }
                let s = Stmt::Subckt { model, inst, conns };
                push_stmt(&mut cur_model, &mut cur_fub, s, line, ".subckt", true)?;
            }
            other => {
                return Err(err(
                    line,
                    ExlifErrorKind::UnknownDirective(other.to_owned()),
                ));
            }
        }
    }
    if cur_model.is_some() {
        return Err(err(
            text.lines().count(),
            ExlifErrorKind::UnexpectedEof("a .model block"),
        ));
    }
    if cur_fub.is_some() {
        return Err(err(
            text.lines().count(),
            ExlifErrorKind::UnexpectedEof("a .fub block"),
        ));
    }
    Ok(DesignAst {
        name: design_name.unwrap_or_else(|| "unnamed".to_owned()),
        models,
        fubs,
        symbols,
    })
}

/// Routes a statement to the open model or FUB scope.
fn push_stmt(
    cur_model: &mut Option<ModelAst>,
    cur_fub: &mut Option<FubAst>,
    stmt: Stmt,
    line: usize,
    directive: &'static str,
    allowed_in_model: bool,
) -> Result<(), ExlifError> {
    if let Some(f) = cur_fub.as_mut() {
        f.stmts.push(stmt);
        Ok(())
    } else if let Some(m) = cur_model.as_mut() {
        if !allowed_in_model {
            return Err(err(line, ExlifErrorKind::OutOfScope(directive)));
        }
        m.stmts.push(stmt);
        Ok(())
    } else {
        Err(err(line, ExlifErrorKind::OutOfScope(directive)))
    }
}

/// Serializes a flattened [`Netlist`] back to EXLIF text.
///
/// The output contains no `.model`/`.subckt` hierarchy — one `.fub` block
/// per FUB with fully-qualified cross-FUB references — and re-parses to an
/// equivalent graph.
pub fn write(nl: &Netlist) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, ".design {}", nl.design_name());
    // Node names carry a "<fub>." prefix (added at parse/generation time);
    // definitions are written with the prefix stripped so a re-parse adds it
    // back exactly once. References to nodes in *other* FUBs keep their full
    // dotted name, which the parser resolves design-globally.
    let stripped = |fub: crate::graph::FubId, name: &str| -> String {
        let prefix = format!("{}.", nl.fub_name(fub));
        name.strip_prefix(&prefix).unwrap_or(name).to_owned()
    };
    let operand = |fub: crate::graph::FubId, id: crate::graph::NodeId| -> String {
        if nl.fub(id) == fub {
            stripped(fub, nl.name(id))
        } else {
            nl.name(id).to_owned()
        }
    };
    for fub in nl.fub_ids() {
        let _ = writeln!(out, ".fub {}", nl.fub_name(fub));
        // Structures first, then nodes in id order.
        for sid in nl.structure_ids() {
            let s = nl.structure(sid);
            if s.fub() == fub {
                let _ = writeln!(out, ".struct {} {}", stripped(fub, s.name()), s.width());
            }
        }
        for id in nl.nodes() {
            if nl.fub(id) != fub {
                continue;
            }
            let ins = nl.fanin(id);
            let def = stripped(fub, nl.name(id));
            match nl.kind(id) {
                NodeKind::Input => {
                    let _ = writeln!(out, ".input {def}");
                }
                NodeKind::Output => {
                    let _ = writeln!(out, ".output {def} {}", operand(fub, ins[0]));
                }
                NodeKind::Comb(op) => {
                    let _ = write!(out, ".gate {} {def}", op.mnemonic());
                    for &i in ins {
                        let _ = write!(out, " {}", operand(fub, i));
                    }
                    let _ = writeln!(out);
                }
                NodeKind::Seq { kind, .. } => {
                    let word = match kind {
                        SeqKind::Flop => ".flop",
                        SeqKind::Latch => ".latch",
                    };
                    let _ = write!(out, "{word} {def} {}", operand(fub, ins[0]));
                    if ins.len() == 2 {
                        let _ = write!(out, " {}", operand(fub, ins[1]));
                    }
                    let _ = writeln!(out);
                }
                NodeKind::StructCell { .. } => {
                    for &i in ins {
                        let _ = writeln!(out, ".sw {def} {}", operand(fub, i));
                    }
                }
            }
        }
        let _ = writeln!(out, ".endfub");
    }
    let _ = writeln!(out, ".end");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: &str = r"
# a small design
.design demo
.model stage
  .minput d
  .moutput q
  .flop q d
.endmodel
.fub f0
  .input din
  .struct st 2
  .gate and g1 din st[0]
  .flop q1 g1
  .sw st[1] q1
  .subckt stage u0 d=q1
  .output dout u0.q
.endfub
.end
";

    fn names(ast: &DesignAst, syms: &[Sym]) -> Vec<String> {
        syms.iter()
            .map(|&s| ast.symbols.resolve(s).to_owned())
            .collect()
    }

    #[test]
    fn parses_small_design() {
        let ast = parse(SMALL).unwrap();
        assert_eq!(ast.name, "demo");
        assert_eq!(ast.models.len(), 1);
        assert_eq!(names(&ast, &ast.models[0].inputs), vec!["d"]);
        assert_eq!(names(&ast, &ast.models[0].outputs), vec!["q"]);
        assert_eq!(ast.fubs.len(), 1);
        assert_eq!(ast.fubs[0].stmts.len(), 7);
    }

    #[test]
    fn identifiers_are_interned_once() {
        let ast = parse(SMALL).unwrap();
        // "q1" appears three times in the source; one symbol serves all.
        let q1 = ast.symbols.lookup("q1").unwrap();
        let count = ast.fubs[0]
            .stmts
            .iter()
            .filter(|s| match s {
                Stmt::Seq { out, .. } => *out == q1,
                _ => false,
            })
            .count();
        assert_eq!(count, 1);
        assert_eq!(ast.symbols.resolve(q1), "q1");
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let ast = parse("\n# hi\n.design x\n.fub f\n.endfub\n.end\n").unwrap();
        assert_eq!(ast.name, "x");
    }

    #[test]
    fn unknown_directive_reports_line() {
        let e = parse(".design x\n.bogus\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(matches!(e.kind, ExlifErrorKind::UnknownDirective(_)));
    }

    #[test]
    fn missing_operand_reported() {
        let e = parse(".design x\n.fub f\n.gate and\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(matches!(e.kind, ExlifErrorKind::MissingOperand(_)));
    }

    #[test]
    fn bad_width_reported() {
        let e = parse(".design x\n.fub f\n.struct s abc\n").unwrap_err();
        assert!(matches!(e.kind, ExlifErrorKind::BadNumber(_)));
    }

    #[test]
    fn bad_bit_ref_reported() {
        let e = parse(".design x\n.fub f\n.sw st(1) q\n").unwrap_err();
        assert!(matches!(e.kind, ExlifErrorKind::BadBitRef(_)));
    }

    #[test]
    fn gate_outside_scope_rejected() {
        let e = parse(".design x\n.gate and g a b\n").unwrap_err();
        assert!(matches!(e.kind, ExlifErrorKind::OutOfScope(_)));
    }

    #[test]
    fn input_inside_model_rejected() {
        let e = parse(".design x\n.model m\n.input a\n.endmodel\n").unwrap_err();
        assert!(matches!(e.kind, ExlifErrorKind::OutOfScope(".input")));
    }

    #[test]
    fn unclosed_fub_reported() {
        let e = parse(".design x\n.fub f\n.input a\n").unwrap_err();
        assert!(matches!(e.kind, ExlifErrorKind::UnexpectedEof(_)));
    }

    #[test]
    fn text_after_end_rejected() {
        let e = parse(".design x\n.end\n.fub f\n").unwrap_err();
        assert!(matches!(e.kind, ExlifErrorKind::OutOfScope(_)));
    }

    #[test]
    fn bit_ref_parsing() {
        assert_eq!(parse_bit_ref("abc[12]"), Some(("abc", 12)));
        assert_eq!(parse_bit_ref("abc"), None);
        assert_eq!(parse_bit_ref("abc[x]"), None);
        assert_eq!(parse_bit_ref("abc[3"), None);
    }
}
