//! EXLIF — a textual structural netlist format.
//!
//! The paper's tool flow compiles production RTL into intermediate "EXLIF"
//! files, one per functional block (FUB), then expands all hierarchy so each
//! file is a single flat model (§5.1). This module defines an equivalent
//! text format with a parser ([`parse`]) and writer ([`write()`]); the
//! companion [`crate::flatten`] module expands `.subckt` hierarchy and
//! builds a [`crate::Netlist`].
//!
//! # Grammar
//!
//! Line-oriented; `#` starts a comment; blank lines are ignored.
//!
//! ```text
//! .design <name>
//!
//! .model <name>               # reusable sub-circuit
//!   .minput <port>...
//!   .moutput <net>...         # exported internal nets
//!   <gate/flop/latch/subckt statements>
//! .endmodel
//!
//! .fub <name>
//!   .input <net>              # design-boundary input
//!   .output <net> <src>       # design/FUB-boundary output
//!   .struct <name> <width>    # ACE structure: cells <name>[0..width)
//!   .sw <name>[<bit>] <src>   # structure write-port connection
//!   .gate <op> <out> <in>...  # op: buf not and or nand nor xor xnor mux const0 const1
//!   .flop <out> <d> [<en>]    # flip-flop, optional write enable
//!   .latch <out> <d> [<en>]   # level-sensitive latch
//!   .subckt <model> <inst> <formal>=<actual>...
//! .endfub
//!
//! .end
//! ```
//!
//! Net names are FUB-local; a reference containing a dot (`other_fub.net`)
//! resolves design-globally, which is how inter-FUB wiring is expressed.

use crate::error::{ExlifError, ExlifErrorKind};
use crate::graph::{GateOp, Netlist, NodeKind, SeqKind};

/// A parsed EXLIF design, prior to hierarchy expansion.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignAst {
    /// Design name from the `.design` directive.
    pub name: String,
    /// Reusable `.model` blocks.
    pub models: Vec<ModelAst>,
    /// Top-level functional blocks.
    pub fubs: Vec<FubAst>,
}

/// A reusable sub-circuit template.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelAst {
    /// Model name.
    pub name: String,
    /// Formal input port names.
    pub inputs: Vec<String>,
    /// Exported internal net names.
    pub outputs: Vec<String>,
    /// Body statements (gates, sequentials, nested `.subckt`s).
    pub stmts: Vec<Stmt>,
}

/// One functional block.
#[derive(Debug, Clone, PartialEq)]
pub struct FubAst {
    /// FUB name.
    pub name: String,
    /// Body statements.
    pub stmts: Vec<Stmt>,
}

/// A single EXLIF statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `.input <net>` — design-boundary input.
    Input(String),
    /// `.output <net> <src>` — boundary output driven by `src`.
    Output {
        /// Output net name.
        name: String,
        /// Driving net.
        src: String,
    },
    /// `.struct <name> <width>` — ACE structure declaration.
    Struct {
        /// Structure name.
        name: String,
        /// Number of bit cells.
        width: u32,
    },
    /// `.sw <name>[<bit>] <src>` — connects `src` to a structure cell's
    /// write port.
    StructWrite {
        /// Structure name.
        structure: String,
        /// Bit index.
        bit: u32,
        /// Driving net.
        src: String,
    },
    /// `.gate <op> <out> <ins>...`
    Gate {
        /// Gate operator.
        op: GateOp,
        /// Output net name.
        out: String,
        /// Input nets in order.
        ins: Vec<String>,
    },
    /// `.flop`/`.latch <out> <d> [<en>]`
    Seq {
        /// Flop or latch.
        kind: SeqKind,
        /// Output net name.
        out: String,
        /// Data net.
        d: String,
        /// Optional write-enable net.
        en: Option<String>,
    },
    /// `.subckt <model> <inst> <formal>=<actual>...`
    Subckt {
        /// Referenced model name.
        model: String,
        /// Instance name (prefixes internal nets after flattening).
        inst: String,
        /// `(formal, actual)` port connections.
        conns: Vec<(String, String)>,
    },
}

fn err(line: usize, kind: ExlifErrorKind) -> ExlifError {
    ExlifError { line, kind }
}

/// Splits `name[bit]` into its components.
pub(crate) fn parse_bit_ref(s: &str) -> Option<(&str, u32)> {
    let open = s.find('[')?;
    let close = s.strip_suffix(']')?;
    let bit: u32 = close[open + 1..].parse().ok()?;
    Some((&s[..open], bit))
}

/// Parses EXLIF text into a [`DesignAst`].
///
/// # Errors
///
/// Returns an [`ExlifError`] carrying the 1-based line number of the first
/// syntactic problem. Semantic problems (undefined nets, unknown models) are
/// reported by [`crate::flatten::build_netlist`].
pub fn parse(text: &str) -> Result<DesignAst, ExlifError> {
    #[derive(PartialEq)]
    enum Scope {
        Top,
        Model,
        Fub,
    }
    let mut scope = Scope::Top;
    let mut design_name: Option<String> = None;
    let mut models: Vec<ModelAst> = Vec::new();
    let mut fubs: Vec<FubAst> = Vec::new();
    let mut cur_model: Option<ModelAst> = None;
    let mut cur_fub: Option<FubAst> = None;
    let mut ended = false;

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let content = match raw.find('#') {
            Some(i) => &raw[..i],
            None => raw,
        };
        let mut tok = content.split_whitespace();
        let Some(head) = tok.next() else { continue };
        if ended {
            return Err(err(line, ExlifErrorKind::OutOfScope("after .end")));
        }
        let mut operand = |what: &'static str| -> Result<String, ExlifError> {
            tok.next()
                .map(str::to_owned)
                .ok_or_else(|| err(line, ExlifErrorKind::MissingOperand(what)))
        };
        match head {
            ".design" => {
                if scope != Scope::Top || design_name.is_some() {
                    return Err(err(line, ExlifErrorKind::OutOfScope(".design")));
                }
                design_name = Some(operand("design name")?);
            }
            ".model" => {
                if scope != Scope::Top {
                    return Err(err(line, ExlifErrorKind::OutOfScope(".model")));
                }
                cur_model = Some(ModelAst {
                    name: operand("model name")?,
                    inputs: Vec::new(),
                    outputs: Vec::new(),
                    stmts: Vec::new(),
                });
                scope = Scope::Model;
            }
            ".endmodel" => {
                if scope != Scope::Model {
                    return Err(err(line, ExlifErrorKind::OutOfScope(".endmodel")));
                }
                models.push(cur_model.take().expect("model scope open"));
                scope = Scope::Top;
            }
            ".minput" => {
                let m = cur_model
                    .as_mut()
                    .ok_or_else(|| err(line, ExlifErrorKind::OutOfScope(".minput")))?;
                m.inputs.extend(tok.map(str::to_owned));
            }
            ".moutput" => {
                let m = cur_model
                    .as_mut()
                    .ok_or_else(|| err(line, ExlifErrorKind::OutOfScope(".moutput")))?;
                m.outputs.extend(tok.map(str::to_owned));
            }
            ".fub" => {
                if scope != Scope::Top {
                    return Err(err(line, ExlifErrorKind::OutOfScope(".fub")));
                }
                cur_fub = Some(FubAst {
                    name: operand("fub name")?,
                    stmts: Vec::new(),
                });
                scope = Scope::Fub;
            }
            ".endfub" => {
                if scope != Scope::Fub {
                    return Err(err(line, ExlifErrorKind::OutOfScope(".endfub")));
                }
                fubs.push(cur_fub.take().expect("fub scope open"));
                scope = Scope::Top;
            }
            ".end" => {
                if scope != Scope::Top {
                    return Err(err(
                        line,
                        ExlifErrorKind::UnexpectedEof("open scope at .end"),
                    ));
                }
                ended = true;
            }
            ".input" => {
                let s = Stmt::Input(operand("input net")?);
                push_stmt(&mut cur_model, &mut cur_fub, s, line, ".input", false)?;
            }
            ".output" => {
                let name = operand("output net")?;
                let src = operand("output source")?;
                let s = Stmt::Output { name, src };
                push_stmt(&mut cur_model, &mut cur_fub, s, line, ".output", false)?;
            }
            ".struct" => {
                let name = operand("structure name")?;
                let w = operand("structure width")?;
                let width: u32 = w
                    .parse()
                    .map_err(|_| err(line, ExlifErrorKind::BadNumber(w.clone())))?;
                let s = Stmt::Struct { name, width };
                push_stmt(&mut cur_model, &mut cur_fub, s, line, ".struct", false)?;
            }
            ".sw" => {
                let target = operand("structure bit")?;
                let src = operand("write source")?;
                let (structure, bit) = parse_bit_ref(&target)
                    .ok_or_else(|| err(line, ExlifErrorKind::BadBitRef(target.clone())))?;
                let s = Stmt::StructWrite {
                    structure: structure.to_owned(),
                    bit,
                    src,
                };
                push_stmt(&mut cur_model, &mut cur_fub, s, line, ".sw", false)?;
            }
            ".gate" => {
                let opname = operand("gate op")?;
                let op = GateOp::from_mnemonic(&opname)
                    .ok_or_else(|| err(line, ExlifErrorKind::UnknownDirective(opname.clone())))?;
                let out = operand("gate output")?;
                let ins: Vec<String> = tok.map(str::to_owned).collect();
                let s = Stmt::Gate { op, out, ins };
                push_stmt(&mut cur_model, &mut cur_fub, s, line, ".gate", true)?;
            }
            ".flop" | ".latch" => {
                let kind = if head == ".flop" {
                    SeqKind::Flop
                } else {
                    SeqKind::Latch
                };
                let out = operand("sequential output")?;
                let d = operand("data net")?;
                let en = tok.next().map(str::to_owned);
                let s = Stmt::Seq { kind, out, d, en };
                let directive: &'static str = if head == ".flop" { ".flop" } else { ".latch" };
                push_stmt(&mut cur_model, &mut cur_fub, s, line, directive, true)?;
            }
            ".subckt" => {
                let model = operand("model name")?;
                let inst = operand("instance name")?;
                let mut conns = Vec::new();
                for pair in tok {
                    let Some((f, a)) = pair.split_once('=') else {
                        return Err(err(line, ExlifErrorKind::BadBitRef(pair.to_owned())));
                    };
                    conns.push((f.to_owned(), a.to_owned()));
                }
                let s = Stmt::Subckt { model, inst, conns };
                push_stmt(&mut cur_model, &mut cur_fub, s, line, ".subckt", true)?;
            }
            other => {
                return Err(err(
                    line,
                    ExlifErrorKind::UnknownDirective(other.to_owned()),
                ));
            }
        }
    }
    if cur_model.is_some() {
        return Err(err(
            text.lines().count(),
            ExlifErrorKind::UnexpectedEof("a .model block"),
        ));
    }
    if cur_fub.is_some() {
        return Err(err(
            text.lines().count(),
            ExlifErrorKind::UnexpectedEof("a .fub block"),
        ));
    }
    Ok(DesignAst {
        name: design_name.unwrap_or_else(|| "unnamed".to_owned()),
        models,
        fubs,
    })
}

/// Routes a statement to the open model or FUB scope.
fn push_stmt(
    cur_model: &mut Option<ModelAst>,
    cur_fub: &mut Option<FubAst>,
    stmt: Stmt,
    line: usize,
    directive: &'static str,
    allowed_in_model: bool,
) -> Result<(), ExlifError> {
    if let Some(f) = cur_fub.as_mut() {
        f.stmts.push(stmt);
        Ok(())
    } else if let Some(m) = cur_model.as_mut() {
        if !allowed_in_model {
            return Err(err(line, ExlifErrorKind::OutOfScope(directive)));
        }
        m.stmts.push(stmt);
        Ok(())
    } else {
        Err(err(line, ExlifErrorKind::OutOfScope(directive)))
    }
}

/// Serializes a flattened [`Netlist`] back to EXLIF text.
///
/// The output contains no `.model`/`.subckt` hierarchy — one `.fub` block
/// per FUB with fully-qualified cross-FUB references — and re-parses to an
/// equivalent graph.
pub fn write(nl: &Netlist) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, ".design {}", nl.design_name());
    // Node names carry a "<fub>." prefix (added at parse/generation time);
    // definitions are written with the prefix stripped so a re-parse adds it
    // back exactly once. References to nodes in *other* FUBs keep their full
    // dotted name, which the parser resolves design-globally.
    let stripped = |fub: crate::graph::FubId, name: &str| -> String {
        let prefix = format!("{}.", nl.fub_name(fub));
        name.strip_prefix(&prefix).unwrap_or(name).to_owned()
    };
    let operand = |fub: crate::graph::FubId, id: crate::graph::NodeId| -> String {
        if nl.fub(id) == fub {
            stripped(fub, nl.name(id))
        } else {
            nl.name(id).to_owned()
        }
    };
    for fub in nl.fub_ids() {
        let _ = writeln!(out, ".fub {}", nl.fub_name(fub));
        // Structures first, then nodes in id order.
        for sid in nl.structure_ids() {
            let s = nl.structure(sid);
            if s.fub() == fub {
                let _ = writeln!(out, ".struct {} {}", stripped(fub, s.name()), s.width());
            }
        }
        for id in nl.nodes() {
            if nl.fub(id) != fub {
                continue;
            }
            let ins = nl.fanin(id);
            let def = stripped(fub, nl.name(id));
            match nl.kind(id) {
                NodeKind::Input => {
                    let _ = writeln!(out, ".input {def}");
                }
                NodeKind::Output => {
                    let _ = writeln!(out, ".output {def} {}", operand(fub, ins[0]));
                }
                NodeKind::Comb(op) => {
                    let _ = write!(out, ".gate {} {def}", op.mnemonic());
                    for &i in ins {
                        let _ = write!(out, " {}", operand(fub, i));
                    }
                    let _ = writeln!(out);
                }
                NodeKind::Seq { kind, .. } => {
                    let word = match kind {
                        SeqKind::Flop => ".flop",
                        SeqKind::Latch => ".latch",
                    };
                    let _ = write!(out, "{word} {def} {}", operand(fub, ins[0]));
                    if ins.len() == 2 {
                        let _ = write!(out, " {}", operand(fub, ins[1]));
                    }
                    let _ = writeln!(out);
                }
                NodeKind::StructCell { .. } => {
                    for &i in ins {
                        let _ = writeln!(out, ".sw {def} {}", operand(fub, i));
                    }
                }
            }
        }
        let _ = writeln!(out, ".endfub");
    }
    let _ = writeln!(out, ".end");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: &str = r"
# a small design
.design demo
.model stage
  .minput d
  .moutput q
  .flop q d
.endmodel
.fub f0
  .input din
  .struct st 2
  .gate and g1 din st[0]
  .flop q1 g1
  .sw st[1] q1
  .subckt stage u0 d=q1
  .output dout u0.q
.endfub
.end
";

    #[test]
    fn parses_small_design() {
        let ast = parse(SMALL).unwrap();
        assert_eq!(ast.name, "demo");
        assert_eq!(ast.models.len(), 1);
        assert_eq!(ast.models[0].inputs, vec!["d"]);
        assert_eq!(ast.models[0].outputs, vec!["q"]);
        assert_eq!(ast.fubs.len(), 1);
        assert_eq!(ast.fubs[0].stmts.len(), 7);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let ast = parse("\n# hi\n.design x\n.fub f\n.endfub\n.end\n").unwrap();
        assert_eq!(ast.name, "x");
    }

    #[test]
    fn unknown_directive_reports_line() {
        let e = parse(".design x\n.bogus\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(matches!(e.kind, ExlifErrorKind::UnknownDirective(_)));
    }

    #[test]
    fn missing_operand_reported() {
        let e = parse(".design x\n.fub f\n.gate and\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(matches!(e.kind, ExlifErrorKind::MissingOperand(_)));
    }

    #[test]
    fn bad_width_reported() {
        let e = parse(".design x\n.fub f\n.struct s abc\n").unwrap_err();
        assert!(matches!(e.kind, ExlifErrorKind::BadNumber(_)));
    }

    #[test]
    fn bad_bit_ref_reported() {
        let e = parse(".design x\n.fub f\n.sw st(1) q\n").unwrap_err();
        assert!(matches!(e.kind, ExlifErrorKind::BadBitRef(_)));
    }

    #[test]
    fn gate_outside_scope_rejected() {
        let e = parse(".design x\n.gate and g a b\n").unwrap_err();
        assert!(matches!(e.kind, ExlifErrorKind::OutOfScope(_)));
    }

    #[test]
    fn input_inside_model_rejected() {
        let e = parse(".design x\n.model m\n.input a\n.endmodel\n").unwrap_err();
        assert!(matches!(e.kind, ExlifErrorKind::OutOfScope(".input")));
    }

    #[test]
    fn unclosed_fub_reported() {
        let e = parse(".design x\n.fub f\n.input a\n").unwrap_err();
        assert!(matches!(e.kind, ExlifErrorKind::UnexpectedEof(_)));
    }

    #[test]
    fn text_after_end_rejected() {
        let e = parse(".design x\n.end\n.fub f\n").unwrap_err();
        assert!(matches!(e.kind, ExlifErrorKind::OutOfScope(_)));
    }

    #[test]
    fn bit_ref_parsing() {
        assert_eq!(parse_bit_ref("abc[12]"), Some(("abc", 12)));
        assert_eq!(parse_bit_ref("abc"), None);
        assert_eq!(parse_bit_ref("abc[x]"), None);
        assert_eq!(parse_bit_ref("abc[3"), None);
    }
}
