//! Global symbol interning for netlist identifiers.
//!
//! The frontend lexes EXLIF and Verilog as zero-copy slices over the input
//! buffer and interns every identifier exactly once into a [`SymbolTable`].
//! A [`Sym`] is a dense `u32` handle; the flattened graph stores only
//! handles on its hot paths, and names materialize back into `&str` at
//! report and trace boundaries via [`SymbolTable::resolve`].
//!
//! The table is a single byte buffer plus a span per symbol and an
//! open-addressed FNV-1a hash index, so cloning it is three `memcpy`s and
//! interning never allocates per string beyond buffer growth. Compound
//! names produced during hierarchy expansion (`fub.inst.net`, `name[bit]`)
//! are interned from their parts without building a temporary `String`
//! ([`SymbolTable::intern_join`], [`SymbolTable::intern_prefix`],
//! [`SymbolTable::intern_bit`]).

use std::fmt;

/// Interned symbol handle. Dense, 0-based, valid only for the table that
/// produced it (or a clone of that table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(u32);

impl Sym {
    /// Creates a symbol from a raw index.
    pub fn from_index(i: usize) -> Self {
        Sym(u32::try_from(i).expect("symbol index exceeds u32 range"))
    }

    /// Raw dense index of this symbol.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym{}", self.0)
    }
}

/// Streaming FNV-1a 64-bit hasher (also used for snapshot digests).
#[derive(Debug, Clone)]
pub struct Fnv1a64(u64);

impl Fnv1a64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Starts a new hash at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a64(Self::OFFSET)
    }

    /// Feeds bytes into the hash.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(Self::PRIME);
        }
        self.0 = h;
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a64 {
    fn default() -> Self {
        Fnv1a64::new()
    }
}

/// Word-striding FNV variant: hashes the byte stream as little-endian
/// 64-bit blocks (zero-padded tail plus a trailing length fold), so eight
/// bytes cost one multiply instead of eight. A small pending buffer makes
/// the result depend only on the concatenated byte stream, never on how
/// it was split across `update` calls.
///
/// Used where megabytes flow through a hash in large contiguous slices —
/// the snapshot whole-file checksum — and only determinism and dispersion
/// matter, not the published byte-serial FNV vectors. For short inputs
/// (identifier interning) the byte-serial [`Fnv1a64`] is faster: the
/// pending-buffer bookkeeping here costs more than the multiplies it
/// saves. Every single-byte change alters the digest: each block step
/// `h ← (h ⊕ w)·p` is a bijection in both `h` and `w`.
#[derive(Debug, Clone)]
pub struct WideFnv64 {
    state: u64,
    pending: [u8; 8],
    pending_len: u8,
    total_len: u64,
}

impl WideFnv64 {
    /// Starts a new hash at the FNV offset basis.
    pub fn new() -> Self {
        WideFnv64 {
            state: Fnv1a64::OFFSET,
            pending: [0; 8],
            pending_len: 0,
            total_len: 0,
        }
    }

    #[inline]
    fn step(h: u64, w: u64) -> u64 {
        (h ^ w).wrapping_mul(Fnv1a64::PRIME)
    }

    /// Feeds bytes into the hash.
    pub fn update(&mut self, bytes: &[u8]) {
        self.total_len += bytes.len() as u64;
        let mut bytes = bytes;
        if self.pending_len > 0 {
            let need = 8 - self.pending_len as usize;
            let take = need.min(bytes.len());
            self.pending[self.pending_len as usize..self.pending_len as usize + take]
                .copy_from_slice(&bytes[..take]);
            self.pending_len += take as u8;
            bytes = &bytes[take..];
            if self.pending_len < 8 {
                // Not enough input to complete the block; `bytes` is empty.
                return;
            }
            self.state = Self::step(self.state, u64::from_le_bytes(self.pending));
            self.pending_len = 0;
        }
        let mut chunks = bytes.chunks_exact(8);
        let mut h = self.state;
        for c in &mut chunks {
            h = Self::step(h, u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        self.state = h;
        let rem = chunks.remainder();
        self.pending[..rem.len()].copy_from_slice(rem);
        self.pending_len = rem.len() as u8;
    }

    /// The hash of everything fed so far.
    pub fn finish(&self) -> u64 {
        let mut h = self.state;
        if self.pending_len > 0 {
            let mut last = [0u8; 8];
            last[..self.pending_len as usize]
                .copy_from_slice(&self.pending[..self.pending_len as usize]);
            h = Self::step(h, u64::from_le_bytes(last));
        }
        Self::step(h, self.total_len)
    }
}

impl Default for WideFnv64 {
    fn default() -> Self {
        WideFnv64::new()
    }
}

/// One part of a compound name: an already-interned symbol or literal
/// bytes. Private — the public surface is the typed `intern_*`/`lookup_*`
/// methods.
#[derive(Clone, Copy)]
enum Part<'a> {
    Sym(Sym),
    Bytes(&'a [u8]),
}

const EMPTY_SLOT: u32 = u32::MAX;

/// Append-only string interner with open-addressed FNV hashing.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    /// Concatenated bytes of every distinct interned string.
    buf: Vec<u8>,
    /// `(start, len)` into `buf`, indexed by `Sym`.
    spans: Vec<(u32, u32)>,
    /// Cached hash per symbol (used for rehash and fast rejection).
    hashes: Vec<u64>,
    /// Open-addressed slot table holding `Sym` indices; power-of-two size.
    slots: Vec<u32>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        SymbolTable::default()
    }

    /// Number of distinct interned symbols.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether no symbols have been interned.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total interned bytes (the size of the string heap).
    pub fn byte_len(&self) -> usize {
        self.buf.len()
    }

    /// The string a symbol denotes.
    pub fn resolve(&self, sym: Sym) -> &str {
        let (start, len) = self.spans[sym.index()];
        std::str::from_utf8(&self.buf[start as usize..(start + len) as usize])
            .expect("interned bytes are valid UTF-8")
    }

    fn span_bytes(&self, sym: Sym) -> &[u8] {
        let (start, len) = self.spans[sym.index()];
        &self.buf[start as usize..(start + len) as usize]
    }

    fn part_len(&self, p: Part<'_>) -> usize {
        match p {
            Part::Sym(s) => self.spans[s.index()].1 as usize,
            Part::Bytes(b) => b.len(),
        }
    }

    fn hash_parts(&self, parts: &[Part<'_>]) -> u64 {
        // Byte-serial FNV: identifier parts average ~10 bytes, where the
        // word-striding variant's buffer management costs more than the
        // multiplies it saves. Streaming part-by-part matches hashing the
        // concatenated string as one slice.
        let mut h = Fnv1a64::new();
        for &p in parts {
            match p {
                Part::Sym(s) => h.update(self.span_bytes(s)),
                Part::Bytes(b) => h.update(b),
            }
        }
        h.finish()
    }

    /// Compares the candidate symbol's bytes against the concatenation of
    /// `parts` without materializing it.
    fn eq_parts(&self, sym: Sym, parts: &[Part<'_>]) -> bool {
        let cand = self.span_bytes(sym);
        if cand.len() != parts.iter().map(|&p| self.part_len(p)).sum::<usize>() {
            return false;
        }
        let mut off = 0usize;
        for &p in parts {
            let bytes = match p {
                Part::Sym(s) => self.span_bytes(s),
                Part::Bytes(b) => b,
            };
            if &cand[off..off + bytes.len()] != bytes {
                return false;
            }
            off += bytes.len();
        }
        true
    }

    fn find_parts(&self, hash: u64, parts: &[Part<'_>]) -> Option<Sym> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            let slot = self.slots[i];
            if slot == EMPTY_SLOT {
                return None;
            }
            let sym = Sym(slot);
            if self.hashes[slot as usize] == hash && self.eq_parts(sym, parts) {
                return Some(sym);
            }
            i = (i + 1) & mask;
        }
    }

    fn grow_slots(&mut self) {
        let new_len = (self.slots.len() * 2).max(16);
        let mask = new_len - 1;
        let mut slots = vec![EMPTY_SLOT; new_len];
        for (idx, &h) in self.hashes.iter().enumerate() {
            let mut i = (h as usize) & mask;
            while slots[i] != EMPTY_SLOT {
                i = (i + 1) & mask;
            }
            slots[i] = idx as u32;
        }
        self.slots = slots;
    }

    fn insert_parts(&mut self, hash: u64, parts: &[Part<'_>]) -> Sym {
        // Keep load factor under 7/8.
        if (self.spans.len() + 1) * 8 > self.slots.len() * 7 {
            self.grow_slots();
        }
        let start = self.buf.len();
        for &p in parts {
            match p {
                Part::Sym(s) => {
                    let (ps, pl) = self.spans[s.index()];
                    // The source span lies before `start`, so copying from
                    // within the buffer is always in bounds.
                    self.buf.extend_from_within(ps as usize..(ps + pl) as usize);
                }
                Part::Bytes(b) => self.buf.extend_from_slice(b),
            }
        }
        let len = self.buf.len() - start;
        let sym = Sym(u32::try_from(self.spans.len()).expect("symbol count fits u32"));
        assert!(
            u32::try_from(self.buf.len()).is_ok(),
            "symbol heap exceeds u32 range"
        );
        self.spans.push((start as u32, len as u32));
        self.hashes.push(hash);
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        while self.slots[i] != EMPTY_SLOT {
            i = (i + 1) & mask;
        }
        self.slots[i] = sym.0;
        sym
    }

    fn intern_parts(&mut self, parts: &[Part<'_>]) -> Sym {
        let hash = self.hash_parts(parts);
        match self.find_parts(hash, parts) {
            Some(sym) => sym,
            None => self.insert_parts(hash, parts),
        }
    }

    /// Interns a string, returning its (possibly pre-existing) symbol.
    pub fn intern(&mut self, s: &str) -> Sym {
        self.intern_parts(&[Part::Bytes(s.as_bytes())])
    }

    /// Looks up a string without interning.
    pub fn lookup(&self, s: &str) -> Option<Sym> {
        let parts = [Part::Bytes(s.as_bytes())];
        self.find_parts(self.hash_parts(&parts), &parts)
    }

    /// Interns the concatenation `prefix + name` (hierarchical name
    /// construction during flattening).
    pub fn intern_join(&mut self, prefix: Sym, name: Sym) -> Sym {
        self.intern_parts(&[Part::Sym(prefix), Part::Sym(name)])
    }

    /// Looks up the concatenation `prefix + name` without interning —
    /// reference resolution probes names that may not exist, and a miss
    /// must not grow the table.
    pub fn lookup_join(&self, prefix: Sym, name: Sym) -> Option<Sym> {
        let parts = [Part::Sym(prefix), Part::Sym(name)];
        self.find_parts(self.hash_parts(&parts), &parts)
    }

    /// Interns a scope prefix: `parent_prefix + inst + "."`, or
    /// `inst + "."` at a hierarchy root.
    pub fn intern_prefix(&mut self, parent: Option<Sym>, inst: Sym) -> Sym {
        match parent {
            Some(p) => self.intern_parts(&[Part::Sym(p), Part::Sym(inst), Part::Bytes(b".")]),
            None => self.intern_parts(&[Part::Sym(inst), Part::Bytes(b".")]),
        }
    }

    /// Interns a structure-cell name `base[bit]`.
    pub fn intern_bit(&mut self, base: Sym, bit: u32) -> Sym {
        let mut digits = [0u8; 10];
        let mut i = digits.len();
        let mut v = bit;
        loop {
            i -= 1;
            digits[i] = b'0' + (v % 10) as u8;
            v /= 10;
            if v == 0 {
                break;
            }
        }
        self.intern_parts(&[
            Part::Sym(base),
            Part::Bytes(b"["),
            Part::Bytes(&digits[i..]),
            Part::Bytes(b"]"),
        ])
    }

    /// Raw storage, for snapshot serialization: the byte heap and the
    /// per-symbol `(start, len)` spans.
    pub fn raw(&self) -> (&[u8], &[(u32, u32)]) {
        (&self.buf, &self.spans)
    }

    /// Rebuilds a table from raw storage (snapshot load). Returns `None`
    /// if any span is out of bounds, not valid UTF-8, or a duplicate of an
    /// earlier span — the interning invariant every consumer relies on.
    pub fn from_raw(buf: Vec<u8>, spans: Vec<(u32, u32)>) -> Option<Self> {
        // Size the hash index once for the final symbol count (under the
        // 7/8 load factor) so the insert loop below never rehashes — at
        // production scale the incremental doubling re-inserted every
        // symbol ~log n times during snapshot load.
        let mut slot_len = 16usize;
        while spans.len() * 8 > slot_len * 7 {
            slot_len *= 2;
        }
        let mut table = SymbolTable {
            buf,
            spans: Vec::with_capacity(spans.len()),
            hashes: Vec::with_capacity(spans.len()),
            slots: vec![EMPTY_SLOT; slot_len],
        };
        for (start, len) in spans {
            let end = (start as usize).checked_add(len as usize)?;
            let bytes = table.buf.get(start as usize..end)?;
            std::str::from_utf8(bytes).ok()?;
            let mut h = Fnv1a64::new();
            h.update(bytes);
            let hash = h.finish();
            // Temporarily register the span so find/insert helpers see it.
            let parts = [Part::Bytes(&table.buf[start as usize..end])];
            // Safety dance around the borrow: compute the duplicate check
            // against already-registered spans only.
            let dup = {
                let probe: &SymbolTable = &table;
                probe.find_parts(hash, &parts).is_some()
            };
            if dup {
                return None;
            }
            if (table.spans.len() + 1) * 8 > table.slots.len() * 7 {
                table.grow_slots();
            }
            let sym = table.spans.len() as u32;
            table.spans.push((start, len));
            table.hashes.push(hash);
            let mask = table.slots.len() - 1;
            let mut i = (hash as usize) & mask;
            while table.slots[i] != EMPTY_SLOT {
                i = (i + 1) & mask;
            }
            table.slots[i] = sym;
        }
        Some(table)
    }
}

impl PartialEq for SymbolTable {
    /// Two tables are equal when they intern the same strings in the same
    /// order (the hash index layout is irrelevant).
    fn eq(&self, other: &Self) -> bool {
        self.spans.len() == other.spans.len()
            && (0..self.spans.len())
                .all(|i| self.span_bytes(Sym(i as u32)) == other.span_bytes(Sym(i as u32)))
    }
}

impl Eq for SymbolTable {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("alpha");
        let b = t.intern("beta");
        assert_ne!(a, b);
        assert_eq!(t.intern("alpha"), a);
        assert_eq!(t.len(), 2);
        assert_eq!(t.resolve(a), "alpha");
        assert_eq!(t.resolve(b), "beta");
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut t = SymbolTable::new();
        t.intern("x");
        assert_eq!(t.lookup("y"), None);
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup("x"), Some(Sym(0)));
    }

    #[test]
    fn join_and_prefix_compose_without_strings() {
        let mut t = SymbolTable::new();
        let fub = t.intern("f0");
        let inst = t.intern("u1");
        let net = t.intern("q");
        let root = t.intern_prefix(None, fub);
        assert_eq!(t.resolve(root), "f0.");
        let child = t.intern_prefix(Some(root), inst);
        assert_eq!(t.resolve(child), "f0.u1.");
        let abs = t.intern_join(child, net);
        assert_eq!(t.resolve(abs), "f0.u1.q");
        // Lookup of the same composition hits the same symbol and does not
        // grow the table.
        let n = t.len();
        assert_eq!(t.lookup_join(child, net), Some(abs));
        assert_eq!(t.lookup("f0.u1.q"), Some(abs));
        assert_eq!(t.len(), n);
    }

    #[test]
    fn bit_names_match_formatting() {
        let mut t = SymbolTable::new();
        let base = t.intern("rob");
        for bit in [0u32, 7, 10, 123, 4096] {
            let sym = t.intern_bit(base, bit);
            assert_eq!(t.resolve(sym), format!("rob[{bit}]"));
        }
    }

    #[test]
    fn survives_growth_and_collisions() {
        let mut t = SymbolTable::new();
        let syms: Vec<Sym> = (0..2000).map(|i| t.intern(&format!("net_{i}"))).collect();
        for (i, &s) in syms.iter().enumerate() {
            assert_eq!(t.resolve(s), format!("net_{i}"));
            assert_eq!(t.lookup(&format!("net_{i}")), Some(s));
        }
        assert_eq!(t.len(), 2000);
    }

    #[test]
    fn raw_roundtrip_preserves_table() {
        let mut t = SymbolTable::new();
        for s in ["a", "bb", "a.b", "a.b[3]"] {
            t.intern(s);
        }
        let (buf, spans) = t.raw();
        let t2 = SymbolTable::from_raw(buf.to_vec(), spans.to_vec()).unwrap();
        assert_eq!(t, t2);
        assert_eq!(t2.lookup("a.b[3]"), t.lookup("a.b[3]"));
    }

    #[test]
    fn from_raw_rejects_bad_spans() {
        // Out of bounds.
        assert!(SymbolTable::from_raw(vec![b'a'], vec![(0, 2)]).is_none());
        // Invalid UTF-8.
        assert!(SymbolTable::from_raw(vec![0xFF], vec![(0, 1)]).is_none());
        // Duplicate string.
        assert!(SymbolTable::from_raw(vec![b'a', b'a'], vec![(0, 1), (1, 1)]).is_none());
        // Overflowing span arithmetic.
        assert!(SymbolTable::from_raw(vec![b'a'], vec![(u32::MAX, 2)]).is_none());
    }

    #[test]
    fn fnv_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        let mut h = Fnv1a64::new();
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        h.update(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h2 = Fnv1a64::new();
        h2.update(b"foobar");
        assert_eq!(h2.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn wide_fnv_is_split_invariant() {
        // The hash must depend only on the concatenated stream, however
        // the bytes arrive — that is what lets compound names hash
        // part-by-part.
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut one = WideFnv64::new();
        one.update(data);
        for split in [0usize, 1, 3, 7, 8, 9, 16, data.len()] {
            let mut h = WideFnv64::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), one.finish(), "split at {split}");
        }
        // Zero-padding must not collide a string with its NUL-extension.
        let mut a = WideFnv64::new();
        a.update(b"abc");
        let mut b = WideFnv64::new();
        b.update(b"abc\0");
        assert_ne!(a.finish(), b.finish());
        // Single-byte perturbations perturb the hash.
        let mut c = WideFnv64::new();
        c.update(b"abd");
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn clone_is_independent() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let mut t2 = t.clone();
        let b2 = t2.intern("b");
        assert_eq!(t2.resolve(a), "a");
        assert_eq!(t2.resolve(b2), "b");
        assert_eq!(t.len(), 1);
    }
}
