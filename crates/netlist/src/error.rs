//! Error types for netlist construction and EXLIF parsing.

use std::fmt;

/// Errors produced while building or validating a [`crate::Netlist`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildError {
    /// Two nodes were declared with the same hierarchical name.
    DuplicateName(String),
    /// A connection referenced a node id that does not exist.
    UnknownNode(u32),
    /// A gate has an arity incompatible with its operator
    /// (e.g. a `Not` with two fan-ins or a `Mux` without three).
    BadArity {
        /// Name of the offending node.
        node: String,
        /// Fan-in count found.
        found: usize,
        /// Human-readable description of the expected arity.
        expected: &'static str,
    },
    /// A combinational cycle was detected (a cycle containing no sequential
    /// element). Synchronous designs must break every cycle with a flop or
    /// latch; the propagation engine relies on this invariant.
    CombinationalCycle {
        /// Name of one node on the cycle.
        witness: String,
    },
    /// A primary input node was given a fan-in.
    InputHasFanin(String),
    /// A structure bit index was out of range for its declared width.
    StructBitOutOfRange {
        /// Structure name.
        structure: String,
        /// Offending bit index.
        bit: u32,
        /// Declared width.
        width: u32,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::DuplicateName(n) => write!(f, "duplicate node name `{n}`"),
            BuildError::UnknownNode(id) => write!(f, "unknown node id {id}"),
            BuildError::BadArity {
                node,
                found,
                expected,
            } => write!(f, "node `{node}` has {found} fan-ins, expected {expected}"),
            BuildError::CombinationalCycle { witness } => {
                write!(f, "combinational cycle through node `{witness}`")
            }
            BuildError::InputHasFanin(n) => write!(f, "primary input `{n}` has a fan-in"),
            BuildError::StructBitOutOfRange {
                structure,
                bit,
                width,
            } => write!(
                f,
                "bit {bit} out of range for structure `{structure}` of width {width}"
            ),
        }
    }
}

impl std::error::Error for BuildError {}

/// Errors produced by the EXLIF parser, with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExlifError {
    /// 1-based line number at which the error occurred.
    pub line: usize,
    /// What went wrong.
    pub kind: ExlifErrorKind,
}

/// The specific failure behind an [`ExlifError`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExlifErrorKind {
    /// A directive keyword that the grammar does not define.
    UnknownDirective(String),
    /// A directive was missing a required operand.
    MissingOperand(&'static str),
    /// A numeric field failed to parse.
    BadNumber(String),
    /// A statement referenced a net name never defined as a node output.
    UndefinedNet(String),
    /// A `.subckt` referenced a `.model` that was never declared.
    UnknownModel(String),
    /// A port connection named a formal port the model does not declare.
    UnknownPort {
        /// Model name.
        model: String,
        /// Formal port name that was not found.
        port: String,
    },
    /// A directive appeared outside the scope it is valid in
    /// (e.g. `.gate` before any `.fub`).
    OutOfScope(&'static str),
    /// The file ended while a scope was still open.
    UnexpectedEof(&'static str),
    /// Netlist validation failed after parsing completed.
    Build(BuildError),
    /// A structure bit reference could not be parsed (`name[idx]`).
    BadBitRef(String),
    /// The same net name was defined twice in one scope.
    Redefined(String),
    /// A `.model` instantiates itself, directly or transitively.
    RecursiveModel(String),
}

impl fmt::Display for ExlifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            ExlifErrorKind::UnknownDirective(d) => write!(f, "unknown directive `{d}`"),
            ExlifErrorKind::MissingOperand(what) => write!(f, "missing operand: {what}"),
            ExlifErrorKind::BadNumber(s) => write!(f, "invalid number `{s}`"),
            ExlifErrorKind::UndefinedNet(n) => write!(f, "undefined net `{n}`"),
            ExlifErrorKind::UnknownModel(m) => write!(f, "unknown model `{m}`"),
            ExlifErrorKind::UnknownPort { model, port } => {
                write!(f, "model `{model}` has no port `{port}`")
            }
            ExlifErrorKind::OutOfScope(d) => write!(f, "directive `{d}` used out of scope"),
            ExlifErrorKind::UnexpectedEof(scope) => {
                write!(f, "unexpected end of file inside {scope}")
            }
            ExlifErrorKind::Build(e) => write!(f, "netlist validation failed: {e}"),
            ExlifErrorKind::BadBitRef(s) => write!(f, "malformed bit reference `{s}`"),
            ExlifErrorKind::Redefined(n) => write!(f, "net `{n}` defined twice"),
            ExlifErrorKind::RecursiveModel(m) => {
                write!(f, "model `{m}` instantiates itself recursively")
            }
        }
    }
}

impl std::error::Error for ExlifError {}

impl From<BuildError> for ExlifErrorKind {
    fn from(e: BuildError) -> Self {
        ExlifErrorKind::Build(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_error_display_is_informative() {
        let e = BuildError::BadArity {
            node: "g1".into(),
            found: 3,
            expected: "exactly 1",
        };
        let s = e.to_string();
        assert!(s.contains("g1"));
        assert!(s.contains('3'));
    }

    #[test]
    fn exlif_error_display_includes_line() {
        let e = ExlifError {
            line: 42,
            kind: ExlifErrorKind::UndefinedNet("foo".into()),
        };
        assert!(e.to_string().starts_with("line 42:"));
        assert!(e.to_string().contains("foo"));
    }

    #[test]
    fn exlif_error_wraps_build_error() {
        let k: ExlifErrorKind = BuildError::DuplicateName("x".into()).into();
        assert!(matches!(k, ExlifErrorKind::Build(_)));
    }
}
