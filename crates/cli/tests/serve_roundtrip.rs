//! End-to-end CLI test: a `serve` daemon must answer `query` with rows
//! that are byte-for-byte identical to what `sweep` writes for the same
//! design, mapping, configuration and workload suite.

use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use seqavf_serve::client;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_seqavf"))
}

fn scratch() -> PathBuf {
    let dir = std::env::temp_dir().join("seqavf-cli-serve-roundtrip");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_ok(cmd: &mut Command) -> String {
    let out = cmd.output().expect("spawning seqavf");
    assert!(
        out.status.success(),
        "seqavf failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Picks a free port by binding port 0 and dropping the listener.
fn free_port() -> u16 {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    listener.local_addr().unwrap().port()
}

fn wait_healthy(addr: std::net::SocketAddr, server: &mut Child) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok((200, _)) = client::get(addr, "/healthz") {
            return;
        }
        if let Ok(Some(status)) = server.try_wait() {
            panic!("serve exited early with {status}");
        }
        assert!(Instant::now() < deadline, "serve never became healthy");
        std::thread::sleep(Duration::from_millis(100));
    }
}

#[test]
fn query_output_is_byte_identical_to_sweep_output() {
    let dir = scratch();
    let design = dir.join("design.exlif");
    let map = dir.join("design.map");
    let pavf = dir.join("pavf.json");
    run_ok(bin().args([
        "gen",
        "--out",
        path(&design),
        "--map",
        path(&map),
        "--seed",
        "42",
    ]));
    run_ok(bin().args([
        "ace",
        "--out",
        path(&pavf),
        "--workloads",
        "2",
        "--len",
        "600",
    ]));

    // Ground truth: the batch CLI.
    let sweep_out = dir.join("sweep.json");
    run_ok(bin().args([
        "sweep",
        "--design",
        path(&design),
        "--map",
        path(&map),
        "--pavf",
        path(&pavf),
        "--workloads",
        "3",
        "--len",
        "700",
        "--out",
        path(&sweep_out),
    ]));

    // The same answer through the service.
    let port = free_port();
    let addr: std::net::SocketAddr = format!("127.0.0.1:{port}").parse().unwrap();
    let mut server = bin()
        .args(["serve", "--port", &port.to_string(), "--idle-secs", "120"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawning seqavf serve");
    wait_healthy(addr, &mut server);

    let query_out = dir.join("query-cold.json");
    let cold = run_ok(bin().args([
        "query",
        "--addr",
        &addr.to_string(),
        "--design",
        path(&design),
        "--map",
        path(&map),
        "--pavf",
        path(&pavf),
        "--workloads",
        "3",
        "--len",
        "700",
        "--out",
        path(&query_out),
    ]));
    assert!(cold.contains("compiled DAG miss"), "{cold}");

    let sweep_bytes = std::fs::read(&sweep_out).unwrap();
    let query_bytes = std::fs::read(&query_out).unwrap();
    assert_eq!(
        sweep_bytes, query_bytes,
        "service rows differ from the sweep CLI's"
    );

    // Warm repeat: both tiers hit, bytes still identical.
    let warm_out = dir.join("query-warm.json");
    let warm = run_ok(bin().args([
        "query",
        "--addr",
        &addr.to_string(),
        "--design",
        path(&design),
        "--map",
        path(&map),
        "--pavf",
        path(&pavf),
        "--workloads",
        "3",
        "--len",
        "700",
        "--out",
        path(&warm_out),
    ]));
    assert!(warm.contains("graph hit"), "{warm}");
    assert!(warm.contains("compiled DAG hit"), "{warm}");
    assert_eq!(std::fs::read(&warm_out).unwrap(), sweep_bytes);

    // Clean shutdown through the API; the process must exit by itself.
    let (status, _) = client::post_json(addr, "/v1/shutdown", "{}").unwrap();
    assert_eq!(status, 200);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if server.try_wait().unwrap().is_some() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "serve did not exit after shutdown"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}

fn path(p: &Path) -> &str {
    p.to_str().unwrap()
}
