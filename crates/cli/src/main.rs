//! `seqavf` — command-line driver for the sequential-AVF tool flow.
//!
//! ```text
//! seqavf gen   --out design.exlif [--map design.map] [--seed 42] [--scale 1.0]
//!              [--cores N]
//! seqavf ace   --out pavf.json [--workloads 32] [--len 5000] [--conservative]
//! seqavf sart  --design design.exlif --map design.map --pavf pavf.json
//!              [--out avf.json] [--loop-pavf 0.3] [--iterations 20] [--global]
//!              [--threads 4]
//! seqavf sfi   --design design.exlif [--sample 100] [--injections 16]
//! seqavf sweep --design design.exlif --map design.map --pavf pavf.json
//!              [--workloads 8] [--len 5000] [--seed N] [--threads 4]
//!              [--cache-dir .seqavf-cache] [--out sweep.json]
//! seqavf validate --design design.exlif --map design.map [--pavf pavf.json]
//!              [--trials 1000000] [--sampling importance] [--kernel exact]
//!              [--burst 1] [--no-derate] [--assert-corr 0.9]
//!              [--out validate.json]
//! seqavf flow  [--seed 42] [--workloads 32] [--len 5000] [--scale 1.0]
//!              [--cores N] [--threads 4]
//! seqavf serve [--port 7171] [--workers 2] [--max-resident 4]
//!              [--graph-cache dir] [--cache-dir dir]
//! seqavf query --design design.exlif --map design.map [--addr host:port]
//!              [--out rows.json]
//! ```
//!
//! `gen` emits the synthetic design in EXLIF plus the structure-mapping
//! file; `ace` runs the workload suite through the ACE-instrumented
//! performance model and writes the port-AVF table; `sart` resolves every
//! node's AVF; `sfi` runs the fault-injection baseline; `flow` chains the
//! whole pipeline in memory.
//!
//! Every subcommand accepts `--trace-out <path>` (write a
//! `seqavf-trace/1` NDJSON trace of all pipeline phases) and `--metrics`
//! (print a per-phase wall-time/counter table after the run).

mod args;

use std::process::ExitCode;

use args::Args;
use seqavf_core::engine::{SartConfig, SartEngine, WarmStatus};
use seqavf_core::fixpoint;
use seqavf_core::mapping::{PavfInputs, StructureMapping};
use seqavf_core::report::SartSummary;
use seqavf_netlist::exlif;
use seqavf_netlist::flatten;
use seqavf_netlist::graph::Netlist;
use seqavf_netlist::scc::{find_loops_traced, LoopAnalysis};
use seqavf_netlist::snapshot;
use seqavf_netlist::synth::{generate, SynthConfig};
use seqavf_netlist::verilog;
use seqavf_netlist::Fnv1a64;
use seqavf_obs::Collector;
use seqavf_perf::pipeline::PerfConfig;
use seqavf_workloads::suite::{standard_suite, SuiteConfig};

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("seqavf: {e}\nrun `seqavf help` for usage");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.command.as_str() {
        "gen" => cmd_gen(&args),
        "ace" => cmd_ace(&args),
        "sart" => cmd_sart(&args),
        "sfi" => cmd_sfi(&args),
        "sweep" => cmd_sweep(&args),
        "validate" => cmd_validate(&args),
        "flow" => cmd_flow(&args),
        "serve" => cmd_serve(&args),
        "query" => cmd_query(&args),
        "" | "help" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("seqavf: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
seqavf — sequential AVF via port-AVF propagation (MICRO-48 2015)

commands:
  gen   --out <design.exlif> [--map <file>] [--seed N] [--scale F] [--cores N]
        generate a processor-shaped synthetic design; --scale widens and
        deepens every FUB, --cores replicates the core N times behind a
        shared uncore (production-size designs need both)
  ace   --out <pavf.json> [--workloads N] [--len N] [--seed N] [--conservative]
        run the ACE performance model over a workload suite
  sart  --design <exlif|.v> --map <file> --pavf <json> [--out <json>]
        [--loop-pavf F] [--iterations N] [--global] [--threads N]
        [--no-incremental] [--protected a,b] [--equations node1,node2]
        [--graph-cache <dir>] [--warm-start <dir>]
        resolve sequential AVFs for every node (designs may be EXLIF or
        structural Verilog, chosen by file extension); --no-incremental
        re-walks every FUB every relaxation sweep instead of only the
        boundary-dirty ones (bit-identical results, more work);
        --warm-start persists the converged fixpoint in <dir> and seeds
        the next run of the same design from it, relaxing only the FUBs
        whose content changed (bit-identical to a cold solve)
  sfi   --design <exlif> [--sample N] [--injections N] [--seed N]
        [--graph-cache <dir>]
        statistical fault-injection baseline
  sweep --design <exlif|.v> --map <file> --pavf <json> [--out <json>]
        [--workloads N] [--len N] [--seed N] [--threads N]
        [--cache-dir <dir>] [--graph-cache <dir>] [--warm-start <dir>]
        [--loop-pavf F] [--iterations N] [--global] [--no-incremental]
        [--conservative]
        compile the closed forms once and evaluate a whole workload suite;
        --cache-dir reuses the compiled artifact across runs (keyed by
        netlist content + configuration), skipping relaxation entirely;
        --warm-start seeds a fresh relaxation from the stored fixpoint
        of the previous run of this design (see sart); with --cache-dir
        too, an edit patches the previous revision's compiled DAG in
        place of a full recompile (only the dirty cone is re-lowered)
  validate --design <exlif|.v> --map <file> [--pavf <json>] [--out <json>]
        [--trials N] [--seed N] [--threads N] [--sampling uniform|importance]
        [--floor F] [--kernel exact|propagation] [--burst N] [--warmup N]
        [--horizon N] [--no-derate] [--assert-corr F] [--cache-dir <dir>]
        [--graph-cache <dir>] [--loop-pavf F] [--iterations N] [--global]
        [--no-incremental]
        close the validation triangle: run a trial-indexed fault-injection
        campaign against the design and statistically compare the per-FUB
        injection AVFs with the analytical prediction (Pearson and
        Spearman correlation, Wilson-interval overlap, Horvitz–Thompson
        population mean). The prediction is SART's per-bit AVF derated by
        the propagation-probability model, because a random-stimulus
        campaign measures structural reachability times logical masking;
        --no-derate compares against the raw SART values instead, and
        omitting --pavf (the default for validation) runs SART under
        conservative all-1.0 inputs — supplying a measured table instead
        validates workload-derated AVFs, which random stimulus cannot
        observe, so expect low correlation there. --sampling importance
        weights target selection by the predicted AVF (floored at --floor
        so every bit stays reachable), --kernel propagation swaps the
        exact paired simulation for the propagation-probability fast
        path, --burst flips N bits per trial, --assert-corr fails the run
        when the Pearson correlation lands below the threshold, and
        --cache-dir shares the sweep's compiled-DAG artifacts for the
        analytical side
  flow  [--seed N] [--workloads N] [--len N] [--scale F] [--cores N]
        [--threads N] [--no-incremental] [--graph-cache <dir>]
        run the whole pipeline in memory and print the per-FUB report
  serve [--port N] [--host ADDR] [--workers N] [--queue N] [--threads N]
        [--max-resident N] [--graph-cache <dir>] [--cache-dir <dir>]
        [--idle-secs N]
        run the resident AVF service: loaded graphs and compiled sweep
        DAGs stay in memory behind an LRU, so repeat queries skip the
        whole frontend+relaxation pipeline; POST /v1/avf evaluates a
        batch of workload pAVF tables, GET /metrics exposes counters,
        POST /v1/shutdown (or SIGTERM, or --idle-secs) exits cleanly
  query --design <exlif|.v> --map <file> [--addr host:port] [--out <json>]
        [--workloads N] [--len N] [--seed N] [--conservative]
        [--loop-pavf F] [--iterations N] [--global] [--design-ref HEX]
        run the workload suite through the ACE model locally, send the
        pAVF tables to a `serve` instance, and print/write the same
        rows `sweep` would (bit-identical); --design-ref skips the
        design file entirely when the server already has it resident

every command also accepts:
        [--trace-out <file.ndjson>]  write a seqavf-trace/1 phase trace
        [--metrics]                  print the per-phase metrics table

--graph-cache stores the flattened node graph (plus its loop analysis) as
a versioned binary seqavf-graph/2 snapshot keyed by the design source, so
repeat runs skip parsing, flattening and SCC detection; corrupt or stale
snapshots silently fall back to a fresh parse.
";

fn write_file(path: &str, contents: &str) -> Result<(), String> {
    std::fs::write(path, contents).map_err(|e| format!("writing {path}: {e}"))
}

fn read_file(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))
}

/// The CLI's observability handle: a collector that is enabled only when
/// `--trace-out` or `--metrics` was given, so untraced runs pay nothing.
struct Obs {
    collector: Collector,
    trace_out: Option<String>,
    metrics: bool,
}

impl Obs {
    fn from_args(args: &Args) -> Obs {
        let trace_out = args.get("trace-out").map(str::to_owned);
        let metrics = args.has("metrics");
        let collector = if trace_out.is_some() || metrics {
            Collector::new()
        } else {
            Collector::disabled()
        };
        Obs {
            collector,
            trace_out,
            metrics,
        }
    }

    /// Writes the NDJSON trace and/or prints the metrics table, as asked.
    fn finish(&self, command: &str) -> Result<(), String> {
        if let Some(path) = &self.trace_out {
            let mut buf = Vec::new();
            self.collector
                .write_ndjson(&mut buf, &[("cmd", command)])
                .map_err(|e| format!("serializing trace: {e}"))?;
            std::fs::write(path, &buf).map_err(|e| format!("writing {path}: {e}"))?;
            println!(
                "wrote {path}: {} trace events",
                self.collector.spans().len()
            );
        }
        if self.metrics {
            print!("{}", self.collector.report().to_table());
        }
        Ok(())
    }
}

/// Loads a design, selecting the frontend by file extension: `.v`/`.sv`
/// use the structural-Verilog parser, everything else the EXLIF parser.
///
/// When `cache` names a `--graph-cache` directory, the flattened graph and
/// its loop analysis are stored there as a `seqavf-graph/2` snapshot keyed
/// by the source text (and frontend), so a repeat run of the same file
/// skips parse, flatten and SCC entirely. A missing, truncated or
/// corrupted snapshot silently degrades to a fresh parse; a successful
/// load bumps the `frontend.snapshot.hit` counter, a rebuild bumps
/// `frontend.snapshot.miss`.
fn load_design(
    path: &str,
    obs: &Collector,
    cache: Option<&str>,
) -> Result<(Netlist, Option<LoopAnalysis>), String> {
    let text = read_file(path)?;
    let is_verilog = path.ends_with(".v") || path.ends_with(".sv");
    let snap_path = cache.map(|dir| {
        let mut h = Fnv1a64::new();
        h.update(if is_verilog { b"verilog" } else { b"exlif" });
        h.update(&[0]);
        h.update(text.as_bytes());
        std::path::Path::new(dir).join(format!("graph-{:016x}.bin", h.finish()))
    });
    if let Some(p) = &snap_path {
        if let Ok(bytes) = std::fs::read(p) {
            if let Ok((nl, loops)) = snapshot::load(&bytes) {
                obs.count("frontend.snapshot.hit", 1);
                return Ok((nl, Some(loops)));
            }
        }
    }
    let result = if is_verilog {
        verilog::parse_netlist_traced(&text, obs)
    } else {
        flatten::parse_netlist_traced(&text, obs)
    };
    let nl = result.map_err(|e| format!("parsing {path}: {e}"))?;
    match snap_path {
        None => Ok((nl, None)),
        Some(p) => {
            obs.count("frontend.snapshot.miss", 1);
            let loops = find_loops_traced(&nl, obs);
            // Best-effort store: a failed write only costs the next run a
            // recompute, never the current one its answer.
            if let Some(dir) = p.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            let _ = std::fs::write(&p, snapshot::save(&nl, &loops));
            Ok((nl, Some(loops)))
        }
    }
}

fn cmd_gen(args: &Args) -> Result<(), String> {
    args.validate(
        &["out", "map", "seed", "scale", "cores", "trace-out"],
        &["metrics"],
    )?;
    let obs = Obs::from_args(args);
    let out = args.require("out")?;
    let seed = args.num("seed", 42u64)?;
    let scale = args.pos_f64("scale", 1.0)?;
    let cores = args.pos_usize("cores", 1)?;
    let design = {
        let mut span = obs.collector.span("flow.generate");
        let design = generate(&SynthConfig::xeon_like(seed).scaled(scale).with_cores(cores));
        span.field_u64("nodes", design.netlist.node_count() as u64);
        span.field_u64("fubs", design.netlist.fub_count() as u64);
        design
    };
    write_file(out, &exlif::write(&design.netlist))?;
    println!(
        "wrote {out}: {} nodes, {} sequentials, {} structures",
        design.netlist.node_count(),
        design.netlist.seq_count(),
        design.netlist.structure_count()
    );
    if let Some(map_path) = args.get("map") {
        let mapping = StructureMapping::from_pairs(design.meta.structure_map.clone());
        write_file(map_path, &mapping.to_text(&design.netlist))?;
        println!("wrote {map_path}: {} structure mappings", mapping.len());
    }
    obs.finish("gen")
}

fn cmd_ace(args: &Args) -> Result<(), String> {
    args.validate(
        &["out", "workloads", "len", "seed", "trace-out"],
        &["conservative", "metrics"],
    )?;
    let obs = Obs::from_args(args);
    let out = args.require("out")?;
    let suite_cfg = SuiteConfig {
        workloads: args.num("workloads", 32usize)?,
        len: args.num("len", 5_000usize)?,
        seed: args.num("seed", 0xace_5eedu64)?,
        include_kernels: true,
    };
    let perf = PerfConfig {
        conservative_residency: args.has("conservative"),
        ..PerfConfig::default()
    };
    let traces = standard_suite(&suite_cfg);
    println!("running {} workloads through the ACE model…", traces.len());
    let suite = seqavf::flow::run_suite_traced(&traces, &perf, &obs.collector);
    let inputs = seqavf::flow::inputs_from_suite(&suite);
    let json = serde_json::to_string_pretty(&inputs).map_err(|e| e.to_string())?;
    write_file(out, &json)?;
    println!("wrote {out}: {} structures", inputs.ports.len());
    obs.finish("ace")
}

fn cmd_sart(args: &Args) -> Result<(), String> {
    args.validate(
        &[
            "design",
            "map",
            "pavf",
            "out",
            "loop-pavf",
            "iterations",
            "threads",
            "protected",
            "equations",
            "graph-cache",
            "warm-start",
            "trace-out",
        ],
        &["global", "no-incremental", "metrics"],
    )?;
    let obs = Obs::from_args(args);
    let (netlist, loops) = load_design(
        args.require("design")?,
        &obs.collector,
        args.get("graph-cache"),
    )?;
    let mapping = StructureMapping::from_text(&netlist, &read_file(args.require("map")?)?)?;
    let inputs: PavfInputs = serde_json::from_str(&read_file(args.require("pavf")?)?)
        .map_err(|e| format!("parsing pAVF table: {e}"))?;
    let config = SartConfig {
        loop_pavf: args.unit_f64("loop-pavf", 0.3)?,
        max_iterations: args.num("iterations", 20usize)?,
        partitioned: !args.has("global"),
        incremental: !args.has("no-incremental"),
        threads: args.num("threads", 1usize)?.max(1),
        ..SartConfig::default()
    };
    let engine = match &loops {
        Some(l) => SartEngine::new_with_loops_traced(&netlist, &mapping, config, l, &obs.collector),
        None => SartEngine::new_traced(&netlist, &mapping, config, &obs.collector),
    };
    let result = match args.get("warm-start") {
        None => engine.run_traced(&inputs, &obs.collector),
        Some(dir) => {
            let path = fixpoint::artifact_path(
                std::path::Path::new(dir),
                fixpoint::artifact_key(
                    netlist.design_name(),
                    &mapping.to_text(&netlist),
                    &engine.config().result_key(),
                ),
            );
            let stored = fixpoint::load(&path).unwrap_or_default();
            let (result, warm) = match &stored {
                Some(s) => engine.run_warm_traced(&inputs, s, &obs.collector),
                None => (
                    engine.run_traced(&inputs, &obs.collector),
                    WarmStatus::Cold("no usable fixpoint artifact"),
                ),
            };
            match warm {
                WarmStatus::Warm {
                    seeded_fubs,
                    dirty_fubs,
                } => {
                    obs.collector.count("relax.warmstart.hit", 1);
                    println!(
                        "warm start: seeded {seeded_fubs} FUBs from stored fixpoint, {dirty_fubs} dirty"
                    );
                }
                WarmStatus::Cold(reason) => {
                    obs.collector.count("relax.warmstart.miss", 1);
                    println!("warm start: cold solve ({reason})");
                }
            }
            // Refresh the artifact so the next edit of this design
            // re-solves warm against today's fixpoint.
            if let Some(captured) = engine.capture_fixpoint(&result) {
                match fixpoint::store(&path, &captured) {
                    Ok(()) => println!("stored fixpoint artifact {}", path.display()),
                    Err(e) => eprintln!("seqavf: cannot store fixpoint artifact: {e}"),
                }
            }
            result
        }
    };
    let summary = SartSummary::new(&netlist, &result);
    print!("{}", summary.to_table());
    println!(
        "iterations: {}   visited: {:.1}%   control regs: {}   loop bits: {}",
        result.iterations(),
        summary.visited_fraction * 100.0,
        summary.control_reg_bits,
        summary.loop_seq_bits
    );
    println!(
        "relaxation wall time: {:.3} ms total over {} sweeps ({:.3} ms/sweep, {} threads, {} node-walks{})",
        result.outcome.total_wall_seconds() * 1e3,
        result.outcome.trace.len(),
        result.outcome.mean_iteration_seconds() * 1e3,
        result.config.threads,
        result.outcome.total_walked_nodes(),
        if result.config.incremental {
            ", incremental"
        } else {
            ", full sweeps"
        }
    );
    // SDC/DUE split when protected structures are named.
    if let Some(protected) = args.get("protected") {
        let set: std::collections::BTreeSet<String> =
            protected.split(',').map(|s| s.trim().to_owned()).collect();
        let due = seqavf_core::due::DueAnalysis::compute(&result, &netlist, &inputs, &set);
        println!(
            "SDC/DUE split ({} protected structures): mean seq SDC = {:.4}, DUE = {:.4} ({:.1}% detected)",
            set.len(),
            due.mean_seq_sdc,
            due.mean_seq_due,
            due.due_share() * 100.0
        );
    }
    // Closed-form equations for named nodes.
    if let Some(nodes) = args.get("equations") {
        for name in nodes.split(',') {
            match netlist.lookup(name.trim()) {
                Some(id) => println!("{} = {}", name.trim(), result.closed_form(id)),
                None => eprintln!("seqavf: no node named `{}`", name.trim()),
            }
        }
    }
    if let Some(out) = args.get("out") {
        #[derive(serde::Serialize)]
        struct NodeAvf<'a> {
            node: &'a str,
            avf: f64,
        }
        let dump: Vec<NodeAvf<'_>> = netlist
            .seq_nodes()
            .map(|id| NodeAvf {
                node: netlist.name(id),
                avf: result.avf(id),
            })
            .collect();
        write_file(
            out,
            &serde_json::to_string_pretty(&dump).map_err(|e| e.to_string())?,
        )?;
        println!("wrote {out}: {} sequential AVFs", dump.len());
    }
    obs.finish("sart")
}

fn cmd_sfi(args: &Args) -> Result<(), String> {
    use seqavf_sfi::campaign::{run_campaign_traced, CampaignConfig};
    args.validate(
        &[
            "design",
            "sample",
            "injections",
            "seed",
            "threads",
            "show",
            "graph-cache",
            "trace-out",
        ],
        &["metrics"],
    )?;
    let obs = Obs::from_args(args);
    let (netlist, _loops) = load_design(
        args.require("design")?,
        &obs.collector,
        args.get("graph-cache"),
    )?;
    let sample_n = args.num("sample", 100usize)?;
    let seqs: Vec<_> = netlist.seq_nodes().collect();
    let stride = (seqs.len() / sample_n.max(1)).max(1);
    let sample: Vec<_> = seqs.iter().step_by(stride).copied().collect();
    let cfg = CampaignConfig {
        injections_per_node: args.num("injections", 16usize)?,
        seed: args.num("seed", 0xfau64)?,
        threads: args.num("threads", 8usize)?,
        ..CampaignConfig::default()
    };
    println!(
        "injecting {} faults ({} nodes × {})…",
        sample.len() * cfg.injections_per_node,
        sample.len(),
        cfg.injections_per_node
    );
    let camp = run_campaign_traced(&netlist, &sample, &cfg, &obs.collector);
    println!("mean SFI AVF = {:.4}", camp.mean_avf());
    for est in camp.nodes.iter().take(args.num("show", 10usize)?) {
        println!(
            "  {:<40} avf={:.3} [{:.3},{:.3}] errors={} unknown={}",
            netlist.name(est.node),
            est.avf,
            est.ci.0,
            est.ci.1,
            est.errors,
            est.unknowns
        );
    }
    obs.finish("sfi")
}

fn cmd_sweep(args: &Args) -> Result<(), String> {
    use seqavf_core::sweep::{run_sweep_with_loops_traced, CacheStatus, PatchStatus, SweepOptions};
    args.validate(
        &[
            "design",
            "map",
            "pavf",
            "out",
            "workloads",
            "len",
            "seed",
            "threads",
            "cache-dir",
            "graph-cache",
            "warm-start",
            "loop-pavf",
            "iterations",
            "trace-out",
        ],
        &["global", "no-incremental", "conservative", "metrics"],
    )?;
    let obs = Obs::from_args(args);
    let (netlist, loops) = load_design(
        args.require("design")?,
        &obs.collector,
        args.get("graph-cache"),
    )?;
    let mapping = StructureMapping::from_text(&netlist, &read_file(args.require("map")?)?)?;
    let base_inputs: PavfInputs = serde_json::from_str(&read_file(args.require("pavf")?)?)
        .map_err(|e| format!("parsing pAVF table: {e}"))?;
    let config = SartConfig {
        loop_pavf: args.unit_f64("loop-pavf", 0.3)?,
        max_iterations: args.num("iterations", 20usize)?,
        partitioned: !args.has("global"),
        incremental: !args.has("no-incremental"),
        threads: args.num("threads", 1usize)?.max(1),
        ..SartConfig::default()
    };
    // Per-workload pAVF tables from the ACE model, one per suite trace.
    let suite_cfg = SuiteConfig {
        workloads: args.num("workloads", 8usize)?,
        len: args.num("len", 5_000usize)?,
        seed: args.num("seed", 0xace_5eedu64)?,
        include_kernels: true,
    };
    let perf = PerfConfig {
        conservative_residency: args.has("conservative"),
        ..PerfConfig::default()
    };
    let traces = standard_suite(&suite_cfg);
    println!("running {} workloads through the ACE model…", traces.len());
    let suite = seqavf::flow::run_suite_traced(&traces, &perf, &obs.collector);
    let workloads: Vec<(String, PavfInputs)> = suite
        .runs
        .iter()
        .map(|r| (r.workload.clone(), seqavf::flow::inputs_from_report(r)))
        .collect();
    let opts = SweepOptions {
        threads: config.threads,
        cache_dir: args.get("cache-dir").map(Into::into),
        warm_start: args.get("warm-start").map(Into::into),
    };
    let t0 = std::time::Instant::now();
    let outcome = run_sweep_with_loops_traced(
        &netlist,
        &mapping,
        &config,
        &base_inputs,
        &workloads,
        &opts,
        loops.as_ref(),
        &obs.collector,
    )?;
    let cache_word = match outcome.cache {
        CacheStatus::Disabled => "cache disabled",
        CacheStatus::Miss => "cache miss (relaxed fresh, artifact stored)",
        CacheStatus::Hit => "cache hit (relaxation skipped)",
    };
    match outcome.warm {
        Some(WarmStatus::Warm {
            seeded_fubs,
            dirty_fubs,
        }) => println!(
            "warm start: seeded {seeded_fubs} FUBs from stored fixpoint, {dirty_fubs} dirty"
        ),
        Some(WarmStatus::Cold(reason)) => println!("warm start: cold solve ({reason})"),
        None => {}
    }
    match outcome.patch {
        Some(PatchStatus::Patched(st)) => println!(
            "DAG patch: {} ops patched, {} retained, {} orphaned (previous revision's DAG reused)",
            st.nodes_patched(),
            st.ops_retained,
            st.ops_orphaned
        ),
        Some(PatchStatus::Rebuilt(reason)) => println!("DAG patch: full rebuild ({reason})"),
        None => {}
    }
    println!(
        "compiled DAG: {} nodes, {} sum ops, {} min ops ({} arena sets, {} terms) — {cache_word}",
        outcome.stats.nodes,
        outcome.stats.sum_ops,
        outcome.stats.min_ops,
        outcome.stats.arena_sets,
        outcome.stats.terms
    );
    println!(
        "{:<28} {:>10} {:>10} {:>10}",
        "workload", "mean", "min", "max"
    );
    for row in &outcome.rows {
        println!(
            "{:<28} {:>10.4} {:>10.4} {:>10.4}",
            row.workload, row.mean_seq_avf, row.min_seq_avf, row.max_seq_avf
        );
    }
    println!(
        "swept {} workloads over {} sequential bits in {:?}",
        outcome.rows.len(),
        netlist.seq_count(),
        t0.elapsed()
    );
    if let Some(out) = args.get("out") {
        #[derive(serde::Serialize)]
        struct Row<'a> {
            workload: &'a str,
            mean_seq_avf: f64,
            min_seq_avf: f64,
            max_seq_avf: f64,
        }
        let dump: Vec<Row<'_>> = outcome
            .rows
            .iter()
            .map(|r| Row {
                workload: &r.workload,
                mean_seq_avf: r.mean_seq_avf,
                min_seq_avf: r.min_seq_avf,
                max_seq_avf: r.max_seq_avf,
            })
            .collect();
        write_file(
            out,
            &serde_json::to_string_pretty(&dump).map_err(|e| e.to_string())?,
        )?;
        println!("wrote {out}: {} workload rows", dump.len());
    }
    obs.finish("sweep")
}

fn cmd_validate(args: &Args) -> Result<(), String> {
    use seqavf_beam::validate::{run_validate_traced, Sampling, ValidateConfig};
    use seqavf_core::sweep::{obtain_compiled_traced, CacheStatus};
    use seqavf_sfi::campaign::{Kernel, TrialConfig};
    args.validate(
        &[
            "design",
            "map",
            "pavf",
            "out",
            "trials",
            "seed",
            "threads",
            "sampling",
            "floor",
            "kernel",
            "burst",
            "warmup",
            "horizon",
            "assert-corr",
            "cache-dir",
            "graph-cache",
            "loop-pavf",
            "iterations",
            "trace-out",
        ],
        &["global", "no-incremental", "no-derate", "metrics"],
    )?;
    let obs = Obs::from_args(args);
    let (netlist, loops) = load_design(
        args.require("design")?,
        &obs.collector,
        args.get("graph-cache"),
    )?;
    let mapping = StructureMapping::from_text(&netlist, &read_file(args.require("map")?)?)?;
    // Without --pavf the analytical side runs under conservative inputs
    // (every boundary and port pAVF 1.0): structural vulnerability, which
    // is the quantity a random-stimulus injection campaign measures. A
    // measured table validates the workload-derated AVFs instead — expect
    // weak correlation there, since ACE derating is invisible to random
    // stimulus by construction.
    let inputs: PavfInputs = match args.get("pavf") {
        Some(path) => serde_json::from_str(&read_file(path)?)
            .map_err(|e| format!("parsing pAVF table: {e}"))?,
        None => PavfInputs::new(),
    };
    let threads = args.num("threads", 8usize)?.max(1);
    let config = SartConfig {
        loop_pavf: args.unit_f64("loop-pavf", 0.3)?,
        max_iterations: args.num("iterations", 20usize)?,
        partitioned: !args.has("global"),
        incremental: !args.has("no-incremental"),
        threads,
        ..SartConfig::default()
    };

    // Analytical side: the per-bit SART AVFs, via the same compiled-DAG
    // artifact cache the sweep uses (a prior `sweep --cache-dir` run makes
    // this a pure cache hit).
    let (compiled, cache) = obtain_compiled_traced(
        &netlist,
        &mapping,
        &config,
        &inputs,
        args.get("cache-dir").map(std::path::Path::new),
        loops.as_ref(),
        &obs.collector,
    )?;
    let node_avfs = compiled.evaluate_traced(&inputs, &obs.collector);
    let targets: Vec<_> = netlist.seq_nodes().collect();
    // The prediction of what injection measures: the SART AVF derated by
    // the propagation-probability model (logical masking under random
    // stimulus), unless --no-derate asks for the raw SART values.
    let derate = !args.has("no-derate");
    let sart_avfs: Vec<f64> = if derate {
        let model = {
            let mut span = obs.collector.span("validate.prop_model");
            span.field_u64("nodes", netlist.node_count() as u64);
            seqavf_sfi::logic::PropModel::build(
                &netlist,
                &seqavf_sfi::inject::observation_points(&netlist),
            )
        };
        targets
            .iter()
            .map(|&id| node_avfs[id.index()].clamp(0.0, 1.0) * model.propagation(id))
            .collect()
    } else {
        targets.iter().map(|&id| node_avfs[id.index()]).collect()
    };
    let cache_word = match cache {
        CacheStatus::Disabled => "compiled fresh",
        CacheStatus::Miss => "cache miss (artifact stored)",
        CacheStatus::Hit => "cache hit (relaxation skipped)",
    };
    println!(
        "analytical side: {} sequential bits, SART under {} inputs{} ({cache_word})",
        targets.len(),
        if args.get("pavf").is_some() {
            "measured"
        } else {
            "conservative"
        },
        if derate {
            " × propagation derating"
        } else {
            ""
        },
    );

    // Injection side + comparison.
    let sampling = match args.get("sampling").unwrap_or("uniform") {
        "uniform" => Sampling::Uniform,
        "importance" => Sampling::Importance {
            floor: args.unit_f64("floor", 0.01)?,
        },
        other => {
            return Err(format!(
                "--sampling must be uniform|importance, got `{other}`"
            ))
        }
    };
    let kernel = match args.get("kernel").unwrap_or("exact") {
        "exact" => Kernel::Exact,
        "propagation" => Kernel::Propagation,
        other => return Err(format!("--kernel must be exact|propagation, got `{other}`")),
    };
    let vcfg = ValidateConfig {
        trial: TrialConfig {
            trials: args.num("trials", 1_000_000usize)?,
            seed: args.num("seed", 0xace_5eedu64)?,
            max_warmup: args.num("warmup", 32u64)?,
            horizon: args.num("horizon", 150u64)?,
            threads,
            burst: args.pos_usize("burst", 1)?,
            kernel,
        },
        sampling,
    };
    println!(
        "injecting {} trials across {} bits…",
        vcfg.trial.trials,
        targets.len()
    );
    let t0 = std::time::Instant::now();
    let report = run_validate_traced(
        &netlist,
        netlist.design_name(),
        &targets,
        &sart_avfs,
        &vcfg,
        &obs.collector,
    );
    print!("{}", report.to_table());
    println!(
        "validated {} trials in {:?} ({} threads)",
        report.trials,
        t0.elapsed(),
        threads
    );
    if let Some(out) = args.get("out") {
        write_file(out, &report.to_json())?;
        println!(
            "wrote {out}: seqavf-validate/1 artifact, {} FUBs",
            report.fubs.len()
        );
    }
    obs.finish("validate")?;
    if args.get("assert-corr").is_some() {
        let threshold = args.unit_f64("assert-corr", 0.0)?;
        if report.pearson < threshold {
            return Err(format!(
                "model/injection Pearson correlation {:.4} below required {:.4}",
                report.pearson, threshold
            ));
        }
        println!(
            "correlation check passed: pearson {:.4} >= {:.4}",
            report.pearson, threshold
        );
    }
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    use seqavf_serve::resident::ResidentConfig;
    use seqavf_serve::server::{spawn, ServeConfig};
    args.validate(
        &[
            "port",
            "host",
            "workers",
            "queue",
            "threads",
            "max-resident",
            "graph-cache",
            "cache-dir",
            "idle-secs",
            "trace-out",
        ],
        &["metrics"],
    )?;
    let obs = Obs::from_args(args);
    let host = args.get("host").unwrap_or("127.0.0.1");
    let port: u16 = args.num("port", 7171u16)?;
    let cfg = ServeConfig {
        addr: format!("{host}:{port}"),
        workers: args.pos_usize("workers", 2)?,
        queue_cap: args.pos_usize("queue", 32)?,
        resident: ResidentConfig {
            max_resident: args.pos_usize("max-resident", 4)?,
            threads: args.pos_usize("threads", 1)?,
            graph_cache: args.get("graph-cache").map(Into::into),
            sweep_cache: args.get("cache-dir").map(Into::into),
        },
        idle_timeout: match args.get("idle-secs") {
            None => None,
            Some(_) => Some(std::time::Duration::from_secs_f64(
                args.pos_f64("idle-secs", 60.0)?,
            )),
        },
        signal_handlers: true,
        ..ServeConfig::default()
    };
    let handle = spawn(cfg, obs.collector.clone())?;
    println!(
        "seqavf serve: listening on http://{} (POST /v1/avf, GET /metrics, GET /healthz)",
        handle.addr()
    );
    handle.join();
    println!("seqavf serve: shut down cleanly");
    obs.finish("serve")
}

fn cmd_query(args: &Args) -> Result<(), String> {
    use seqavf_serve::api::{AvfRequest, AvfResponse, NamedTable, RequestConfig};
    use seqavf_serve::client;
    use std::net::ToSocketAddrs;
    args.validate(
        &[
            "addr",
            "design",
            "design-ref",
            "map",
            "pavf",
            "out",
            "workloads",
            "len",
            "seed",
            "loop-pavf",
            "iterations",
            "trace-out",
        ],
        &["global", "conservative", "metrics"],
    )?;
    let obs = Obs::from_args(args);
    let addr_text = args.get("addr").unwrap_or("127.0.0.1:7171");
    let addr = addr_text
        .to_socket_addrs()
        .map_err(|e| format!("resolving --addr {addr_text}: {e}"))?
        .next()
        .ok_or_else(|| format!("--addr {addr_text} resolved to no addresses"))?;
    // The workload tables come from the same client-side ACE run the
    // `sweep` command does, so a server answer can be compared to a
    // `sweep` answer byte for byte.
    let suite_cfg = SuiteConfig {
        workloads: args.num("workloads", 8usize)?,
        len: args.num("len", 5_000usize)?,
        seed: args.num("seed", 0xace_5eedu64)?,
        include_kernels: true,
    };
    let perf = PerfConfig {
        conservative_residency: args.has("conservative"),
        ..PerfConfig::default()
    };
    let traces = standard_suite(&suite_cfg);
    println!("running {} workloads through the ACE model…", traces.len());
    let suite = seqavf::flow::run_suite_traced(&traces, &perf, &obs.collector);
    let tables: Vec<NamedTable> = suite
        .runs
        .iter()
        .map(|r| NamedTable {
            workload: r.workload.clone(),
            inputs: seqavf::flow::inputs_from_report(r),
        })
        .collect();
    let base_inputs = match args.get("pavf") {
        Some(path) => Some(
            serde_json::from_str(&read_file(path)?)
                .map_err(|e| format!("parsing pAVF table: {e}"))?,
        ),
        None => None,
    };
    let request = AvfRequest {
        design_path: args.get("design").map(str::to_owned),
        design_ref: args.get("design-ref").map(str::to_owned),
        map_path: args.get("map").map(str::to_owned),
        config: Some(RequestConfig {
            loop_pavf: Some(args.unit_f64("loop-pavf", 0.3)?),
            iterations: Some(args.num("iterations", 20u64)?),
            global: Some(args.has("global")),
        }),
        base_inputs,
        tables,
        include_nodes: None,
        include_fubs: None,
    };
    let body = serde_json::to_string(&request).map_err(|e| e.to_string())?;
    let t0 = std::time::Instant::now();
    let (status, text) = client::post_json(addr, "/v1/avf", &body)?;
    if status != 200 {
        return Err(format!("server answered {status}: {text}"));
    }
    let response: AvfResponse =
        serde_json::from_str(&text).map_err(|e| format!("parsing server response: {e}"))?;
    println!(
        "design_ref {} — graph {}, compiled DAG {} ({:?} round trip)",
        response.design_ref,
        response.graph_cache,
        response.sweep_cache,
        t0.elapsed()
    );
    println!(
        "{:<28} {:>10} {:>10} {:>10}",
        "workload", "mean", "min", "max"
    );
    for row in &response.rows {
        println!(
            "{:<28} {:>10.4} {:>10.4} {:>10.4}",
            row.workload, row.mean_seq_avf, row.min_seq_avf, row.max_seq_avf
        );
    }
    if let Some(out) = args.get("out") {
        // Exactly the `sweep --out` shape, so the two files can be
        // compared byte for byte.
        #[derive(serde::Serialize)]
        struct Row<'a> {
            workload: &'a str,
            mean_seq_avf: f64,
            min_seq_avf: f64,
            max_seq_avf: f64,
        }
        let dump: Vec<Row<'_>> = response
            .rows
            .iter()
            .map(|r| Row {
                workload: &r.workload,
                mean_seq_avf: r.mean_seq_avf,
                min_seq_avf: r.min_seq_avf,
                max_seq_avf: r.max_seq_avf,
            })
            .collect();
        write_file(
            out,
            &serde_json::to_string_pretty(&dump).map_err(|e| e.to_string())?,
        )?;
        println!("wrote {out}: {} workload rows", dump.len());
    }
    obs.finish("query")
}

fn cmd_flow(args: &Args) -> Result<(), String> {
    args.validate(
        &[
            "seed",
            "workloads",
            "len",
            "scale",
            "cores",
            "threads",
            "graph-cache",
            "trace-out",
        ],
        &["no-incremental", "metrics"],
    )?;
    let obs = Obs::from_args(args);
    let mut cfg = seqavf::flow::FlowConfig::xeon_like(args.num("seed", 42u64)?);
    cfg.graph_cache = args.get("graph-cache").map(Into::into);
    cfg.design = cfg
        .design
        .scaled(args.pos_f64("scale", 1.0)?)
        .with_cores(args.pos_usize("cores", 1)?);
    cfg.suite.workloads = args.num("workloads", 32usize)?;
    cfg.suite.len = args.num("len", 5_000usize)?;
    cfg.sart.threads = args.num("threads", 1usize)?.max(1);
    cfg.sart.incremental = !args.has("no-incremental");
    let t0 = std::time::Instant::now();
    let out = seqavf::flow::run_flow_traced(&cfg, &obs.collector);
    print!("{}", out.summary.to_table());
    println!(
        "\naverage sequential AVF = {:.1}%   ({} iterations, {:.1}% visited, {:?})",
        out.summary.weighted_seq_avf * 100.0,
        out.summary.iterations,
        out.summary.visited_fraction * 100.0,
        t0.elapsed()
    );
    println!(
        "relaxation wall time: {:.3} ms over {} sweeps ({} threads)",
        out.result.outcome.total_wall_seconds() * 1e3,
        out.result.outcome.trace.len(),
        cfg.sart.threads
    );
    obs.finish("flow")
}
