//! A minimal dependency-free argument parser: `--key value` flags and
//! `--switch` booleans after a subcommand word.
//!
//! Parsing is strict: duplicate flags and stray positionals are usage
//! errors that name the offending token, and each subcommand declares its
//! accepted flags/switches via [`Args::validate`] so misspelled options
//! fail loudly instead of being silently ignored.

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus flags.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    flags: BTreeMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parses raw arguments (excluding the program name).
    ///
    /// A token starting with `--` that is followed by a non-flag token
    /// becomes a key/value flag; otherwise it is a boolean switch. Errors
    /// on a repeated `--key` and on any positional beyond the subcommand,
    /// naming the offending token.
    pub fn parse<I, S>(raw: I) -> Result<Args, String>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let tokens: Vec<String> = raw.into_iter().map(Into::into).collect();
        let mut args = Args::default();
        let mut i = 0;
        while i < tokens.len() {
            let t = &tokens[i];
            if let Some(key) = t.strip_prefix("--") {
                if args.flags.contains_key(key) || args.switches.iter().any(|s| s == key) {
                    return Err(format!("duplicate flag --{key}"));
                }
                if i + 1 < tokens.len() && !tokens[i + 1].starts_with("--") {
                    args.flags.insert(key.to_owned(), tokens[i + 1].clone());
                    i += 2;
                } else {
                    args.switches.push(key.to_owned());
                    i += 1;
                }
            } else {
                if !args.command.is_empty() {
                    return Err(format!("unexpected argument `{t}`"));
                }
                args.command = t.clone();
                i += 1;
            }
        }
        Ok(args)
    }

    /// Checks every parsed option against the subcommand's accepted
    /// `flags` (take a value) and `switches` (boolean). Reports unknown
    /// options by name, switches that were given a value, and flags that
    /// are missing one.
    pub fn validate(&self, flags: &[&str], switches: &[&str]) -> Result<(), String> {
        for key in self.flags.keys() {
            if switches.iter().any(|s| s == key) {
                return Err(format!("switch --{key} does not take a value"));
            }
            if !flags.iter().any(|f| f == key) {
                return Err(format!("unknown flag --{key}"));
            }
        }
        for key in &self.switches {
            if flags.iter().any(|f| f == key) {
                return Err(format!("flag --{key} requires a value"));
            }
            if !switches.iter().any(|s| s == key) {
                return Err(format!("unknown flag --{key}"));
            }
        }
        Ok(())
    }

    /// String flag value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// Required string flag, with a usage error message.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required flag --{key}"))
    }

    /// Parsed numeric flag with a default.
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag --{key}: cannot parse `{v}`")),
        }
    }

    /// Parsed f64 flag that must be finite and strictly positive.
    /// `f64::from_str` happily accepts `nan` and `inf`, which would
    /// poison any geometry math downstream (e.g. `--scale nan` sizing a
    /// synthetic design) — reject them here with a usage error naming the
    /// flag instead.
    pub fn pos_f64(&self, key: &str, default: f64) -> Result<f64, String> {
        let v = self.num(key, default)?;
        if !v.is_finite() || v <= 0.0 {
            return Err(format!(
                "flag --{key}: must be a positive finite number, got `{v}`"
            ));
        }
        Ok(v)
    }

    /// Parsed f64 flag that must be a probability in `[0, 1]` (pAVF
    /// values). Rejects `nan`, infinities, and out-of-range values.
    pub fn unit_f64(&self, key: &str, default: f64) -> Result<f64, String> {
        let v = self.num(key, default)?;
        if !(0.0..=1.0).contains(&v) {
            return Err(format!(
                "flag --{key}: must be a probability in [0, 1], got `{v}`"
            ));
        }
        Ok(v)
    }

    /// Parsed usize flag that must be at least 1.
    pub fn pos_usize(&self, key: &str, default: usize) -> Result<usize, String> {
        let v = self.num(key, default)?;
        if v == 0 {
            return Err(format!("flag --{key}: must be at least 1"));
        }
        Ok(v)
    }

    /// Boolean switch presence.
    pub fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_command_flags_and_switches() {
        let a = Args::parse(["sart", "--design", "d.exlif", "--verbose", "--iters", "20"]).unwrap();
        assert_eq!(a.command, "sart");
        assert_eq!(a.get("design"), Some("d.exlif"));
        assert!(a.has("verbose"));
        assert_eq!(a.num::<usize>("iters", 0).unwrap(), 20);
    }

    #[test]
    fn missing_and_default_values() {
        let a = Args::parse(["gen"]).unwrap();
        assert_eq!(a.get("x"), None);
        assert!(a.require("x").is_err());
        assert_eq!(a.num::<u64>("seed", 42).unwrap(), 42);
        assert!(!a.has("force"));
    }

    #[test]
    fn bad_number_reports_flag() {
        let a = Args::parse(["gen", "--seed", "abc"]).unwrap();
        let e = a.num::<u64>("seed", 0).unwrap_err();
        assert!(e.contains("--seed"));
    }

    #[test]
    fn trailing_switch() {
        let a = Args::parse(["flow", "--full"]).unwrap();
        assert!(a.has("full"));
    }

    #[test]
    fn duplicate_flag_is_an_error() {
        let e = Args::parse(["sart", "--threads", "4", "--threads", "8"]).unwrap_err();
        assert_eq!(e, "duplicate flag --threads");
    }

    #[test]
    fn duplicate_switch_is_an_error() {
        let e = Args::parse(["flow", "--metrics", "--metrics"]).unwrap_err();
        assert_eq!(e, "duplicate flag --metrics");
    }

    #[test]
    fn flag_repeated_as_switch_is_an_error() {
        let e = Args::parse(["sart", "--threads", "4", "--threads"]).unwrap_err();
        assert_eq!(e, "duplicate flag --threads");
    }

    #[test]
    fn stray_positional_is_an_error() {
        let e = Args::parse(["gen", "extra.exlif"]).unwrap_err();
        assert_eq!(e, "unexpected argument `extra.exlif`");
    }

    #[test]
    fn positional_after_flags_is_an_error() {
        let e = Args::parse(["gen", "--seed", "1", "oops"]).unwrap_err();
        assert_eq!(e, "unexpected argument `oops`");
    }

    #[test]
    fn validate_rejects_misspelled_flag() {
        let a = Args::parse(["gen", "--seeed", "7"]).unwrap();
        let e = a.validate(&["seed", "out"], &["metrics"]).unwrap_err();
        assert_eq!(e, "unknown flag --seeed");
    }

    #[test]
    fn validate_rejects_misspelled_switch() {
        let a = Args::parse(["flow", "--metrix"]).unwrap();
        let e = a.validate(&["seed"], &["metrics"]).unwrap_err();
        assert_eq!(e, "unknown flag --metrix");
    }

    #[test]
    fn validate_rejects_switch_with_value() {
        let a = Args::parse(["ace", "--conservative", "yes"]).unwrap();
        let e = a.validate(&["out"], &["conservative"]).unwrap_err();
        assert_eq!(e, "switch --conservative does not take a value");
    }

    #[test]
    fn validate_rejects_flag_without_value() {
        let a = Args::parse(["gen", "--out"]).unwrap();
        let e = a.validate(&["out"], &["metrics"]).unwrap_err();
        assert_eq!(e, "flag --out requires a value");
    }

    #[test]
    fn validate_accepts_known_options() {
        let a = Args::parse(["sart", "--threads", "4", "--global", "--metrics"]).unwrap();
        a.validate(&["threads", "design"], &["global", "metrics"])
            .unwrap();
    }

    #[test]
    fn pos_f64_rejects_nan_inf_zero_and_negatives() {
        for bad in ["nan", "inf", "-inf", "0", "-1.5"] {
            let a = Args::parse(["gen", "--scale", bad]).unwrap();
            let e = a.pos_f64("scale", 1.0).unwrap_err();
            assert!(e.contains("--scale"), "{bad}: {e}");
        }
        let a = Args::parse(["gen", "--scale", "2.5"]).unwrap();
        assert_eq!(a.pos_f64("scale", 1.0).unwrap(), 2.5);
        let a = Args::parse(["gen"]).unwrap();
        assert_eq!(a.pos_f64("scale", 1.0).unwrap(), 1.0);
    }

    #[test]
    fn unit_f64_rejects_out_of_range_and_nan() {
        for bad in ["nan", "1.5", "-0.1", "inf"] {
            let a = Args::parse(["sart", "--loop-pavf", bad]).unwrap();
            let e = a.unit_f64("loop-pavf", 0.3).unwrap_err();
            assert!(e.contains("--loop-pavf"), "{bad}: {e}");
        }
        for good in ["0", "1", "0.3"] {
            let a = Args::parse(["sart", "--loop-pavf", good]).unwrap();
            assert!(a.unit_f64("loop-pavf", 0.3).is_ok(), "{good}");
        }
    }

    #[test]
    fn pos_usize_rejects_zero() {
        let a = Args::parse(["gen", "--cores", "0"]).unwrap();
        let e = a.pos_usize("cores", 1).unwrap_err();
        assert!(e.contains("--cores"));
        let a = Args::parse(["gen", "--cores", "4"]).unwrap();
        assert_eq!(a.pos_usize("cores", 1).unwrap(), 4);
    }
}
