//! A minimal dependency-free argument parser: `--key value` flags and
//! `--switch` booleans after a subcommand word.

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus flags.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    flags: BTreeMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parses raw arguments (excluding the program name).
    ///
    /// A token starting with `--` that is followed by a non-flag token
    /// becomes a key/value flag; otherwise it is a boolean switch.
    pub fn parse<I, S>(raw: I) -> Args
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let tokens: Vec<String> = raw.into_iter().map(Into::into).collect();
        let mut args = Args::default();
        let mut i = 0;
        while i < tokens.len() {
            let t = &tokens[i];
            if let Some(key) = t.strip_prefix("--") {
                if i + 1 < tokens.len() && !tokens[i + 1].starts_with("--") {
                    args.flags.insert(key.to_owned(), tokens[i + 1].clone());
                    i += 2;
                } else {
                    args.switches.push(key.to_owned());
                    i += 1;
                }
            } else {
                if args.command.is_empty() {
                    args.command = t.clone();
                }
                i += 1;
            }
        }
        args
    }

    /// String flag value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// Required string flag, with a usage error message.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required flag --{key}"))
    }

    /// Parsed numeric flag with a default.
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag --{key}: cannot parse `{v}`")),
        }
    }

    /// Boolean switch presence.
    pub fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_command_flags_and_switches() {
        let a = Args::parse(["sart", "--design", "d.exlif", "--verbose", "--iters", "20"]);
        assert_eq!(a.command, "sart");
        assert_eq!(a.get("design"), Some("d.exlif"));
        assert!(a.has("verbose"));
        assert_eq!(a.num::<usize>("iters", 0).unwrap(), 20);
    }

    #[test]
    fn missing_and_default_values() {
        let a = Args::parse(["gen"]);
        assert_eq!(a.get("x"), None);
        assert!(a.require("x").is_err());
        assert_eq!(a.num::<u64>("seed", 42).unwrap(), 42);
        assert!(!a.has("force"));
    }

    #[test]
    fn bad_number_reports_flag() {
        let a = Args::parse(["gen", "--seed", "abc"]);
        let e = a.num::<u64>("seed", 0).unwrap_err();
        assert!(e.contains("--seed"));
    }

    #[test]
    fn trailing_switch() {
        let a = Args::parse(["flow", "--full"]);
        assert!(a.has("full"));
    }
}
