//! End-to-end service tests over real sockets: concurrent clients must
//! get bit-identical answers, and a full admission queue must answer 503
//! instead of queueing unboundedly.

use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

use seqavf_core::mapping::{PavfInputs, StructureMapping};
use seqavf_netlist::exlif;
use seqavf_netlist::synth::{generate, SynthConfig};
use seqavf_obs::Collector;
use seqavf_serve::api::{AvfRequest, AvfResponse, NamedTable};
use seqavf_serve::client;
use seqavf_serve::server::{spawn, ServeConfig};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("seqavf-service-test-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_design(dir: &Path, seed: u64) -> (PathBuf, PathBuf) {
    let design = generate(&SynthConfig::xeon_like(seed));
    let exlif_path = dir.join("design.exlif");
    std::fs::write(&exlif_path, exlif::write(&design.netlist)).unwrap();
    let mapping = StructureMapping::from_pairs(design.meta.structure_map.clone());
    let map_path = dir.join("design.map");
    std::fs::write(&map_path, mapping.to_text(&design.netlist)).unwrap();
    (exlif_path, map_path)
}

fn batch_body(design: &Path, map: &Path, n_tables: usize) -> String {
    let tables = (0..n_tables)
        .map(|i| {
            let mut inputs = PavfInputs::new();
            inputs.set_port("uops_executed", 0.15 + 0.05 * i as f64, 0.4);
            NamedTable {
                workload: format!("w{i}"),
                inputs,
            }
        })
        .collect();
    let req = AvfRequest {
        design_path: Some(design.display().to_string()),
        design_ref: None,
        map_path: Some(map.display().to_string()),
        config: None,
        base_inputs: None,
        tables,
        include_nodes: None,
        include_fubs: None,
    };
    serde_json::to_string(&req).unwrap()
}

#[test]
fn concurrent_clients_get_bit_identical_answers() {
    let dir = scratch("concurrent");
    let (design, map) = write_design(&dir, 21);
    let server = spawn(
        ServeConfig {
            workers: 3,
            queue_cap: 64,
            ..ServeConfig::default()
        },
        Collector::new(),
    )
    .unwrap();
    let addr = server.addr();
    let body = batch_body(&design, &map, 2);

    // Prime once so every concurrent request is warm (and so the cold
    // compile is not raced — racing it is legal, just slower).
    let (status, reference) = client::post_json(addr, "/v1/avf", &body).unwrap();
    assert_eq!(status, 200, "{reference}");

    let clients: Vec<_> = (0..8)
        .map(|_| {
            let body = body.clone();
            std::thread::spawn(move || client::post_json(addr, "/v1/avf", &body).unwrap())
        })
        .collect();
    for c in clients {
        let (status, text) = c.join().unwrap();
        assert_eq!(status, 200);
        // Byte-identical bodies: same rows, same ref, warm both tiers.
        assert_eq!(text, reference.replace("\"miss\"", "\"hit\""));
        let resp: AvfResponse = serde_json::from_str(&text).unwrap();
        assert_eq!(resp.graph_cache, "hit");
        assert_eq!(resp.sweep_cache, "hit");
    }

    // The per-request spans and counters reflect the batch.
    let (status, metrics) = client::get(addr, "/metrics").unwrap();
    assert_eq!(status, 200);
    assert!(metrics.contains("seqavf_serve_cache_hit 8"), "{metrics}");
    assert!(metrics.contains("seqavf_serve_cache_miss 1"), "{metrics}");
    server.shutdown();
    server.join();
}

#[test]
fn full_admission_queue_answers_503_and_recovers() {
    let dir = scratch("backpressure");
    let (design, map) = write_design(&dir, 22);
    let server = spawn(
        ServeConfig {
            workers: 1,
            queue_cap: 1,
            read_timeout: Duration::from_secs(3),
            ..ServeConfig::default()
        },
        Collector::new(),
    )
    .unwrap();
    let addr = server.addr();

    // Occupy the only worker: a connection that sends nothing pins it in
    // read_request until the 3 s read timeout.
    let hold_worker = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(300));
    // Occupy the only queue slot the same way.
    let hold_queue = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(300));

    // Worker busy + queue full: admission control must answer 503 at the
    // door, bounded and immediate — not hang, not queue, not grow memory.
    let t0 = std::time::Instant::now();
    let (status, text) = client::get(addr, "/healthz").unwrap();
    assert_eq!(status, 503, "{text}");
    assert!(text.contains("admission queue"), "{text}");
    assert!(
        t0.elapsed() < Duration::from_secs(1),
        "503 took {:?}, admission control is queueing",
        t0.elapsed()
    );

    // Release the held connections; the server must recover fully.
    drop(hold_worker);
    drop(hold_queue);
    let mut ok = false;
    for _ in 0..50 {
        std::thread::sleep(Duration::from_millis(100));
        if let Ok((200, _)) = client::get(addr, "/healthz") {
            ok = true;
            break;
        }
    }
    assert!(ok, "server did not recover after backpressure");

    // Real work still succeeds after the squeeze, and the rejection was
    // counted.
    let body = batch_body(&design, &map, 1);
    let (status, _) = client::post_json(addr, "/v1/avf", &body).unwrap();
    assert_eq!(status, 200);
    let (_, metrics) = client::get(addr, "/metrics").unwrap();
    assert!(
        metrics.contains("seqavf_serve_rejected_total 1")
            || metrics.contains("seqavf_serve_rejected_total 2"),
        "{metrics}"
    );
    server.shutdown();
    server.join();
}

#[test]
fn graceful_shutdown_drains_queued_work() {
    let dir = scratch("drain");
    let (design, map) = write_design(&dir, 23);
    let server = spawn(
        ServeConfig {
            workers: 2,
            queue_cap: 16,
            ..ServeConfig::default()
        },
        Collector::new(),
    )
    .unwrap();
    let addr = server.addr();
    let body = batch_body(&design, &map, 1);
    // Prime, then fire a request and immediately request shutdown: the
    // in-flight request must still be answered (drain, not abort).
    let (status, _) = client::post_json(addr, "/v1/avf", &body).unwrap();
    assert_eq!(status, 200);
    let racer = {
        let body = body.clone();
        std::thread::spawn(move || client::post_json(addr, "/v1/avf", &body))
    };
    server.shutdown();
    if let Ok((status, _)) = racer.join().unwrap() {
        // Accepted before the flag landed: it must have been served.
        assert_eq!(status, 200);
    }
    server.join();
    // After join, the listener is gone.
    assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err());
}

/// `POST /v1/design-update` over a real socket patches the resident DAG
/// and surfaces the `sweep.patch.*` counters in `/metrics`.
#[test]
fn design_update_surfaces_patch_counters_in_metrics() {
    use seqavf_serve::api::{DesignUpdateRequest, DesignUpdateResponse};

    let dir = scratch("patch-metrics");
    let (design, map) = write_design(&dir, 31);
    let server = spawn(
        ServeConfig {
            workers: 1,
            queue_cap: 8,
            ..ServeConfig::default()
        },
        Collector::new(),
    )
    .unwrap();
    let addr = server.addr();

    let (status, cold) = client::post_json(addr, "/v1/avf", &batch_body(&design, &map, 1)).unwrap();
    assert_eq!(status, 200, "{cold}");
    let cold: AvfResponse = serde_json::from_str(&cold).unwrap();

    // Edit one gate on disk and push the update.
    let text = std::fs::read_to_string(&design).unwrap();
    let edited = text.replacen(".gate and ", ".gate or ", 1);
    assert_ne!(text, edited);
    std::fs::write(&design, edited).unwrap();
    let upd_req = DesignUpdateRequest {
        design_path: design.display().to_string(),
        prev_ref: Some(cold.design_ref.clone()),
        map_path: None,
        config: None,
        base_inputs: None,
    };
    let (status, body) = client::post_json(
        addr,
        "/v1/design-update",
        &serde_json::to_string(&upd_req).unwrap(),
    )
    .unwrap();
    assert_eq!(status, 200, "{body}");
    let upd: DesignUpdateResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(upd.mode, "warm", "reason: {:?}", upd.reason);
    assert_eq!(upd.dag, "patched", "dag_reason: {:?}", upd.dag_reason);
    assert!(upd.ops_patched > 0);

    let (status, metrics) = client::get(addr, "/metrics").unwrap();
    assert_eq!(status, 200);
    assert!(metrics.contains("seqavf_sweep_patch_hit 1"), "{metrics}");
    assert!(
        metrics.contains("seqavf_sweep_patch_nodes_patched"),
        "{metrics}"
    );
    assert!(
        metrics.contains("seqavf_sweep_patch_nodes_orphaned"),
        "{metrics}"
    );
    server.shutdown();
    server.join();
}
