//! AVF-as-a-service: a resident sweep server.
//!
//! The batch CLI pays the full pipeline — parse, flatten, SCC, relax,
//! compile — on every invocation, even though the compiled sweep DAG is
//! reusable across any number of workload tables (the paper's §5.2
//! amortization argument). This crate keeps that state *resident*: a
//! long-running daemon holds loaded graphs and compiled DAGs behind
//! digest-keyed LRUs, so a warm AVF query is one JSON parse plus one
//! DAG evaluation — milliseconds on a 100k-node design instead of the
//! multi-second cold pipeline.
//!
//! Layering (bottom up):
//!
//! * [`lru`] — fixed-capacity digest-keyed LRU with eviction accounting.
//! * [`http`] — bounded hand-rolled HTTP/1.1 over `std::net` (the
//!   vendored-deps policy rules out a real HTTP stack).
//! * [`api`] — the JSON wire types (`POST /v1/avf` request/response).
//! * [`resident`] — the shared state and request evaluation; keyed by
//!   the same digests the on-disk caches use, so the server and the
//!   batch CLI interoperate through `--graph-cache` / `--cache-dir`.
//! * [`server`] — accept loop, bounded admission queue (full ⇒ 503),
//!   worker pool, `/metrics`, graceful shutdown.
//! * [`client`] — a small blocking client for `seqavf query`, tests,
//!   and smoke scripts.
//!
//! The service's defining invariant: responses are **bit-identical** to
//! the `sweep` CLI's output for the same design, mapping, configuration
//! and tables. Residency is a latency optimization, never a numeric
//! approximation.

pub mod api;
pub mod client;
pub mod http;
pub mod lru;
pub mod resident;
pub mod server;
