//! Resident state: loaded design graphs and compiled sweep DAGs, each
//! behind a digest-keyed LRU, shared by every worker thread.
//!
//! Two tiers of residency, keyed by the digests the on-disk caches
//! already use so warm state and disk artifacts agree about identity:
//!
//! * **Graphs** — keyed by an FNV-1a hash of `(frontend tag, source
//!   text)`, the exact key the CLI's `--graph-cache` snapshot files use.
//!   A resident entry holds the flattened [`Netlist`], its
//!   [`LoopAnalysis`], and the structure mapping it was loaded with. The
//!   key doubles as the `design_ref` token clients echo back to skip
//!   file IO entirely.
//! * **Compiled sweeps** — keyed by [`seqavf_core::sweep::cache_key`]
//!   (netlist content digest × mapping × result-affecting config), each
//!   an [`Arc<CompiledSweep>`] so evaluation proceeds after the LRU lock
//!   is dropped and eviction never invalidates an in-flight request.
//!
//! Misses deliberately release the LRU lock while parsing/relaxing:
//! two clients racing the same cold design may both do the work (last
//! insert wins), but a cold load never stalls warm traffic. Disk caches
//! (`--graph-cache`, `--cache-dir`) are consulted between the LRU and a
//! full recompute, so a server restart warms from the same artifacts the
//! batch CLI writes.

use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use seqavf_core::compile::{CompiledSweep, SeqStats};
use seqavf_core::engine::{SartConfig, SartEngine, WarmStatus};
use seqavf_core::fixpoint::{self, StoredFixpoint};
use seqavf_core::mapping::{PavfInputs, StructureMapping};
use seqavf_core::sweep::{cache_key, cache_key_parts, PatchStatus, SweepCache};
use seqavf_netlist::graph::Netlist;
use seqavf_netlist::scc::{find_loops_traced, LoopAnalysis};
use seqavf_netlist::{flatten, snapshot, verilog, Fnv1a64};
use seqavf_obs::Collector;

use crate::api::{
    AvfRequest, AvfResponse, DesignUpdateRequest, DesignUpdateResponse, FubRow, Health,
    RequestConfig, RowOut,
};
use crate::lru::Lru;

/// A request-level failure with its HTTP status.
#[derive(Debug)]
pub struct ApiError {
    /// Status code to answer with.
    pub status: u16,
    /// Human-readable message for the error body.
    pub message: String,
}

impl ApiError {
    /// 400: the request itself is wrong.
    pub fn bad_request(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 400,
            message: message.into(),
        }
    }

    /// 404: a `design_ref` that is no longer (or never was) resident.
    pub fn not_found(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 404,
            message: message.into(),
        }
    }

    /// 500: the server failed to do valid work.
    pub fn internal(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 500,
            message: message.into(),
        }
    }
}

/// Residency and evaluation settings.
#[derive(Debug, Clone)]
pub struct ResidentConfig {
    /// LRU capacity for each tier (graphs and compiled sweeps).
    pub max_resident: usize,
    /// Threads for relaxation and batch evaluation.
    pub threads: usize,
    /// `--graph-cache` directory shared with the CLI: binary
    /// `seqavf-graph/2` snapshots consulted (and written) on graph
    /// misses.
    pub graph_cache: Option<PathBuf>,
    /// `--cache-dir` directory shared with the CLI: `seqavf-sweep/2`
    /// artifacts consulted (and written) on sweep misses.
    pub sweep_cache: Option<PathBuf>,
}

impl Default for ResidentConfig {
    fn default() -> Self {
        ResidentConfig {
            max_resident: 4,
            threads: 1,
            graph_cache: None,
            sweep_cache: None,
        }
    }
}

/// A design held resident: the parsed graph, its loop analysis, and the
/// mapping it was loaded with.
#[derive(Debug)]
pub struct LoadedDesign {
    /// The flattened node graph.
    pub netlist: Netlist,
    /// Loop analysis (always present for resident designs).
    pub loops: LoopAnalysis,
    /// Structure mapping from the load-time `map_path` (empty if none
    /// was given).
    pub mapping: StructureMapping,
}

/// The shared resident state.
pub struct Resident {
    cfg: ResidentConfig,
    graphs: Mutex<Lru<Arc<LoadedDesign>>>,
    sweeps: Mutex<Lru<Arc<CompiledSweep>>>,
    /// Converged fixpoints, keyed by [`fixpoint::artifact_key`] — which
    /// deliberately hashes the design *name* (not its content digest),
    /// so an edited revision of the same design resolves to the same
    /// entry and can seed its re-solve from the previous fixpoint.
    fixpoints: Mutex<Lru<Arc<StoredFixpoint>>>,
    obs: Collector,
}

/// [`Resident::resolve_sweep`]'s result: the DAG, the residency tier it
/// came from (`"hit"`/`"miss"`), and — only when this call actually ran
/// a relaxation — the warm status and walked-node count.
type ResolvedSweep = (
    Arc<CompiledSweep>,
    &'static str,
    Option<(WarmStatus, usize)>,
);

/// [`ResolvedSweep`] plus how the DAG was built on a fresh relaxation:
/// `Some(Patched)`/`Some(Rebuilt)` when a previous revision's DAG was
/// available to patch from, `None` on a plain compile or residency hit.
type PatchedSweep = (
    Arc<CompiledSweep>,
    &'static str,
    Option<(WarmStatus, usize)>,
    Option<PatchStatus>,
);

/// The `design_ref` key: FNV-1a over the frontend tag and source text —
/// byte-compatible with the CLI's `--graph-cache` snapshot file naming,
/// so both tools address the same snapshot for the same source.
pub fn design_key(text: &str, is_verilog: bool) -> u64 {
    let mut h = Fnv1a64::new();
    h.update(if is_verilog { b"verilog" } else { b"exlif" });
    h.update(&[0]);
    h.update(text.as_bytes());
    h.finish()
}

impl Resident {
    /// Creates empty resident state. `obs` receives the service counters
    /// (`serve.graph.{hit,miss}`, `serve.cache.{hit,miss}`,
    /// `serve.warmstart.{hit,miss}`, `serve.evict.{graph,sweep}`) and all
    /// engine telemetry.
    pub fn new(cfg: ResidentConfig, obs: Collector) -> Resident {
        let cap = cfg.max_resident;
        Resident {
            cfg,
            graphs: Mutex::new(Lru::new(cap)),
            sweeps: Mutex::new(Lru::new(cap)),
            fixpoints: Mutex::new(Lru::new(cap)),
            obs: obs.clone(),
        }
    }

    /// The collector shared with the server.
    pub fn obs(&self) -> &Collector {
        &self.obs
    }

    /// Health snapshot for `/healthz`.
    pub fn health(&self) -> Health {
        Health {
            status: "ok".to_owned(),
            resident_graphs: lock(&self.graphs).len() as u64,
            resident_sweeps: lock(&self.sweeps).len() as u64,
            resident_fixpoints: lock(&self.fixpoints).len() as u64,
        }
    }

    /// Lifetime evictions `(graphs, sweeps)` for `/metrics`.
    pub fn evictions(&self) -> (u64, u64) {
        (
            lock(&self.graphs).evictions(),
            lock(&self.sweeps).evictions(),
        )
    }

    /// Handles one `POST /v1/avf` request end to end.
    pub fn handle(&self, req: &AvfRequest) -> Result<AvfResponse, ApiError> {
        if req.tables.is_empty() {
            return Err(ApiError::bad_request(
                "empty batch: `tables` must contain at least one workload",
            ));
        }
        let (key, design, graph_cache) = self.resolve_design(req)?;
        // An explicit map_path always wins; warm requests without one
        // reuse the mapping the design was loaded with.
        let mapping = match &req.map_path {
            Some(path) => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| ApiError::bad_request(format!("reading map {path}: {e}")))?;
                StructureMapping::from_text(&design.netlist, &text)
                    .map_err(|e| ApiError::bad_request(format!("parsing map {path}: {e}")))?
            }
            None => design.mapping.clone(),
        };
        let config = self.resolve_config(req.config.as_ref())?;
        let base = req
            .base_inputs
            .clone()
            .unwrap_or_else(|| req.tables[0].inputs.clone());

        let (compiled, sweep_cache, _) = self.resolve_sweep(&design, &mapping, &config, &base)?;

        // Evaluate the whole batch, then summarize each workload exactly
        // the way `run_sweep` does so the service's rows are bit-identical
        // to the `sweep` CLI's. When only summaries are wanted (the warm
        // hot path), use the compiled DAG's summary fold — same arithmetic
        // in the same order, but it never materializes node-length rows.
        let tables: Vec<PavfInputs> = req.tables.iter().map(|t| t.inputs.clone()).collect();
        let nl = &design.netlist;
        let seq: Vec<usize> = nl.seq_nodes().map(|id| id.index()).collect();
        let include_nodes = req.include_nodes.unwrap_or(false);
        let include_fubs = req.include_fubs.unwrap_or(false);
        let mut fubs: Vec<FubRow> = Vec::new();
        let summarize = |(sum, min, max): (f64, f64, f64)| {
            if seq.is_empty() {
                (0.0, 0.0, 0.0)
            } else {
                (sum / seq.len() as f64, min, max)
            }
        };
        let rows: Vec<RowOut> = if include_nodes || include_fubs {
            let avfs = compiled.evaluate_many_traced(&tables, self.cfg.threads, &self.obs);
            req.tables
                .iter()
                .zip(&avfs)
                .map(|(t, node_avfs)| {
                    let mut st = SeqStats::IDENTITY;
                    for &i in &seq {
                        st.fold(node_avfs[i]);
                    }
                    let (mean, min, max) = summarize((st.sum, st.min, st.max));
                    if include_fubs {
                        fubs.extend(fub_rows(nl, &t.workload, node_avfs));
                    }
                    RowOut {
                        workload: t.workload.clone(),
                        mean_seq_avf: mean,
                        min_seq_avf: min,
                        max_seq_avf: max,
                        node_avfs: include_nodes
                            .then(|| seq.iter().map(|&i| node_avfs[i]).collect()),
                    }
                })
                .collect()
        } else {
            let stats =
                compiled.evaluate_seq_stats_traced(&tables, &seq, self.cfg.threads, &self.obs);
            req.tables
                .iter()
                .zip(&stats)
                .map(|(t, st)| {
                    let (mean, min, max) = summarize((st.sum, st.min, st.max));
                    RowOut {
                        workload: t.workload.clone(),
                        mean_seq_avf: mean,
                        min_seq_avf: min,
                        max_seq_avf: max,
                        node_avfs: None,
                    }
                })
                .collect()
        };
        Ok(AvfResponse {
            design_ref: format!("{key:016x}"),
            graph_cache: graph_cache.to_owned(),
            sweep_cache: sweep_cache.to_owned(),
            rows,
            nodes: include_nodes.then(|| nl.seq_nodes().map(|id| nl.name(id).to_owned()).collect()),
            fubs: include_fubs.then_some(fubs),
        })
    }

    /// Resolves the request's design to a resident graph, loading it on a
    /// miss. Returns `(key, design, "hit"|"miss")`.
    fn resolve_design(
        &self,
        req: &AvfRequest,
    ) -> Result<(u64, Arc<LoadedDesign>, &'static str), ApiError> {
        // Warm path: a ref names resident state directly — no file IO.
        if let Some(r) = &req.design_ref {
            let key = u64::from_str_radix(r, 16)
                .map_err(|_| ApiError::bad_request(format!("bad design_ref `{r}`")))?;
            if let Some(d) = lock(&self.graphs).get(key) {
                self.obs.count("serve.graph.hit", 1);
                return Ok((key, Arc::clone(d), "hit"));
            }
            if req.design_path.is_none() {
                return Err(ApiError::not_found(format!(
                    "design_ref {r} is not resident (evicted or unknown); \
                     resend with design_path to reload"
                )));
            }
        }
        let path = req.design_path.as_deref().ok_or_else(|| {
            ApiError::bad_request("missing design: give design_path or a resident design_ref")
        })?;
        let text = std::fs::read_to_string(path)
            .map_err(|e| ApiError::bad_request(format!("reading design {path}: {e}")))?;
        let is_verilog = path.ends_with(".v") || path.ends_with(".sv");
        let key = design_key(&text, is_verilog);
        if let Some(d) = lock(&self.graphs).get(key) {
            self.obs.count("serve.graph.hit", 1);
            return Ok((key, Arc::clone(d), "hit"));
        }
        // Cold: parse (or restore a snapshot) without holding the lock.
        self.obs.count("serve.graph.miss", 1);
        let (netlist, loops) = self.load_graph(path, &text, is_verilog, key)?;
        let mapping = match &req.map_path {
            Some(mp) => {
                let mtext = std::fs::read_to_string(mp)
                    .map_err(|e| ApiError::bad_request(format!("reading map {mp}: {e}")))?;
                StructureMapping::from_text(&netlist, &mtext)
                    .map_err(|e| ApiError::bad_request(format!("parsing map {mp}: {e}")))?
            }
            None => StructureMapping::new(),
        };
        let design = Arc::new(LoadedDesign {
            netlist,
            loops,
            mapping,
        });
        if lock(&self.graphs)
            .insert(key, Arc::clone(&design))
            .is_some()
        {
            self.obs.count("serve.evict.graph", 1);
        }
        Ok((key, design, "miss"))
    }

    /// Loads the graph for `key` from the snapshot disk tier or a full
    /// parse + loop analysis, writing the snapshot back on a parse.
    fn load_graph(
        &self,
        path: &str,
        text: &str,
        is_verilog: bool,
        key: u64,
    ) -> Result<(Netlist, LoopAnalysis), ApiError> {
        let snap_path = self
            .cfg
            .graph_cache
            .as_ref()
            .map(|dir| dir.join(format!("graph-{key:016x}.bin")));
        if let Some((nl, loops)) = snap_path.as_ref().and_then(|p| {
            let bytes = std::fs::read(p).ok()?;
            snapshot::load(&bytes).ok()
        }) {
            self.obs.count("frontend.snapshot.hit", 1);
            return Ok((nl, loops));
        }
        let nl = if is_verilog {
            verilog::parse_netlist_traced(text, &self.obs)
        } else {
            flatten::parse_netlist_traced(text, &self.obs)
        }
        .map_err(|e| ApiError::bad_request(format!("parsing {path}: {e}")))?;
        let loops = find_loops_traced(&nl, &self.obs);
        if let Some(p) = &snap_path {
            self.obs.count("frontend.snapshot.miss", 1);
            if let Some(dir) = p.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            let _ = std::fs::write(p, snapshot::save(&nl, &loops));
        }
        Ok((nl, loops))
    }

    /// Resolves the compiled sweep DAG for `(design, mapping, config)`,
    /// relaxing fresh on a full miss. Returns `(dag, "hit"|"miss",
    /// fresh-relax telemetry)` — the third element is `Some((warm status,
    /// walked nodes))` only when this call actually ran a relaxation.
    ///
    /// A fresh relaxation warm-starts from the resident fixpoint of the
    /// same `(design name, mapping, config)` identity when one exists —
    /// typically left behind by the previous revision of an edited
    /// design — and refreshes that fixpoint entry on success. Every
    /// engine-level guard (digest mismatch, config mismatch) falls back
    /// to a cold solve, so the warm path is a latency optimization with
    /// bit-identical results.
    fn resolve_sweep(
        &self,
        design: &LoadedDesign,
        mapping: &StructureMapping,
        config: &SartConfig,
        base: &PavfInputs,
    ) -> Result<ResolvedSweep, ApiError> {
        let (c, tier, fresh, _) =
            self.resolve_sweep_with_donor(design, mapping, config, base, None)?;
        Ok((c, tier, fresh))
    }

    /// [`Resident::resolve_sweep`] with an optional **patch donor**: the
    /// superseded revision's compiled DAG, keyed by the cache key it was
    /// resident under. When a full miss warm-starts successfully, the DAG
    /// is *patched* from the previous revision instead of recompiled —
    /// donor first, then the disk tier's artifact for the old key, then a
    /// full recompile ([`CompiledSweep::patch_traced`]'s fallback ladder).
    /// The donor is only trusted when its key equals the key the stored
    /// fixpoint's revision would compile to — same content digest,
    /// mapping, and result-affecting config — so a patch can never graft
    /// ops from an unrelated artifact.
    ///
    /// The patched (or compiled) DAG is fully constructed *before* the
    /// LRU insert publishes it: in-flight evaluations hold their own
    /// `Arc` clones of the old entry and are never exposed to
    /// intermediate state (swap-on-publish).
    fn resolve_sweep_with_donor(
        &self,
        design: &LoadedDesign,
        mapping: &StructureMapping,
        config: &SartConfig,
        base: &PavfInputs,
        donor: Option<(u64, Arc<CompiledSweep>)>,
    ) -> Result<PatchedSweep, ApiError> {
        let nl = &design.netlist;
        let key = cache_key(nl, mapping, config);
        if let Some(c) = lock(&self.sweeps).get(key) {
            self.obs.count("serve.cache.hit", 1);
            return Ok((Arc::clone(c), "hit", None, None));
        }
        self.obs.count("serve.cache.miss", 1);
        // Disk tier, shared with the batch CLI's --cache-dir.
        let disk = self
            .cfg
            .sweep_cache
            .as_ref()
            .and_then(|dir| SweepCache::open(dir).ok());
        if let Some(c) = disk
            .as_ref()
            .and_then(|s| s.load(key, config, nl.node_count()))
        {
            self.obs.count("sweep.cache.hit", 1);
            let c = Arc::new(c);
            if lock(&self.sweeps).insert(key, Arc::clone(&c)).is_some() {
                self.obs.count("serve.evict.sweep", 1);
            }
            return Ok((c, "miss", None, None));
        }
        // Full miss: relax — the cached-frontend cold path, seeded from
        // the resident fixpoint when one matches.
        let engine = SartEngine::new_with_loops_traced(
            nl,
            mapping,
            config.clone(),
            &design.loops,
            &self.obs,
        );
        let fp_key =
            fixpoint::artifact_key(nl.design_name(), &mapping.to_text(nl), &config.result_key());
        let stored = lock(&self.fixpoints).get(fp_key).map(Arc::clone);
        let (result, warm, clean) = match &stored {
            Some(fp) => engine.run_warm_patch_traced(base, fp, &self.obs),
            None => (
                engine.run_traced(base, &self.obs),
                WarmStatus::Cold("no resident fixpoint"),
                None,
            ),
        };
        match &warm {
            WarmStatus::Warm { .. } => self.obs.count("serve.warmstart.hit", 1),
            WarmStatus::Cold(_) => self.obs.count("serve.warmstart.miss", 1),
        }
        let walked = result.outcome.total_walked_nodes();
        if let Some(fp) = engine.capture_fixpoint(&result) {
            lock(&self.fixpoints).insert(fp_key, Arc::new(fp));
        }
        // Obtain the DAG: patch the previous revision's when the warm
        // solve proved the dirty cone, else compile from scratch.
        let mut patch = None;
        let mut compiled: Option<CompiledSweep> = None;
        if let (WarmStatus::Warm { .. }, Some(fp), Some(mask)) = (&warm, &stored, &clean) {
            let old_key = cache_key_parts(
                fp.content_digest,
                &mapping.to_text(nl),
                &config.result_key(),
            );
            let old = donor
                .filter(|(k, _)| *k == old_key)
                .map(|(_, dag)| dag)
                .or_else(|| {
                    disk.as_ref()
                        .and_then(|s| s.load(old_key, config, fp.node_count))
                        .map(Arc::new)
                });
            let layout: Vec<(&str, usize)> = fp
                .fubs
                .iter()
                .map(|f| (f.name.as_str(), f.fwd.len()))
                .collect();
            let attempt = old
                .ok_or("no DAG resident or on disk for the previous revision")
                .and_then(|dag| dag.patch_traced(&result, nl, &layout, mask, &self.obs));
            match attempt {
                Ok((patched, stats)) => {
                    self.obs.count("sweep.patch.hit", 1);
                    patch = Some(PatchStatus::Patched(stats));
                    compiled = Some(patched);
                }
                Err(reason) => {
                    self.obs.count("sweep.patch.full_rebuild", 1);
                    patch = Some(PatchStatus::Rebuilt(reason));
                }
            }
        }
        let compiled = Arc::new(
            compiled.unwrap_or_else(|| CompiledSweep::compile_traced(&result, nl, &self.obs)),
        );
        if let Some(s) = &disk {
            self.obs.count("sweep.cache.miss", 1);
            let _ = s.store(key, &compiled);
        }
        if lock(&self.sweeps)
            .insert(key, Arc::clone(&compiled))
            .is_some()
        {
            self.obs.count("serve.evict.sweep", 1);
        }
        Ok((compiled, "miss", Some((warm, walked)), patch))
    }

    /// Builds the effective [`SartConfig`], validating every override.
    fn resolve_config(&self, rc: Option<&RequestConfig>) -> Result<SartConfig, ApiError> {
        let rc = rc.cloned().unwrap_or_default();
        let mut config = SartConfig {
            threads: self.cfg.threads,
            ..SartConfig::default()
        };
        if let Some(v) = rc.loop_pavf {
            if !(0.0..=1.0).contains(&v) {
                return Err(ApiError::bad_request(format!(
                    "config.loop_pavf must be a probability in [0, 1], got {v:?}"
                )));
            }
            config.loop_pavf = v;
        }
        if let Some(n) = rc.iterations {
            if n == 0 || n > 10_000 {
                return Err(ApiError::bad_request(format!(
                    "config.iterations must be in [1, 10000], got {n}"
                )));
            }
            config.max_iterations = n as usize;
        }
        if let Some(g) = rc.global {
            config.partitioned = !g;
        }
        Ok(config)
    }

    /// Handles one `POST /v1/design-update` request: load the edited
    /// design, *patch* the resident state in place (new graph and DAG in,
    /// the superseded revision's entries out), and re-solve by seeding
    /// from the resident converged fixpoint so only the edited cone is
    /// re-relaxed. Falls back to a cold solve — bit-identical either way
    /// — whenever a warm-start guard fails.
    pub fn handle_design_update(
        &self,
        req: &DesignUpdateRequest,
    ) -> Result<DesignUpdateResponse, ApiError> {
        let config = self.resolve_config(req.config.as_ref())?;
        let path = &req.design_path;
        let text = std::fs::read_to_string(path)
            .map_err(|e| ApiError::bad_request(format!("reading design {path}: {e}")))?;
        let is_verilog = path.ends_with(".v") || path.ends_with(".sv");
        let key = design_key(&text, is_verilog);

        // The revision being superseded, if it is still resident.
        let prev = match &req.prev_ref {
            Some(r) => {
                let pk = u64::from_str_radix(r, 16)
                    .map_err(|_| ApiError::bad_request(format!("bad prev_ref `{r}`")))?;
                lock(&self.graphs).get(pk).map(|d| (pk, Arc::clone(d)))
            }
            None => None,
        };

        let (netlist, loops) = self.load_graph(path, &text, is_verilog, key)?;
        // An explicit map_path wins; otherwise the previous revision's
        // mapping carries across by structure name (names are the
        // edit-stable identity the whole warm path is built on).
        let mapping = match &req.map_path {
            Some(mp) => {
                let mtext = std::fs::read_to_string(mp)
                    .map_err(|e| ApiError::bad_request(format!("reading map {mp}: {e}")))?;
                StructureMapping::from_text(&netlist, &mtext)
                    .map_err(|e| ApiError::bad_request(format!("parsing map {mp}: {e}")))?
            }
            None => match &prev {
                Some((_, d)) => {
                    StructureMapping::from_text(&netlist, &d.mapping.to_text(&d.netlist)).map_err(
                        |e| {
                            ApiError::bad_request(format!(
                                "previous mapping does not apply to the edited design ({e}); \
                                 supply map_path"
                            ))
                        },
                    )?
                }
                None => StructureMapping::new(),
            },
        };
        let design = Arc::new(LoadedDesign {
            netlist,
            loops,
            mapping: mapping.clone(),
        });

        // Patch residency: the edited graph goes in under its new key and
        // the superseded revision's graph and compiled DAG are removed,
        // so a stale artifact keyed by the old content can never be
        // served — and capacity is freed instead of burned on eviction.
        {
            let mut graphs = lock(&self.graphs);
            graphs.insert(key, Arc::clone(&design));
            if let Some((pk, _)) = &prev {
                if *pk != key {
                    graphs.remove(*pk);
                }
            }
        }
        // The superseded DAG is removed from residency but *kept* as the
        // patch donor: a warm re-solve grafts its unchanged ops into the
        // edited design's DAG instead of re-lowering everything.
        let donor = prev.as_ref().and_then(|(_, d)| {
            let stale = cache_key(&d.netlist, &d.mapping, &config);
            lock(&self.sweeps).remove(stale).map(|dag| (stale, dag))
        });

        let base = req.base_inputs.clone().unwrap_or_default();
        let (_, _, fresh, patch) =
            self.resolve_sweep_with_donor(&design, &mapping, &config, &base, donor)?;
        let node_count = design.netlist.node_count() as u64;
        let (mode, reason, seeded_fubs, dirty_fubs, walked_nodes) = match &fresh {
            Some((
                WarmStatus::Warm {
                    seeded_fubs,
                    dirty_fubs,
                },
                walked,
            )) => (
                "warm",
                None,
                *seeded_fubs as u64,
                *dirty_fubs as u64,
                *walked,
            ),
            Some((WarmStatus::Cold(r), walked)) => ("cold", Some((*r).to_owned()), 0, 0, *walked),
            // The edited design's DAG was already resident (idempotent
            // re-POST): nothing relaxed, nothing walked.
            None => ("resident", None, 0, 0, 0),
        };
        let (dag, dag_reason, ops_patched, ops_orphaned) = match patch {
            Some(PatchStatus::Patched(st)) => (
                "patched",
                None,
                st.nodes_patched() as u64,
                st.ops_orphaned as u64,
            ),
            Some(PatchStatus::Rebuilt(r)) => ("rebuilt", Some(r.to_owned()), 0, 0),
            None if fresh.is_some() => ("compiled", None, 0, 0),
            None => ("resident", None, 0, 0),
        };
        Ok(DesignUpdateResponse {
            design_ref: format!("{key:016x}"),
            prev_ref: req.prev_ref.clone(),
            mode: mode.to_owned(),
            reason,
            seeded_fubs,
            dirty_fubs,
            walked_nodes: walked_nodes as u64,
            node_count,
            dag: dag.to_owned(),
            dag_reason,
            ops_patched,
            ops_orphaned,
        })
    }
}

/// Per-FUB mean AVFs for one workload's node table.
fn fub_rows(nl: &Netlist, workload: &str, node_avfs: &[f64]) -> Vec<FubRow> {
    let mut sums = vec![0.0f64; nl.fub_count()];
    let mut counts = vec![0u64; nl.fub_count()];
    for id in nl.seq_nodes() {
        let f = nl.fub(id).index();
        sums[f] += node_avfs[id.index()];
        counts[f] += 1;
    }
    nl.fub_ids()
        .filter(|f| counts[f.index()] > 0)
        .map(|f| FubRow {
            workload: workload.to_owned(),
            fub: nl.fub_name(f).to_owned(),
            seq_bits: counts[f.index()],
            mean_seq_avf: sums[f.index()] / counts[f.index()] as f64,
        })
        .collect()
}

/// Locks a mutex, recovering from poison: resident state is only ever
/// mutated through the LRU's own methods, which cannot leave it torn.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::NamedTable;
    use seqavf_netlist::exlif;
    use seqavf_netlist::synth::{generate, SynthConfig};

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("seqavf-serve-test-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_design(dir: &std::path::Path, seed: u64) -> (PathBuf, PathBuf) {
        let design = generate(&SynthConfig::xeon_like(seed));
        let exlif_path = dir.join(format!("d{seed}.exlif"));
        std::fs::write(&exlif_path, exlif::write(&design.netlist)).unwrap();
        let mapping = StructureMapping::from_pairs(design.meta.structure_map.clone());
        let map_path = dir.join(format!("d{seed}.map"));
        std::fs::write(&map_path, mapping.to_text(&design.netlist)).unwrap();
        (exlif_path, map_path)
    }

    fn request(design: &std::path::Path, map: &std::path::Path, n_tables: usize) -> AvfRequest {
        let tables = (0..n_tables)
            .map(|i| {
                let mut inputs = PavfInputs::new();
                inputs.set_port("uops_executed", 0.2 + 0.1 * i as f64, 0.3);
                NamedTable {
                    workload: format!("w{i}"),
                    inputs,
                }
            })
            .collect();
        AvfRequest {
            design_path: Some(design.display().to_string()),
            design_ref: None,
            map_path: Some(map.display().to_string()),
            config: None,
            base_inputs: None,
            tables,
            include_nodes: None,
            include_fubs: None,
        }
    }

    #[test]
    fn cold_then_warm_requests_agree_bitwise() {
        let dir = scratch("cold-warm");
        let (design, map) = write_design(&dir, 7);
        let r = Resident::new(ResidentConfig::default(), Collector::new());
        let req = request(&design, &map, 3);
        let cold = r.handle(&req).unwrap();
        assert_eq!(cold.graph_cache, "miss");
        assert_eq!(cold.sweep_cache, "miss");
        assert_eq!(cold.rows.len(), 3);

        // Warm via design_ref: no paths needed at all.
        let warm_req = AvfRequest {
            design_path: None,
            map_path: None,
            design_ref: Some(cold.design_ref.clone()),
            ..req.clone()
        };
        let warm = r.handle(&warm_req).unwrap();
        assert_eq!(warm.graph_cache, "hit");
        assert_eq!(warm.sweep_cache, "hit");
        for (a, b) in cold.rows.iter().zip(&warm.rows) {
            assert_eq!(a.mean_seq_avf.to_bits(), b.mean_seq_avf.to_bits());
            assert_eq!(a.min_seq_avf.to_bits(), b.min_seq_avf.to_bits());
            assert_eq!(a.max_seq_avf.to_bits(), b.max_seq_avf.to_bits());
        }
        let report = r.obs().report();
        assert_eq!(report.counter("serve.graph.miss"), Some(1));
        assert_eq!(report.counter("serve.graph.hit"), Some(1));
        assert_eq!(report.counter("serve.cache.miss"), Some(1));
        assert_eq!(report.counter("serve.cache.hit"), Some(1));
    }

    #[test]
    fn rows_are_bit_identical_to_the_sweep_driver() {
        use seqavf_core::sweep::{run_sweep_with_loops_traced, SweepOptions};
        let dir = scratch("bit-identity");
        let (design, map) = write_design(&dir, 11);
        let r = Resident::new(ResidentConfig::default(), Collector::new());
        let req = request(&design, &map, 4);
        let served = r.handle(&req).unwrap();

        // The same computation through the library path the CLI uses.
        let text = std::fs::read_to_string(&design).unwrap();
        let nl = flatten::parse_netlist_traced(&text, &Collector::disabled()).unwrap();
        let mapping =
            StructureMapping::from_text(&nl, &std::fs::read_to_string(&map).unwrap()).unwrap();
        let workloads: Vec<(String, PavfInputs)> = req
            .tables
            .iter()
            .map(|t| (t.workload.clone(), t.inputs.clone()))
            .collect();
        let outcome = run_sweep_with_loops_traced(
            &nl,
            &mapping,
            &SartConfig::default(),
            &req.tables[0].inputs,
            &workloads,
            &SweepOptions::default(),
            None,
            &Collector::disabled(),
        )
        .unwrap();
        assert_eq!(served.rows.len(), outcome.rows.len());
        for (s, c) in served.rows.iter().zip(&outcome.rows) {
            assert_eq!(s.workload, c.workload);
            assert_eq!(s.mean_seq_avf.to_bits(), c.mean_seq_avf.to_bits());
            assert_eq!(s.min_seq_avf.to_bits(), c.min_seq_avf.to_bits());
            assert_eq!(s.max_seq_avf.to_bits(), c.max_seq_avf.to_bits());
        }
    }

    #[test]
    fn eviction_then_ref_reuse_is_a_named_404() {
        let dir = scratch("evict");
        let (d1, m1) = write_design(&dir, 1);
        let (d2, m2) = write_design(&dir, 2);
        let r = Resident::new(
            ResidentConfig {
                max_resident: 1,
                ..ResidentConfig::default()
            },
            Collector::new(),
        );
        let first = r.handle(&request(&d1, &m1, 1)).unwrap();
        r.handle(&request(&d2, &m2, 1)).unwrap();
        // d1 was evicted by d2 (capacity 1): the stale ref must 404 with
        // recovery instructions, not crash or silently recompute.
        let stale = AvfRequest {
            design_path: None,
            map_path: None,
            design_ref: Some(first.design_ref.clone()),
            ..request(&d1, &m1, 1)
        };
        let err = r.handle(&stale).unwrap_err();
        assert_eq!(err.status, 404);
        assert!(err.message.contains("design_path"), "{}", err.message);
        let (graph_evictions, _) = r.evictions();
        assert_eq!(graph_evictions, 1);
        // Supplying the path alongside the stale ref reloads cleanly.
        let recover = AvfRequest {
            design_ref: Some(first.design_ref.clone()),
            ..request(&d1, &m1, 1)
        };
        let back = r.handle(&recover).unwrap();
        assert_eq!(back.graph_cache, "miss");
        assert_eq!(back.design_ref, first.design_ref);
    }

    #[test]
    fn disk_caches_warm_a_fresh_server() {
        let dir = scratch("disk-warm");
        let (design, map) = write_design(&dir, 3);
        let cfg = ResidentConfig {
            graph_cache: Some(dir.join("graphs")),
            sweep_cache: Some(dir.join("sweeps")),
            ..ResidentConfig::default()
        };
        let r1 = Resident::new(cfg.clone(), Collector::new());
        let first = r1.handle(&request(&design, &map, 2)).unwrap();

        // A brand-new Resident (server restart) misses the LRU but finds
        // both disk artifacts: no parse, no relaxation.
        let obs = Collector::new();
        let r2 = Resident::new(cfg, obs.clone());
        let second = r2.handle(&request(&design, &map, 2)).unwrap();
        assert_eq!(second.graph_cache, "miss");
        assert_eq!(second.sweep_cache, "miss");
        let report = obs.report();
        assert_eq!(report.counter("frontend.snapshot.hit"), Some(1));
        assert_eq!(report.counter("sweep.cache.hit"), Some(1));
        assert!(report.span("relax.sweep").is_none(), "relaxation ran");
        for (a, b) in first.rows.iter().zip(&second.rows) {
            assert_eq!(a.mean_seq_avf.to_bits(), b.mean_seq_avf.to_bits());
        }
    }

    #[test]
    fn bad_requests_get_named_400s() {
        let dir = scratch("bad-req");
        let (design, map) = write_design(&dir, 5);
        let r = Resident::new(ResidentConfig::default(), Collector::new());
        let empty = AvfRequest {
            tables: Vec::new(),
            ..request(&design, &map, 1)
        };
        let err = r.handle(&empty).unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("tables"));

        let mut bad_cfg = request(&design, &map, 1);
        bad_cfg.config = Some(crate::api::RequestConfig {
            loop_pavf: Some(f64::NAN),
            ..Default::default()
        });
        let err = r.handle(&bad_cfg).unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("loop_pavf"));

        let mut gone = request(&design, &map, 1);
        gone.design_path = Some(dir.join("nonexistent.exlif").display().to_string());
        let err = r.handle(&gone).unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("nonexistent.exlif"));
    }

    /// Flips the first and-gate of an EXLIF design on disk — the
    /// one-FUB edit the warm-start path is built for.
    fn edit_one_gate(path: &std::path::Path) {
        let text = std::fs::read_to_string(path).unwrap();
        let edited = text.replacen(".gate and ", ".gate or ", 1);
        assert_ne!(text, edited, "fixture design must contain an and-gate");
        std::fs::write(path, edited).unwrap();
    }

    #[test]
    fn design_update_warm_starts_from_the_resident_fixpoint() {
        let dir = scratch("design-update");
        let (design, map) = write_design(&dir, 13);
        let r = Resident::new(ResidentConfig::default(), Collector::new());
        let cold = r.handle(&request(&design, &map, 2)).unwrap();

        edit_one_gate(&design);
        let upd = r
            .handle_design_update(&crate::api::DesignUpdateRequest {
                design_path: design.display().to_string(),
                prev_ref: Some(cold.design_ref.clone()),
                map_path: None,
                config: None,
                base_inputs: None,
            })
            .unwrap();
        assert_eq!(upd.mode, "warm", "reason: {:?}", upd.reason);
        assert!(upd.seeded_fubs > 0, "{upd:?}");
        assert!(upd.dirty_fubs >= 1, "{upd:?}");
        assert!(
            upd.walked_nodes < upd.node_count,
            "warm re-solve walked {} of {} nodes — no saving",
            upd.walked_nodes,
            upd.node_count
        );
        assert_ne!(upd.design_ref, cold.design_ref);

        // The new ref serves warm, no file IO, and the rows are
        // bit-identical to a fresh server cold-solving the edited design.
        let warm_req = AvfRequest {
            design_path: None,
            map_path: None,
            design_ref: Some(upd.design_ref.clone()),
            ..request(&design, &map, 2)
        };
        let served = r.handle(&warm_req).unwrap();
        assert_eq!(served.graph_cache, "hit");
        assert_eq!(served.sweep_cache, "hit");
        let fresh = Resident::new(ResidentConfig::default(), Collector::new());
        let reference = fresh.handle(&request(&design, &map, 2)).unwrap();
        for (a, b) in served.rows.iter().zip(&reference.rows) {
            assert_eq!(a.mean_seq_avf.to_bits(), b.mean_seq_avf.to_bits());
            assert_eq!(a.min_seq_avf.to_bits(), b.min_seq_avf.to_bits());
            assert_eq!(a.max_seq_avf.to_bits(), b.max_seq_avf.to_bits());
        }
        let report = r.obs().report();
        assert_eq!(report.counter("serve.warmstart.hit"), Some(1));
        // The initial cold solve counts one miss (no fixpoint resident yet).
        assert_eq!(report.counter("serve.warmstart.miss"), Some(1));
    }

    #[test]
    fn design_update_patches_residency_and_never_serves_a_stale_dag() {
        let dir = scratch("design-update-stale");
        let (design, map) = write_design(&dir, 17);
        let r = Resident::new(ResidentConfig::default(), Collector::new());
        let cold = r.handle(&request(&design, &map, 1)).unwrap();
        assert_eq!(r.health().resident_graphs, 1);
        assert_eq!(r.health().resident_sweeps, 1);

        edit_one_gate(&design);
        let upd = r
            .handle_design_update(&crate::api::DesignUpdateRequest {
                design_path: design.display().to_string(),
                prev_ref: Some(cold.design_ref.clone()),
                map_path: Some(map.display().to_string()),
                config: None,
                base_inputs: None,
            })
            .unwrap();

        // Patched, not accumulated: exactly one graph and one DAG remain
        // resident — the edited design's — and the superseded revision's
        // entries are gone rather than lingering until eviction.
        let h = r.health();
        assert_eq!(h.resident_graphs, 1, "stale graph still resident");
        assert_eq!(h.resident_sweeps, 1, "stale compiled DAG still resident");
        assert_eq!(h.resident_fixpoints, 1);

        // The old ref must 404 (with recovery instructions), never
        // resolve the stale artifacts against the edited design.
        let stale = AvfRequest {
            design_path: None,
            map_path: None,
            design_ref: Some(cold.design_ref.clone()),
            ..request(&design, &map, 1)
        };
        let err = r.handle(&stale).unwrap_err();
        assert_eq!(err.status, 404);

        // And the surviving DAG is the edited design's: serving via the
        // new ref matches an independent cold solve bit for bit.
        let served = r
            .handle(&AvfRequest {
                design_path: None,
                map_path: None,
                design_ref: Some(upd.design_ref.clone()),
                ..request(&design, &map, 1)
            })
            .unwrap();
        assert_eq!(served.sweep_cache, "hit");
        let fresh = Resident::new(ResidentConfig::default(), Collector::new());
        let reference = fresh.handle(&request(&design, &map, 1)).unwrap();
        assert_eq!(
            served.rows[0].mean_seq_avf.to_bits(),
            reference.rows[0].mean_seq_avf.to_bits()
        );
    }

    #[test]
    fn design_update_without_resident_state_is_a_cold_solve() {
        let dir = scratch("design-update-cold");
        let (design, map) = write_design(&dir, 19);
        let r = Resident::new(ResidentConfig::default(), Collector::new());
        let upd = r
            .handle_design_update(&crate::api::DesignUpdateRequest {
                design_path: design.display().to_string(),
                prev_ref: None,
                map_path: Some(map.display().to_string()),
                config: None,
                base_inputs: None,
            })
            .unwrap();
        assert_eq!(upd.mode, "cold");
        assert_eq!(upd.reason.as_deref(), Some("no resident fixpoint"));
        assert_eq!(upd.seeded_fubs, 0);
        // The cold solve still leaves warm state behind: a second update
        // of an edited revision engages the warm path.
        edit_one_gate(&design);
        let again = r
            .handle_design_update(&crate::api::DesignUpdateRequest {
                design_path: design.display().to_string(),
                prev_ref: Some(upd.design_ref.clone()),
                map_path: Some(map.display().to_string()),
                config: None,
                base_inputs: None,
            })
            .unwrap();
        assert_eq!(again.mode, "warm", "reason: {:?}", again.reason);
    }

    #[test]
    fn design_update_patches_the_superseded_dag_instead_of_recompiling() {
        let dir = scratch("design-update-patch");
        let (design, map) = write_design(&dir, 23);
        let r = Resident::new(ResidentConfig::default(), Collector::new());
        let cold = r.handle(&request(&design, &map, 1)).unwrap();

        edit_one_gate(&design);
        let upd = r
            .handle_design_update(&crate::api::DesignUpdateRequest {
                design_path: design.display().to_string(),
                prev_ref: Some(cold.design_ref.clone()),
                map_path: None,
                config: None,
                base_inputs: None,
            })
            .unwrap();
        assert_eq!(upd.mode, "warm", "reason: {:?}", upd.reason);
        assert_eq!(upd.dag, "patched", "dag_reason: {:?}", upd.dag_reason);
        assert!(upd.ops_patched > 0, "{upd:?}");
        let report = r.obs().report();
        assert_eq!(report.counter("sweep.patch.hit"), Some(1));
        assert_eq!(report.counter("sweep.patch.full_rebuild"), None);
        let patched_nodes = report.counter("sweep.patch.nodes_patched").unwrap_or(0);
        assert_eq!(patched_nodes, upd.ops_patched);

        // The patched DAG serves rows bit-identical to a fresh server
        // cold-solving the edited design.
        let served = r
            .handle(&AvfRequest {
                design_path: None,
                map_path: None,
                design_ref: Some(upd.design_ref.clone()),
                ..request(&design, &map, 1)
            })
            .unwrap();
        assert_eq!(served.sweep_cache, "hit");
        let fresh = Resident::new(ResidentConfig::default(), Collector::new());
        let reference = fresh.handle(&request(&design, &map, 1)).unwrap();
        for (a, b) in served.rows.iter().zip(&reference.rows) {
            assert_eq!(a.mean_seq_avf.to_bits(), b.mean_seq_avf.to_bits());
            assert_eq!(a.min_seq_avf.to_bits(), b.min_seq_avf.to_bits());
            assert_eq!(a.max_seq_avf.to_bits(), b.max_seq_avf.to_bits());
        }
    }

    /// Swap-on-publish: a `query` holding the old revision's DAG across a
    /// mid-flight `design-update` must finish on that old `Arc` and never
    /// observe a half-patched DAG. The patch builds the new DAG fully
    /// before the LRU insert publishes it, so the old `Arc` stays valid
    /// and immutable for as long as any evaluation holds it.
    #[test]
    fn in_flight_evaluations_finish_on_the_old_dag_across_an_update() {
        let dir = scratch("swap-on-publish");
        let (design, map) = write_design(&dir, 29);
        let r = Resident::new(ResidentConfig::default(), Collector::new());
        let cold = r.handle(&request(&design, &map, 1)).unwrap();

        // An in-flight evaluation clones the Arc out of the LRU and drops
        // the lock — exactly what `handle` does before evaluating.
        let key = u64::from_str_radix(&cold.design_ref, 16).unwrap();
        let d = lock(&r.graphs).get(key).map(Arc::clone).unwrap();
        let config = r.resolve_config(None).unwrap();
        let dag_key = cache_key(&d.netlist, &d.mapping, &config);
        let old_dag = lock(&r.sweeps).get(dag_key).map(Arc::clone).unwrap();
        let inputs = request(&design, &map, 1).tables[0].inputs.clone();
        let before: Vec<u64> = old_dag
            .evaluate(&inputs)
            .iter()
            .map(|v| v.to_bits())
            .collect();

        // The design is edited and patched mid-flight.
        edit_one_gate(&design);
        let upd = r
            .handle_design_update(&crate::api::DesignUpdateRequest {
                design_path: design.display().to_string(),
                prev_ref: Some(cold.design_ref.clone()),
                map_path: None,
                config: None,
                base_inputs: None,
            })
            .unwrap();
        assert_eq!(upd.dag, "patched", "dag_reason: {:?}", upd.dag_reason);

        // The in-flight holder's DAG is unchanged — same values, bit for
        // bit — even though residency now serves the patched revision.
        let after: Vec<u64> = old_dag
            .evaluate(&inputs)
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(before, after, "old Arc mutated by the patch");
        let new_key = u64::from_str_radix(&upd.design_ref, 16).unwrap();
        let nd = lock(&r.graphs).get(new_key).map(Arc::clone).unwrap();
        let new_dag_key = cache_key(&nd.netlist, &nd.mapping, &config);
        let new_dag = lock(&r.sweeps).get(new_dag_key).map(Arc::clone).unwrap();
        assert!(
            !Arc::ptr_eq(&old_dag, &new_dag),
            "the patched DAG must be a fresh allocation, not an in-place edit"
        );
        // And the old entry is no longer resident: the stale key misses.
        assert!(lock(&r.sweeps).get(dag_key).is_none());
    }

    #[test]
    fn per_fub_and_per_node_tables_are_consistent() {
        let dir = scratch("fub-rows");
        let (design, map) = write_design(&dir, 9);
        let r = Resident::new(ResidentConfig::default(), Collector::new());
        let mut req = request(&design, &map, 1);
        req.include_nodes = Some(true);
        req.include_fubs = Some(true);
        let resp = r.handle(&req).unwrap();
        let nodes = resp.nodes.as_ref().unwrap();
        let avfs = resp.rows[0].node_avfs.as_ref().unwrap();
        assert_eq!(nodes.len(), avfs.len());
        let fubs = resp.fubs.as_ref().unwrap();
        assert!(!fubs.is_empty());
        // FUB bit counts sum to the sequential population, and the
        // bit-weighted FUB means reproduce the overall mean.
        let total_bits: u64 = fubs.iter().map(|f| f.seq_bits).sum();
        assert_eq!(total_bits as usize, nodes.len());
        let weighted: f64 = fubs
            .iter()
            .map(|f| f.mean_seq_avf * f.seq_bits as f64)
            .sum::<f64>()
            / total_bits as f64;
        assert!((weighted - resp.rows[0].mean_seq_avf).abs() < 1e-9);
    }
}
