//! A deliberately small HTTP/1.1 implementation over `std::net`.
//!
//! The vendored-dependency policy rules out hyper/axum, and the server
//! needs only a sliver of the protocol: parse a request line, a handful
//! of headers, and a `Content-Length` body; write a status line and a
//! body back. Everything is bounded — header block, body size, read
//! timeout — so a malformed or malicious peer costs one connection,
//! never the process. One request per connection (`Connection: close`),
//! which keeps the worker pool's admission accounting exact.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Upper bound on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Upper bound on a request body. Workload batches are a few hundred
/// bytes per table; 8 MiB leaves room for thousand-table batches while
/// bounding what one connection can pin.
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// Path component of the request target (no query parsing — the API
    /// is JSON-bodied).
    pub path: String,
    /// Body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// Why a request could not be read. Each maps to a definite status code
/// so the connection still gets an answer.
#[derive(Debug)]
pub enum ReadError {
    /// Peer closed before a full head arrived.
    Closed,
    /// Malformed request line or header block.
    Malformed(String),
    /// Head exceeded [`MAX_HEAD_BYTES`] or body exceeded the cap — 431 /
    /// 413 territory.
    TooLarge(String),
    /// Socket error or read timeout.
    Io(std::io::Error),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Closed => write!(f, "connection closed before request completed"),
            ReadError::Malformed(m) => write!(f, "malformed request: {m}"),
            ReadError::TooLarge(m) => write!(f, "request too large: {m}"),
            ReadError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

/// Reads one request from `stream`, enforcing the size caps and
/// `timeout` on every read.
pub fn read_request(stream: &mut TcpStream, timeout: Duration) -> Result<Request, ReadError> {
    let _ = stream.set_read_timeout(Some(timeout));
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(ReadError::TooLarge(format!(
                "header block exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        let n = stream.read(&mut chunk).map_err(ReadError::Io)?;
        if n == 0 {
            return if buf.is_empty() {
                Err(ReadError::Closed)
            } else {
                Err(ReadError::Malformed("truncated header block".to_owned()))
            };
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| ReadError::Malformed("non-UTF-8 header block".to_owned()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| ReadError::Malformed("empty request".to_owned()))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| ReadError::Malformed("missing method".to_owned()))?
        .to_owned();
    let path = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("missing request target".to_owned()))?
        .to_owned();
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        _ => return Err(ReadError::Malformed("expected HTTP/1.x version".to_owned())),
    }

    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::Malformed(format!("bad header line `{line}`")));
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| ReadError::Malformed(format!("bad Content-Length `{value}`")))?;
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(ReadError::TooLarge(format!(
            "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte cap"
        )));
    }

    // Body bytes already buffered past the head, then read the rest.
    let mut body: Vec<u8> = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(ReadError::Io)?;
        if n == 0 {
            return Err(ReadError::Malformed("truncated body".to_owned()));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(Request { method, path, body })
}

/// Position of the `\r\n\r\n` separator, if complete.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Reason phrases for the statuses the server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete response and flushes. Errors are returned so callers
/// can count failed writes, but a dead peer is otherwise uninteresting.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Convenience: a JSON response.
pub fn write_json(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    write_response(stream, status, "application/json", body.as_bytes())
}

/// Convenience: a JSON error response `{"error": …}`.
pub fn write_error(stream: &mut TcpStream, status: u16, message: &str) -> std::io::Result<()> {
    let body = serde_json::to_string(&ErrorBody {
        error: message.to_owned(),
    })
    .unwrap_or_else(|_| "{\"error\":\"error\"}".to_owned());
    write_json(stream, status, &body)
}

/// The error payload shape.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
pub struct ErrorBody {
    /// Human-readable description.
    pub error: String,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn roundtrip(raw: &[u8]) -> Result<Request, ReadError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
            // Half-close so the reader sees EOF where relevant.
            let _ = s.shutdown(std::net::Shutdown::Write);
        });
        let (mut conn, _) = listener.accept().unwrap();
        let out = read_request(&mut conn, Duration::from_secs(5));
        writer.join().unwrap();
        out
    }

    #[test]
    fn parses_post_with_body() {
        let req = roundtrip(b"POST /v1/avf HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/avf");
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn parses_get_without_body() {
        let req = roundtrip(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_malformed_request_line() {
        assert!(matches!(
            roundtrip(b"NONSENSE\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_truncated_body() {
        assert!(matches!(
            roundtrip(b"POST /v1/avf HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort"),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_oversized_declared_body() {
        let raw = format!(
            "POST /v1/avf HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            roundtrip(raw.as_bytes()),
            Err(ReadError::TooLarge(_))
        ));
    }

    #[test]
    fn rejects_bad_content_length() {
        assert!(matches!(
            roundtrip(b"POST / HTTP/1.1\r\nContent-Length: ham\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn empty_connection_reads_as_closed() {
        assert!(matches!(roundtrip(b""), Err(ReadError::Closed)));
    }
}
