//! The server proper: accept loop, bounded admission queue, worker pool,
//! routing, and graceful shutdown.
//!
//! Threading model:
//!
//! * One **accept thread** polls a nonblocking listener. Each accepted
//!   connection is `try_send`-ed into a bounded [`mpsc::sync_channel`];
//!   when the queue is full the accept thread answers **503** itself and
//!   drops the connection — admission control costs one syscall, never a
//!   worker. Backpressure is therefore explicit and bounded: at most
//!   `queue_cap` connections wait, `workers` evaluate, everything else
//!   is refused immediately instead of accumulating memory.
//! * `workers` **worker threads** share the receiver behind a mutex,
//!   each serving one connection end to end (one request per connection,
//!   `Connection: close`), so admission counts are exact.
//! * **Shutdown** is a single atomic flag, set by SIGTERM/SIGINT (when
//!   handlers are installed), by `POST /v1/shutdown`, or by the idle
//!   timeout. The accept thread stops accepting and drops the sender;
//!   workers drain the queue and exit; `ServerHandle::join` returns.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use seqavf_obs::Collector;

use crate::api::{AvfRequest, DesignUpdateRequest};
use crate::http;
use crate::resident::{Resident, ResidentConfig};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7171` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads evaluating requests.
    pub workers: usize,
    /// Bounded admission queue: connections waiting for a worker beyond
    /// this are answered 503.
    pub queue_cap: usize,
    /// Residency settings (LRU capacity, eval threads, disk caches).
    pub resident: ResidentConfig,
    /// Exit after this long with no accepted connection (`None` = never).
    pub idle_timeout: Option<Duration>,
    /// Install SIGTERM/SIGINT handlers (the CLI does; tests must not,
    /// since handlers are process-global).
    pub signal_handlers: bool,
    /// Per-read socket timeout.
    pub read_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            queue_cap: 32,
            resident: ResidentConfig::default(),
            idle_timeout: None,
            signal_handlers: false,
            read_timeout: Duration::from_secs(10),
        }
    }
}

/// State shared by the accept thread and every worker.
struct Shared {
    resident: Resident,
    obs: Collector,
    stop: AtomicBool,
    /// Connections currently queued (admission gauge).
    queue_depth: AtomicUsize,
    /// Total requests answered, by coarse class.
    served: AtomicU64,
    rejected: AtomicU64,
    started: Instant,
    read_timeout: Duration,
}

/// Process-global flag flipped by the signal handler. Signal-safe: the
/// handler does one relaxed store and returns.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" fn on_signal(_sig: i32) {
    SIGNALLED.store(true, Ordering::Relaxed);
}

#[cfg(unix)]
fn install_signal_handlers() {
    unsafe extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal as *const () as usize);
        signal(SIGINT, on_signal as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

/// A running server: its bound address plus join/shutdown control.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown without waiting.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::Relaxed);
    }

    /// Blocks until the server exits (shutdown request, signal, or idle
    /// timeout), then joins every thread.
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Binds the listener and spawns the accept thread plus worker pool.
pub fn spawn(cfg: ServeConfig, obs: Collector) -> Result<ServerHandle, String> {
    if cfg.signal_handlers {
        SIGNALLED.store(false, Ordering::Relaxed);
        install_signal_handlers();
    }
    let listener =
        TcpListener::bind(&cfg.addr).map_err(|e| format!("cannot bind {}: {e}", cfg.addr))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve bound address: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot set nonblocking accept: {e}"))?;

    let shared = Arc::new(Shared {
        resident: Resident::new(cfg.resident.clone(), obs.clone()),
        obs,
        stop: AtomicBool::new(false),
        queue_depth: AtomicUsize::new(0),
        served: AtomicU64::new(0),
        rejected: AtomicU64::new(0),
        started: Instant::now(),
        read_timeout: cfg.read_timeout,
    });

    let (tx, rx) = mpsc::sync_channel::<TcpStream>(cfg.queue_cap.max(1));
    let rx = Arc::new(Mutex::new(rx));
    let workers = (0..cfg.workers.max(1))
        .map(|i| {
            let shared = Arc::clone(&shared);
            let rx = Arc::clone(&rx);
            std::thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(&shared, &rx))
                .map_err(|e| format!("cannot spawn worker: {e}"))
        })
        .collect::<Result<Vec<_>, String>>()?;

    let accept_shared = Arc::clone(&shared);
    let watch_signals = cfg.signal_handlers;
    let idle_timeout = cfg.idle_timeout;
    let accept_thread = std::thread::Builder::new()
        .name("serve-accept".to_owned())
        .spawn(move || accept_loop(&listener, &tx, &accept_shared, watch_signals, idle_timeout))
        .map_err(|e| format!("cannot spawn accept thread: {e}"))?;

    Ok(ServerHandle {
        addr,
        shared,
        accept_thread: Some(accept_thread),
        workers,
    })
}

/// Accepts connections until shutdown, enforcing admission control.
/// Dropping `tx` on exit is the workers' drain-and-stop signal.
fn accept_loop(
    listener: &TcpListener,
    tx: &SyncSender<TcpStream>,
    shared: &Shared,
    watch_signals: bool,
    idle_timeout: Option<Duration>,
) {
    let mut last_activity = Instant::now();
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        if watch_signals && SIGNALLED.load(Ordering::Relaxed) {
            shared.stop.store(true, Ordering::Relaxed);
            return;
        }
        if let Some(limit) = idle_timeout {
            if last_activity.elapsed() > limit {
                shared.stop.store(true, Ordering::Relaxed);
                return;
            }
        }
        match listener.accept() {
            Ok((stream, _)) => {
                last_activity = Instant::now();
                // Accepted sockets must block regardless of what they
                // inherit from the nonblocking listener.
                let _ = stream.set_nonblocking(false);
                shared.queue_depth.fetch_add(1, Ordering::Relaxed);
                match tx.try_send(stream) {
                    Ok(()) => {
                        shared.obs.count("serve.queue.enqueued", 1);
                    }
                    Err(TrySendError::Full(stream)) => {
                        shared.queue_depth.fetch_sub(1, Ordering::Relaxed);
                        shared.rejected.fetch_add(1, Ordering::Relaxed);
                        shared.obs.count("serve.rejected", 1);
                        reject(stream);
                    }
                    Err(TrySendError::Disconnected(_)) => return,
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

/// Refuses one connection with a 503 at the accept thread. The pending
/// request bytes are drained first — closing a socket with unread data
/// provokes a TCP RST that would destroy the 503 before the client reads
/// it. One bounded read (≤100 ms, ≤8 KiB) keeps the accept thread's
/// worst case small; everything here is best-effort.
fn reject(mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut sink = [0u8; 8192];
    let _ = std::io::Read::read(&mut stream, &mut sink);
    let _ = http::write_error(
        &mut stream,
        503,
        "server busy: admission queue is full, retry later",
    );
}

/// One worker: pull queued connections and serve them until the channel
/// disconnects (drain) or shutdown is flagged with an empty queue.
fn worker_loop(shared: &Shared, rx: &Arc<Mutex<Receiver<TcpStream>>>) {
    loop {
        let next = {
            let guard = match rx.lock() {
                Ok(g) => g,
                Err(e) => e.into_inner(),
            };
            guard.recv_timeout(Duration::from_millis(50))
        };
        match next {
            Ok(stream) => {
                shared.queue_depth.fetch_sub(1, Ordering::Relaxed);
                serve_connection(shared, stream);
            }
            Err(RecvTimeoutError::Timeout) => {
                if shared.stop.load(Ordering::Relaxed) {
                    // Shutdown flagged; anything still queued will be
                    // drained by whichever worker wins the next recv, and
                    // an empty queue means we are done.
                    continue;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Serves exactly one request on `stream`.
fn serve_connection(shared: &Shared, mut stream: TcpStream) {
    let request = match http::read_request(&mut stream, shared.read_timeout) {
        Ok(r) => r,
        Err(http::ReadError::Closed) => return,
        Err(e @ http::ReadError::TooLarge(_)) => {
            let _ = http::write_error(&mut stream, 413, &e.to_string());
            return;
        }
        Err(e @ http::ReadError::Malformed(_)) => {
            let _ = http::write_error(&mut stream, 400, &e.to_string());
            return;
        }
        Err(http::ReadError::Io(_)) => return,
    };
    let t0 = Instant::now();
    let status = route(shared, &request, &mut stream);
    shared.served.fetch_add(1, Ordering::Relaxed);
    let mut span = shared.obs.span("serve.request");
    span.field_str("path", &request.path);
    span.field_u64("status", u64::from(status));
    span.field_f64("wall_ms", t0.elapsed().as_secs_f64() * 1e3);
}

/// Dispatches one request; returns the status answered.
fn route(shared: &Shared, request: &http::Request, stream: &mut TcpStream) -> u16 {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/avf") => {
            let body = match std::str::from_utf8(&request.body) {
                Ok(b) => b,
                Err(_) => {
                    let _ = http::write_error(stream, 400, "request body is not UTF-8");
                    return 400;
                }
            };
            let req: AvfRequest = match serde_json::from_str(body) {
                Ok(r) => r,
                Err(e) => {
                    let _ = http::write_error(stream, 400, &format!("cannot parse request: {e}"));
                    return 400;
                }
            };
            match shared.resident.handle(&req) {
                Ok(resp) => match serde_json::to_string(&resp) {
                    Ok(text) => {
                        let _ = http::write_json(stream, 200, &text);
                        200
                    }
                    Err(e) => {
                        let _ = http::write_error(
                            stream,
                            500,
                            &format!("cannot serialize response: {e}"),
                        );
                        500
                    }
                },
                Err(e) => {
                    let _ = http::write_error(stream, e.status, &e.message);
                    e.status
                }
            }
        }
        ("POST", "/v1/design-update") => {
            let body = match std::str::from_utf8(&request.body) {
                Ok(b) => b,
                Err(_) => {
                    let _ = http::write_error(stream, 400, "request body is not UTF-8");
                    return 400;
                }
            };
            let req: DesignUpdateRequest = match serde_json::from_str(body) {
                Ok(r) => r,
                Err(e) => {
                    let _ = http::write_error(stream, 400, &format!("cannot parse request: {e}"));
                    return 400;
                }
            };
            match shared.resident.handle_design_update(&req) {
                Ok(resp) => match serde_json::to_string(&resp) {
                    Ok(text) => {
                        let _ = http::write_json(stream, 200, &text);
                        200
                    }
                    Err(e) => {
                        let _ = http::write_error(
                            stream,
                            500,
                            &format!("cannot serialize response: {e}"),
                        );
                        500
                    }
                },
                Err(e) => {
                    let _ = http::write_error(stream, e.status, &e.message);
                    e.status
                }
            }
        }
        ("GET", "/healthz") => {
            let health = shared.resident.health();
            match serde_json::to_string(&health) {
                Ok(text) => {
                    let _ = http::write_json(stream, 200, &text);
                    200
                }
                Err(_) => {
                    let _ = http::write_error(stream, 500, "cannot serialize health");
                    500
                }
            }
        }
        ("GET", "/metrics") => {
            let text = render_metrics(shared);
            let _ = http::write_response(stream, 200, "text/plain; version=0.0.4", text.as_bytes());
            200
        }
        ("POST", "/v1/shutdown") => {
            shared.stop.store(true, Ordering::Relaxed);
            let _ = http::write_json(stream, 200, "{\"status\": \"shutting down\"}");
            200
        }
        (_, "/v1/avf") | (_, "/v1/design-update") | (_, "/v1/shutdown") => {
            let _ = http::write_error(stream, 405, "use POST");
            405
        }
        (_, "/healthz") | (_, "/metrics") => {
            let _ = http::write_error(stream, 405, "use GET");
            405
        }
        (_, path) => {
            let _ = http::write_error(stream, 404, &format!("no route for {path}"));
            404
        }
    }
}

/// Renders the Prometheus-style text exposition: server gauges first,
/// then every collector counter with dots mapped to underscores.
fn render_metrics(shared: &Shared) -> String {
    let health = shared.resident.health();
    let (graph_evictions, sweep_evictions) = shared.resident.evictions();
    let mut out = String::new();
    let mut push = |name: &str, value: f64| {
        // Integral values render without a fraction to stay greppable.
        if value.fract() == 0.0 && value.abs() < 1e15 {
            out.push_str(&format!("{name} {}\n", value as i64));
        } else {
            out.push_str(&format!("{name} {value}\n"));
        }
    };
    push(
        "seqavf_serve_uptime_seconds",
        shared.started.elapsed().as_secs_f64(),
    );
    push(
        "seqavf_serve_queue_depth",
        shared.queue_depth.load(Ordering::Relaxed) as f64,
    );
    push(
        "seqavf_serve_requests_total",
        shared.served.load(Ordering::Relaxed) as f64,
    );
    push(
        "seqavf_serve_rejected_total",
        shared.rejected.load(Ordering::Relaxed) as f64,
    );
    push(
        "seqavf_serve_resident_graphs",
        health.resident_graphs as f64,
    );
    push(
        "seqavf_serve_resident_sweeps",
        health.resident_sweeps as f64,
    );
    push("seqavf_serve_evictions_graph_total", graph_evictions as f64);
    push("seqavf_serve_evictions_sweep_total", sweep_evictions as f64);
    for (name, value) in shared.obs.counters() {
        push(&format!("seqavf_{}", name.replace('.', "_")), value as f64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;

    fn tiny_server(workers: usize, queue_cap: usize) -> ServerHandle {
        spawn(
            ServeConfig {
                workers,
                queue_cap,
                ..ServeConfig::default()
            },
            Collector::new(),
        )
        .unwrap()
    }

    #[test]
    fn healthz_and_metrics_respond() {
        let server = tiny_server(1, 4);
        let addr = server.addr();
        let (status, body) = client::get(addr, "/healthz").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"ok\""), "{body}");
        let (status, body) = client::get(addr, "/metrics").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("seqavf_serve_queue_depth"), "{body}");
        assert!(body.contains("seqavf_serve_uptime_seconds"), "{body}");
        server.shutdown();
        server.join();
    }

    #[test]
    fn unknown_routes_and_methods_get_named_statuses() {
        let server = tiny_server(1, 4);
        let addr = server.addr();
        let (status, body) = client::get(addr, "/nope").unwrap();
        assert_eq!(status, 404);
        assert!(body.contains("/nope"));
        let (status, _) = client::post_json(addr, "/healthz", "{}").unwrap();
        assert_eq!(status, 405);
        let (status, body) = client::post_json(addr, "/v1/avf", "not json").unwrap();
        assert_eq!(status, 400);
        assert!(body.contains("cannot parse request"), "{body}");
        server.shutdown();
        server.join();
    }

    #[test]
    fn shutdown_endpoint_stops_the_server() {
        let server = tiny_server(1, 4);
        let addr = server.addr();
        let (status, _) = client::post_json(addr, "/v1/shutdown", "{}").unwrap();
        assert_eq!(status, 200);
        // join() must return: accept loop sees the flag, workers drain.
        server.join();
        // The port is closed afterwards.
        assert!(client::get(addr, "/healthz").is_err());
    }

    #[test]
    fn idle_timeout_shuts_down_unattended_servers() {
        let server = spawn(
            ServeConfig {
                idle_timeout: Some(Duration::from_millis(100)),
                ..ServeConfig::default()
            },
            Collector::new(),
        )
        .unwrap();
        // No traffic: join() should return on its own via the idle path.
        server.join();
    }
}
