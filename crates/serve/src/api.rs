//! Wire types for the AVF service.
//!
//! The batch endpoint `POST /v1/avf` accepts a design reference plus a
//! batch of per-workload pAVF tables and returns one AVF summary row per
//! table — the same numbers, bit for bit, that the `sweep` CLI writes.
//!
//! Two ways to name a design:
//!
//! * `design_path` — a file on the server's filesystem; the server reads
//!   and (on first sight) parses it. The response echoes a `design_ref`.
//! * `design_ref` — the hex token from an earlier response; the warm path
//!   touches no files at all and goes straight to the resident graph.
//!
//! All numeric config fields are `Option`s: absent fields inherit the
//! server's defaults, and validation (range checks, NaN rejection)
//! happens server-side in `resident::resolve_config` so a bad request is
//! answered with a 400 naming the field instead of a poisoned sweep.

use seqavf_core::mapping::PavfInputs;

/// One workload's pAVF table, as produced by `seqavf ace` /
/// `flow::inputs_from_report`.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct NamedTable {
    /// Workload name, echoed into the matching response row.
    pub workload: String,
    /// The measured port-AVF inputs for this workload.
    pub inputs: PavfInputs,
}

/// Result-affecting configuration overrides. Absent fields fall back to
/// [`seqavf_core::engine::SartConfig::default`] (and the server's thread
/// budget for execution).
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct RequestConfig {
    /// Back-edge pAVF for loop bits (default 0.3; must be in `[0, 1]`).
    pub loop_pavf: Option<f64>,
    /// Relaxation iteration cap (default 20).
    pub iterations: Option<u64>,
    /// `true` selects the global (non-partitioned) solver.
    pub global: Option<bool>,
}

/// The `POST /v1/avf` request body.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct AvfRequest {
    /// Server-side path to the design source (EXLIF or structural
    /// Verilog, chosen by extension). Required unless `design_ref` names
    /// an already-resident graph.
    pub design_path: Option<String>,
    /// Residency token from an earlier response: the warm path.
    pub design_ref: Option<String>,
    /// Server-side path to the structure-mapping file. Required on a cold
    /// load; optional afterwards (the resident mapping is reused).
    pub map_path: Option<String>,
    /// Result-affecting configuration overrides.
    pub config: Option<RequestConfig>,
    /// Baseline pAVF table used to seed a fresh relaxation. Defaults to
    /// the first entry of `tables`.
    pub base_inputs: Option<PavfInputs>,
    /// The workload batch: one AVF evaluation per entry.
    pub tables: Vec<NamedTable>,
    /// Include every sequential bit's AVF in each row (`node` name order
    /// matches `nodes` in the response).
    pub include_nodes: Option<bool>,
    /// Include the per-FUB AVF table in the response.
    pub include_fubs: Option<bool>,
}

/// One response row: the AVF summary for one workload table.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RowOut {
    /// Workload name from the request.
    pub workload: String,
    /// Mean AVF over sequential bits.
    pub mean_seq_avf: f64,
    /// Lowest sequential-bit AVF.
    pub min_seq_avf: f64,
    /// Highest sequential-bit AVF.
    pub max_seq_avf: f64,
    /// Per-bit AVFs (present when `include_nodes` was set), aligned with
    /// the response's `nodes` list.
    pub node_avfs: Option<Vec<f64>>,
}

/// Per-FUB mean AVF for one workload.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct FubRow {
    /// Workload name.
    pub workload: String,
    /// FUB name.
    pub fub: String,
    /// Sequential bits in this FUB.
    pub seq_bits: u64,
    /// Mean AVF over this FUB's sequential bits.
    pub mean_seq_avf: f64,
}

/// The `POST /v1/avf` response body.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct AvfResponse {
    /// Residency token for the design; pass as `design_ref` to skip file
    /// IO on the next request.
    pub design_ref: String,
    /// `"hit"` when the graph was already resident, `"miss"` when it was
    /// loaded (file read + parse or snapshot restore) this request.
    pub graph_cache: String,
    /// `"hit"` when the compiled sweep DAG was already resident, `"miss"`
    /// when this request compiled (or disk-loaded) it.
    pub sweep_cache: String,
    /// One row per request table, in request order.
    pub rows: Vec<RowOut>,
    /// Sequential-bit names (present when `include_nodes` was set),
    /// giving meaning to each row's `node_avfs` indices.
    pub nodes: Option<Vec<String>>,
    /// Per-FUB table (present when `include_fubs` was set).
    pub fubs: Option<Vec<FubRow>>,
}

/// The `POST /v1/design-update` request body: re-resolve an edited design
/// at interactive latency by warm-starting the relaxation from the
/// resident converged fixpoint of the previous revision.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct DesignUpdateRequest {
    /// Server-side path to the *edited* design source (EXLIF or
    /// structural Verilog, chosen by extension). Always re-read — the
    /// point of the endpoint is that the file changed.
    pub design_path: String,
    /// Residency token of the revision being superseded. Its graph and
    /// compiled DAG are patched out of residency; its mapping is reused
    /// when `map_path` is absent.
    pub prev_ref: Option<String>,
    /// Structure-mapping file. Optional when `prev_ref` names a resident
    /// design (its mapping carries across by structure name).
    pub map_path: Option<String>,
    /// Result-affecting configuration overrides (same semantics as
    /// `/v1/avf`). Must match the previous solve's config for the warm
    /// path to engage; a mismatch falls back to a cold solve.
    pub config: Option<RequestConfig>,
    /// Baseline pAVF table used to evaluate the fresh relaxation.
    /// Defaults to an empty table — the compiled DAG is symbolic, so the
    /// baseline never affects later `/v1/avf` batches.
    pub base_inputs: Option<PavfInputs>,
}

/// The `POST /v1/design-update` response body.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct DesignUpdateResponse {
    /// Residency token for the edited design; pass as `design_ref` on
    /// subsequent `/v1/avf` requests.
    pub design_ref: String,
    /// The superseded token from the request, echoed back. It is no
    /// longer resident after this call.
    pub prev_ref: Option<String>,
    /// `"warm"` (seeded from the resident fixpoint, dirty cone
    /// re-relaxed), `"cold"` (full solve; see `reason`), or `"resident"`
    /// (the edited design's DAG was already resident — nothing to solve).
    pub mode: String,
    /// Why the warm path did not engage, when `mode` is `"cold"`.
    pub reason: Option<String>,
    /// FUBs whose converged annotations were adopted from the stored
    /// fixpoint.
    pub seeded_fubs: u64,
    /// FUBs re-relaxed because their content digest changed (plus any
    /// that failed a per-FUB guard).
    pub dirty_fubs: u64,
    /// Nodes walked by the re-solve — the interactive-latency headline
    /// (compare against `node_count` × iterations for a cold solve).
    pub walked_nodes: u64,
    /// Node count of the edited design.
    pub node_count: u64,
    /// How the compiled sweep DAG was produced: `"patched"` (the
    /// superseded revision's DAG was incrementally patched — only the
    /// dirty cone re-lowered), `"rebuilt"` (a patch was attempted but a
    /// precondition failed; see `dag_reason`), `"compiled"` (no patch
    /// was attemptable — cold solve or no previous DAG), or
    /// `"resident"` (nothing recompiled at all).
    pub dag: String,
    /// Why the patch fell back to a full recompile, when `dag` is
    /// `"rebuilt"`.
    pub dag_reason: Option<String>,
    /// Slots re-lowered plus ops freshly added by the patch — the
    /// dirty-cone share of the DAG (0 unless `dag` is `"patched"`).
    pub ops_patched: u64,
    /// Old DAG ops dropped at compaction because no retained slot
    /// references them (0 unless `dag` is `"patched"`).
    pub ops_orphaned: u64,
}

/// The `GET /healthz` response body.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Health {
    /// Always `"ok"` when the server can answer at all.
    pub status: String,
    /// Resident graph count.
    pub resident_graphs: u64,
    /// Resident compiled-sweep count.
    pub resident_sweeps: u64,
    /// Resident converged-fixpoint count (warm-start seeds).
    pub resident_fixpoints: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips_through_json() {
        let req = AvfRequest {
            design_path: Some("d.exlif".into()),
            design_ref: None,
            map_path: Some("d.map".into()),
            config: Some(RequestConfig {
                loop_pavf: Some(0.25),
                iterations: Some(12),
                global: None,
            }),
            base_inputs: None,
            tables: vec![NamedTable {
                workload: "w0".into(),
                inputs: PavfInputs::default(),
            }],
            include_nodes: Some(true),
            include_fubs: None,
        };
        let text = serde_json::to_string(&req).unwrap();
        let back: AvfRequest = serde_json::from_str(&text).unwrap();
        assert_eq!(back.design_path.as_deref(), Some("d.exlif"));
        assert_eq!(back.design_ref, None);
        assert_eq!(back.config.as_ref().unwrap().loop_pavf, Some(0.25));
        assert_eq!(back.config.as_ref().unwrap().iterations, Some(12));
        assert_eq!(back.config.as_ref().unwrap().global, None);
        assert_eq!(back.tables.len(), 1);
        assert_eq!(back.tables[0].workload, "w0");
        assert_eq!(back.include_nodes, Some(true));
        assert_eq!(back.include_fubs, None);
    }

    #[test]
    fn absent_optional_fields_read_as_none() {
        let text = r#"{"tables": []}"#;
        let req: AvfRequest = serde_json::from_str(text).unwrap();
        assert!(req.design_path.is_none());
        assert!(req.design_ref.is_none());
        assert!(req.map_path.is_none());
        assert!(req.config.is_none());
        assert!(req.base_inputs.is_none());
        assert!(req.tables.is_empty());
    }

    #[test]
    fn design_update_request_roundtrips_and_defaults() {
        let text = r#"{"design_path": "d.exlif", "prev_ref": "00ab"}"#;
        let req: DesignUpdateRequest = serde_json::from_str(text).unwrap();
        assert_eq!(req.design_path, "d.exlif");
        assert_eq!(req.prev_ref.as_deref(), Some("00ab"));
        assert!(req.map_path.is_none());
        assert!(req.config.is_none());
        assert!(req.base_inputs.is_none());
        let back: DesignUpdateRequest =
            serde_json::from_str(&serde_json::to_string(&req).unwrap()).unwrap();
        assert_eq!(back.design_path, req.design_path);
        assert_eq!(back.prev_ref, req.prev_ref);
    }

    #[test]
    fn response_f64s_roundtrip_bit_exactly() {
        // The service's bit-identity promise leans on the JSON layer
        // emitting shortest-round-trip floats; check an awkward one.
        let row = RowOut {
            workload: "w".into(),
            mean_seq_avf: 0.1 + 0.2,
            min_seq_avf: f64::MIN_POSITIVE,
            max_seq_avf: 1.0 - f64::EPSILON,
            node_avfs: Some(vec![0.3333333333333333, 1e-300]),
        };
        let text = serde_json::to_string(&row).unwrap();
        let back: RowOut = serde_json::from_str(&text).unwrap();
        assert_eq!(back.mean_seq_avf.to_bits(), row.mean_seq_avf.to_bits());
        assert_eq!(back.min_seq_avf.to_bits(), row.min_seq_avf.to_bits());
        assert_eq!(back.max_seq_avf.to_bits(), row.max_seq_avf.to_bits());
        assert_eq!(back.node_avfs, row.node_avfs);
    }
}
