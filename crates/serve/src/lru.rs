//! A small digest-keyed LRU map for resident artifacts.
//!
//! The server keeps at most `--max-resident` loaded graphs and compiled
//! sweep DAGs in memory; residency is keyed by the same 64-bit digests
//! the on-disk caches use (netlist content digest, sweep cache key).
//! Capacities are tiny — single digits to low tens of designs — so the
//! store is a plain vector ordered by a monotonically increasing access
//! stamp: O(n) probes beat hash-map overhead at this size and keep the
//! eviction choice trivially auditable.

/// A fixed-capacity least-recently-used map keyed by `u64` digests.
#[derive(Debug)]
pub struct Lru<V> {
    /// `(key, last-access stamp, value)` triples, unordered.
    entries: Vec<(u64, u64, V)>,
    /// Capacity; inserting into a full map evicts the stalest entry.
    capacity: usize,
    /// Monotonic access clock.
    clock: u64,
    /// Lifetime eviction count (served to `/metrics`).
    evictions: u64,
}

impl<V> Lru<V> {
    /// Creates an empty map. A zero capacity is clamped to one — a server
    /// that could hold nothing resident would thrash every request.
    pub fn new(capacity: usize) -> Self {
        Lru {
            entries: Vec::new(),
            capacity: capacity.max(1),
            clock: 0,
            evictions: 0,
        }
    }

    /// Current number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime eviction count.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: u64) -> Option<&V> {
        self.clock += 1;
        let clock = self.clock;
        self.entries
            .iter_mut()
            .find(|(k, _, _)| *k == key)
            .map(|(_, stamp, v)| {
                *stamp = clock;
                &*v
            })
    }

    /// Inserts (or replaces) `key`, evicting the least recently used
    /// entry if the map is full. Returns the evicted `(key, value)`, if
    /// any, so callers can account for the freed artifact.
    pub fn insert(&mut self, key: u64, value: V) -> Option<(u64, V)> {
        self.clock += 1;
        if let Some(slot) = self.entries.iter_mut().find(|(k, _, _)| *k == key) {
            let old = std::mem::replace(&mut slot.2, value);
            slot.1 = self.clock;
            return Some((key, old));
        }
        let mut evicted = None;
        if self.entries.len() >= self.capacity {
            let stalest = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, stamp, _))| *stamp)
                .map(|(i, _)| i)
                .expect("full LRU has at least one entry");
            let (k, _, v) = self.entries.swap_remove(stalest);
            self.evictions += 1;
            evicted = Some((k, v));
        }
        self.entries.push((key, self.clock, value));
        evicted
    }

    /// Removes `key`, returning its value if it was resident. Not counted
    /// as an eviction: removal is an explicit invalidation (e.g. a design
    /// update superseding the old content), not capacity pressure.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let i = self.entries.iter().position(|(k, _, _)| *k == key)?;
        Some(self.entries.swap_remove(i).2)
    }

    /// Resident keys, unordered.
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.entries.iter().map(|(k, _, _)| *k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used_not_least_recently_inserted() {
        let mut lru = Lru::new(2);
        assert!(lru.insert(1, "a").is_none());
        assert!(lru.insert(2, "b").is_none());
        // Touch 1 so 2 becomes the stalest.
        assert_eq!(lru.get(1), Some(&"a"));
        let evicted = lru.insert(3, "c");
        assert_eq!(evicted, Some((2, "b")));
        assert_eq!(lru.len(), 2);
        assert!(lru.get(1).is_some());
        assert!(lru.get(3).is_some());
        assert!(lru.get(2).is_none());
        assert_eq!(lru.evictions(), 1);
    }

    #[test]
    fn reinsert_replaces_without_eviction() {
        let mut lru = Lru::new(2);
        lru.insert(1, 10);
        lru.insert(2, 20);
        let old = lru.insert(1, 11);
        assert_eq!(old, Some((1, 10)));
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get(1), Some(&11));
        assert_eq!(lru.evictions(), 0);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut lru = Lru::new(0);
        assert!(lru.insert(1, "a").is_none());
        assert_eq!(lru.insert(2, "b"), Some((1, "a")));
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn remove_invalidates_without_counting_an_eviction() {
        let mut lru = Lru::new(2);
        lru.insert(1, "a");
        lru.insert(2, "b");
        assert_eq!(lru.remove(1), Some("a"));
        assert_eq!(lru.remove(1), None);
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.evictions(), 0);
        // The freed slot is reusable without evicting the survivor.
        assert!(lru.insert(3, "c").is_none());
        assert!(lru.get(2).is_some());
    }

    #[test]
    fn get_refreshes_recency_under_churn() {
        let mut lru = Lru::new(3);
        for k in 0..3 {
            lru.insert(k, k);
        }
        // Keep key 0 hot while inserting a stream of new keys: 0 must
        // survive every round.
        for k in 3..20 {
            assert!(lru.get(0).is_some(), "hot key evicted at {k}");
            lru.insert(k, k);
        }
        assert!(lru.get(0).is_some());
        assert_eq!(lru.evictions(), 17);
    }
}
