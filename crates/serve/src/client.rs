//! A minimal blocking HTTP client for the service's own endpoints.
//!
//! Used by the `seqavf query` subcommand, the integration tests, and the
//! CI smoke script — one request per connection, mirroring the server's
//! `Connection: close` discipline.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Issues one request and returns `(status, body)`.
fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))
        .map_err(|e| format!("connecting to {addr}: {e}"))?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(600)));
    let payload = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        payload.len(),
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(payload.as_bytes()))
        .map_err(|e| format!("sending request to {addr}: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("reading response from {addr}: {e}"))?;
    parse_response(&raw)
}

/// Splits a raw HTTP/1.1 response into `(status, body)`.
fn parse_response(raw: &[u8]) -> Result<(u16, String), String> {
    let text = std::str::from_utf8(raw).map_err(|e| format!("non-UTF-8 response: {e}"))?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("incomplete response ({} bytes)", raw.len()))?;
    let status_line = head.lines().next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line `{status_line}`"))?;
    Ok((status, body.to_owned()))
}

/// `GET path` → `(status, body)`.
pub fn get(addr: SocketAddr, path: &str) -> Result<(u16, String), String> {
    request(addr, "GET", path, None)
}

/// `POST path` with a JSON body → `(status, body)`.
pub fn post_json(addr: SocketAddr, path: &str, body: &str) -> Result<(u16, String), String> {
    request(addr, "POST", path, Some(body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_plain_response() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nhi";
        let (status, body) = parse_response(raw).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "hi");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http").is_err());
        assert!(parse_response(b"HTTP/1.1 abc\r\n\r\n").is_err());
    }
}
