//! Property tests for the performance model's ACE accounting
//! (DESIGN.md §6, invariant 7).

use proptest::prelude::*;

use seqavf_perf::ace::analyze_trace;
use seqavf_perf::hd1::Hd1Tracker;
use seqavf_perf::pipeline::{run_ace, PerfConfig};
use seqavf_workloads::trace::{Instr, OpClass, Reg, Trace};

/// Arbitrary instruction from raw bytes.
fn instr_from(bytes: (u8, u8, u8, u8)) -> Instr {
    let (k, a, b, c) = bytes;
    match k % 8 {
        0 | 1 => Instr::alu(OpClass::IntAlu, Reg::new(a), Reg::new(b), Some(Reg::new(c))),
        2 => Instr::alu(OpClass::FpMul, Reg::new(a), Reg::new(b), None),
        3 => Instr::load(Reg::new(a), Some(Reg::new(b)), u64::from(c) << 4),
        4 => Instr::store(Reg::new(a), Some(Reg::new(b)), u64::from(c) << 4),
        5 => Instr::branch(Reg::new(a), b % 2 == 0),
        6 => Instr::alu(OpClass::IntMul, Reg::new(a), Reg::new(b), Some(Reg::new(c))),
        _ => Instr::nop(),
    }
}

fn trace_strategy() -> impl Strategy<Value = Trace> {
    prop::collection::vec(any::<(u8, u8, u8, u8)>(), 1..400)
        .prop_map(|v| Trace::new("prop", v.into_iter().map(instr_from).collect()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn model_retires_everything_and_stats_are_sane(trace in trace_strategy()) {
        let r = run_ace(&trace, &PerfConfig::default());
        prop_assert_eq!(r.instructions as usize, trace.len());
        prop_assert!(r.cycles > 0);
        for (name, s) in &r.structures {
            prop_assert!((0.0..=1.0).contains(&s.avf), "{} avf {}", name, s.avf);
            prop_assert!((0.0..=1.0).contains(&s.port.read));
            prop_assert!((0.0..=1.0).contains(&s.port.write));
            prop_assert!(s.ace_reads <= s.reads, "{name}");
            prop_assert!(s.ace_writes <= s.writes, "{name}");
            prop_assert!(
                s.ace_bit_cycles + s.unknown_bit_cycles
                    <= s.total_bits() * r.cycles,
                "{name}: residency exceeds bit-cycles"
            );
            prop_assert!(s.resident_avf() <= 1.0);
            for f in &s.fields {
                prop_assert!((0.0..=1.0).contains(&f.avf));
            }
        }
    }

    #[test]
    fn ace_classification_is_consistent(trace in trace_strategy()) {
        let a = analyze_trace(&trace);
        prop_assert_eq!(a.all().len(), trace.len());
        // NOPs are never ACE; stores and branches always are.
        for (i, ins) in trace.instrs().iter().enumerate() {
            match ins.op {
                OpClass::Nop => prop_assert!(!a.of(i).counts_as_ace()),
                OpClass::Store | OpClass::Branch => {
                    prop_assert!(a.of(i).counts_as_ace())
                }
                _ => {}
            }
        }
        prop_assert!((0.0..=1.0).contains(&a.ace_fraction()));
        prop_assert!(a.unknown_fraction() <= a.ace_fraction() + 1e-12);
    }

    #[test]
    fn conservative_residency_dominates_precise(trace in trace_strategy()) {
        let precise = run_ace(&trace, &PerfConfig::default());
        let cons = run_ace(
            &trace,
            &PerfConfig {
                conservative_residency: true,
                ..PerfConfig::default()
            },
        );
        for (name, p) in &precise.structures {
            let c = &cons.structures[name];
            prop_assert!(
                c.avf + 1e-12 >= p.avf,
                "{name}: conservative {} < precise {}",
                c.avf,
                p.avf
            );
            // Port rates are residency-independent.
            prop_assert!((c.port.read - p.port.read).abs() < 1e-12);
            prop_assert!((c.port.write - p.port.write).abs() < 1e-12);
        }
    }

    #[test]
    fn hd1_factor_bounded(tags in prop::collection::vec(any::<u16>(), 1..20),
                          lookups in prop::collection::vec(any::<u16>(), 1..40)) {
        let mut t = Hd1Tracker::new(16);
        for (i, &tag) in tags.iter().enumerate() {
            t.insert(i, u64::from(tag));
        }
        for &l in &lookups {
            t.lookup(u64::from(l), seqavf_perf::ace::Aceness::Ace);
        }
        let f = t.factor();
        prop_assert!((0.0..=1.0).contains(&f));
        prop_assert_eq!(t.lookups(), lookups.len() as u64);
    }
}
