//! Catalog of the performance model's ACE-instrumented structures.
//!
//! The paper instruments "over 100 ACE-modeled structures" in a production
//! performance model; this model instruments sixteen representative ones
//! spanning the same categories — fetch/decode buffers, rename state,
//! scheduler, register files, memory-order queues, address-based CAMs, and
//! a control-register bank.

use serde::{Deserialize, Serialize};

/// Broad structure category, controlling which analyses apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StructureClass {
    /// FIFO-style buffer or queue.
    Queue,
    /// Random-access register file / array.
    RegFile,
    /// Content-addressed (tag-matched) structure: hamming-distance-1
    /// analysis applies.
    Cam,
    /// Control/configuration state: bit-field analysis applies.
    Control,
}

/// Static description of one structure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StructureSpec {
    /// Structure name (the key used in port-AVF tables and RTL mapping).
    pub name: &'static str,
    /// Number of entries.
    pub entries: usize,
    /// Bits per entry.
    pub bits_per_entry: u32,
    /// Category.
    pub class: StructureClass,
    /// Number of read ports. The paper's `pAVF_R` is a per-port-bit rate:
    /// ACE reads are spread across the structure's read ports, so the rate
    /// seen by any single port bit is `ACE reads / (read ports × cycles)`.
    pub read_ports: u32,
    /// Number of write ports (denominator for `pAVF_W`).
    pub write_ports: u32,
}

/// The default structure catalog. Port counts follow the default pipeline
/// widths (4-wide front end, 6-wide issue, 4-wide retire).
pub fn catalog() -> Vec<StructureSpec> {
    use StructureClass::*;
    let s = |name, entries, bits_per_entry, class, read_ports, write_ports| StructureSpec {
        name,
        entries,
        bits_per_entry,
        class,
        read_ports,
        write_ports,
    };
    vec![
        s("fetch_buffer", 16, 64, Queue, 4, 4),
        s("itlb", 32, 48, Cam, 1, 1),
        s("btb", 64, 40, Cam, 1, 1),
        s("ras", 16, 48, Queue, 1, 1),
        s("uop_queue", 28, 72, Queue, 4, 4),
        s("rat", 32, 8, RegFile, 8, 4),
        s("free_list", 64, 8, Queue, 4, 4),
        s("issue_queue", 40, 60, Control, 6, 4),
        s("bypass", 8, 64, Queue, 6, 6),
        s("fp_regfile", 64, 64, RegFile, 4, 2),
        s("dtlb", 64, 48, Cam, 2, 1),
        s("load_queue", 32, 56, Cam, 2, 2),
        s("store_queue", 24, 96, Cam, 2, 1),
        s("rob", 96, 76, Control, 4, 4),
        s("prf", 128, 64, RegFile, 8, 6),
        s("csr_bank", 32, 32, Control, 1, 1),
    ]
}

/// Looks up a spec by name in the default catalog.
pub fn spec(name: &str) -> Option<StructureSpec> {
    catalog().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_unique() {
        let c = catalog();
        let mut names: Vec<_> = c.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), c.len());
    }

    #[test]
    fn lookup_by_name() {
        let s = spec("rob").unwrap();
        assert_eq!(s.entries, 96);
        assert_eq!(s.class, StructureClass::Control);
        assert!(spec("nope").is_none());
    }

    #[test]
    fn cams_present_for_hd1() {
        assert!(catalog().iter().any(|s| s.class == StructureClass::Cam));
    }
}
