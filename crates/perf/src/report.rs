//! Result types for ACE analysis runs.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Port AVFs of a structure (§4): the probability per cycle that ACE data
/// crosses the structure's read or write port bits.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PortAvf {
    /// `pAVF_R` — ACE reads per cycle, clamped to `[0, 1]`.
    pub read: f64,
    /// `pAVF_W` — ACE writes per cycle, clamped to `[0, 1]`.
    pub write: f64,
}

/// Per-bit-field statistics produced by bit-field analysis (§5.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FieldStats {
    /// Field name (e.g. `"dest_tag"`).
    pub name: String,
    /// Field width in bits.
    pub bits: u32,
    /// Field AVF.
    pub avf: f64,
    /// Field port AVFs.
    pub port: PortAvf,
}

/// Statistics for one ACE-modeled structure over one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StructureStats {
    /// Structure name.
    pub name: String,
    /// Number of entries.
    pub entries: usize,
    /// Bits per entry.
    pub bits_per_entry: u32,
    /// Total read events.
    pub reads: u64,
    /// Total write events.
    pub writes: u64,
    /// ACE read events.
    pub ace_reads: u64,
    /// ACE write events.
    pub ace_writes: u64,
    /// ACE residency in bit-cycles.
    pub ace_bit_cycles: u64,
    /// Unknown (conservatively ACE) residency in bit-cycles.
    pub unknown_bit_cycles: u64,
    /// Bit-cycles during which entries held *any* data (fill to eviction),
    /// the denominator for [`StructureStats::resident_avf`].
    pub occupied_bit_cycles: u64,
    /// Structure AVF per Equation 3.
    pub avf: f64,
    /// Port AVFs.
    pub port: PortAvf,
    /// Per-field refinement when bit-field analysis is enabled; empty
    /// otherwise.
    pub fields: Vec<FieldStats>,
    /// Quantized per-window AVF series when windowed tracking is enabled
    /// (see [`crate::window`]); empty otherwise.
    pub windows: Vec<f64>,
}

impl StructureStats {
    /// Total bits in the structure.
    pub fn total_bits(&self) -> u64 {
        self.entries as u64 * u64::from(self.bits_per_entry)
    }

    /// The vulnerability of a *resident* entry: ACE residency over occupied
    /// bit-cycles rather than total bit-cycles. This is the number an
    /// engineer would conservatively carry over to a pipeline sequential
    /// (which, unlike an array, has no "empty entries"), and is the proxy
    /// the Figure 10 before-model uses. Returns 0 for never-occupied
    /// structures.
    pub fn resident_avf(&self) -> f64 {
        if self.occupied_bit_cycles == 0 {
            0.0
        } else {
            ((self.ace_bit_cycles + self.unknown_bit_cycles) as f64
                / self.occupied_bit_cycles as f64)
                .min(1.0)
        }
    }

    /// The effective port AVF after bit-field refinement: the bit-weighted
    /// mean of field port AVFs when fields are present, else the aggregate
    /// port AVF. Bit-field analysis only ever lowers conservatism (§5.1).
    pub fn refined_port(&self) -> PortAvf {
        if self.fields.is_empty() {
            return self.port;
        }
        let total: f64 = self.fields.iter().map(|f| f64::from(f.bits)).sum();
        if total == 0.0 {
            return self.port;
        }
        let read = self
            .fields
            .iter()
            .map(|f| f.port.read * f64::from(f.bits))
            .sum::<f64>()
            / total;
        let write = self
            .fields
            .iter()
            .map(|f| f.port.write * f64::from(f.bits))
            .sum::<f64>()
            / total;
        PortAvf {
            read: read.min(self.port.read),
            write: write.min(self.port.write),
        }
    }
}

/// The result of running ACE analysis over one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AceReport {
    /// Workload name.
    pub workload: String,
    /// Simulated cycles.
    pub cycles: u64,
    /// Retired instructions.
    pub instructions: u64,
    /// Per-structure statistics, keyed by structure name.
    pub structures: BTreeMap<String, StructureStats>,
}

impl AceReport {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// The port-AVF table consumed by the SART stage, using bit-field
    /// refined values where available.
    pub fn port_avfs(&self) -> BTreeMap<String, PortAvf> {
        self.structures
            .iter()
            .map(|(k, v)| (k.clone(), v.refined_port()))
            .collect()
    }

    /// Bit-weighted average structure AVF across all structures.
    pub fn average_structure_avf(&self) -> f64 {
        let total: u64 = self
            .structures
            .values()
            .map(StructureStats::total_bits)
            .sum();
        if total == 0 {
            return 0.0;
        }
        self.structures
            .values()
            .map(|s| s.avf * s.total_bits() as f64)
            .sum::<f64>()
            / total as f64
    }
}

/// Aggregated ACE results across a workload suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteReport {
    /// One report per workload, in suite order.
    pub runs: Vec<AceReport>,
}

impl SuiteReport {
    /// Builds a suite report.
    pub fn new(runs: Vec<AceReport>) -> Self {
        SuiteReport { runs }
    }

    /// Mean port AVFs per structure across all workloads — the values the
    /// paper plugs into the node walk.
    pub fn mean_port_avfs(&self) -> BTreeMap<String, PortAvf> {
        let mut acc: BTreeMap<String, (f64, f64, u64)> = BTreeMap::new();
        for run in &self.runs {
            for (name, pavf) in run.port_avfs() {
                let e = acc.entry(name).or_insert((0.0, 0.0, 0));
                e.0 += pavf.read;
                e.1 += pavf.write;
                e.2 += 1;
            }
        }
        acc.into_iter()
            .map(|(k, (r, w, n))| {
                let n = n.max(1) as f64;
                (
                    k,
                    PortAvf {
                        read: r / n,
                        write: w / n,
                    },
                )
            })
            .collect()
    }

    /// Mean structure AVF per structure across workloads.
    pub fn mean_structure_avfs(&self) -> BTreeMap<String, f64> {
        let mut acc: BTreeMap<String, (f64, u64)> = BTreeMap::new();
        for run in &self.runs {
            for (name, s) in &run.structures {
                let e = acc.entry(name.clone()).or_insert((0.0, 0));
                e.0 += s.avf;
                e.1 += 1;
            }
        }
        acc.into_iter()
            .map(|(k, (a, n))| (k, a / n.max(1) as f64))
            .collect()
    }

    /// Mean resident-entry AVF over structures and workloads — the
    /// conservative per-entry vulnerability an engineer would carry as a
    /// sequential-AVF proxy (see [`StructureStats::resident_avf`]).
    /// Structures that were never occupied in a run are skipped.
    pub fn mean_resident_avf(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0u64;
        for run in &self.runs {
            for s in run.structures.values() {
                if s.occupied_bit_cycles > 0 {
                    sum += s.resident_avf();
                    n += 1;
                }
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Bit-weighted average structure AVF over the whole suite.
    pub fn average_structure_avf(&self) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        self.runs
            .iter()
            .map(AceReport::average_structure_avf)
            .sum::<f64>()
            / self.runs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(name: &str, avf: f64, read: f64, write: f64) -> StructureStats {
        StructureStats {
            name: name.into(),
            entries: 4,
            bits_per_entry: 8,
            reads: 0,
            writes: 0,
            ace_reads: 0,
            ace_writes: 0,
            ace_bit_cycles: 0,
            unknown_bit_cycles: 0,
            occupied_bit_cycles: 0,
            avf,
            port: PortAvf { read, write },
            fields: Vec::new(),
            windows: Vec::new(),
        }
    }

    #[test]
    fn refined_port_without_fields_is_aggregate() {
        let s = stats("a", 0.1, 0.4, 0.2);
        assert_eq!(s.refined_port(), s.port);
    }

    #[test]
    fn refined_port_weights_fields_by_bits() {
        let mut s = stats("a", 0.1, 0.8, 0.8);
        s.fields = vec![
            FieldStats {
                name: "f0".into(),
                bits: 6,
                avf: 0.0,
                port: PortAvf {
                    read: 0.9,
                    write: 0.9,
                },
            },
            FieldStats {
                name: "f1".into(),
                bits: 2,
                avf: 0.0,
                port: PortAvf {
                    read: 0.1,
                    write: 0.1,
                },
            },
        ];
        let p = s.refined_port();
        // Weighted mean 0.7 but clamped by the aggregate 0.8.
        assert!((p.read - 0.7).abs() < 1e-12);
    }

    #[test]
    fn refined_port_never_exceeds_aggregate() {
        let mut s = stats("a", 0.1, 0.3, 0.3);
        s.fields = vec![FieldStats {
            name: "f0".into(),
            bits: 8,
            avf: 0.0,
            port: PortAvf {
                read: 0.9,
                write: 0.9,
            },
        }];
        let p = s.refined_port();
        assert_eq!(p.read, 0.3);
        assert_eq!(p.write, 0.3);
    }

    #[test]
    fn report_averages() {
        let mut m = BTreeMap::new();
        m.insert("a".to_owned(), stats("a", 0.2, 0.5, 0.1));
        m.insert("b".to_owned(), stats("b", 0.4, 0.3, 0.3));
        let r = AceReport {
            workload: "w".into(),
            cycles: 100,
            instructions: 150,
            structures: m,
        };
        assert!((r.ipc() - 1.5).abs() < 1e-12);
        // Equal bit counts -> plain mean.
        assert!((r.average_structure_avf() - 0.3).abs() < 1e-12);
        assert_eq!(r.port_avfs().len(), 2);
    }

    #[test]
    fn suite_means() {
        let mk = |avf, read| {
            let mut m = BTreeMap::new();
            m.insert("a".to_owned(), stats("a", avf, read, 0.0));
            AceReport {
                workload: "w".into(),
                cycles: 10,
                instructions: 10,
                structures: m,
            }
        };
        let suite = SuiteReport::new(vec![mk(0.2, 0.4), mk(0.4, 0.8)]);
        let p = suite.mean_port_avfs();
        assert!((p["a"].read - 0.6).abs() < 1e-12);
        let a = suite.mean_structure_avfs();
        assert!((a["a"] - 0.3).abs() < 1e-12);
        assert!((suite.average_structure_avf() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn empty_suite_is_zero() {
        let s = SuiteReport::new(vec![]);
        assert_eq!(s.average_structure_avf(), 0.0);
        assert!(s.mean_port_avfs().is_empty());
    }
}
