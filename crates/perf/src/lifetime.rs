//! ACE lifetime tracking for one storage structure (Mukherjee et al. \[1\]).
//!
//! The tracker observes write / read / deallocate events on a structure's
//! entries and accumulates *ACE residency*: the bit-cycles during which a
//! bit held state that was necessary for architecturally correct execution.
//! Structure AVF follows Equation 3:
//!
//! ```text
//!            Σ residence time of all ACE+unknown bits
//! AVF = ─────────────────────────────────────────────────
//!        (# bits in structure) × (total simulation cycles)
//! ```
//!
//! The same event stream yields the **port AVFs** that drive SART (§4): the
//! rate of ACE reads (`pAVF_R`) and ACE writes (`pAVF_W`) per cycle.

use crate::ace::Aceness;
use crate::report::{PortAvf, StructureStats};
use crate::window::Quantizer;

/// Per-entry live state.
#[derive(Debug, Clone, Copy)]
struct Live {
    write_cycle: u64,
    aceness: Aceness,
    last_ace_read: Option<u64>,
}

/// Event-driven ACE lifetime tracker for one structure.
#[derive(Debug, Clone)]
pub struct LifetimeTracker {
    name: String,
    bits_per_entry: u32,
    live: Vec<Option<Live>>,
    reads: u64,
    writes: u64,
    ace_reads: u64,
    ace_writes: u64,
    ace_bit_cycles: u64,
    unknown_bit_cycles: u64,
    occupied_bit_cycles: u64,
    conservative: bool,
    quantizer: Option<Quantizer>,
}

impl LifetimeTracker {
    /// Creates a tracker for a structure with `entries` entries of
    /// `bits_per_entry` bits each.
    pub fn new(name: impl Into<String>, entries: usize, bits_per_entry: u32) -> Self {
        LifetimeTracker {
            name: name.into(),
            bits_per_entry,
            live: vec![None; entries],
            reads: 0,
            writes: 0,
            ace_reads: 0,
            ace_writes: 0,
            ace_bit_cycles: 0,
            unknown_bit_cycles: 0,
            occupied_bit_cycles: 0,
            conservative: false,
            quantizer: None,
        }
    }

    /// Switches residency accounting to the *conservative* variant: an
    /// entry filled with ACE data accrues residency from fill to eviction
    /// even past its last read. This matches the "conservative structure
    /// AVF" values industrial flows carry before refinement (§6.2:
    /// "we were conservatively using structure AVFs as a proxy"); the
    /// default precise mode ends ACE residency at the last ACE read
    /// (Mukherjee et al. \[1\]).
    pub fn with_conservative_residency(mut self, conservative: bool) -> Self {
        self.conservative = conservative;
        self
    }

    /// Enables quantized (time-windowed) AVF tracking with the given
    /// window size in cycles (see [`crate::window`]).
    pub fn with_quantizer(mut self, window: Option<u64>) -> Self {
        self.quantizer = window.map(Quantizer::new);
        self
    }

    /// Structure name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of entries.
    pub fn entries(&self) -> usize {
        self.live.len()
    }

    /// Records a write that fills `entry` at `cycle` with data of the given
    /// ACE classification. An entry already live is implicitly deallocated
    /// first (overwrite).
    pub fn write(&mut self, entry: usize, cycle: u64, aceness: Aceness) {
        if self.live[entry].is_some() {
            self.dealloc(entry, cycle);
        }
        self.writes += 1;
        if aceness.counts_as_ace() {
            self.ace_writes += 1;
        }
        self.live[entry] = Some(Live {
            write_cycle: cycle,
            aceness,
            last_ace_read: None,
        });
    }

    /// Records a read of `entry` at `cycle` by a consumer with ACE
    /// classification `reader`. The read event is ACE when both the stored
    /// value and the consumer are ACE.
    pub fn read(&mut self, entry: usize, cycle: u64, reader: Aceness) {
        self.reads += 1;
        if let Some(l) = self.live[entry].as_mut() {
            if l.aceness.counts_as_ace() && reader.counts_as_ace() {
                self.ace_reads += 1;
                l.last_ace_read = Some(cycle);
            }
        }
    }

    /// Deallocates `entry` at `cycle`, accumulating its ACE residency: the
    /// interval from fill to the last ACE read is ACE residency; the
    /// remainder of the lifetime (last read to eviction) is un-ACE.
    pub fn dealloc(&mut self, entry: usize, cycle: u64) {
        let Some(l) = self.live[entry].take() else {
            return;
        };
        self.occupied_bit_cycles +=
            cycle.saturating_sub(l.write_cycle) * u64::from(self.bits_per_entry);
        let end = if self.conservative {
            // Conservative variant: ACE fills are vulnerable until evicted.
            if l.aceness.counts_as_ace() {
                Some(cycle)
            } else {
                None
            }
        } else {
            l.last_ace_read
        };
        if let Some(end) = end {
            let span = end.saturating_sub(l.write_cycle) * u64::from(self.bits_per_entry);
            match l.aceness {
                Aceness::Unknown => self.unknown_bit_cycles += span,
                _ => self.ace_bit_cycles += span,
            }
            if let Some(q) = self.quantizer.as_mut() {
                q.record_span(l.write_cycle, end, self.bits_per_entry);
            }
        }
    }

    /// Ends the simulation at `end_cycle`: every still-live entry has an
    /// unknowable future and is conservatively accounted as unknown
    /// residency from its fill to the end of simulation.
    pub fn finish(&mut self, end_cycle: u64) {
        for e in 0..self.live.len() {
            if let Some(l) = self.live[e].take() {
                let span = end_cycle.saturating_sub(l.write_cycle) * u64::from(self.bits_per_entry);
                self.unknown_bit_cycles += span;
                self.occupied_bit_cycles += span;
                if let Some(q) = self.quantizer.as_mut() {
                    q.record_span(l.write_cycle, end_cycle, self.bits_per_entry);
                }
            }
        }
    }

    /// The quantized per-window AVF series, if quantization was enabled.
    pub fn window_series(&self, cycles: u64) -> Vec<f64> {
        let total_bits = self.live.len() as u64 * u64::from(self.bits_per_entry);
        self.quantizer
            .as_ref()
            .map(|q| q.series(total_bits, cycles))
            .unwrap_or_default()
    }

    /// Produces final statistics for a run of `cycles` total cycles, with
    /// ACE event rates spread over the structure's read/write port counts
    /// (the pAVF of a single port bit, §4).
    pub fn stats(&self, cycles: u64, read_ports: u32, write_ports: u32) -> StructureStats {
        let total_bits = self.live.len() as u64 * u64::from(self.bits_per_entry);
        let denom = (total_bits * cycles).max(1) as f64;
        let avf = ((self.ace_bit_cycles + self.unknown_bit_cycles) as f64 / denom).min(1.0);
        let c = cycles.max(1) as f64 * f64::from(read_ports.max(1));
        let cw = cycles.max(1) as f64 * f64::from(write_ports.max(1));
        StructureStats {
            name: self.name.clone(),
            entries: self.live.len(),
            bits_per_entry: self.bits_per_entry,
            reads: self.reads,
            writes: self.writes,
            ace_reads: self.ace_reads,
            ace_writes: self.ace_writes,
            ace_bit_cycles: self.ace_bit_cycles,
            unknown_bit_cycles: self.unknown_bit_cycles,
            occupied_bit_cycles: self.occupied_bit_cycles,
            avf,
            port: PortAvf {
                read: (self.ace_reads as f64 / c).min(1.0),
                write: (self.ace_writes as f64 / cw).min(1.0),
            },
            fields: Vec::new(),
            windows: self.window_series(cycles),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ace_residency_spans_fill_to_last_ace_read() {
        let mut t = LifetimeTracker::new("s", 2, 8);
        t.write(0, 10, Aceness::Ace);
        t.read(0, 14, Aceness::Ace);
        t.read(0, 20, Aceness::Ace);
        t.dealloc(0, 30);
        let s = t.stats(100, 1, 1);
        // (20 - 10) * 8 bits
        assert_eq!(s.ace_bit_cycles, 80);
        assert_eq!(s.unknown_bit_cycles, 0);
        // AVF = 80 / (16 bits * 100 cycles)
        assert!((s.avf - 80.0 / 1600.0).abs() < 1e-12);
    }

    #[test]
    fn unace_data_contributes_nothing() {
        let mut t = LifetimeTracker::new("s", 1, 4);
        t.write(0, 0, Aceness::UnAce);
        t.read(0, 5, Aceness::Ace);
        t.dealloc(0, 10);
        let s = t.stats(10, 1, 1);
        assert_eq!(s.ace_bit_cycles, 0);
        assert_eq!(s.ace_reads, 0);
        assert_eq!(s.reads, 1);
    }

    #[test]
    fn dead_reader_does_not_extend_residency() {
        let mut t = LifetimeTracker::new("s", 1, 4);
        t.write(0, 0, Aceness::Ace);
        t.read(0, 4, Aceness::Ace);
        t.read(0, 9, Aceness::UnAce); // dead consumer
        t.dealloc(0, 12);
        let s = t.stats(12, 1, 1);
        assert_eq!(s.ace_bit_cycles, 16, "span ends at cycle 4, not 9");
        assert_eq!(s.ace_reads, 1);
    }

    #[test]
    fn never_read_entry_has_zero_residency() {
        let mut t = LifetimeTracker::new("s", 1, 4);
        t.write(0, 0, Aceness::Ace);
        t.dealloc(0, 50);
        let s = t.stats(50, 1, 1);
        assert_eq!(s.ace_bit_cycles, 0);
    }

    #[test]
    fn overwrite_implicitly_deallocates() {
        let mut t = LifetimeTracker::new("s", 1, 2);
        t.write(0, 0, Aceness::Ace);
        t.read(0, 6, Aceness::Ace);
        t.write(0, 8, Aceness::Ace); // implicit dealloc of the first fill
        t.read(0, 9, Aceness::Ace);
        t.dealloc(0, 10);
        let s = t.stats(10, 1, 1);
        // First: (6-0)*2 = 12; second: (9-8)*2 = 2.
        assert_eq!(s.ace_bit_cycles, 14);
        assert_eq!(s.writes, 2);
    }

    #[test]
    fn unknown_data_accumulates_unknown_cycles() {
        let mut t = LifetimeTracker::new("s", 1, 2);
        t.write(0, 0, Aceness::Unknown);
        t.read(0, 10, Aceness::Ace);
        t.dealloc(0, 12);
        let s = t.stats(12, 1, 1);
        assert_eq!(s.unknown_bit_cycles, 20);
        assert_eq!(s.ace_bit_cycles, 0);
        assert!(s.avf > 0.0, "unknown residency is conservative ACE");
    }

    #[test]
    fn finish_closes_live_entries_as_unknown() {
        let mut t = LifetimeTracker::new("s", 2, 1);
        t.write(0, 5, Aceness::Ace);
        t.write(1, 7, Aceness::UnAce);
        t.finish(10);
        let s = t.stats(10, 1, 1);
        assert_eq!(s.unknown_bit_cycles, 5 + 3);
    }

    #[test]
    fn port_avf_rates() {
        let mut t = LifetimeTracker::new("s", 4, 8);
        for c in 0..10 {
            t.write((c % 4) as usize, c, Aceness::Ace);
            t.read((c % 4) as usize, c, Aceness::Ace);
        }
        let s = t.stats(20, 1, 1);
        assert!((s.port.read - 0.5).abs() < 1e-12);
        assert!((s.port.write - 0.5).abs() < 1e-12);
    }

    #[test]
    fn port_avf_clamped_to_one() {
        let mut t = LifetimeTracker::new("s", 4, 8);
        for c in 0..100 {
            t.write((c % 4) as usize, c, Aceness::Ace);
            t.read((c % 4) as usize, c, Aceness::Ace);
        }
        let s = t.stats(10, 1, 1);
        assert_eq!(s.port.read, 1.0);
        assert_eq!(s.port.write, 1.0);
    }

    #[test]
    fn avf_never_exceeds_one() {
        let mut t = LifetimeTracker::new("s", 1, 1);
        t.write(0, 0, Aceness::Ace);
        t.read(0, 1000, Aceness::Ace);
        t.dealloc(0, 1000);
        let s = t.stats(10, 1, 1); // inconsistent cycle count on purpose
        assert!(s.avf <= 1.0);
    }
}
