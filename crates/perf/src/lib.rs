//! Trace-driven out-of-order performance model with ACE instrumentation.
//!
//! This crate is the "performance model" half of the paper's hybrid flow
//! (§3.2, §5.1 steps 1–2): it runs workload traces through a simplified
//! out-of-order pipeline whose storage structures (fetch buffer, uop queue,
//! RAT, issue queue, ROB, physical register file, load/store queues, TLBs,
//! BTB, …) are instrumented with ACE lifetime analysis. Its outputs are:
//!
//! - **Structure AVFs** via Equation 3 — ACE residency over bit-cycles.
//! - **Port AVFs** (the paper's key input to SART): for each structure,
//!   `pAVF_R` = ACE reads / cycles and `pAVF_W` = ACE writes / cycles.
//!
//! Three refinements from the paper are implemented:
//!
//! - [`ace`] — architectural ACE analysis of the dynamic trace itself
//!   (NOPs, hints, and transitively dead code are un-ACE).
//! - [`hd1`] — hamming-distance-1 analysis for address-based (CAM)
//!   structures, after Biswas et al. \[2\].
//! - [`bitfield`] — "Bit Field Analysis" (§5.1): control structures whose
//!   entries pack per-class fields are split so each field gets its own,
//!   less conservative, ACE accounting.

pub mod ace;
pub mod bitfield;
pub mod hd1;
pub mod lifetime;
pub mod pipeline;
pub mod report;
pub mod structures;
pub mod window;

pub use ace::{analyze_trace, Aceness, TraceAce};
pub use pipeline::{run_ace, PerfConfig};
pub use report::{AceReport, PortAvf, StructureStats, SuiteReport};
pub use window::{Quantizer, WindowStats};
