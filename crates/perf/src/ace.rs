//! Architectural ACE analysis of a dynamic trace.
//!
//! ACE analysis classifies every dynamic instruction as ACE (its execution
//! is necessary for architecturally correct execution) or un-ACE
//! (Mukherjee et al. \[1\]). The first-order un-ACE sources modeled here:
//!
//! - **NOPs and performance hints** (`Instr::hint`) — never ACE.
//! - **Dynamically dead code** — a value producer whose result is
//!   overwritten before any read is *first-level* dead; a producer whose
//!   only consumers are themselves dead is *transitively* dead. Both are
//!   un-ACE.
//! - **End-of-trace unknowns** — values still live when the trace ends have
//!   unknowable consumers; they are conservatively treated as ACE but
//!   reported separately (the "unknown" component of Equation 2/3).
//!
//! Stores and taken/not-taken branches are always ACE here (wrong-path
//! analysis is beyond the model's scope, matching the paper's conservative
//! assumptions).

use seqavf_workloads::trace::{OpClass, Trace, NUM_REGS};

/// Classification of a dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Aceness {
    /// Necessary for architecturally correct execution.
    Ace,
    /// Provably unnecessary (dead, NOP, hint).
    UnAce,
    /// Liveness unknowable at trace end; treated as ACE (conservative) but
    /// accounted separately.
    Unknown,
}

impl Aceness {
    /// Whether this classification counts toward ACE residency
    /// (conservatively including unknowns).
    pub fn counts_as_ace(self) -> bool {
        matches!(self, Aceness::Ace | Aceness::Unknown)
    }
}

/// Per-instruction ACE classification for a trace.
#[derive(Debug, Clone)]
pub struct TraceAce {
    ace: Vec<Aceness>,
}

impl TraceAce {
    /// Classification of instruction `i` (program order).
    pub fn of(&self, i: usize) -> Aceness {
        self.ace[i]
    }

    /// All classifications in program order.
    pub fn all(&self) -> &[Aceness] {
        &self.ace
    }

    /// Fraction of instructions classified ACE or unknown.
    pub fn ace_fraction(&self) -> f64 {
        if self.ace.is_empty() {
            return 0.0;
        }
        self.ace.iter().filter(|a| a.counts_as_ace()).count() as f64 / self.ace.len() as f64
    }

    /// Fraction of instructions classified unknown.
    pub fn unknown_fraction(&self) -> f64 {
        if self.ace.is_empty() {
            return 0.0;
        }
        self.ace.iter().filter(|&&a| a == Aceness::Unknown).count() as f64 / self.ace.len() as f64
    }
}

/// Runs backward dead-code ACE analysis over a trace.
///
/// Two backward passes:
/// 1. Build def-use chains per architectural register.
/// 2. Propagate liveness: an instruction is live if it has an architectural
///    side effect (store, branch) or any consumer of its result is live.
pub fn analyze_trace(trace: &Trace) -> TraceAce {
    let instrs = trace.instrs();
    let n = instrs.len();
    let mut ace = vec![Aceness::UnAce; n];

    // consumers[i] = indices of instructions that read i's dst before it is
    // overwritten. `open` marks values never consumed nor overwritten by
    // trace end.
    let mut consumers: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut open = vec![false; n];
    // last_def[r] = index of the live definition of register r.
    let mut last_def: [Option<u32>; NUM_REGS as usize] = [None; NUM_REGS as usize];

    for (i, ins) in instrs.iter().enumerate() {
        for src in ins.sources() {
            if let Some(def) = last_def[src.index()] {
                consumers[def as usize].push(i as u32);
            }
        }
        if let Some(dst) = ins.dst {
            last_def[dst.index()] = Some(i as u32);
        }
    }
    for def in last_def.into_iter().flatten() {
        open[def as usize] = true;
    }

    // Backward liveness. Processing in reverse program order suffices
    // because consumers always come after producers.
    for i in (0..n).rev() {
        let ins = &instrs[i];
        if ins.hint || ins.op == OpClass::Nop {
            ace[i] = Aceness::UnAce;
            continue;
        }
        let side_effect = matches!(ins.op, OpClass::Store | OpClass::Branch);
        if side_effect {
            ace[i] = Aceness::Ace;
            continue;
        }
        if ins.dst.is_none() {
            // No destination and no side effect: nothing depends on it.
            ace[i] = Aceness::UnAce;
            continue;
        }
        let any_live_consumer = consumers[i]
            .iter()
            .any(|&c| ace[c as usize].counts_as_ace());
        ace[i] = if any_live_consumer {
            Aceness::Ace
        } else if open[i] {
            // Never consumed, never overwritten: future use is unknowable.
            Aceness::Unknown
        } else {
            Aceness::UnAce
        };
    }

    TraceAce { ace }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqavf_workloads::trace::{Instr, Reg, TraceBuilder};

    fn alu(dst: u8, a: u8, b: Option<u8>) -> Instr {
        Instr::alu(OpClass::IntAlu, Reg::new(dst), Reg::new(a), b.map(Reg::new))
    }

    #[test]
    fn nops_and_hints_are_unace() {
        let mut tb = TraceBuilder::new("t");
        tb.push(Instr::nop());
        let mut prefetch = Instr::load(Reg::new(0), None, 0x10);
        prefetch.hint = true;
        tb.push(prefetch);
        let a = analyze_trace(&tb.finish());
        assert_eq!(a.of(0), Aceness::UnAce);
        assert_eq!(a.of(1), Aceness::UnAce);
    }

    #[test]
    fn store_consumer_makes_producer_ace() {
        let mut tb = TraceBuilder::new("t");
        tb.push(alu(1, 2, None)); // r1 = f(r2)
        tb.push(Instr::store(Reg::new(1), None, 0x40)); // store r1
        let a = analyze_trace(&tb.finish());
        assert_eq!(a.of(0), Aceness::Ace);
        assert_eq!(a.of(1), Aceness::Ace);
    }

    #[test]
    fn overwritten_value_is_dead() {
        let mut tb = TraceBuilder::new("t");
        tb.push(alu(1, 2, None)); // r1 = f(r2)   (dead: clobbered next)
        tb.push(alu(1, 3, None)); // r1 = f(r3)
        tb.push(Instr::store(Reg::new(1), None, 0x40));
        let a = analyze_trace(&tb.finish());
        assert_eq!(a.of(0), Aceness::UnAce);
        assert_eq!(a.of(1), Aceness::Ace);
    }

    #[test]
    fn transitively_dead_chain() {
        let mut tb = TraceBuilder::new("t");
        tb.push(alu(1, 2, None)); // r1 = ...
        tb.push(alu(3, 1, None)); // r3 = f(r1)  (only consumer of r1)
        tb.push(alu(3, 2, None)); // r3 clobbered without read -> instr 1 dead
        tb.push(Instr::store(Reg::new(3), None, 0x8));
        tb.push(alu(1, 2, None)); // clobber r1 so instr 0 is not open-at-end
        let a = analyze_trace(&tb.finish());
        assert_eq!(a.of(1), Aceness::UnAce, "direct dead");
        assert_eq!(a.of(0), Aceness::UnAce, "transitively dead");
        assert_eq!(a.of(2), Aceness::Ace);
        assert_eq!(a.of(4), Aceness::Unknown, "open at trace end");
    }

    #[test]
    fn value_open_at_trace_end_is_unknown() {
        let mut tb = TraceBuilder::new("t");
        tb.push(alu(1, 2, None));
        let a = analyze_trace(&tb.finish());
        assert_eq!(a.of(0), Aceness::Unknown);
        assert!(a.of(0).counts_as_ace());
        assert!((a.unknown_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn branches_are_ace() {
        let mut tb = TraceBuilder::new("t");
        tb.push(alu(1, 2, None));
        tb.push(Instr::branch(Reg::new(1), true));
        let a = analyze_trace(&tb.finish());
        assert_eq!(a.of(1), Aceness::Ace);
        assert_eq!(a.of(0), Aceness::Ace, "feeds a branch condition");
    }

    #[test]
    fn ace_fraction_counts_unknown() {
        let mut tb = TraceBuilder::new("t");
        tb.push(Instr::nop());
        tb.push(alu(1, 2, None)); // unknown (open)
        tb.push(Instr::store(Reg::new(5), None, 0)); // ace
        let a = analyze_trace(&tb.finish());
        assert!((a.ace_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace() {
        let a = analyze_trace(&Trace::new("e", vec![]));
        assert_eq!(a.ace_fraction(), 0.0);
        assert_eq!(a.all().len(), 0);
    }

    #[test]
    fn load_feeding_dead_chain_is_dead() {
        let mut tb = TraceBuilder::new("t");
        tb.push(Instr::load(Reg::new(4), None, 0x100)); // r4 = [mem]
        tb.push(alu(4, 1, None)); // clobber r4
        tb.push(Instr::store(Reg::new(4), None, 0x108));
        let a = analyze_trace(&tb.finish());
        assert_eq!(a.of(0), Aceness::UnAce);
    }
}
