//! Bit-field analysis (§5.1).
//!
//! "Many structures, especially control structures, tended to hold bits
//! that were used in different ways … an entry being broken into various
//! bit fields representing different pre-coded information. Not all the bit
//! fields were ACE simultaneously, but rather depended on the instruction,
//! data type, or other micro-architectural details. As a result, we modeled
//! each bit field of these structures as a separate ACE structure."
//!
//! This module defines per-structure field layouts keyed on instruction
//! class: when an entry is written for an instruction that does not use a
//! field, that field's write is un-ACE, yielding strictly less conservative
//! per-field port AVFs.

use crate::ace::Aceness;
use crate::lifetime::LifetimeTracker;
use crate::report::FieldStats;
use seqavf_workloads::trace::{Instr, OpClass};

/// Which instruction classes make a field ACE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldUse {
    /// Always carries live information.
    Always,
    /// Only when the instruction produces a register result.
    HasDest,
    /// Only when the instruction reads registers.
    HasSources,
    /// Only for loads and stores.
    Memory,
    /// Only for floating-point operations.
    FloatingPoint,
    /// Only for branches.
    Branch,
}

impl FieldUse {
    /// Whether the field is live for `instr`.
    pub fn applies(self, instr: &Instr) -> bool {
        match self {
            FieldUse::Always => true,
            FieldUse::HasDest => instr.dst.is_some(),
            FieldUse::HasSources => instr.sources().next().is_some(),
            FieldUse::Memory => instr.op.is_mem(),
            FieldUse::FloatingPoint => instr.op.is_fp(),
            FieldUse::Branch => instr.op == OpClass::Branch,
        }
    }
}

/// One field of a control structure's entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldSpec {
    /// Field name.
    pub name: &'static str,
    /// Field width in bits.
    pub bits: u32,
    /// Liveness condition.
    pub used: FieldUse,
}

/// The field layout for a control structure, or `None` if the structure has
/// no defined layout (bit-field analysis then leaves it unrefined).
pub fn layout(structure: &str) -> Option<Vec<FieldSpec>> {
    let f = |name, bits, used| FieldSpec { name, bits, used };
    match structure {
        "rob" => Some(vec![
            f("opcode", 10, FieldUse::Always),
            f("seqnum", 8, FieldUse::Always),
            f("dest_tag", 8, FieldUse::HasDest),
            f("src_tags", 16, FieldUse::HasSources),
            f("mem_info", 18, FieldUse::Memory),
            f("fp_flags", 8, FieldUse::FloatingPoint),
            f("branch_ctl", 8, FieldUse::Branch),
        ]),
        "issue_queue" => Some(vec![
            f("opcode", 10, FieldUse::Always),
            f("dest_tag", 8, FieldUse::HasDest),
            f("src_tags", 16, FieldUse::HasSources),
            f("mem_info", 12, FieldUse::Memory),
            f("imm", 14, FieldUse::Always),
        ]),
        "csr_bank" => Some(vec![
            f("value", 24, FieldUse::Always),
            f("dirty_flags", 8, FieldUse::HasDest),
        ]),
        _ => None,
    }
}

/// Per-field ACE accounting for one control structure.
#[derive(Debug, Clone)]
pub struct BitFieldAnalyzer {
    fields: Vec<(FieldSpec, LifetimeTracker)>,
}

impl BitFieldAnalyzer {
    /// Creates an analyzer for `structure` with `entries` entries, or
    /// `None` when no layout is defined.
    pub fn for_structure(structure: &str, entries: usize) -> Option<Self> {
        let specs = layout(structure)?;
        let fields = specs
            .into_iter()
            .map(|spec| {
                let t =
                    LifetimeTracker::new(format!("{structure}.{}", spec.name), entries, spec.bits);
                (spec, t)
            })
            .collect();
        Some(BitFieldAnalyzer { fields })
    }

    /// Records a write of `entry` for `instr`: fields the instruction does
    /// not use are written un-ACE.
    pub fn write(&mut self, entry: usize, cycle: u64, instr: &Instr, aceness: Aceness) {
        for (spec, t) in &mut self.fields {
            let a = if spec.used.applies(instr) {
                aceness
            } else {
                Aceness::UnAce
            };
            t.write(entry, cycle, a);
        }
    }

    /// Records a read of `entry`; per-field ACE-ness was fixed at write
    /// time, so the same reader classification is applied to every field.
    pub fn read(&mut self, entry: usize, cycle: u64, reader: Aceness) {
        for (_, t) in &mut self.fields {
            t.read(entry, cycle, reader);
        }
    }

    /// Deallocates `entry`.
    pub fn dealloc(&mut self, entry: usize, cycle: u64) {
        for (_, t) in &mut self.fields {
            t.dealloc(entry, cycle);
        }
    }

    /// Ends the run and produces per-field statistics, spreading event
    /// rates over the structure's port counts.
    pub fn finish(
        mut self,
        end_cycle: u64,
        cycles: u64,
        read_ports: u32,
        write_ports: u32,
    ) -> Vec<FieldStats> {
        self.fields
            .iter_mut()
            .map(|(spec, t)| {
                t.finish(end_cycle);
                let s = t.stats(cycles, read_ports, write_ports);
                FieldStats {
                    name: spec.name.to_owned(),
                    bits: spec.bits,
                    avf: s.avf,
                    port: s.port,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqavf_workloads::trace::Reg;

    fn int_alu() -> Instr {
        Instr::alu(OpClass::IntAlu, Reg::new(1), Reg::new(2), None)
    }

    fn fp_op() -> Instr {
        Instr::alu(OpClass::FpMul, Reg::new(1), Reg::new(2), Some(Reg::new(3)))
    }

    #[test]
    fn layouts_cover_entry_width_reasonably() {
        for name in ["rob", "issue_queue", "csr_bank"] {
            let fields = layout(name).unwrap();
            let total: u32 = fields.iter().map(|f| f.bits).sum();
            assert!(total > 0);
            let spec = crate::structures::spec(name).unwrap();
            assert!(
                total <= spec.bits_per_entry,
                "{name}: fields {total} > entry {}",
                spec.bits_per_entry
            );
        }
        assert!(layout("prf").is_none());
    }

    #[test]
    fn field_use_predicates() {
        assert!(FieldUse::Always.applies(&int_alu()));
        assert!(FieldUse::HasDest.applies(&int_alu()));
        assert!(!FieldUse::Memory.applies(&int_alu()));
        assert!(FieldUse::FloatingPoint.applies(&fp_op()));
        assert!(!FieldUse::FloatingPoint.applies(&int_alu()));
        assert!(FieldUse::Branch.applies(&Instr::branch(Reg::new(0), true)));
        assert!(!FieldUse::HasDest.applies(&Instr::nop()));
    }

    #[test]
    fn unused_fields_get_unace_writes() {
        let mut a = BitFieldAnalyzer::for_structure("rob", 4).unwrap();
        // An integer ALU op: fp_flags / mem_info / branch_ctl fields unused.
        a.write(0, 0, &int_alu(), Aceness::Ace);
        a.read(0, 5, Aceness::Ace);
        a.dealloc(0, 6);
        let fields = a.finish(10, 10, 1, 1);
        let by_name = |n: &str| fields.iter().find(|f| f.name == n).unwrap();
        assert!(by_name("opcode").avf > 0.0);
        assert!(by_name("dest_tag").avf > 0.0);
        assert_eq!(by_name("fp_flags").avf, 0.0);
        assert_eq!(by_name("mem_info").avf, 0.0);
        assert_eq!(by_name("branch_ctl").avf, 0.0);
    }

    #[test]
    fn refinement_is_less_conservative_than_aggregate() {
        // Aggregate tracker: everything ACE. Bit-field: only live fields.
        let mut agg = LifetimeTracker::new("rob", 4, 76);
        let mut bf = BitFieldAnalyzer::for_structure("rob", 4).unwrap();
        for c in 0..20u64 {
            let i = int_alu();
            agg.write((c % 4) as usize, c, Aceness::Ace);
            agg.read((c % 4) as usize, c, Aceness::Ace);
            bf.write((c % 4) as usize, c, &i, Aceness::Ace);
            bf.read((c % 4) as usize, c, Aceness::Ace);
        }
        agg.finish(20);
        let agg_stats = agg.stats(40, 1, 1);
        let fields = bf.finish(20, 40, 1, 1);
        let total_bits: f64 = fields.iter().map(|f| f64::from(f.bits)).sum();
        let weighted_read: f64 = fields
            .iter()
            .map(|f| f.port.read * f64::from(f.bits))
            .sum::<f64>()
            / total_bits;
        assert!(
            weighted_read < agg_stats.port.read,
            "bit-field read pAVF {weighted_read} should refine aggregate {}",
            agg_stats.port.read
        );
    }

    #[test]
    fn unknown_structure_has_no_analyzer() {
        assert!(BitFieldAnalyzer::for_structure("prf", 8).is_none());
    }
}
