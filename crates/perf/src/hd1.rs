//! Hamming-distance-1 analysis for address-based structures.
//!
//! Following Biswas et al. \[2\], the ACE-ness of a *tag* bit in a CAM-style
//! structure (TLB, BTB, load/store queue match logic) is not determined by
//! data lifetime but by whether flipping that single bit would change a
//! match outcome:
//!
//! - **False match** — flipping bit *b* of a resident tag makes it equal to
//!   a looked-up address (the resident tag is at hamming distance 1 from
//!   the lookup): bit *b* of that entry is ACE for the lookup.
//! - **False mismatch** — flipping any bit of the tag that *should* match a
//!   lookup causes a miss: every tag bit of the matching entry is ACE for
//!   an ACE lookup.
//!
//! The tracker aggregates these per-lookup bit events into an *HD-1 factor*
//! in `[0, 1]`: the fraction of tag-bit observations that were actually
//! ACE. Without this analysis every tag bit would be conservatively ACE
//! (factor 1.0).

use std::collections::HashMap;

use crate::ace::Aceness;

/// Hamming-distance-1 tracker for one CAM structure.
#[derive(Debug, Clone)]
pub struct Hd1Tracker {
    tag_bits: u32,
    /// Resident tags → entry index.
    resident: HashMap<u64, usize>,
    /// Tag-bit events that were ACE under HD-1 reasoning.
    ace_bit_events: u64,
    /// Total tag-bit observations (lookups × resident tag bits examined).
    total_bit_events: u64,
    lookups: u64,
}

impl Hd1Tracker {
    /// Creates a tracker for tags of `tag_bits` bits.
    pub fn new(tag_bits: u32) -> Self {
        Hd1Tracker {
            tag_bits: tag_bits.min(63),
            resident: HashMap::new(),
            ace_bit_events: 0,
            total_bit_events: 0,
            lookups: 0,
        }
    }

    /// Inserts (or replaces) a resident tag for `entry`.
    pub fn insert(&mut self, entry: usize, tag: u64) {
        self.resident.retain(|_, e| *e != entry);
        self.resident.insert(self.mask(tag), entry);
    }

    /// Removes the tag held by `entry`, if any.
    pub fn remove(&mut self, entry: usize) {
        self.resident.retain(|_, e| *e != entry);
    }

    /// Performs a lookup of `tag` by a consumer with classification
    /// `reader`, accumulating HD-1 ACE bit events.
    ///
    /// Returns whether the lookup hit.
    pub fn lookup(&mut self, tag: u64, reader: Aceness) -> bool {
        let tag = self.mask(tag);
        self.lookups += 1;
        let bits = u64::from(self.tag_bits);
        // Every resident entry's tag bits are observed by the match.
        self.total_bit_events += bits * self.resident.len() as u64;
        if !reader.counts_as_ace() {
            return self.resident.contains_key(&tag);
        }
        let mut hit = false;
        if self.resident.contains_key(&tag) {
            // False-mismatch: all bits of the matching tag are ACE.
            self.ace_bit_events += bits;
            hit = true;
        }
        // False-match: resident tags at hamming distance exactly 1.
        for b in 0..self.tag_bits {
            let probe = tag ^ (1u64 << b);
            if self.resident.contains_key(&probe) {
                self.ace_bit_events += 1;
            }
        }
        hit
    }

    /// Number of lookups observed.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// The HD-1 factor: fraction of observed tag-bit events that were ACE.
    /// Returns 1.0 (fully conservative) when nothing was observed.
    pub fn factor(&self) -> f64 {
        if self.total_bit_events == 0 {
            1.0
        } else {
            (self.ace_bit_events as f64 / self.total_bit_events as f64).min(1.0)
        }
    }

    fn mask(&self, tag: u64) -> u64 {
        if self.tag_bits >= 63 {
            tag
        } else {
            tag & ((1u64 << self.tag_bits) - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tracker_is_conservative() {
        let t = Hd1Tracker::new(16);
        assert_eq!(t.factor(), 1.0);
    }

    #[test]
    fn exact_hit_marks_all_bits_ace() {
        let mut t = Hd1Tracker::new(8);
        t.insert(0, 0xAB);
        assert!(t.lookup(0xAB, Aceness::Ace));
        // 8 ACE bits out of 8 observed.
        assert_eq!(t.factor(), 1.0);
    }

    #[test]
    fn miss_far_away_contributes_no_ace_bits() {
        let mut t = Hd1Tracker::new(8);
        t.insert(0, 0b0000_0000);
        assert!(!t.lookup(0b0000_1111, Aceness::Ace)); // HD = 4
        assert_eq!(t.factor(), 0.0);
    }

    #[test]
    fn hd1_neighbour_contributes_one_bit() {
        let mut t = Hd1Tracker::new(8);
        t.insert(0, 0b0000_0001);
        assert!(!t.lookup(0b0000_0000, Aceness::Ace)); // HD = 1
        assert!((t.factor() - 1.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn dead_lookup_counts_observation_but_no_ace() {
        let mut t = Hd1Tracker::new(8);
        t.insert(0, 0x10);
        t.lookup(0x10, Aceness::UnAce);
        assert_eq!(t.factor(), 0.0);
    }

    #[test]
    fn replacement_and_removal() {
        let mut t = Hd1Tracker::new(8);
        t.insert(0, 0x10);
        t.insert(0, 0x20); // replaces entry 0's tag
        assert!(!t.lookup(0x10, Aceness::Ace));
        assert!(t.lookup(0x20, Aceness::Ace));
        t.remove(0);
        assert!(!t.lookup(0x20, Aceness::Ace));
    }

    #[test]
    fn factor_between_zero_and_one() {
        let mut t = Hd1Tracker::new(12);
        for i in 0..10u64 {
            t.insert(i as usize, i * 17);
        }
        for i in 0..50u64 {
            t.lookup(i * 13, Aceness::Ace);
        }
        let f = t.factor();
        assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn tags_are_masked_to_width() {
        let mut t = Hd1Tracker::new(4);
        t.insert(0, 0xF3); // masked to 0x3
        assert!(t.lookup(0x3, Aceness::Ace));
    }
}
