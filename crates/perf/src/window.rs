//! Quantized (time-windowed) AVF tracking.
//!
//! The paper's related work (§2.1) cites *Quantized AVF* — "a means of
//! capturing vulnerability variations over small windows of time" (Biswas
//! et al., SELSE 2009). A single scalar AVF hides phase behaviour: a
//! structure can be idle for millions of cycles and saturated during a
//! burst, which matters when sizing detection or checkpoint intervals.
//!
//! [`Quantizer`] distributes each ACE residency span across fixed-size
//! cycle windows, yielding a per-window AVF series whose weighted mean
//! equals the scalar Equation 3 AVF.

use serde::{Deserialize, Serialize};

/// Accumulates ACE bit-cycles into fixed-size windows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Quantizer {
    window: u64,
    /// ACE bit-cycles per window.
    acc: Vec<f64>,
}

impl Quantizer {
    /// Creates a quantizer with the given window size in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: u64) -> Self {
        assert!(window > 0, "window size must be positive");
        Quantizer {
            window,
            acc: Vec::new(),
        }
    }

    /// Window size in cycles.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Records an ACE residency span `[start, end)` of `bits` bits,
    /// splitting the bit-cycles across the windows it overlaps.
    pub fn record_span(&mut self, start: u64, end: u64, bits: u32) {
        if end <= start || bits == 0 {
            return;
        }
        let first = (start / self.window) as usize;
        let last = ((end - 1) / self.window) as usize;
        if self.acc.len() <= last {
            self.acc.resize(last + 1, 0.0);
        }
        for w in first..=last {
            let w_start = w as u64 * self.window;
            let w_end = w_start + self.window;
            let overlap = end.min(w_end) - start.max(w_start);
            self.acc[w] += overlap as f64 * f64::from(bits);
        }
    }

    /// Produces the per-window AVF series for a structure of `total_bits`
    /// bits over `total_cycles` simulated cycles. The final (partial)
    /// window is normalized by its actual length.
    pub fn series(&self, total_bits: u64, total_cycles: u64) -> Vec<f64> {
        if total_bits == 0 || total_cycles == 0 {
            return Vec::new();
        }
        let n_windows = total_cycles.div_ceil(self.window) as usize;
        (0..n_windows)
            .map(|w| {
                let w_start = w as u64 * self.window;
                let len = self.window.min(total_cycles - w_start);
                let denom = (total_bits * len) as f64;
                let ace = self.acc.get(w).copied().unwrap_or(0.0);
                (ace / denom).min(1.0)
            })
            .collect()
    }

    /// The length-weighted mean of [`Quantizer::series`] — equal to the
    /// scalar Equation 3 AVF over the same spans.
    pub fn mean(&self, total_bits: u64, total_cycles: u64) -> f64 {
        if total_bits == 0 || total_cycles == 0 {
            return 0.0;
        }
        let total_ace: f64 = self.acc.iter().sum();
        (total_ace / (total_bits * total_cycles) as f64).min(1.0)
    }
}

/// Summary statistics over a windowed AVF series — the "vulnerability
/// variation" the quantized view exposes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowStats {
    /// Minimum window AVF.
    pub min: f64,
    /// Maximum window AVF.
    pub max: f64,
    /// Unweighted mean window AVF.
    pub mean: f64,
    /// Peak-to-mean ratio (1.0 = perfectly flat behaviour).
    pub burstiness: f64,
}

impl WindowStats {
    /// Computes statistics over a series; `None` for an empty series.
    pub fn of(series: &[f64]) -> Option<WindowStats> {
        if series.is_empty() {
            return None;
        }
        let min = series.iter().copied().fold(1.0f64, f64::min);
        let max = series.iter().copied().fold(0.0f64, f64::max);
        let mean = series.iter().sum::<f64>() / series.len() as f64;
        Some(WindowStats {
            min,
            max,
            mean,
            burstiness: if mean == 0.0 { 1.0 } else { max / mean },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_within_one_window() {
        let mut q = Quantizer::new(100);
        q.record_span(10, 60, 2);
        let s = q.series(2, 200);
        assert_eq!(s.len(), 2);
        assert!((s[0] - 100.0 / 200.0).abs() < 1e-12);
        assert_eq!(s[1], 0.0);
    }

    #[test]
    fn span_splits_across_windows() {
        let mut q = Quantizer::new(100);
        // 50 cycles in window 0, 50 in window 1.
        q.record_span(50, 150, 1);
        let s = q.series(1, 200);
        assert!((s[0] - 0.5).abs() < 1e-12);
        assert!((s[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn partial_final_window_normalized() {
        let mut q = Quantizer::new(100);
        q.record_span(200, 250, 1);
        // 250 total cycles: the third window is 50 cycles long and fully
        // ACE.
        let s = q.series(1, 250);
        assert_eq!(s.len(), 3);
        assert!((s[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_matches_equation_three() {
        let mut q = Quantizer::new(64);
        q.record_span(0, 100, 4);
        q.record_span(300, 350, 4);
        let total_bits = 8;
        let cycles = 400;
        let expected = ((100 + 50) * 4) as f64 / (total_bits * cycles) as f64;
        assert!((q.mean(total_bits, cycles) - expected).abs() < 1e-12);
    }

    #[test]
    fn empty_and_degenerate_spans() {
        let mut q = Quantizer::new(10);
        q.record_span(5, 5, 1);
        q.record_span(7, 3, 1);
        q.record_span(0, 5, 0);
        assert_eq!(q.mean(4, 100), 0.0);
        assert!(q.series(0, 100).is_empty());
        assert!(q.series(4, 0).is_empty());
    }

    #[test]
    fn stats_capture_burstiness() {
        let flat = WindowStats::of(&[0.2, 0.2, 0.2]).unwrap();
        assert!((flat.burstiness - 1.0).abs() < 1e-12);
        let bursty = WindowStats::of(&[0.0, 0.0, 0.6]).unwrap();
        assert!(bursty.burstiness > 2.9);
        assert_eq!(bursty.max, 0.6);
        assert_eq!(WindowStats::of(&[]), None);
    }

    #[test]
    #[should_panic(expected = "window size must be positive")]
    fn zero_window_panics() {
        let _ = Quantizer::new(0);
    }
}
