//! The trace-driven out-of-order pipeline model with ACE instrumentation.
//!
//! A deliberately compact model in the spirit of the paper's detailed
//! micro-architectural performance model (§3.2): wide in-order front end
//! (fetch → decode → rename) feeding an out-of-order scheduler with
//! per-class functional units and in-order retirement. Every storage
//! structure from [`crate::structures::catalog`] is instrumented with a
//! [`LifetimeTracker`]; CAM structures additionally run hamming-distance-1
//! analysis and control structures run bit-field analysis when enabled.
//!
//! The model's purpose is not cycle-exact performance prediction — it is to
//! produce *statistically plausible ACE event rates* (port AVFs) that vary
//! with workload behaviour, which is all the SART stage consumes.

use std::collections::{BTreeMap, VecDeque};

use crate::ace::{analyze_trace, Aceness};
use crate::bitfield::BitFieldAnalyzer;
use crate::hd1::Hd1Tracker;
use crate::lifetime::LifetimeTracker;
use crate::report::AceReport;
use crate::structures::{catalog, StructureClass};
use seqavf_workloads::trace::{OpClass, Trace};

/// Configuration of the performance model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerfConfig {
    /// Front-end width (fetch/decode/rename per cycle).
    pub width: usize,
    /// Maximum instructions issued per cycle.
    pub issue_width: usize,
    /// Maximum instructions retired per cycle.
    pub retire_width: usize,
    /// Enable bit-field analysis for control structures (§5.1).
    pub bitfield: bool,
    /// Enable hamming-distance-1 analysis for CAM structures.
    pub hd1: bool,
    /// Hard cycle cap (guards against pathological stalls).
    pub max_cycles: u64,
    /// Use conservative fill-to-evict residency for structure AVFs
    /// instead of the precise fill-to-last-read accounting (see
    /// [`crate::lifetime::LifetimeTracker::with_conservative_residency`]).
    pub conservative_residency: bool,
    /// Quantized-AVF window size in cycles; `None` disables windowed
    /// tracking (see [`crate::window`]).
    pub quantize_window: Option<u64>,
}

impl Default for PerfConfig {
    fn default() -> Self {
        PerfConfig {
            width: 4,
            issue_width: 6,
            retire_width: 4,
            bitfield: true,
            hd1: true,
            max_cycles: 50_000_000,
            conservative_residency: false,
            quantize_window: None,
        }
    }
}

/// Rotating slot allocator with an occupancy bound.
#[derive(Debug, Clone)]
struct SlotAlloc {
    cap: usize,
    next: usize,
    used: usize,
}

impl SlotAlloc {
    fn new(cap: usize) -> Self {
        SlotAlloc {
            cap,
            next: 0,
            used: 0,
        }
    }

    fn alloc(&mut self) -> Option<usize> {
        if self.used == self.cap {
            return None;
        }
        let s = self.next;
        self.next = (self.next + 1) % self.cap;
        self.used += 1;
        Some(s)
    }

    fn free(&mut self) {
        debug_assert!(self.used > 0);
        self.used -= 1;
    }

    fn has_space(&self) -> bool {
        self.used < self.cap
    }
}

#[derive(Debug, Clone, Copy)]
struct RobEntry {
    idx: u32,
    slot: usize,
}

#[derive(Debug, Clone, Copy)]
struct IqEntry {
    idx: u32,
    slot: usize,
    producers: [Option<u32>; 2],
    issued: bool,
}

/// Runs ACE analysis for one workload and returns the report.
pub fn run_ace(trace: &Trace, config: &PerfConfig) -> AceReport {
    run_ace_traced(trace, config, &seqavf_obs::Collector::disabled())
}

/// [`run_ace`] with observability: records one `ace.workload` span per
/// run, carrying the workload name and the simulated instruction/cycle
/// totals.
pub fn run_ace_traced(
    trace: &Trace,
    config: &PerfConfig,
    obs: &seqavf_obs::Collector,
) -> AceReport {
    let mut span = obs.span("ace.workload");
    let report = run_ace_impl(trace, config);
    span.field_str("workload", trace.name());
    span.field_u64("instructions", report.instructions);
    span.field_u64("cycles", report.cycles);
    obs.count("ace.instructions", report.instructions);
    obs.count("ace.cycles", report.cycles);
    report
}

fn run_ace_impl(trace: &Trace, config: &PerfConfig) -> AceReport {
    let ace = analyze_trace(trace);
    let n = trace.len();
    let instrs = trace.instrs();

    // Instrumentation.
    let mut trackers: BTreeMap<&'static str, LifetimeTracker> = BTreeMap::new();
    let mut hd1: BTreeMap<&'static str, Hd1Tracker> = BTreeMap::new();
    let mut bitfields: BTreeMap<&'static str, BitFieldAnalyzer> = BTreeMap::new();
    let specs = catalog();
    for spec in &specs {
        trackers.insert(
            spec.name,
            LifetimeTracker::new(spec.name, spec.entries, spec.bits_per_entry)
                .with_conservative_residency(config.conservative_residency)
                .with_quantizer(config.quantize_window),
        );
        // HD-1 tracking always runs so the simulated event stream (hits,
        // misses, fills) is identical whether or not the refinement factor
        // is applied; `config.hd1` only controls the final blend.
        if spec.class == StructureClass::Cam {
            hd1.insert(spec.name, Hd1Tracker::new(spec.bits_per_entry.min(48)));
        }
        if config.bitfield && spec.class == StructureClass::Control {
            if let Some(a) = BitFieldAnalyzer::for_structure(spec.name, spec.entries) {
                bitfields.insert(spec.name, a);
            }
        }
    }
    let cap = |name: &str| {
        specs
            .iter()
            .find(|s| s.name == name)
            .expect("known")
            .entries
    };

    // Pipeline state.
    let mut fetch_q: VecDeque<(u32, usize)> = VecDeque::new();
    let mut uop_q: VecDeque<(u32, usize)> = VecDeque::new();
    let mut iq: Vec<IqEntry> = Vec::new();
    let mut rob: VecDeque<RobEntry> = VecDeque::new();

    let mut fetch_slots = SlotAlloc::new(cap("fetch_buffer"));
    let mut uop_slots = SlotAlloc::new(cap("uop_queue"));
    let mut iq_slots = SlotAlloc::new(cap("issue_queue"));
    let mut rob_slots = SlotAlloc::new(cap("rob"));
    let mut prf_slots = SlotAlloc::new(cap("prf"));
    let mut fprf_slots = SlotAlloc::new(cap("fp_regfile"));
    let mut lq_slots = SlotAlloc::new(cap("load_queue"));
    let mut sq_slots = SlotAlloc::new(cap("store_queue"));
    let bypass_cap = cap("bypass");
    let ras_cap = cap("ras");
    let csr_cap = cap("csr_bank");
    let rat_entries = cap("rat");
    let fl_cap = cap("free_list");

    // Per-instruction bookkeeping.
    const NOT_DONE: u64 = u64::MAX;
    let mut done_cycle = vec![NOT_DONE; n];
    let mut prf_slot: Vec<Option<(bool, usize)>> = vec![None; n]; // (is_fp, slot)
    let mut lq_slot: Vec<Option<usize>> = vec![None; n];
    let mut sq_slot: Vec<Option<usize>> = vec![None; n];

    // Architectural last-writer table (for producer tracking at rename).
    let mut last_writer: Vec<Option<u32>> = vec![None; 64];

    let mut next_fetch: usize = 0;
    let mut retired: u64 = 0;
    let mut cycle: u64 = 0;
    // Front-end redirect stall: taken branches bubble the fetch stage
    // (longer when the BTB missed), keeping IPC and port activity in a
    // realistic band.
    let mut fetch_stall_until: u64 = 0;
    let mut bypass_rr = 0usize;
    let mut ras_rr = 0usize;
    let mut fl_rr = 0usize;
    let mut branch_count = 0u64;

    let ace_of = |i: u32| ace.of(i as usize);

    while (retired as usize) < n && cycle < config.max_cycles {
        // ---- Retire (in order) ----
        let mut n_ret = 0;
        while n_ret < config.retire_width {
            let Some(&front) = rob.front() else { break };
            if done_cycle[front.idx as usize] == NOT_DONE || done_cycle[front.idx as usize] > cycle
            {
                break;
            }
            rob.pop_front();
            let a = ace_of(front.idx);
            let t = trackers.get_mut("rob").expect("rob tracker");
            t.read(front.slot, cycle, a);
            t.dealloc(front.slot, cycle);
            if let Some(bf) = bitfields.get_mut("rob") {
                bf.read(front.slot, cycle, a);
                bf.dealloc(front.slot, cycle);
            }
            rob_slots.free();
            let i = front.idx as usize;
            if let Some((fp, slot)) = prf_slot[i] {
                // Architectural value read at retirement, then the physical
                // register is recycled.
                let name = if fp { "fp_regfile" } else { "prf" };
                let t = trackers.get_mut(name).expect("regfile tracker");
                t.read(slot, cycle, a);
                t.dealloc(slot, cycle);
                if fp {
                    fprf_slots.free();
                } else {
                    prf_slots.free();
                }
            }
            if let Some(slot) = lq_slot[i] {
                let t = trackers.get_mut("load_queue").expect("lq");
                t.read(slot, cycle, a);
                t.dealloc(slot, cycle);
                if let Some(h) = hd1.get_mut("load_queue") {
                    h.remove(slot);
                }
                lq_slots.free();
            }
            if let Some(slot) = sq_slot[i] {
                let t = trackers.get_mut("store_queue").expect("sq");
                t.read(slot, cycle, a);
                t.dealloc(slot, cycle);
                if let Some(h) = hd1.get_mut("store_queue") {
                    h.remove(slot);
                }
                sq_slots.free();
            }
            retired += 1;
            n_ret += 1;
            // Rare control-register traffic: status updates on a sparse
            // subset of retirements.
            if retired.is_multiple_of(128) {
                let slot = (retired / 128) as usize % csr_cap;
                let t = trackers.get_mut("csr_bank").expect("csr");
                t.write(slot, cycle, Aceness::Ace);
                if let Some(bf) = bitfields.get_mut("csr_bank") {
                    bf.write(slot, cycle, &instrs[i], Aceness::Ace);
                }
            }
            if retired.is_multiple_of(512) {
                let slot = (retired / 512) as usize % csr_cap;
                let t = trackers.get_mut("csr_bank").expect("csr");
                t.read(slot, cycle, Aceness::Ace);
                if let Some(bf) = bitfields.get_mut("csr_bank") {
                    bf.read(slot, cycle, Aceness::Ace);
                }
            }
        }

        // ---- Writeback: result bus + bypass network ----
        // (Results were scheduled at issue; model the bypass write the
        // cycle the value becomes available.)
        for e in iq.iter() {
            if e.issued && done_cycle[e.idx as usize] == cycle {
                let i = e.idx as usize;
                let a = ace_of(e.idx);
                if let Some((fp, slot)) = prf_slot[i] {
                    let name = if fp { "fp_regfile" } else { "prf" };
                    trackers
                        .get_mut(name)
                        .expect("regfile tracker")
                        .write(slot, cycle, a);
                }
                let t = trackers.get_mut("bypass").expect("bypass");
                t.write(bypass_rr % bypass_cap, cycle, a);
                t.read(bypass_rr % bypass_cap, cycle, a);
                bypass_rr += 1;
            }
        }
        iq.retain(|e| !(e.issued && done_cycle[e.idx as usize] <= cycle));

        // ---- Issue (oldest ready first) ----
        let mut n_issued = 0;
        for e in iq.iter_mut() {
            if n_issued == config.issue_width {
                break;
            }
            if e.issued {
                continue;
            }
            let ready =
                e.producers.iter().flatten().all(|&p| {
                    done_cycle[p as usize] != NOT_DONE && done_cycle[p as usize] <= cycle
                });
            if !ready {
                continue;
            }
            let i = e.idx as usize;
            let ins = &instrs[i];
            let a = ace_of(e.idx);
            // Leave the scheduler.
            {
                let t = trackers.get_mut("issue_queue").expect("iq");
                t.read(e.slot, cycle, a);
                t.dealloc(e.slot, cycle);
            }
            if let Some(bf) = bitfields.get_mut("issue_queue") {
                bf.read(e.slot, cycle, a);
                bf.dealloc(e.slot, cycle);
            }
            iq_slots.free();
            // Source operands: bypass if just produced, else register file.
            for &p in e.producers.iter().flatten() {
                let pi = p as usize;
                let recent = cycle.saturating_sub(done_cycle[pi]) <= 1;
                if !recent {
                    if let Some((fp, slot)) = prf_slot[pi] {
                        let name = if fp { "fp_regfile" } else { "prf" };
                        trackers
                            .get_mut(name)
                            .expect("regfile tracker")
                            .read(slot, cycle, a);
                    }
                }
            }
            // Memory operations.
            if ins.op.is_mem() {
                let page = ins.addr.unwrap_or(0) >> 12;
                let slot = (page as usize) % cap("dtlb");
                let hit = match hd1.get_mut("dtlb") {
                    Some(h) => h.lookup(page, a),
                    None => true,
                };
                let t = trackers.get_mut("dtlb").expect("dtlb");
                if hit {
                    t.read(slot, cycle, a);
                } else {
                    t.write(slot, cycle, a);
                    if let Some(h) = hd1.get_mut("dtlb") {
                        h.insert(slot, page);
                    }
                }
                match ins.op {
                    OpClass::Load => {
                        // Store-to-load forwarding check against the store
                        // queue CAM.
                        if let Some(h) = hd1.get_mut("store_queue") {
                            h.lookup(ins.addr.unwrap_or(0), a);
                        }
                        if let Some(slot) = lq_slots.alloc() {
                            lq_slot[i] = Some(slot);
                            trackers
                                .get_mut("load_queue")
                                .expect("lq")
                                .write(slot, cycle, a);
                            if let Some(h) = hd1.get_mut("load_queue") {
                                h.insert(slot, ins.addr.unwrap_or(0));
                            }
                        }
                    }
                    OpClass::Store => {
                        if let Some(slot) = sq_slots.alloc() {
                            sq_slot[i] = Some(slot);
                            trackers
                                .get_mut("store_queue")
                                .expect("sq")
                                .write(slot, cycle, a);
                            if let Some(h) = hd1.get_mut("store_queue") {
                                h.insert(slot, ins.addr.unwrap_or(0));
                            }
                        }
                    }
                    _ => unreachable!("is_mem covers loads and stores"),
                }
            }
            // Cache-miss model: a deterministic hash of the address sends
            // a fraction of loads to a long-latency miss path.
            let mut latency = u64::from(ins.op.latency());
            if ins.op == OpClass::Load {
                if let Some(a) = ins.addr {
                    let h = (a ^ 0x9e37_79b9_7f4a_7c15).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                    if (h >> 33).is_multiple_of(8) {
                        latency = 24;
                    }
                }
            }
            done_cycle[i] = cycle + latency;
            e.issued = true;
            n_issued += 1;
        }

        // ---- Rename / dispatch ----
        for _ in 0..config.width {
            let Some(&(idx, uslot)) = uop_q.front() else {
                break;
            };
            let i = idx as usize;
            let ins = &instrs[i];
            let needs_prf = ins.dst.is_some();
            let fp = ins.op.is_fp();
            let prf_ok = if needs_prf {
                if fp {
                    fprf_slots.has_space()
                } else {
                    prf_slots.has_space()
                }
            } else {
                true
            };
            if !(rob_slots.has_space() && iq_slots.has_space() && prf_ok) {
                break;
            }
            uop_q.pop_front();
            let a = ace_of(idx);
            {
                let t = trackers.get_mut("uop_queue").expect("uq");
                t.read(uslot, cycle, a);
                t.dealloc(uslot, cycle);
            }
            uop_slots.free();
            // Rename table traffic.
            let rat = trackers.get_mut("rat").expect("rat");
            let mut producers: [Option<u32>; 2] = [None, None];
            for (k, src) in ins.sources().enumerate().take(2) {
                rat.read(src.index() % rat_entries, cycle, a);
                producers[k] = last_writer[src.index()];
            }
            if let Some(dst) = ins.dst {
                rat.write(dst.index() % rat_entries, cycle, a);
                last_writer[dst.index()] = Some(idx);
                // Allocate a physical register via the free list.
                let fl = trackers.get_mut("free_list").expect("fl");
                fl.read(fl_rr % fl_cap, cycle, a);
                fl.write(fl_rr % fl_cap, cycle, a);
                fl_rr += 1;
                let slot = if fp {
                    fprf_slots.alloc().expect("checked space")
                } else {
                    prf_slots.alloc().expect("checked space")
                };
                prf_slot[i] = Some((fp, slot));
            }
            // ROB allocation.
            let rslot = rob_slots.alloc().expect("checked space");
            {
                let t = trackers.get_mut("rob").expect("rob");
                t.write(rslot, cycle, a);
            }
            if let Some(bf) = bitfields.get_mut("rob") {
                bf.write(rslot, cycle, ins, a);
            }
            rob.push_back(RobEntry { idx, slot: rslot });
            // Scheduler allocation.
            let islot = iq_slots.alloc().expect("checked space");
            {
                let t = trackers.get_mut("issue_queue").expect("iq");
                t.write(islot, cycle, a);
            }
            if let Some(bf) = bitfields.get_mut("issue_queue") {
                bf.write(islot, cycle, ins, a);
            }
            iq.push(IqEntry {
                idx,
                slot: islot,
                producers,
                issued: false,
            });
        }

        // ---- Decode ----
        for _ in 0..config.width {
            if !uop_slots.has_space() {
                break;
            }
            let Some(&(idx, fslot)) = fetch_q.front() else {
                break;
            };
            fetch_q.pop_front();
            let a = ace_of(idx);
            {
                let t = trackers.get_mut("fetch_buffer").expect("fb");
                t.read(fslot, cycle, a);
                t.dealloc(fslot, cycle);
            }
            fetch_slots.free();
            let uslot = uop_slots.alloc().expect("checked space");
            trackers
                .get_mut("uop_queue")
                .expect("uq")
                .write(uslot, cycle, a);
            uop_q.push_back((idx, uslot));
        }

        // ---- Fetch ----
        let mut fetched_this_cycle = false;
        for _ in 0..config.width {
            if cycle < fetch_stall_until || next_fetch >= n || !fetch_slots.has_space() {
                break;
            }
            let idx = next_fetch as u32;
            let ins = &instrs[next_fetch];
            let a = ace_of(idx);
            let fslot = fetch_slots.alloc().expect("checked space");
            trackers
                .get_mut("fetch_buffer")
                .expect("fb")
                .write(fslot, cycle, a);
            fetch_q.push_back((idx, fslot));
            if !fetched_this_cycle {
                // One iTLB access per fetch group.
                let page = (next_fetch as u64) >> 6;
                let slot = (page as usize) % cap("itlb");
                let hit = match hd1.get_mut("itlb") {
                    Some(h) => h.lookup(page, a),
                    None => true,
                };
                let t = trackers.get_mut("itlb").expect("itlb");
                if hit {
                    t.read(slot, cycle, a);
                } else {
                    t.write(slot, cycle, a);
                    if let Some(h) = hd1.get_mut("itlb") {
                        h.insert(slot, page);
                    }
                }
                fetched_this_cycle = true;
            }
            if ins.op == OpClass::Branch {
                branch_count += 1;
                let pc = next_fetch as u64;
                let slot = (pc as usize) % cap("btb");
                let hit = match hd1.get_mut("btb") {
                    Some(h) => h.lookup(pc, a),
                    None => true,
                };
                let t = trackers.get_mut("btb").expect("btb");
                if hit {
                    t.read(slot, cycle, a);
                }
                if ins.taken {
                    t.write(slot, cycle, a);
                    if let Some(h) = hd1.get_mut("btb") {
                        h.insert(slot, pc);
                    }
                }
                // Model call/return pairs as a sparse subset of branches.
                if branch_count.is_multiple_of(16) {
                    let t = trackers.get_mut("ras").expect("ras");
                    t.write(ras_rr % ras_cap, cycle, a);
                    ras_rr += 1;
                } else if branch_count % 16 == 8 && ras_rr > 0 {
                    ras_rr -= 1;
                    let t = trackers.get_mut("ras").expect("ras");
                    t.read(ras_rr % ras_cap, cycle, a);
                    t.dealloc(ras_rr % ras_cap, cycle);
                }
                if ins.taken {
                    // Redirect bubble: short when the BTB predicted the
                    // target, longer on a BTB miss.
                    fetch_stall_until = cycle + if hit { 2 } else { 5 };
                    next_fetch += 1;
                    break;
                }
            }
            next_fetch += 1;
        }

        cycle += 1;
    }

    // ---- Finalize ----
    let cycles = cycle.max(1);
    let mut structures = BTreeMap::new();
    let field_stats: BTreeMap<&'static str, Vec<crate::report::FieldStats>> = bitfields
        .into_iter()
        .map(|(name, bf)| {
            let spec = specs.iter().find(|x| x.name == name).expect("known");
            (
                name,
                bf.finish(cycles, cycles, spec.read_ports, spec.write_ports),
            )
        })
        .collect();
    for (name, mut t) in trackers {
        t.finish(cycles);
        let spec = specs.iter().find(|x| x.name == name).expect("known");
        let mut s = t.stats(cycles, spec.read_ports, spec.write_ports);
        // Apply the HD-1 factor to CAM structures: tag bits are refined,
        // remaining (data) bits stay fully conservative.
        if let (true, Some(h)) = (config.hd1, hd1.get(name)) {
            let spec = specs.iter().find(|x| x.name == name).expect("known");
            let tag_bits = f64::from(spec.bits_per_entry.min(48));
            let frac = tag_bits / f64::from(spec.bits_per_entry);
            let blend = frac * h.factor() + (1.0 - frac);
            s.avf *= blend;
            s.port.read *= blend;
            s.port.write *= blend;
            for w in &mut s.windows {
                *w *= blend;
            }
        }
        if let Some(f) = field_stats.get(name) {
            s.fields = f.clone();
        }
        structures.insert(name.to_owned(), s);
    }

    AceReport {
        workload: trace.name().to_owned(),
        cycles,
        instructions: retired,
        structures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqavf_workloads::suite::MixFamily;
    use seqavf_workloads::trace::{Instr, Reg, TraceBuilder};

    fn small_trace(len: usize, seed: u64) -> Trace {
        MixFamily::builtin()[0].generate(0, len, seed)
    }

    #[test]
    fn model_retires_all_instructions() {
        let t = small_trace(2_000, 1);
        let r = run_ace(&t, &PerfConfig::default());
        assert_eq!(r.instructions, 2_000);
        assert!(r.cycles > 400, "cycles = {}", r.cycles);
        let ipc = r.ipc();
        assert!(ipc > 0.3 && ipc <= 4.0, "ipc = {ipc}");
    }

    #[test]
    fn all_structures_reported() {
        let t = small_trace(1_000, 2);
        let r = run_ace(&t, &PerfConfig::default());
        for spec in catalog() {
            assert!(r.structures.contains_key(spec.name), "{}", spec.name);
        }
    }

    #[test]
    fn avfs_and_pavfs_in_range() {
        let t = small_trace(3_000, 3);
        let r = run_ace(&t, &PerfConfig::default());
        for (name, s) in &r.structures {
            assert!((0.0..=1.0).contains(&s.avf), "{name} avf {}", s.avf);
            assert!((0.0..=1.0).contains(&s.port.read), "{name}");
            assert!((0.0..=1.0).contains(&s.port.write), "{name}");
        }
    }

    #[test]
    fn busy_structures_have_nonzero_pavf() {
        let t = small_trace(3_000, 4);
        let r = run_ace(&t, &PerfConfig::default());
        for name in ["rob", "issue_queue", "fetch_buffer", "uop_queue"] {
            let s = &r.structures[name];
            assert!(s.port.read > 0.0, "{name} read pAVF zero");
            assert!(s.port.write > 0.0, "{name} write pAVF zero");
        }
    }

    #[test]
    fn nop_heavy_trace_has_lower_pavf() {
        let mut tb = TraceBuilder::new("nops");
        for _ in 0..2_000 {
            tb.push(Instr::nop());
        }
        let nops = run_ace(&tb.finish(), &PerfConfig::default());
        let busy = run_ace(&small_trace(2_000, 5), &PerfConfig::default());
        assert!(
            nops.structures["rob"].port.read < busy.structures["rob"].port.read,
            "un-ACE NOP stream must reduce ACE read rate"
        );
        assert_eq!(nops.structures["rob"].ace_reads, 0);
    }

    #[test]
    fn deterministic_for_same_trace() {
        let t = small_trace(1_500, 6);
        let a = run_ace(&t, &PerfConfig::default());
        let b = run_ace(&t, &PerfConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn bitfield_refinement_lowers_control_structure_pavf() {
        let t = small_trace(4_000, 7);
        let r = run_ace(&t, &PerfConfig::default());
        let rob = &r.structures["rob"];
        assert!(!rob.fields.is_empty());
        let refined = rob.refined_port();
        assert!(
            refined.read <= rob.port.read,
            "refined {} > aggregate {}",
            refined.read,
            rob.port.read
        );
    }

    #[test]
    fn bitfield_can_be_disabled() {
        let t = small_trace(1_000, 8);
        let cfg = PerfConfig {
            bitfield: false,
            ..PerfConfig::default()
        };
        let r = run_ace(&t, &cfg);
        assert!(r.structures["rob"].fields.is_empty());
    }

    #[test]
    fn hd1_refines_cam_avf() {
        let t = small_trace(4_000, 9);
        let with = run_ace(&t, &PerfConfig::default());
        let without = run_ace(
            &t,
            &PerfConfig {
                hd1: false,
                ..PerfConfig::default()
            },
        );
        // HD-1 can only lower (or keep) CAM structure AVFs.
        for name in ["dtlb", "itlb", "btb"] {
            assert!(
                with.structures[name].avf <= without.structures[name].avf + 1e-12,
                "{name}"
            );
        }
    }

    #[test]
    fn dependent_chain_stalls_pipeline() {
        // A fully serial dependence chain should get much lower IPC than an
        // independent stream.
        let mut serial = TraceBuilder::new("serial");
        for _ in 0..1_000 {
            serial.push(Instr::alu(OpClass::IntMul, Reg::new(1), Reg::new(1), None));
        }
        let mut parallel = TraceBuilder::new("parallel");
        for i in 0..1_000u32 {
            parallel.push(Instr::alu(
                OpClass::IntAlu,
                Reg::new((i % 24) as u8),
                Reg::new(30),
                None,
            ));
        }
        let s = run_ace(&serial.finish(), &PerfConfig::default());
        let p = run_ace(&parallel.finish(), &PerfConfig::default());
        assert!(
            s.ipc() < p.ipc() * 0.6,
            "serial ipc {} vs parallel {}",
            s.ipc(),
            p.ipc()
        );
    }

    #[test]
    fn md5_kernel_runs_and_is_alu_bound() {
        let t = seqavf_workloads::kernels::md5::md5_trace(&Default::default());
        let r = run_ace(&t, &PerfConfig::default());
        assert_eq!(r.instructions as usize, t.len());
        assert_eq!(r.structures["load_queue"].writes, 0);
        assert_eq!(r.structures["store_queue"].writes, 0);
    }

    #[test]
    fn quantized_windows_reconstruct_scalar_avf() {
        let t = small_trace(3_000, 21);
        let cfg = PerfConfig {
            quantize_window: Some(256),
            ..PerfConfig::default()
        };
        let r = run_ace(&t, &cfg);
        for (name, s) in &r.structures {
            assert!(!s.windows.is_empty(), "{name} has no window series");
            for w in &s.windows {
                assert!((0.0..=1.0).contains(w), "{name}");
            }
            // The length-weighted window mean reproduces Equation 3.
            let window = 256u64;
            let mut weighted = 0.0;
            for (i, w) in s.windows.iter().enumerate() {
                let start = i as u64 * window;
                let len = window.min(r.cycles - start) as f64;
                weighted += w * len;
            }
            let mean = weighted / r.cycles as f64;
            assert!(
                (mean - s.avf).abs() < 1e-9,
                "{name}: windowed mean {mean} vs scalar {}",
                s.avf
            );
        }
        // Windowing off by default.
        let plain = run_ace(&t, &PerfConfig::default());
        assert!(plain.structures["rob"].windows.is_empty());
    }

    #[test]
    fn lattice_kernel_exercises_memory_structures() {
        let t = seqavf_workloads::kernels::lattice::lattice_trace(&Default::default());
        let r = run_ace(&t, &PerfConfig::default());
        assert!(r.structures["load_queue"].writes > 0);
        assert!(r.structures["store_queue"].writes > 0);
        assert!(r.structures["dtlb"].reads + r.structures["dtlb"].writes > 0);
    }
}
