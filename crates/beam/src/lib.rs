//! FIT-rate modeling and accelerated-beam measurement simulation (§6.2).
//!
//! The paper validates its sequential AVFs against accelerated soft-error
//! measurements taken with a 200 MeV proton beam at the Indiana University
//! Cyclotron Facility. No beam (or silicon) is available here, so this
//! crate simulates the measurement campaign:
//!
//! - [`fit`] — Equation 1: `FIT = AVF × #bits × intrinsic rate`, with
//!   SDC/DUE bookkeeping per bit population.
//! - [`campaign`] — Poisson sampling of error counts under an accelerated
//!   flux, with counting-statistics confidence intervals; results are
//!   normalized to the paper's "Arbitrary Units".
//! - [`correlate`] — model-to-measurement miscorrelation and improvement
//!   metrics (the paper reports ~100% initial miscorrelation shrinking by
//!   ~66% once sequential AVFs replace the structure-AVF proxy).
//! - [`validate`] — model-to-injection validation (§6.1): statistical
//!   comparison of SART's analytical per-bit AVFs against trial-indexed
//!   fault-injection campaigns, with importance sampling and per-FUB
//!   Wilson-interval overlap.

pub mod campaign;
pub mod correlate;
pub mod fit;
pub mod validate;

pub use campaign::{run_beam, BeamConfig, BeamMeasurement};
pub use correlate::{improvement, miscorrelation, within_interval, CorrelationRow};
pub use fit::{BitPopulation, FitBreakdown, Protection};
pub use validate::{
    importance_weights, pearson, run_validate, run_validate_traced, spearman, FubRow, Sampling,
    ValidateConfig, ValidationReport,
};
