//! Model-to-measurement correlation metrics (§6.2, Figure 10).
//!
//! "Prior to the sequential AVF work, our model to measurement correlation
//! for SDC was off by nearly 100% with the modeled SER being higher than
//! the measured. … the model/experimental correlation improved by ~66%,
//! which is within the statistical error of the measured value."

use serde::{Deserialize, Serialize};

use crate::campaign::BeamMeasurement;

/// Miscorrelation: the relative excess of the model over the measurement
/// (`0` = perfect; `1.0` = "off by 100%").
pub fn miscorrelation(modeled: f64, measured: f64) -> f64 {
    if measured == 0.0 {
        return f64::INFINITY;
    }
    (modeled - measured).abs() / measured
}

/// Fractional improvement of miscorrelation from `before` to `after`
/// (`0.66` = "correlation improved by ~66%").
pub fn improvement(before_miscorrelation: f64, after_miscorrelation: f64) -> f64 {
    if before_miscorrelation == 0.0 {
        return 0.0;
    }
    (before_miscorrelation - after_miscorrelation) / before_miscorrelation
}

/// Whether a modeled value falls inside a measurement's confidence
/// interval ("within the statistical error of the measured value").
pub fn within_interval(modeled: f64, measurement: &BeamMeasurement) -> bool {
    modeled >= measurement.fit_interval.0 && modeled <= measurement.fit_interval.1
}

/// One row of the Figure 10 comparison, normalized to Arbitrary Units
/// ("due to the sensitive nature of the actual FIT values we normalize the
/// values to Arbitrary Units").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorrelationRow {
    /// Workload name.
    pub workload: String,
    /// Measured SER in AU.
    pub measured_au: f64,
    /// Measurement CI in AU.
    pub measured_interval_au: (f64, f64),
    /// Modeled SER using the structure-AVF proxy for sequentials, in AU.
    pub modeled_before_au: f64,
    /// Modeled SER using computed sequential AVFs, in AU.
    pub modeled_after_au: f64,
}

impl CorrelationRow {
    /// Builds a row from raw FIT values, normalizing everything by
    /// `reference` (typically the measured value of the first workload).
    pub fn new(
        workload: impl Into<String>,
        measurement: &BeamMeasurement,
        modeled_before: f64,
        modeled_after: f64,
        reference: f64,
    ) -> Self {
        let au = |v: f64| if reference == 0.0 { v } else { v / reference };
        CorrelationRow {
            workload: workload.into(),
            measured_au: au(measurement.measured_fit),
            measured_interval_au: (
                au(measurement.fit_interval.0),
                au(measurement.fit_interval.1),
            ),
            modeled_before_au: au(modeled_before),
            modeled_after_au: au(modeled_after),
        }
    }

    /// Miscorrelation of the before-model.
    pub fn miscorrelation_before(&self) -> f64 {
        miscorrelation(self.modeled_before_au, self.measured_au)
    }

    /// Miscorrelation of the after-model.
    pub fn miscorrelation_after(&self) -> f64 {
        miscorrelation(self.modeled_after_au, self.measured_au)
    }

    /// Improvement from before to after.
    pub fn improvement(&self) -> f64 {
        improvement(self.miscorrelation_before(), self.miscorrelation_after())
    }

    /// Whether the after-model lands inside the measurement interval.
    pub fn after_within_measurement(&self) -> bool {
        self.modeled_after_au >= self.measured_interval_au.0
            && self.modeled_after_au <= self.measured_interval_au.1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miscorrelation_basics() {
        assert_eq!(miscorrelation(2.0, 1.0), 1.0); // "off by 100%"
        assert_eq!(miscorrelation(1.0, 1.0), 0.0);
        assert!((miscorrelation(1.34, 1.0) - 0.34).abs() < 1e-12);
        assert!(miscorrelation(1.0, 0.0).is_infinite());
    }

    #[test]
    fn improvement_basics() {
        assert!((improvement(1.0, 0.34) - 0.66).abs() < 1e-12);
        assert_eq!(improvement(0.0, 0.0), 0.0);
        assert_eq!(improvement(0.5, 0.5), 0.0);
    }

    #[test]
    fn row_normalizes_to_au() {
        let m = BeamMeasurement {
            observed_errors: 100,
            measured_fit: 400.0,
            fit_interval: (320.0, 480.0),
        };
        let row = CorrelationRow::new("lattice", &m, 800.0, 440.0, 400.0);
        assert!((row.measured_au - 1.0).abs() < 1e-12);
        assert!((row.modeled_before_au - 2.0).abs() < 1e-12);
        assert!((row.miscorrelation_before() - 1.0).abs() < 1e-12);
        assert!((row.miscorrelation_after() - 0.1).abs() < 1e-12);
        assert!((row.improvement() - 0.9).abs() < 1e-12);
        assert!(row.after_within_measurement());
    }

    #[test]
    fn within_interval_checks_bounds() {
        let m = BeamMeasurement {
            observed_errors: 10,
            measured_fit: 100.0,
            fit_interval: (80.0, 120.0),
        };
        assert!(within_interval(100.0, &m));
        assert!(within_interval(80.0, &m));
        assert!(!within_interval(121.0, &m));
    }
}
