//! Statistical validation of SART's analytical AVFs against fault
//! injection (§6.1, Figure 9).
//!
//! The paper validates the analytical model by comparing per-structure
//! AVFs against RTL fault-injection campaigns ("the analytical AVFs are
//! within the statistical error of the fault injection results"). This
//! module is that comparison at design scale: a trial-indexed injection
//! campaign ([`seqavf_sfi::campaign::run_trials`]) produces per-bit
//! binomial estimates, which are pooled per FUB and compared against the
//! SART per-bit AVFs three ways:
//!
//! - **Rank agreement** — Pearson and Spearman correlation of per-FUB
//!   injection AVFs vs per-FUB analytical AVFs.
//! - **Interval overlap** — the fraction of FUBs whose analytical AVF
//!   falls inside the Wilson ~95% interval of the injection estimate
//!   (the paper's "within the statistical error" criterion).
//! - **Population mean** — a Horvitz–Thompson estimate of the design's
//!   mean AVF that stays unbiased under importance sampling.
//!
//! ## Importance sampling
//!
//! A uniform campaign wastes most of its budget on bits whose AVF is
//! ~0. [`importance_weights`] biases target selection toward bits the
//! analytical model predicts matter (`max(avf, floor)`); the `floor`
//! keeps every bit reachable so the model cannot hide its own mistakes.
//! Two properties keep the comparison honest under any weighting:
//!
//! 1. Each per-bit estimate conditions on its own selections, so it is
//!    unbiased regardless of how often the bit was selected.
//! 2. The population mean uses the Horvitz–Thompson estimator
//!    `(1/T) Σ_t x_t / (N·p_i(t))`, whose expectation is the true mean
//!    for any selection distribution with full support.
//!
//! Per-FUB rows compare the pooled injection proportion against the
//! **trial-weighted** mean of the analytical AVFs (weighted by how often
//! each bit was actually selected) — under non-uniform sampling the
//! pooled proportion estimates exactly that weighted mean, so the two
//! columns estimate the same quantity by construction.

use serde::{Deserialize, Serialize};

use seqavf_netlist::graph::{Netlist, NodeId};
use seqavf_sfi::campaign::{wilson_interval, Kernel, TrialConfig, TrialTally};

/// Target-selection strategy for the validation campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Sampling {
    /// Every bit equally likely.
    Uniform,
    /// Selection probability ∝ `max(analytical AVF, floor)`.
    Importance {
        /// Minimum relative weight; keeps zero-AVF bits reachable.
        floor: f64,
    },
}

/// Configuration of a validation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidateConfig {
    /// The underlying trial campaign (budget, seed, threads, burst,
    /// kernel).
    pub trial: TrialConfig,
    /// Target-selection strategy.
    pub sampling: Sampling,
}

impl Default for ValidateConfig {
    fn default() -> Self {
        ValidateConfig {
            trial: TrialConfig::default(),
            sampling: Sampling::Uniform,
        }
    }
}

/// Selection weights proportional to `max(avf, floor)`.
///
/// AVFs are clamped into `[0, 1]` first (SART emits `-0.0` for dead
/// bits). `floor` must be positive so every bit keeps nonzero selection
/// probability — the Horvitz–Thompson estimator requires full support.
pub fn importance_weights(avfs: &[f64], floor: f64) -> Vec<f64> {
    assert!(
        floor.is_finite() && floor > 0.0,
        "importance floor must be positive (full support)"
    );
    avfs.iter().map(|&a| a.clamp(0.0, 1.0).max(floor)).collect()
}

/// Pearson product-moment correlation. Returns 0 when either side has
/// zero variance (no linear relationship is expressible).
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "correlation inputs must be parallel");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let nf = n as f64;
    let mx = xs.iter().sum::<f64>() / nf;
    let my = ys.iter().sum::<f64>() / nf;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

/// Spearman rank correlation: Pearson on tie-averaged ranks.
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    pearson(&average_ranks(xs), &average_ranks(ys))
}

/// Fractional ranks (1-based); tied values share the average of the
/// positions they span.
fn average_ranks(xs: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..xs.len()).collect();
    order.sort_by(|&a, &b| {
        xs[a]
            .partial_cmp(&xs[b])
            .expect("ranks need non-NaN values")
    });
    let mut ranks = vec![0.0f64; xs.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && xs[order[j + 1]] == xs[order[i]] {
            j += 1;
        }
        // Positions i..=j (0-based) share the average 1-based rank.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// One per-FUB comparison row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FubRow {
    /// FUB name.
    pub fub: String,
    /// Sequential bits targeted in this FUB.
    pub bits: usize,
    /// Trials whose primary target landed in this FUB.
    pub trials: usize,
    /// Error + unknown outcomes among those trials.
    pub hits: usize,
    /// Pooled injection AVF: `hits / trials`.
    pub injected_avf: f64,
    /// Wilson ~95% interval of the pooled proportion.
    pub ci: (f64, f64),
    /// Trial-weighted mean of the analytical per-bit AVFs (the quantity
    /// the pooled proportion estimates — see the module docs).
    pub sart_avf: f64,
    /// Whether `sart_avf` falls inside `ci`.
    pub overlap: bool,
}

/// A validation report: the `seqavf-validate/1` artifact.
///
/// Serialized field order is declaration order, so the JSON is
/// byte-identical across runs with identical inputs — the CI smoke test
/// `cmp`s artifacts produced at different thread counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// Artifact schema identifier, always `"seqavf-validate/1"`.
    pub schema: String,
    /// Design name.
    pub design: String,
    /// Sequential bits targeted.
    pub bits: usize,
    /// Trials run.
    pub trials: usize,
    /// Error outcomes.
    pub errors: usize,
    /// Unknown outcomes.
    pub unknowns: usize,
    /// Bits upset per trial.
    pub burst: usize,
    /// `"exact"` or `"propagation"`.
    pub kernel: String,
    /// `"uniform"` or `"importance"`.
    pub sampling: String,
    /// Pearson correlation of per-FUB injection vs analytical AVFs.
    pub pearson: f64,
    /// Spearman rank correlation of the same.
    pub spearman: f64,
    /// Fraction of (sampled) FUBs whose analytical AVF falls inside the
    /// injection Wilson interval.
    pub overlap_fraction: f64,
    /// Unweighted mean of the analytical per-bit AVFs.
    pub mean_sart_avf: f64,
    /// Horvitz–Thompson estimate of the same population mean from the
    /// injection outcomes.
    pub mean_injected_avf: f64,
    /// Mean Wilson-interval width across sampled FUBs (the precision
    /// knob importance sampling turns).
    pub mean_ci_width: f64,
    /// Per-FUB rows, in FUB-name order.
    pub fubs: Vec<FubRow>,
}

impl ValidationReport {
    /// Serializes the artifact (deterministic field and row order).
    pub fn to_json(&self) -> String {
        let mut s =
            serde_json::to_string_pretty(self).expect("validation report always serializes");
        s.push('\n');
        s
    }

    /// Renders the human-readable comparison table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "validate {}: {} bits, {} trials ({} sampling, {} kernel, burst {})\n",
            self.design, self.bits, self.trials, self.sampling, self.kernel, self.burst
        ));
        out.push_str(&format!(
            "pearson {:.4}  spearman {:.4}  overlap {:.1}%  mean AVF sart {:.4} / injected {:.4}\n",
            self.pearson,
            self.spearman,
            100.0 * self.overlap_fraction,
            self.mean_sart_avf,
            self.mean_injected_avf,
        ));
        out.push_str(&format!(
            "{:<24} {:>6} {:>8} {:>9} {:>19} {:>9}  {}\n",
            "fub", "bits", "trials", "inj avf", "wilson 95%", "sart", "ok"
        ));
        for row in &self.fubs {
            out.push_str(&format!(
                "{:<24} {:>6} {:>8} {:>9.4} [{:>7.4}, {:>7.4}] {:>9.4}  {}\n",
                row.fub,
                row.bits,
                row.trials,
                row.injected_avf,
                row.ci.0,
                row.ci.1,
                row.sart_avf,
                if row.trials == 0 {
                    "-"
                } else if row.overlap {
                    "y"
                } else {
                    "n"
                },
            ));
        }
        out
    }
}

/// Runs the validation comparison given a finished campaign.
///
/// `targets`, `sart_avfs` and `tallies` are parallel; `weights` is the
/// selection weighting the campaign actually used (`None` = uniform).
/// Split from [`run_validate`] so oracle tests can feed exhaustive
/// campaign results through the same comparison code.
pub fn compare(
    nl: &Netlist,
    design: &str,
    targets: &[NodeId],
    sart_avfs: &[f64],
    tallies: &[TrialTally],
    weights: Option<&[f64]>,
    cfg: &ValidateConfig,
) -> ValidationReport {
    assert_eq!(targets.len(), sart_avfs.len());
    assert_eq!(targets.len(), tallies.len());
    let trials: usize = tallies.iter().map(|t| t.trials).sum();
    let errors: usize = tallies.iter().map(|t| t.errors).sum();
    let unknowns: usize = tallies.iter().map(|t| t.unknowns).sum();
    let n = targets.len();

    // Horvitz–Thompson population mean: group the per-trial terms by
    // target, x_t/(N·p_i) is constant within a group.
    let total_weight: f64 = weights.map(|w| w.iter().sum()).unwrap_or(n as f64);
    let mean_injected_avf = if trials == 0 || n == 0 {
        0.0
    } else {
        let mut acc = 0.0;
        for (i, t) in tallies.iter().enumerate() {
            let p = match weights {
                None => 1.0 / n as f64,
                Some(w) => w[i] / total_weight,
            };
            if t.errors + t.unknowns > 0 {
                acc += (t.errors + t.unknowns) as f64 / (n as f64 * p);
            }
        }
        acc / trials as f64
    };
    let mean_sart_avf = if n == 0 {
        0.0
    } else {
        sart_avfs.iter().map(|&a| a.clamp(0.0, 1.0)).sum::<f64>() / n as f64
    };

    // Pool per FUB, keyed by name so row order is deterministic.
    let mut fub_names: Vec<String> = Vec::new();
    let mut fub_of_target: Vec<usize> = Vec::with_capacity(n);
    {
        let mut by_id: std::collections::BTreeMap<String, usize> = Default::default();
        for &t in targets {
            let name = nl.fub_name(nl.fub(t)).to_owned();
            let next = by_id.len();
            let slot = *by_id.entry(name.clone()).or_insert(next);
            if slot == fub_names.len() {
                fub_names.push(name);
            }
            fub_of_target.push(slot);
        }
    }
    let mut rows: Vec<FubRow> = fub_names
        .iter()
        .map(|name| FubRow {
            fub: name.clone(),
            bits: 0,
            trials: 0,
            hits: 0,
            injected_avf: 0.0,
            ci: (0.0, 1.0),
            sart_avf: 0.0,
            overlap: false,
        })
        .collect();
    for (i, t) in tallies.iter().enumerate() {
        let row = &mut rows[fub_of_target[i]];
        row.bits += 1;
        row.trials += t.trials;
        row.hits += t.errors + t.unknowns;
        // Accumulate the trial-weighted SART sum; normalized below.
        row.sart_avf += t.trials as f64 * sart_avfs[i].clamp(0.0, 1.0);
    }
    for row in &mut rows {
        if row.trials > 0 {
            row.injected_avf = row.hits as f64 / row.trials as f64;
            row.ci = wilson_interval(row.hits, row.trials);
            row.sart_avf /= row.trials as f64;
            // Tolerance absorbs float rounding at the interval's pinned
            // endpoints (the Wilson upper bound at p̂ = 1 is analytically
            // exactly 1 but can round a ulp below it).
            const EPS: f64 = 1e-9;
            row.overlap = row.sart_avf >= row.ci.0 - EPS && row.sart_avf <= row.ci.1 + EPS;
        }
    }
    rows.sort_by(|a, b| a.fub.cmp(&b.fub));

    let sampled: Vec<&FubRow> = rows.iter().filter(|r| r.trials > 0).collect();
    let xs: Vec<f64> = sampled.iter().map(|r| r.injected_avf).collect();
    let ys: Vec<f64> = sampled.iter().map(|r| r.sart_avf).collect();
    let overlap_fraction = if sampled.is_empty() {
        0.0
    } else {
        sampled.iter().filter(|r| r.overlap).count() as f64 / sampled.len() as f64
    };
    let mean_ci_width = if sampled.is_empty() {
        0.0
    } else {
        sampled.iter().map(|r| r.ci.1 - r.ci.0).sum::<f64>() / sampled.len() as f64
    };

    ValidationReport {
        schema: "seqavf-validate/1".to_owned(),
        design: design.to_owned(),
        bits: n,
        trials,
        errors,
        unknowns,
        burst: cfg.trial.burst.max(1),
        kernel: match cfg.trial.kernel {
            Kernel::Exact => "exact",
            Kernel::Propagation => "propagation",
        }
        .to_owned(),
        sampling: match cfg.sampling {
            Sampling::Uniform => "uniform",
            Sampling::Importance { .. } => "importance",
        }
        .to_owned(),
        pearson: pearson(&xs, &ys),
        spearman: spearman(&xs, &ys),
        overlap_fraction,
        mean_sart_avf,
        mean_injected_avf,
        mean_ci_width,
        fubs: rows,
    }
}

/// Runs the full validation: campaign + comparison.
///
/// `sart_avfs` is parallel to `targets` and holds the analytical per-bit
/// AVFs being validated.
pub fn run_validate(
    nl: &Netlist,
    design: &str,
    targets: &[NodeId],
    sart_avfs: &[f64],
    cfg: &ValidateConfig,
) -> ValidationReport {
    run_validate_traced(
        nl,
        design,
        targets,
        sart_avfs,
        cfg,
        &seqavf_obs::Collector::disabled(),
    )
}

/// [`run_validate`] with observability: a `validate.campaign` span around
/// the injection campaign (which records its own `sfi.trials` span) and a
/// `validate.compare` span around the statistical comparison, plus
/// `validate.fubs` / `validate.overlapping` counters.
pub fn run_validate_traced(
    nl: &Netlist,
    design: &str,
    targets: &[NodeId],
    sart_avfs: &[f64],
    cfg: &ValidateConfig,
    obs: &seqavf_obs::Collector,
) -> ValidationReport {
    assert_eq!(
        targets.len(),
        sart_avfs.len(),
        "per-bit AVFs must be parallel to targets"
    );
    let weights: Option<Vec<f64>> = match cfg.sampling {
        Sampling::Uniform => None,
        Sampling::Importance { floor } => Some(importance_weights(sart_avfs, floor)),
    };

    let result = {
        let mut span = obs.span("validate.campaign");
        span.field_u64("bits", targets.len() as u64);
        span.field_bool("importance", weights.is_some());
        seqavf_sfi::campaign::run_trials_traced(nl, targets, weights.as_deref(), &cfg.trial, obs)
    };

    let mut span = obs.span("validate.compare");
    let report = compare(
        nl,
        design,
        targets,
        sart_avfs,
        &result.tallies,
        weights.as_deref(),
        cfg,
    );
    span.field_u64("fubs", report.fubs.len() as u64);
    span.field_f64("pearson", report.pearson);
    span.field_f64("overlap_fraction", report.overlap_fraction);
    span.field_bool("exact_kernel", matches!(cfg.trial.kernel, Kernel::Exact));
    obs.count("validate.fubs", report.fubs.len() as u64);
    obs.count(
        "validate.overlapping",
        report.fubs.iter().filter(|r| r.overlap).count() as u64,
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqavf_netlist::flatten::parse_netlist;
    use seqavf_sfi::campaign::run_trials;

    const TWO_FUBS: &str = r"
.design twofub
.fub live
  .input i
  .flop a i
  .flop b a
  .output o b
.endfub
.fub dead
  .input i
  .flop x i
  .flop y x
.endfub
.end
";

    fn setup() -> (Netlist, Vec<NodeId>, Vec<f64>) {
        let nl = parse_netlist(TWO_FUBS).unwrap();
        let targets: Vec<NodeId> = nl.seq_nodes().collect();
        // The analytical truth on this design: live-FUB bits are 1.0,
        // dead-FUB bits are 0.0.
        let avfs: Vec<f64> = targets
            .iter()
            .map(|&t| {
                if nl.fub_name(nl.fub(t)) == "live" {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        (nl, targets, avfs)
    }

    #[test]
    fn pearson_and_spearman_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let up = [2.0, 4.0, 6.0, 8.0];
        let down = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &up) - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &down) + 1.0).abs() < 1e-12);
        assert!((spearman(&xs, &up) - 1.0).abs() < 1e-12);
        assert!((spearman(&xs, &down) + 1.0).abs() < 1e-12);
        // Monotone but nonlinear: spearman is exactly 1, pearson is not.
        let curved = [1.0, 10.0, 100.0, 1000.0];
        assert!((spearman(&xs, &curved) - 1.0).abs() < 1e-12);
        assert!(pearson(&xs, &curved) < 1.0);
        // Degenerate inputs yield 0, never NaN.
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
    }

    #[test]
    fn average_ranks_handle_ties() {
        assert_eq!(
            average_ranks(&[10.0, 20.0, 20.0, 30.0]),
            vec![1.0, 2.5, 2.5, 4.0]
        );
        assert_eq!(average_ranks(&[5.0, 5.0, 5.0]), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn importance_weights_clamp_and_floor() {
        let w = importance_weights(&[-0.0, 0.5, 1.0, 2.0], 0.01);
        assert_eq!(w, vec![0.01, 0.5, 1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn importance_weights_reject_zero_floor() {
        importance_weights(&[0.5], 0.0);
    }

    #[test]
    fn validation_confirms_a_correct_model() {
        let (nl, targets, avfs) = setup();
        let cfg = ValidateConfig {
            trial: TrialConfig {
                trials: 800,
                threads: 2,
                ..TrialConfig::default()
            },
            sampling: Sampling::Uniform,
        };
        let report = run_validate(&nl, "twofub", &targets, &avfs, &cfg);
        assert_eq!(report.schema, "seqavf-validate/1");
        assert_eq!(report.bits, 4);
        assert_eq!(report.trials, 800);
        assert_eq!(report.fubs.len(), 2);
        assert_eq!(report.fubs[0].fub, "dead");
        assert_eq!(report.fubs[1].fub, "live");
        // Injection agrees with the exact analytical truth.
        assert_eq!(report.fubs[0].injected_avf, 0.0);
        assert_eq!(report.fubs[1].injected_avf, 1.0);
        assert!((report.pearson - 1.0).abs() < 1e-12);
        assert!((report.spearman - 1.0).abs() < 1e-12);
        assert_eq!(report.overlap_fraction, 1.0);
        // HT mean matches the analytical mean (0.5) within sampling noise.
        assert!((report.mean_sart_avf - 0.5).abs() < 1e-12);
        assert!((report.mean_injected_avf - 0.5).abs() < 0.05);
    }

    #[test]
    fn validation_flags_a_wrong_model() {
        let (nl, targets, avfs) = setup();
        // Invert the model: claim dead bits are live and vice versa.
        let wrong: Vec<f64> = avfs.iter().map(|&a| 1.0 - a).collect();
        let cfg = ValidateConfig {
            trial: TrialConfig {
                trials: 800,
                threads: 2,
                ..TrialConfig::default()
            },
            sampling: Sampling::Uniform,
        };
        let report = run_validate(&nl, "twofub", &targets, &wrong, &cfg);
        assert!(report.pearson < 0.0, "inverted model anti-correlates");
        assert_eq!(report.overlap_fraction, 0.0);
    }

    #[test]
    fn importance_sampling_is_unbiased_for_the_population_mean() {
        let (nl, targets, avfs) = setup();
        // True mean AVF is 0.5. Run uniform and heavily-skewed importance
        // campaigns at the same budget; both HT estimates must agree with
        // the truth within a few interval widths.
        for sampling in [Sampling::Uniform, Sampling::Importance { floor: 0.05 }] {
            let cfg = ValidateConfig {
                trial: TrialConfig {
                    trials: 2000,
                    threads: 2,
                    ..TrialConfig::default()
                },
                sampling,
            };
            let report = run_validate(&nl, "twofub", &targets, &avfs, &cfg);
            assert!(
                (report.mean_injected_avf - 0.5).abs() < 0.05,
                "{sampling:?}: HT mean {} should estimate 0.5",
                report.mean_injected_avf
            );
        }
    }

    #[test]
    fn importance_sampling_tightens_live_fub_intervals() {
        let (nl, targets, avfs) = setup();
        let budget = 600;
        let uniform = ValidateConfig {
            trial: TrialConfig {
                trials: budget,
                threads: 1,
                ..TrialConfig::default()
            },
            sampling: Sampling::Uniform,
        };
        let importance = ValidateConfig {
            sampling: Sampling::Importance { floor: 0.02 },
            ..uniform
        };
        let ru = run_validate(&nl, "twofub", &targets, &avfs, &uniform);
        let ri = run_validate(&nl, "twofub", &targets, &avfs, &importance);
        let live_u = ru.fubs.iter().find(|r| r.fub == "live").unwrap();
        let live_i = ri.fubs.iter().find(|r| r.fub == "live").unwrap();
        assert!(
            live_i.trials > live_u.trials,
            "importance concentrates budget on the live FUB"
        );
        assert!(
            (live_i.ci.1 - live_i.ci.0) < (live_u.ci.1 - live_u.ci.0),
            "more trials → tighter interval at the same budget"
        );
    }

    #[test]
    fn artifact_is_deterministic_and_parses_back() {
        let (nl, targets, avfs) = setup();
        let cfg = ValidateConfig {
            trial: TrialConfig {
                trials: 200,
                threads: 1,
                ..TrialConfig::default()
            },
            sampling: Sampling::Importance { floor: 0.1 },
        };
        let a = run_validate(&nl, "twofub", &targets, &avfs, &cfg);
        let cfg8 = ValidateConfig {
            trial: TrialConfig {
                threads: 8,
                ..cfg.trial
            },
            ..cfg
        };
        let b = run_validate(&nl, "twofub", &targets, &avfs, &cfg8);
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "artifact bit-identical across threads"
        );
        let parsed: ValidationReport = serde_json::from_str(&a.to_json()).unwrap();
        assert_eq!(parsed, a);
        assert!(a.to_table().contains("live"));
    }

    #[test]
    fn wilson_coverage_is_near_nominal() {
        // Satellite (d): simulate many binomial draws at known p and
        // check the Wilson ~95% interval covers p at roughly its nominal
        // rate. Uses the campaign's own TrialRng as the noise source.
        use seqavf_sfi::campaign::TrialRng;
        let n = 60usize;
        let reps = 2000usize;
        for &p in &[0.1f64, 0.5, 0.9] {
            let mut covered = 0usize;
            for rep in 0..reps {
                let mut rng = TrialRng::new(0xc0ffee ^ (p * 1000.0) as u64, rep as u64);
                let successes = (0..n).filter(|_| rng.next_f64() < p).count();
                let (lo, hi) = wilson_interval(successes, n);
                if lo <= p && p <= hi {
                    covered += 1;
                }
            }
            let rate = covered as f64 / reps as f64;
            assert!(
                (0.92..=0.99).contains(&rate),
                "p={p}: coverage {rate} should be near the nominal 95%"
            );
        }
    }

    #[test]
    fn compare_consumes_external_campaigns() {
        // The comparison half is usable standalone (the oracle tests feed
        // it exhaustive results).
        let (nl, targets, avfs) = setup();
        let cfg = ValidateConfig::default();
        let trial_cfg = TrialConfig {
            trials: 100,
            threads: 1,
            ..TrialConfig::default()
        };
        let result = run_trials(&nl, &targets, None, &trial_cfg);
        let report = compare(&nl, "twofub", &targets, &avfs, &result.tallies, None, &cfg);
        assert_eq!(report.trials, 100);
        assert_eq!(report.fubs.len(), 2);
    }

    #[test]
    fn traced_validation_records_spans() {
        let (nl, targets, avfs) = setup();
        let cfg = ValidateConfig {
            trial: TrialConfig {
                trials: 100,
                threads: 1,
                ..TrialConfig::default()
            },
            sampling: Sampling::Importance { floor: 0.1 },
        };
        let obs = seqavf_obs::Collector::new();
        let traced = run_validate_traced(&nl, "twofub", &targets, &avfs, &cfg, &obs);
        assert_eq!(traced, run_validate(&nl, "twofub", &targets, &avfs, &cfg));
        let report = obs.report();
        assert_eq!(report.span("validate.campaign").unwrap().count, 1);
        assert_eq!(report.span("validate.compare").unwrap().count, 1);
        assert_eq!(report.span("sfi.trials").unwrap().count, 1);
        assert_eq!(report.counter("validate.fubs"), Some(2));
    }
}
