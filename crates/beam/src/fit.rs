//! Equation 1: `SER FIT = AVF_bit × #bits × intrinsic error rate_bit`.
//!
//! A design's soft error rate is assembled from *bit populations*
//! (sequentials, array structures, …), each with its own intrinsic
//! per-bit FIT rate (set by process and circuit topology, §1) and
//! protection scheme. Protection determines which SER bucket the
//! population's errors land in: unprotected bits produce silent data
//! corruption (SDC), parity produces detected-uncorrectable errors (DUE),
//! and ECC produces detected-corrected errors (DCE).

use serde::{Deserialize, Serialize};

/// Error-detection/correction scheme covering a bit population.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Protection {
    /// No detection: faults become SDC.
    None,
    /// Detection only (e.g. parity): faults become DUE.
    Parity,
    /// Detection and correction (e.g. ECC): faults become DCE.
    Ecc,
}

/// A population of bits contributing to the design's SER.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BitPopulation {
    /// Label (e.g. `"sequentials"`, `"rob"`).
    pub name: String,
    /// Number of bits.
    pub bits: u64,
    /// Mean AVF of the population.
    pub avf: f64,
    /// Intrinsic per-bit FIT rate.
    pub intrinsic_fit_per_bit: f64,
    /// Protection scheme.
    pub protection: Protection,
}

impl BitPopulation {
    /// Creates an unprotected population.
    pub fn unprotected(name: impl Into<String>, bits: u64, avf: f64, fit_per_bit: f64) -> Self {
        BitPopulation {
            name: name.into(),
            bits,
            avf: avf.clamp(0.0, 1.0),
            intrinsic_fit_per_bit: fit_per_bit.max(0.0),
            protection: Protection::None,
        }
    }

    /// This population's FIT contribution (Equation 1).
    pub fn fit(&self) -> f64 {
        self.avf * self.bits as f64 * self.intrinsic_fit_per_bit
    }
}

/// SER broken down by error class.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FitBreakdown {
    /// Silent data corruption FIT.
    pub sdc: f64,
    /// Detected uncorrectable error FIT.
    pub due: f64,
    /// Detected corrected error FIT.
    pub dce: f64,
}

impl FitBreakdown {
    /// Assembles the breakdown from populations.
    pub fn from_populations<'a, I>(pops: I) -> Self
    where
        I: IntoIterator<Item = &'a BitPopulation>,
    {
        let mut b = FitBreakdown::default();
        for p in pops {
            let f = p.fit();
            match p.protection {
                Protection::None => b.sdc += f,
                Protection::Parity => b.due += f,
                Protection::Ecc => b.dce += f,
            }
        }
        b
    }

    /// Total FIT across classes.
    pub fn total(&self) -> f64 {
        self.sdc + self.due + self.dce
    }
}

/// Builds the two-population SDC model the paper's correlation study uses:
/// sequential bits at a given mean AVF plus (protected) array structures.
/// In "a typical modern microprocessor from Intel, about half of the
/// processor's total SDC SER comes from sequentials" (§1); the default
/// intrinsic rates are chosen arbitrarily (absolute FITs are normalized to
/// AU downstream).
pub fn core_model(
    seq_bits: u64,
    seq_avf: f64,
    array_bits: u64,
    array_avf: f64,
    fit_per_bit: f64,
) -> Vec<BitPopulation> {
    vec![
        BitPopulation::unprotected("sequentials", seq_bits, seq_avf, fit_per_bit),
        BitPopulation {
            name: "unprotected_arrays".to_owned(),
            bits: array_bits / 2,
            avf: array_avf.clamp(0.0, 1.0),
            intrinsic_fit_per_bit: fit_per_bit,
            protection: Protection::None,
        },
        BitPopulation {
            name: "parity_arrays".to_owned(),
            bits: array_bits / 2,
            avf: array_avf.clamp(0.0, 1.0),
            intrinsic_fit_per_bit: fit_per_bit,
            protection: Protection::Parity,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equation_one() {
        let p = BitPopulation::unprotected("x", 1000, 0.14, 1e-4);
        assert!((p.fit() - 0.14 * 1000.0 * 1e-4).abs() < 1e-15);
    }

    #[test]
    fn construction_clamps() {
        let p = BitPopulation::unprotected("x", 10, 3.0, -1.0);
        assert_eq!(p.avf, 1.0);
        assert_eq!(p.intrinsic_fit_per_bit, 0.0);
    }

    #[test]
    fn breakdown_routes_by_protection() {
        let pops = vec![
            BitPopulation::unprotected("a", 100, 0.5, 1.0),
            BitPopulation {
                name: "b".into(),
                bits: 100,
                avf: 0.5,
                intrinsic_fit_per_bit: 1.0,
                protection: Protection::Parity,
            },
            BitPopulation {
                name: "c".into(),
                bits: 100,
                avf: 0.5,
                intrinsic_fit_per_bit: 1.0,
                protection: Protection::Ecc,
            },
        ];
        let b = FitBreakdown::from_populations(&pops);
        assert_eq!(b.sdc, 50.0);
        assert_eq!(b.due, 50.0);
        assert_eq!(b.dce, 50.0);
        assert_eq!(b.total(), 150.0);
    }

    #[test]
    fn lower_avf_lowers_sdc() {
        let hi = FitBreakdown::from_populations(&core_model(100_000, 0.38, 50_000, 0.2, 1e-4));
        let lo = FitBreakdown::from_populations(&core_model(100_000, 0.14, 50_000, 0.2, 1e-4));
        assert!(lo.sdc < hi.sdc);
        // Parity arrays are DUE in both.
        assert_eq!(lo.due, hi.due);
    }
}
