//! Accelerated-beam measurement simulation.
//!
//! "The accelerated conditions were created at the Indiana University
//! Cyclotron Facility using a 200 MeV proton beam with variable flux"
//! (§6.2). The statistics of such a campaign are Poisson counting
//! statistics: under a flux acceleration factor *A*, a device with true
//! rate λ (errors per hour) observes `Poisson(λ·A·T)` errors over *T*
//! hours, and the inferred FIT carries a `±1.96·√N` style confidence
//! interval. This module samples exactly that process from a seeded RNG.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Configuration of one simulated beam run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BeamConfig {
    /// Flux acceleration factor relative to the natural environment.
    pub acceleration: f64,
    /// Beam time in hours.
    pub hours: f64,
    /// RNG seed for the error arrival process.
    pub seed: u64,
}

impl Default for BeamConfig {
    fn default() -> Self {
        BeamConfig {
            // A proton beam accelerates soft-error arrival by many orders
            // of magnitude relative to the terrestrial neutron flux.
            acceleration: 3.0e8,
            hours: 8.0,
            seed: 0xbea3,
        }
    }
}

/// One simulated measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BeamMeasurement {
    /// Errors counted during the run.
    pub observed_errors: u64,
    /// FIT inferred from the count (de-accelerated).
    pub measured_fit: f64,
    /// 95% confidence interval on the inferred FIT (counting statistics).
    pub fit_interval: (f64, f64),
}

impl BeamMeasurement {
    /// Relative half-width of the confidence interval (the "statistical
    /// error of the measured value", §6.2).
    pub fn relative_error(&self) -> f64 {
        if self.measured_fit == 0.0 {
            return f64::INFINITY;
        }
        (self.fit_interval.1 - self.fit_interval.0) / (2.0 * self.measured_fit)
    }
}

/// Samples a Poisson variate. Knuth's method for small λ, a normal
/// approximation (Box–Muller) for large λ.
pub fn sample_poisson(rng: &mut ChaCha8Rng, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        // Box–Muller normal approximation N(λ, λ).
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        let v = lambda + lambda.sqrt() * z;
        v.max(0.0).round() as u64
    }
}

/// Simulates one beam run against a device whose true (unaccelerated) SER
/// is `true_fit` (failures per 10⁹ hours).
pub fn run_beam(true_fit: f64, config: &BeamConfig) -> BeamMeasurement {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let rate_per_hour = true_fit.max(0.0) * 1e-9;
    let lambda = rate_per_hour * config.acceleration * config.hours;
    let n = sample_poisson(&mut rng, lambda);
    let denom = config.acceleration * config.hours;
    let to_fit = |count: f64| count / denom * 1e9;
    let sigma = (n as f64).sqrt();
    BeamMeasurement {
        observed_errors: n,
        measured_fit: to_fit(n as f64),
        fit_interval: (
            to_fit((n as f64 - 1.96 * sigma).max(0.0)),
            to_fit(n as f64 + 1.96 * sigma.max(1.0)),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_mean_is_lambda_small() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let lambda = 4.0;
        let n = 20_000;
        let total: u64 = (0..n).map(|_| sample_poisson(&mut rng, lambda)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - lambda).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_mean_is_lambda_large() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let lambda = 400.0;
        let n = 5_000;
        let total: u64 = (0..n).map(|_| sample_poisson(&mut rng, lambda)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - lambda).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        assert_eq!(sample_poisson(&mut rng, 0.0), 0);
        assert_eq!(sample_poisson(&mut rng, -1.0), 0);
    }

    #[test]
    fn measurement_recovers_true_fit() {
        let true_fit = 500.0;
        let m = run_beam(true_fit, &BeamConfig::default());
        assert!(m.observed_errors > 100, "enough counts for statistics");
        assert!(
            m.fit_interval.0 <= true_fit && true_fit <= m.fit_interval.1,
            "true value {true_fit} within CI {:?}",
            m.fit_interval
        );
        let rel = (m.measured_fit - true_fit).abs() / true_fit;
        assert!(rel < 0.2, "relative error {rel}");
    }

    #[test]
    fn measurement_is_deterministic_per_seed() {
        let cfg = BeamConfig::default();
        assert_eq!(run_beam(100.0, &cfg), run_beam(100.0, &cfg));
        let other = BeamConfig {
            seed: 99,
            ..BeamConfig::default()
        };
        // With different arrival randomness the counts differ (w.h.p.).
        assert_ne!(
            run_beam(100.0, &cfg).observed_errors,
            run_beam(100.0, &other).observed_errors
        );
    }

    #[test]
    fn more_beam_time_tightens_interval() {
        let short = run_beam(
            200.0,
            &BeamConfig {
                hours: 1.0,
                ..BeamConfig::default()
            },
        );
        let long = run_beam(
            200.0,
            &BeamConfig {
                hours: 64.0,
                ..BeamConfig::default()
            },
        );
        assert!(long.relative_error() < short.relative_error());
    }
}
