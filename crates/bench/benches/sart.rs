//! Criterion benchmarks for the core analysis paths: SART end-to-end,
//! symbolic re-evaluation, SFI per injection, the performance model, and
//! the loop-pAVF sweep — the machine-measured counterparts of experiments
//! E2/E5/E7/E9.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use seqavf::flow::{inputs_from_suite, run_suite};
use seqavf_core::compile::CompiledSweep;
use seqavf_core::engine::{SartConfig, SartEngine};
use seqavf_core::mapping::{PavfInputs, StructureMapping};
use seqavf_netlist::graph::NodeId;
use seqavf_netlist::synth::{generate, SynthConfig};
use seqavf_obs::Collector;
use seqavf_perf::pipeline::{run_ace, PerfConfig};
use seqavf_sfi::campaign::{run_campaign, CampaignConfig};
use seqavf_sfi::inject::{observation_points, run_injection, InjectConfig};
use seqavf_workloads::suite::{standard_suite, MixFamily, SuiteConfig};

fn bench_sart_full_run(c: &mut Criterion) {
    let design = generate(&SynthConfig::xeon_like(42));
    let mapping = StructureMapping::from_pairs(design.meta.structure_map.clone());
    let inputs = PavfInputs::new();
    c.bench_function("sart_full_run", |b| {
        b.iter(|| {
            let engine = SartEngine::new(&design.netlist, &mapping, SartConfig::default());
            std::hint::black_box(engine.run(&inputs))
        })
    });
}

fn bench_symbolic_reeval(c: &mut Criterion) {
    let design = generate(&SynthConfig::xeon_like(42));
    let mapping = StructureMapping::from_pairs(design.meta.structure_map.clone());
    let suite = run_suite(
        &standard_suite(&SuiteConfig {
            workloads: 4,
            len: 2_000,
            ..SuiteConfig::default()
        }),
        &PerfConfig::default(),
    );
    let inputs = inputs_from_suite(&suite);
    let engine = SartEngine::new(&design.netlist, &mapping, SartConfig::default());
    let result = engine.run(&inputs);
    c.bench_function("symbolic_reeval", |b| {
        b.iter(|| std::hint::black_box(result.reevaluate(&design.netlist, &inputs)))
    });
}

fn bench_sfi_injection(c: &mut Criterion) {
    let design = generate(&SynthConfig::xeon_like(42).scaled(0.3));
    let nl = &design.netlist;
    let obs = observation_points(nl);
    let target = nl.seq_nodes().next().expect("has sequentials");
    c.bench_function("sfi_single_injection", |b| {
        b.iter(|| {
            std::hint::black_box(run_injection(
                nl,
                target,
                &InjectConfig {
                    warmup: 8,
                    horizon: 100,
                    seed: 7,
                },
                &obs,
            ))
        })
    });
}

fn bench_sart_vs_sfi(c: &mut Criterion) {
    // E7: the per-node-AVF cost of the two techniques on the same design.
    let design = generate(&SynthConfig::xeon_like(42).scaled(0.3));
    let nl = &design.netlist;
    let mapping = StructureMapping::from_pairs(design.meta.structure_map.clone());
    let inputs = PavfInputs::new();
    let mut group = c.benchmark_group("sart_vs_sfi");
    group.bench_function("sart_all_nodes", |b| {
        b.iter(|| {
            let engine = SartEngine::new(nl, &mapping, SartConfig::default());
            std::hint::black_box(engine.run(&inputs))
        })
    });
    let one_node: Vec<NodeId> = nl.seq_nodes().take(1).collect();
    group.bench_function("sfi_one_node_10_injections", |b| {
        b.iter(|| {
            std::hint::black_box(run_campaign(
                nl,
                &one_node,
                &CampaignConfig {
                    injections_per_node: 10,
                    threads: 1,
                    ..CampaignConfig::default()
                },
            ))
        })
    });
    group.finish();
}

fn bench_perf_model(c: &mut Criterion) {
    let trace = MixFamily::builtin()[0].generate(0, 10_000, 42);
    c.bench_function("perf_model_10k_instructions", |b| {
        b.iter(|| std::hint::black_box(run_ace(&trace, &PerfConfig::default())))
    });
}

fn bench_loop_sweep_point(c: &mut Criterion) {
    // E2's inner loop: one closed-form sweep point.
    let design = generate(&SynthConfig::xeon_like(42));
    let mapping = StructureMapping::from_pairs(design.meta.structure_map.clone());
    let inputs = PavfInputs::new();
    let engine = SartEngine::new(&design.netlist, &mapping, SartConfig::default());
    let result = engine.run(&inputs);
    c.bench_function("loop_sweep_point", |b| {
        b.iter_batched(
            || {
                let mut r = result.clone();
                r.config.loop_pavf = 0.7;
                r
            },
            |r| std::hint::black_box(r.reevaluate(&design.netlist, &inputs)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_netlist_generation(c: &mut Criterion) {
    c.bench_function("synth_xeon_like", |b| {
        b.iter(|| std::hint::black_box(generate(&SynthConfig::xeon_like(42))))
    });
}

fn bench_relax_thread_scaling(c: &mut Criterion) {
    // The tentpole scaling curve: one full SART solve (dominated by the
    // sharded relaxation) at 1/2/4/8 worker threads over the same design.
    // On a multi-core host expect ≥2× at 4 threads; every point produces
    // bit-identical annotations (checked in tests and by the
    // `thread_scaling` harness binary).
    let design = generate(&SynthConfig::xeon_like(42).scaled(2.0));
    let mapping = StructureMapping::from_pairs(design.meta.structure_map.clone());
    let inputs = PavfInputs::new();
    let mut group = c.benchmark_group("relax_threads");
    for threads in [1usize, 2, 4, 8] {
        let engine = SartEngine::new(
            &design.netlist,
            &mapping,
            SartConfig {
                threads,
                ..SartConfig::default()
            },
        );
        group.bench_function(&format!("{threads}"), |b| {
            b.iter(|| std::hint::black_box(engine.run(&inputs)))
        });
    }
    // The observability budget check: the same 4-thread solve with a live
    // collector (one span + one counter update per sweep). The acceptance
    // bar is <5% regression against the untraced `4` point above.
    {
        let engine = SartEngine::new(
            &design.netlist,
            &mapping,
            SartConfig {
                threads: 4,
                ..SartConfig::default()
            },
        );
        group.bench_function("4_traced", |b| {
            b.iter(|| {
                let obs = Collector::new();
                std::hint::black_box(engine.run_traced(&inputs, &obs))
            })
        });
    }
    group.finish();
}

fn bench_relax_incremental(c: &mut Criterion) {
    // E13: full sweeps vs incremental dirty-FUB sweeps at 1 and 8
    // threads on the thread-scaling design. The incremental points must
    // not be slower than their full counterparts; the node-walk
    // reduction itself is deterministic and checked by the
    // `relax_incremental` harness binary and the property suite.
    let design = generate(&SynthConfig::xeon_like(42).scaled(2.0));
    let mapping = StructureMapping::from_pairs(design.meta.structure_map.clone());
    let inputs = PavfInputs::new();
    let mut group = c.benchmark_group("relax_incremental");
    for threads in [1usize, 8] {
        for incremental in [false, true] {
            let engine = SartEngine::new(
                &design.netlist,
                &mapping,
                SartConfig {
                    threads,
                    incremental,
                    ..SartConfig::default()
                },
            );
            let label = format!(
                "{}/{threads}",
                if incremental { "incremental" } else { "full" }
            );
            group.bench_function(&label, |b| {
                b.iter(|| std::hint::black_box(engine.run(&inputs)))
            });
        }
    }
    group.finish();
}

fn bench_reevaluate_many(c: &mut Criterion) {
    // Batch closed-form re-evaluation across workloads, the fan-out
    // companion of `symbolic_reeval`.
    let design = generate(&SynthConfig::xeon_like(42));
    let mapping = StructureMapping::from_pairs(design.meta.structure_map.clone());
    let engine = SartEngine::new(&design.netlist, &mapping, SartConfig::default());
    let result = engine.run(&PavfInputs::new());
    let tables: Vec<PavfInputs> = (0..16).map(|_| PavfInputs::new()).collect();
    let mut group = c.benchmark_group("reevaluate_many_16_workloads");
    for threads in [1usize, 4] {
        group.bench_function(&format!("{threads}"), |b| {
            b.iter(|| {
                std::hint::black_box(result.reevaluate_many(&design.netlist, &tables, threads))
            })
        });
    }
    group.finish();
}

fn bench_sweep_compiled(c: &mut Criterion) {
    // The compiled term DAG against the interpreted baseline on the same
    // 16-workload batch: `compiled/*` must beat `interpreted/*` at equal
    // thread counts (the sweep subsystem's acceptance bar).
    let design = generate(&SynthConfig::xeon_like(42));
    let mapping = StructureMapping::from_pairs(design.meta.structure_map.clone());
    let engine = SartEngine::new(&design.netlist, &mapping, SartConfig::default());
    let result = engine.run(&PavfInputs::new());
    let compiled = CompiledSweep::compile(&result, &design.netlist);
    let tables: Vec<PavfInputs> = (0..16)
        .map(|k| {
            let mut p = PavfInputs::new();
            for (_, name) in design.meta.structure_map.iter().take(8) {
                p.set_port(name.as_str(), 0.05 * k as f64 % 1.0, 0.5);
            }
            p
        })
        .collect();
    let mut group = c.benchmark_group("sweep_compiled_16_workloads");
    for threads in [1usize, 4] {
        group.bench_function(&format!("interpreted/{threads}"), |b| {
            b.iter(|| {
                std::hint::black_box(result.reevaluate_many(&design.netlist, &tables, threads))
            })
        });
        group.bench_function(&format!("compiled/{threads}"), |b| {
            b.iter(|| std::hint::black_box(compiled.evaluate_many(&tables, threads)))
        });
    }
    group.bench_function("compile_once", |b| {
        b.iter(|| std::hint::black_box(CompiledSweep::compile(&result, &design.netlist)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sart_full_run,
    bench_symbolic_reeval,
    bench_sfi_injection,
    bench_sart_vs_sfi,
    bench_perf_model,
    bench_loop_sweep_point,
    bench_netlist_generation,
    bench_relax_thread_scaling,
    bench_relax_incremental,
    bench_reevaluate_many,
    bench_sweep_compiled,
);
criterion_main!(benches);
