//! Criterion benchmarks for the netlist frontend — the machine-measured
//! counterpart of experiment E14: EXLIF parsing, parallel flattening,
//! SCC detection, and binary snapshot save/load on the same design.

use criterion::{criterion_group, criterion_main, Criterion};

use seqavf_netlist::exlif;
use seqavf_netlist::flatten;
use seqavf_netlist::scc::find_loops;
use seqavf_netlist::snapshot;
use seqavf_netlist::synth::{generate, SynthConfig};

fn bench_parse_flatten(c: &mut Criterion) {
    let design = generate(&SynthConfig::xeon_like(42));
    let src = exlif::write(&design.netlist);
    let ast = exlif::parse(&src).expect("round-trips");
    let nl = flatten::build_netlist(&ast).expect("flattens");
    let loops = find_loops(&nl);
    let bytes = snapshot::save(&nl, &loops);

    let mut group = c.benchmark_group("parse_flatten");
    group.bench_function("parse", |b| {
        b.iter(|| std::hint::black_box(exlif::parse(&src).unwrap()))
    });
    for threads in [1usize, 8] {
        group.bench_function(&format!("flatten/{threads}"), |b| {
            b.iter(|| std::hint::black_box(flatten::build_netlist_threaded(&ast, threads).unwrap()))
        });
    }
    group.bench_function("cold_parse_netlist", |b| {
        b.iter(|| std::hint::black_box(flatten::parse_netlist(&src).unwrap()))
    });
    group.bench_function("scc", |b| b.iter(|| std::hint::black_box(find_loops(&nl))));
    group.bench_function("snapshot_save", |b| {
        b.iter(|| std::hint::black_box(snapshot::save(&nl, &loops)))
    });
    group.bench_function("snapshot_load", |b| {
        b.iter(|| std::hint::black_box(snapshot::load(&bytes).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_parse_flatten);
criterion_main!(benches);
