//! Pins the bench harness's output discipline: every report a bench bin
//! writes lands under `results/`, never at the repo root (PR 9 moved
//! stray artifacts by hand once; this makes the regression impossible to
//! miss). The rules, enforced by scanning the crate's own sources:
//!
//! 1. Bench *bins* never call the filesystem write APIs directly — all
//!    emission funnels through `common::emit`.
//! 2. `common::emit` is the only place that names the `results/`
//!    directory, and it names nothing else.
//! 3. Library modules that need scratch space root it in
//!    `std::env::temp_dir()`, never in a relative path.

use std::path::{Path, PathBuf};

const WRITE_APIS: [&str; 4] = [
    "fs::write",
    "File::create",
    "create_dir",
    "OpenOptions::new",
];

fn src_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("src")
}

fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir).expect("bench src dir exists") {
        let path = entry.unwrap().path();
        if path.is_dir() {
            out.extend(rust_files(&path));
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out.sort();
    out
}

#[test]
fn bench_bins_never_touch_the_filesystem_directly() {
    for path in rust_files(&src_dir().join("bin")) {
        let text = std::fs::read_to_string(&path).unwrap();
        for api in WRITE_APIS {
            assert!(
                !text.contains(api),
                "{} calls `{api}` directly — bench bins must emit through \
                 common::emit so reports land under results/",
                path.display()
            );
        }
    }
}

#[test]
fn only_common_emit_names_the_results_directory() {
    for path in rust_files(&src_dir()) {
        let text = std::fs::read_to_string(&path).unwrap();
        let is_common = path.file_name().is_some_and(|n| n == "common.rs");
        if is_common {
            assert!(
                text.contains(r#"create_dir_all("results")"#),
                "common::emit must create results/ before writing"
            );
            assert!(
                text.contains(r#"format!("results/{name}.json")"#),
                "common::emit must write under results/, keyed by report name"
            );
            continue;
        }
        assert!(
            !text.contains("\"results"),
            "{} names the results directory — route output through \
             common::emit instead",
            path.display()
        );
    }
}

#[test]
fn library_write_sites_use_temp_scratch_not_relative_paths() {
    for path in rust_files(&src_dir()) {
        if path.starts_with(src_dir().join("bin"))
            || path.file_name().is_some_and(|n| n == "common.rs")
        {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let writes = WRITE_APIS.iter().any(|api| text.contains(api));
        if writes {
            assert!(
                text.contains("temp_dir()"),
                "{} writes to the filesystem without rooting its scratch \
                 in std::env::temp_dir() — a relative path would drift \
                 artifacts into the repo root",
                path.display()
            );
        }
    }
}
