//! Experiment harnesses reproducing every table and figure of the paper's
//! evaluation (§6), plus validation and ablation studies.
//!
//! Each module implements one experiment from the index in `DESIGN.md` and
//! exposes a `run(...)` function returning a serializable report plus a
//! plain-text rendering; the binaries in `src/bin/` are thin wrappers, and
//! the Criterion benches in `benches/` time the same code paths.
//!
//! | Module | Paper artifact |
//! |--------|----------------|
//! | [`fig8`] | Figure 8 — average sequential AVF vs loop-boundary pAVF |
//! | [`fig9`] | Figure 9 — per-FUB average sequential/node AVF |
//! | [`convergence`] | §6.1 — per-FUB mean pAVF vs relaxation iteration |
//! | [`fig10`] | Figure 10 — modeled vs measured SER (Lattice, MD5Sum) |
//! | [`headline`] | §1/§6 headline numbers (14% seq AVF, ~10% SDC cut, censuses) |
//! | [`speed`] | §3.1 vs §5 — SART vs SFI cost per statistically-significant AVF |
//! | [`accuracy`] | §3.1 — SART conservatism vs SFI ground truth |
//! | [`symbolic`] | §5.2 — closed-form re-evaluation vs full re-run |
//! | [`ablations`] | §4/§5.1 design-choice ablations |
//! | [`scaling`] | §1/§5.2 — SART cost vs design size |
//! | [`threads`] | sharded relaxation wall time vs worker-thread count |
//! | [`incremental`] | incremental dirty-FUB sweeps vs full sweeps |
//! | [`frontend`] | zero-copy frontend vs binary graph-snapshot load |
//! | [`production`] | thread-scaling curves and peak RSS at 100k+-node scale |
//! | [`service`] | AVF-as-a-service cold/warm latency and warm throughput |
//! | [`validate`] | fault-injection campaign trials/sec, kernel fast path, importance sampling |

pub mod ablations;
pub mod accuracy;
pub mod common;
pub mod convergence;
pub mod dagpatch;
pub mod fig10;
pub mod fig8;
pub mod fig9;
pub mod frontend;
pub mod headline;
pub mod incremental;
pub mod production;
pub mod scaling;
pub mod service;
pub mod speed;
pub mod symbolic;
pub mod threads;
pub mod validate;
pub mod warmstart;
