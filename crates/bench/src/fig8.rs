//! **E2 — Figure 8**: average sequential AVF as a function of the
//! loop-boundary pAVF.
//!
//! The paper sweeps the static pAVF injected at loop-boundary nodes from 0
//! to 100% and observes that (a) even a 100% loop pAVF does not saturate
//! the design's sequential AVFs, (b) the effect is non-linear, with a
//! "heel" in the curve around 30%, and (c) the overall variation is modest
//! because "the other pAVFs as well as the MIN functions do a very
//! effective job keeping the AVFs from saturating". They pick 0.3.
//!
//! Because the propagation is symbolic and the loop boundary is a single
//! injected term, the whole sweep re-evaluates closed forms — no walks are
//! re-run (§5.2).

use serde::{Deserialize, Serialize};

use crate::common::{flow_config, Scale};
use seqavf::flow::run_flow;

/// One sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoopSweepPoint {
    /// Injected loop-boundary pAVF.
    pub loop_pavf: f64,
    /// Design-wide mean sequential AVF.
    pub mean_seq_avf: f64,
}

/// The Figure 8 report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Report {
    /// Sweep points at 0.0, 0.1, …, 1.0.
    pub points: Vec<LoopSweepPoint>,
    /// Sequential bits on loops.
    pub loop_seq_bits: usize,
    /// Total sequential bits.
    pub total_seq_bits: usize,
}

impl Fig8Report {
    /// The "heel" of the curve (§4.3): the sweep point where the marginal
    /// benefit of lowering the loop pAVF further drops off, located as the
    /// point of largest curvature (second difference) in the series. The
    /// paper reads its heel at ~0.3 and adopts that value.
    pub fn heel(&self) -> Option<f64> {
        if self.points.len() < 3 {
            return None;
        }
        let mut best = (0.0f64, None);
        for w in self.points.windows(3) {
            let curvature =
                (w[2].mean_seq_avf - w[1].mean_seq_avf) - (w[1].mean_seq_avf - w[0].mean_seq_avf);
            if curvature.abs() > best.0 {
                best = (curvature.abs(), Some(w[1].loop_pavf));
            }
        }
        best.1
    }

    /// Spread of the sweep: `max − min` of the mean sequential AVF.
    pub fn spread(&self) -> f64 {
        let min = self
            .points
            .iter()
            .map(|p| p.mean_seq_avf)
            .fold(1.0, f64::min);
        let max = self
            .points
            .iter()
            .map(|p| p.mean_seq_avf)
            .fold(0.0, f64::max);
        max - min
    }

    /// Renders the sweep as a text table with a bar chart.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Figure 8 — mean sequential AVF vs loop-boundary pAVF\n\
             ({} of {} sequential bits on loops, {:.2}%)\n",
            self.loop_seq_bits,
            self.total_seq_bits,
            100.0 * self.loop_seq_bits as f64 / self.total_seq_bits.max(1) as f64
        );
        for p in &self.points {
            let bar = "#".repeat((p.mean_seq_avf * 120.0) as usize);
            let _ = writeln!(
                out,
                "loop pAVF {:>4.1}  {:.4}  {}",
                p.loop_pavf, p.mean_seq_avf, bar
            );
        }
        let _ = writeln!(
            out,
            "\nspread (max-min) = {:.4}; no saturation at loop pAVF = 1.0",
            self.spread()
        );
        if let Some(h) = self.heel() {
            let _ = writeln!(out, "heel of the curve at loop pAVF ≈ {h:.1} (paper: ~0.3)");
        }
        out
    }
}

/// Runs the Figure 8 sweep.
pub fn run(scale: Scale, seed: u64) -> Fig8Report {
    let cfg = flow_config(scale, seed);
    let out = run_flow(&cfg);
    let nl = &out.design.netlist;

    let mut points = Vec::new();
    for k in 0..=10 {
        let loop_pavf = k as f64 / 10.0;
        // Closed-form re-evaluation: change only the injected loop term.
        let mut result = out.result.clone();
        result.config.loop_pavf = loop_pavf;
        let avfs = result.reevaluate(nl, &out.inputs);
        let mut sum = 0.0;
        let mut count = 0usize;
        for id in nl.seq_nodes() {
            sum += avfs[id.index()];
            count += 1;
        }
        points.push(LoopSweepPoint {
            loop_pavf,
            mean_seq_avf: if count == 0 { 0.0 } else { sum / count as f64 },
        });
    }
    Fig8Report {
        points,
        loop_seq_bits: out.result.roles.loop_seq_bits(),
        total_seq_bits: nl.seq_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_has_paper_shape() {
        let r = run(Scale::Quick, 3);
        assert_eq!(r.points.len(), 11);
        // Monotone non-decreasing in the loop pAVF.
        for w in r.points.windows(2) {
            assert!(
                w[1].mean_seq_avf >= w[0].mean_seq_avf - 1e-12,
                "sweep must be monotone"
            );
        }
        // Non-saturating: even at loop pAVF = 1.0 the average stays well
        // below 100% (the paper's key observation).
        let last = r.points.last().unwrap();
        assert!(
            last.mean_seq_avf < 0.8,
            "AVF saturated: {}",
            last.mean_seq_avf
        );
        // Modest overall variation.
        assert!(r.spread() < 0.3, "spread {}", r.spread());
        assert!(r.loop_seq_bits > 0);
    }

    #[test]
    fn heel_is_a_sweep_point() {
        let r = run(Scale::Quick, 3);
        let h = r.heel().expect("11-point sweep has a heel");
        assert!((0.0..=1.0).contains(&h));
        assert!(r.points.iter().any(|p| (p.loop_pavf - h).abs() < 1e-12));
    }

    #[test]
    fn render_contains_all_points() {
        let r = run(Scale::Quick, 3);
        let text = r.render();
        assert!(text.contains("loop pAVF  0.0"));
        assert!(text.contains("loop pAVF  1.0"));
    }
}
