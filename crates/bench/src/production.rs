//! **E15 — production-scale pipeline**: thread-scaling curves and
//! per-phase peak-RSS at reference (~3k-node) and production (100k+-node)
//! design sizes.
//!
//! Every speedup claim in BENCH_1–BENCH_5 was measured on the ~3k-node
//! `xeon_like` reference — where BENCH_5 caught parallel flatten actually
//! *losing* 1.5× to the sequential path. This study re-proves the claims
//! where they matter: a multi-core scaled design (replicated cores behind
//! a shared uncore, ≥100k nodes) is pushed through flatten, relaxation,
//! and compiled-sweep re-evaluation at 1/8/32 threads, with the resident
//! high-water mark sampled after every phase.
//!
//! Three things are checked, not just timed:
//!
//! - **Small-scale parity.** Below the flatten work threshold the public
//!   entry point must fall back to the sequential path, so the reference
//!   design's "8-thread" time equals its 1-thread time (±5%) instead of
//!   inverting. The raw parallel machinery is still curve-measured via
//!   `build_netlist_threaded_exact`.
//! - **Thread identity.** AVF vectors at 1/8/32 relaxation threads must
//!   be bit-identical, at every scale.
//! - **Warm/cold identity.** The AVF computed on a snapshot-restored
//!   graph must be bit-identical to the cold-built one.
//!
//! Wall-clock speedups are a property of the *host*: on a single-core
//! runner every curve is flat (≈1.0×) and the honest headline is parity,
//! not speedup. `host_parallelism` is recorded in the report so readers
//! can tell which regime a number came from; CI's multi-core `scale-smoke`
//! job exercises the >1× regime.

use serde::{Deserialize, Serialize};

use seqavf_core::engine::{SartConfig, SartEngine};
use seqavf_core::mapping::{PavfInputs, StructureMapping};
use seqavf_netlist::exlif;
use seqavf_netlist::flatten;
use seqavf_netlist::scc::find_loops;
use seqavf_netlist::snapshot;
use seqavf_netlist::synth::{generate, SynthConfig};

use crate::common::{Provenance, Scale};

/// Thread counts every phase is swept over.
pub const THREAD_COUNTS: [usize; 3] = [1, 8, 32];

/// One (threads, wall-time) sample of a phase sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhasePoint {
    /// Worker threads used.
    pub threads: usize,
    /// Best-of wall time, milliseconds.
    pub ms: f64,
    /// Single-thread time / this time.
    pub speedup: f64,
}

/// Resident-memory high-water mark sampled after a phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RssSample {
    /// Phase label (`generate`, `flatten`, `scc`, `relax`, …).
    pub phase: String,
    /// `VmHWM` from `/proc/self/status` after the phase, KiB. The kernel
    /// counter is monotone, so each sample is the process-wide peak up to
    /// and including its phase; per-phase growth is the delta to the
    /// previous row.
    pub peak_rss_kb: u64,
}

/// All measurements for one design size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalePoint {
    /// Human label (`xeon_like`, `xeon_like_x8 @ 2.0`, …).
    pub label: String,
    /// Nodes in the design.
    pub nodes: usize,
    /// Sequential nodes.
    pub seq_nodes: usize,
    /// Fan-in edges.
    pub edges: usize,
    /// FUB partitions (the relaxation parallelism grain).
    pub fubs: usize,
    /// EXLIF source size, bytes.
    pub exlif_bytes: usize,
    /// Binary snapshot size, bytes.
    pub snapshot_bytes: usize,
    /// Flatten thread curve via `build_netlist_threaded_exact` (the raw
    /// parallel machinery, no sequential fallback).
    pub flatten: Vec<PhasePoint>,
    /// Flatten via the *public* entry at 8 threads — equals the 1-thread
    /// time when the sequential fallback engages.
    pub flatten_public_8t_ms: f64,
    /// Whether this design's work estimate fell below the parallel
    /// crossover (public entry ran sequentially).
    pub sequential_fallback_engaged: bool,
    /// 1-thread / best parallel flatten time from the exact curve.
    pub flatten_parallel_speedup: f64,
    /// Public 8-thread / public 1-thread flatten time, interleaved —
    /// the parity check; ≈1.0 when the fallback engages.
    pub small_scale_parity: f64,
    /// Relaxation thread curve via [`SartEngine::run_exact`] (the raw
    /// sharded machinery, no sequential fallback).
    pub relax: Vec<PhasePoint>,
    /// Relaxation via the *public* entry at 8 threads — equals the
    /// 1-thread time when the small-design clamp engages.
    pub relax_public_8t_ms: f64,
    /// Whether the design fell below the relaxation parallel crossover
    /// (public entry relaxed sequentially regardless of `threads`).
    pub relax_sequential_fallback_engaged: bool,
    /// Public 8-thread / public 1-thread relaxation time, interleaved —
    /// the parity check; ≈1.0 when the fallback engages.
    pub relax_small_scale_parity: f64,
    /// Compiled-sweep re-evaluation thread curve (batch of workload
    /// tables against the stored closed forms).
    pub sweep: Vec<PhasePoint>,
    /// AVF vectors bit-identical across all relaxation thread counts.
    pub avf_identical_across_threads: bool,
    /// AVF on the snapshot-restored graph bit-identical to the cold one.
    pub avf_identical_warm_cold: bool,
    /// Peak-RSS samples in phase order.
    pub rss: Vec<RssSample>,
}

/// The production-scale study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProductionReport {
    /// Measurement provenance (base design digest, host, thread counts).
    pub provenance: Provenance,
    /// `std::thread::available_parallelism()` on the measuring host —
    /// wall-clock speedups above 1.0 require this to exceed 1.
    pub host_parallelism: usize,
    /// Measured design sizes, ascending.
    pub points: Vec<ScalePoint>,
}

impl ProductionReport {
    /// Renders the per-scale tables.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "production-scale study (host parallelism: {})",
            self.host_parallelism
        );
        for p in &self.points {
            let _ = writeln!(
                out,
                "\n== {} — {} nodes, {} seq, {} edges, {} FUBs\n\
                 EXLIF {} bytes, snapshot {} bytes ({})",
                p.label,
                p.nodes,
                p.seq_nodes,
                p.edges,
                p.fubs,
                p.exlif_bytes,
                p.snapshot_bytes,
                if p.snapshot_bytes < p.exlif_bytes {
                    "smaller than source"
                } else {
                    "LARGER than source"
                },
            );
            let _ = writeln!(
                out,
                "{:<10} {:>14} {:>14} {:>14}",
                "threads", "flatten", "relax", "sweep"
            );
            for i in 0..p.flatten.len() {
                let _ = writeln!(
                    out,
                    "{:<10} {:>11.3} ms {:>11.3} ms {:>11.3} ms",
                    p.flatten[i].threads, p.flatten[i].ms, p.relax[i].ms, p.sweep[i].ms
                );
            }
            let _ =
                writeln!(
                out,
                "flatten speedup (exact 1t/best): {:.2}x   public 8t parity: {:.2}   fallback: {}",
                p.flatten_parallel_speedup,
                p.small_scale_parity,
                if p.sequential_fallback_engaged { "sequential" } else { "parallel" },
            );
            let _ = writeln!(
                out,
                "relax public 8t parity: {:.2}   fallback: {}",
                p.relax_small_scale_parity,
                if p.relax_sequential_fallback_engaged {
                    "sequential"
                } else {
                    "parallel"
                },
            );
            let _ = writeln!(
                out,
                "AVF identical across threads: {}   warm/cold identical: {}",
                if p.avf_identical_across_threads {
                    "yes"
                } else {
                    "NO (BUG)"
                },
                if p.avf_identical_warm_cold {
                    "yes"
                } else {
                    "NO (BUG)"
                },
            );
            let _ = writeln!(out, "{:<18} {:>14}", "phase", "peak RSS (KiB)");
            for r in &p.rss {
                let _ = writeln!(out, "{:<18} {:>14}", r.phase, r.peak_rss_kb);
            }
        }
        out
    }
}

/// Reads the process resident high-water mark (`VmHWM`) in KiB.
pub fn peak_rss_kb() -> u64 {
    let status = match std::fs::read_to_string("/proc/self/status") {
        Ok(s) => s,
        Err(_) => return 0,
    };
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn best_of_ms<T>(repeats: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..repeats {
        let t0 = std::time::Instant::now();
        let v = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        last = Some(v);
    }
    (best, last.expect("at least one repeat"))
}

/// A small batch of distinct workload pAVF tables over the perf-catalog
/// structure names, for the sweep-re-evaluation curve.
fn workload_tables(count: usize) -> Vec<PavfInputs> {
    let names = [
        "fetch_buffer",
        "itlb",
        "btb",
        "ras",
        "uop_queue",
        "rat",
        "free_list",
        "issue_queue",
        "bypass",
        "fp_regfile",
        "dtlb",
        "load_queue",
        "store_queue",
        "rob",
        "prf",
        "csr_bank",
    ];
    (0..count)
        .map(|w| {
            let mut t = PavfInputs::new();
            for (i, name) in names.iter().enumerate() {
                // Deterministic spread in (0, 0.9]; varies per workload.
                let r = 0.05 + 0.85 * ((w * 7 + i * 3) % 17) as f64 / 17.0;
                let wr = 0.05 + 0.85 * ((w * 11 + i * 5) % 13) as f64 / 13.0;
                t.set_port(*name, r, wr);
            }
            t
        })
        .collect()
}

/// Measures one design size end to end.
pub fn measure_point(label: &str, config: &SynthConfig, repeats: usize) -> ScalePoint {
    let mut rss = Vec::new();
    let sample = |phase: &str, rss: &mut Vec<RssSample>| {
        rss.push(RssSample {
            phase: phase.to_owned(),
            peak_rss_kb: peak_rss_kb(),
        });
    };

    let design = generate(config);
    sample("generate", &mut rss);
    let src = exlif::write(&design.netlist);
    let ast = exlif::parse(&src).expect("generated EXLIF parses");

    // Flatten curve on the raw parallel machinery.
    let mut flatten_points = Vec::new();
    let mut flat_1t = f64::INFINITY;
    let mut nl = None;
    for &threads in &THREAD_COUNTS {
        let (ms, graph) = best_of_ms(repeats, || {
            flatten::build_netlist_threaded_exact(&ast, threads).expect("flattens")
        });
        if threads == 1 {
            flat_1t = ms;
        }
        flatten_points.push(PhasePoint {
            threads,
            ms,
            speedup: flat_1t / ms.max(1e-9),
        });
        nl = Some(graph);
    }
    let nl = nl.expect("at least one thread count");
    sample("flatten", &mut rss);

    // The public entry applies the work threshold. Measure its 1- and
    // 8-thread times interleaved so the parity ratio compares equally
    // warm code, not a cold first pass against a hot later one.
    let est = flatten::estimated_flat_stmts(&ast);
    let mut public_1t_ms = f64::INFINITY;
    let mut flatten_public_8t_ms = f64::INFINITY;
    for _ in 0..repeats * 2 {
        let t0 = std::time::Instant::now();
        let _ = flatten::build_netlist_threaded(&ast, 1).expect("flattens");
        public_1t_ms = public_1t_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        let t0 = std::time::Instant::now();
        let _ = flatten::build_netlist_threaded(&ast, 8).expect("flattens");
        flatten_public_8t_ms = flatten_public_8t_ms.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    let best_parallel = flatten_points[1..]
        .iter()
        .map(|p| p.ms)
        .fold(f64::INFINITY, f64::min);

    let loops = find_loops(&nl);
    sample("scc", &mut rss);

    let mapping = StructureMapping::from_pairs(design.meta.structure_map.clone());
    let inputs = PavfInputs::new();

    // Relaxation curve on the raw sharded machinery (`run_exact`), with
    // the AVF identity check folded in.
    let mut relax_points = Vec::new();
    let mut relax_1t = f64::INFINITY;
    let mut baseline_avf: Option<Vec<f64>> = None;
    let mut avf_identical_across_threads = true;
    let mut result_for_sweep = None;
    for &threads in &THREAD_COUNTS {
        let engine = SartEngine::new_with_loops(
            &nl,
            &mapping,
            SartConfig {
                threads,
                ..SartConfig::default()
            },
            &loops,
        );
        let (ms, result) = best_of_ms(repeats, || engine.run_exact(&inputs));
        if threads == 1 {
            relax_1t = ms;
        }
        match &baseline_avf {
            None => baseline_avf = Some(result.avf.clone()),
            Some(base) => {
                if base != &result.avf {
                    avf_identical_across_threads = false;
                }
            }
        }
        relax_points.push(PhasePoint {
            threads,
            ms,
            speedup: relax_1t / ms.max(1e-9),
        });
        result_for_sweep = Some(result);
    }
    let result = result_for_sweep.expect("at least one relax point");
    sample("relax", &mut rss);

    // The public entry applies the relaxation work threshold. Interleaved
    // 1t/8t measurement, same rationale as the flatten parity above.
    let engine_1t = SartEngine::new_with_loops(
        &nl,
        &mapping,
        SartConfig {
            threads: 1,
            ..SartConfig::default()
        },
        &loops,
    );
    let engine_8t = SartEngine::new_with_loops(
        &nl,
        &mapping,
        SartConfig {
            threads: 8,
            ..SartConfig::default()
        },
        &loops,
    );
    let mut relax_public_1t_ms = f64::INFINITY;
    let mut relax_public_8t_ms = f64::INFINITY;
    let mut relax_effective_8t = 8;
    for _ in 0..repeats {
        let t0 = std::time::Instant::now();
        let _ = engine_1t.run(&inputs);
        relax_public_1t_ms = relax_public_1t_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        let t0 = std::time::Instant::now();
        let public_8t = engine_8t.run(&inputs);
        relax_public_8t_ms = relax_public_8t_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        relax_effective_8t = public_8t
            .outcome
            .trace
            .iter()
            .map(|s| s.effective_threads)
            .max()
            .unwrap_or(1);
    }

    // Compiled-sweep curve: batch re-evaluation of workload tables
    // against the stored closed forms.
    let tables = workload_tables(16);
    let mut sweep_points = Vec::new();
    let mut sweep_1t = f64::INFINITY;
    for &threads in &THREAD_COUNTS {
        let (ms, _) = best_of_ms(repeats, || result.reevaluate_many(&nl, &tables, threads));
        if threads == 1 {
            sweep_1t = ms;
        }
        sweep_points.push(PhasePoint {
            threads,
            ms,
            speedup: sweep_1t / ms.max(1e-9),
        });
    }
    sample("sweep", &mut rss);

    // Warm path: snapshot round-trip, then re-solve on the restored
    // graph and compare AVFs bit for bit.
    let bytes = snapshot::save(&nl, &loops);
    sample("snapshot_save", &mut rss);
    let (warm_nl, warm_loops) = snapshot::load(&bytes).expect("snapshot loads");
    sample("snapshot_load", &mut rss);
    let warm_engine =
        SartEngine::new_with_loops(&warm_nl, &mapping, SartConfig::default(), &warm_loops);
    let warm_result = warm_engine.run(&inputs);
    let avf_identical_warm_cold = baseline_avf.as_deref() == Some(warm_result.avf.as_slice());

    let edges = nl.nodes().map(|id| nl.fanin(id).len()).sum();
    ScalePoint {
        label: label.to_owned(),
        nodes: nl.node_count(),
        seq_nodes: nl.seq_count(),
        edges,
        fubs: nl.fub_count(),
        exlif_bytes: src.len(),
        snapshot_bytes: bytes.len(),
        flatten: flatten_points,
        flatten_public_8t_ms,
        sequential_fallback_engaged: est < 20_000,
        flatten_parallel_speedup: flat_1t / best_parallel.max(1e-9),
        small_scale_parity: flatten_public_8t_ms / public_1t_ms.max(1e-9),
        relax: relax_points,
        relax_public_8t_ms,
        relax_sequential_fallback_engaged: relax_effective_8t == 1,
        relax_small_scale_parity: relax_public_8t_ms / relax_public_1t_ms.max(1e-9),
        sweep: sweep_points,
        avf_identical_across_threads,
        avf_identical_warm_cold,
        rss,
    }
}

/// Runs the study. `Quick` measures the reference design plus the ~100k
/// 8-core point; `Full` adds the ~1M-node 16-core point.
pub fn run(scale: Scale, seed: u64) -> ProductionReport {
    // Small first: VmHWM is process-monotone, so measuring ascending
    // keeps each point's samples meaningful.
    let mut specs = vec![
        ("xeon_like", SynthConfig::xeon_like(seed), 15usize),
        (
            "xeon_like_x8 @ 2.0",
            SynthConfig::xeon_like(seed).scaled(2.0).with_cores(8),
            2usize,
        ),
    ];
    if scale == Scale::Full {
        specs.push((
            "xeon_like_x16 @ 4.0",
            SynthConfig::xeon_like(seed).scaled(4.0).with_cores(16),
            1usize,
        ));
    }
    ProductionReport {
        provenance: Provenance::capture(
            generate(&SynthConfig::xeon_like(seed))
                .netlist
                .content_digest(),
            &[1, 8, 32],
        ),
        host_parallelism: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        points: specs
            .into_iter()
            .map(|(label, cfg, repeats)| measure_point(label, &cfg, repeats))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_point_has_parity_and_identity() {
        let p = measure_point("xeon_like", &SynthConfig::xeon_like(42), 2);
        assert!(p.sequential_fallback_engaged, "3k design must fall back");
        assert!(
            (p.small_scale_parity - 1.0).abs() < 0.25,
            "public 8t should track 1t at small scale, got {:.2}",
            p.small_scale_parity
        );
        assert!(
            p.relax_sequential_fallback_engaged,
            "3k design must relax sequentially through the public entry"
        );
        assert!(
            (p.relax_small_scale_parity - 1.0).abs() < 0.35,
            "public 8t relax should track 1t at small scale, got {:.2}",
            p.relax_small_scale_parity
        );
        assert!(p.avf_identical_across_threads);
        assert!(p.avf_identical_warm_cold);
        assert!(p.snapshot_bytes < p.exlif_bytes);
        assert!(p.rss.iter().all(|r| r.peak_rss_kb > 0));
    }
}
