//! **E9 — closed-form re-evaluation** (§5.2): "any subsequent sequential
//! AVF computations on this particular design simply needs to generate new
//! pAVFs from the ACE model then plug those values into the closed form
//! equations … No subsequent sequential AVF computation needs to re-run
//! the SART or relaxation stages."
//!
//! This experiment measures the speedup of the closed-form path over a
//! full SART re-run for a fresh workload, verifies they agree exactly, and
//! reports the symbolic-engine statistics (distinct term sets, set-union
//! dedup factor).

use serde::{Deserialize, Serialize};

use crate::common::{flow_config, Scale};
use seqavf::flow::{inputs_from_report, run_flow};
use seqavf_core::classify::classify;
use seqavf_core::engine::SartEngine;
use seqavf_core::numeric::solve_parallel;
use seqavf_core::walk::{prepare, Propagator};
use seqavf_netlist::scc::find_loops;
use seqavf_perf::pipeline::run_ace;
use seqavf_workloads::suite::MixFamily;

/// The symbolic re-evaluation report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SymbolicReport {
    /// Nodes in the design.
    pub nodes: usize,
    /// Distinct pAVF terms (structure ports + injected state).
    pub terms: usize,
    /// Distinct interned term sets across the whole design.
    pub distinct_sets: usize,
    /// Sharing factor: node annotations per distinct set.
    pub sharing_factor: f64,
    /// Full SART re-run wall-clock, seconds.
    pub full_run_seconds: f64,
    /// Closed-form re-evaluation wall-clock, seconds.
    pub reeval_seconds: f64,
    /// Speedup of re-evaluation over the full run.
    pub speedup: f64,
    /// Largest per-node AVF difference between the two paths (must be ~0).
    pub max_difference: f64,
    /// Mean sequential AVF under the naive numeric (capped-sum) union —
    /// the engine one gets *without* the paper's set-theoretic dedup.
    pub numeric_seq_avf: f64,
    /// Mean sequential AVF under the symbolic set-union engine.
    pub symbolic_seq_avf: f64,
    /// Nodes where the numeric value strictly exceeds the symbolic value
    /// (reconvergent fan-in double-counted by the naive union).
    pub dedup_wins: usize,
}

impl SymbolicReport {
    /// Renders the report.
    pub fn render(&self) -> String {
        format!(
            "Symbolic closed-form re-evaluation (§5.2)\n\
             design: {} nodes, {} pAVF terms, {} distinct term sets\n\
             sharing factor: {:.1} annotations per set\n\
             full SART run:  {:.4} s\n\
             re-evaluation:  {:.6} s\n\
             speedup:        {:.0}×\n\
             max per-node difference: {:.2e} (exact reuse)\n\
             set-union dedup: symbolic mean seq AVF {:.4} vs naive numeric {:.4}\n\
             ({} nodes refined by set semantics)\n",
            self.nodes,
            self.terms,
            self.distinct_sets,
            self.sharing_factor,
            self.full_run_seconds,
            self.reeval_seconds,
            self.speedup,
            self.max_difference,
            self.symbolic_seq_avf,
            self.numeric_seq_avf,
            self.dedup_wins,
        )
    }
}

/// Runs the symbolic re-evaluation study.
pub fn run(scale: Scale, seed: u64) -> SymbolicReport {
    let cfg = flow_config(scale, seed);
    let out = run_flow(&cfg);
    let nl = &out.design.netlist;

    // A fresh workload the closed forms have never seen.
    let fresh = MixFamily::builtin()[2].generate(99, cfg.suite.len, seed ^ 0xfeed);
    let rep = run_ace(&fresh, &cfg.perf);
    let new_inputs = inputs_from_report(&rep);

    // Path 1: closed-form re-evaluation.
    let t0 = std::time::Instant::now();
    let cheap = out.result.reevaluate(nl, &new_inputs);
    let reeval_seconds = t0.elapsed().as_secs_f64();

    // Path 2: full SART re-run (prepare + relax + resolve).
    let t1 = std::time::Instant::now();
    let engine = SartEngine::new(nl, &out.mapping, cfg.sart.clone());
    let fresh_result = engine.run(&new_inputs);
    let full_run_seconds = t1.elapsed().as_secs_f64();

    let max_difference = nl
        .nodes()
        .map(|id| (cheap[id.index()] - fresh_result.avf(id)).abs())
        .fold(0.0, f64::max);

    // Set-union dedup ablation: the naive numeric engine on the suite
    // inputs, compared against the symbolic fixpoint node-by-node.
    let loops = find_loops(nl);
    let roles = classify(nl, &loops, &cfg.sart.ctrl_patterns);
    let mut arena = seqavf_core::arena::UnionArena::new();
    let prep = prepare(nl, roles, &out.mapping, &mut arena);
    let prop = Propagator::new(nl, prep, arena);
    let values = out.result.term_values(&out.inputs);
    let numeric = solve_parallel(&prop, &values, cfg.sart.max_iterations, 4, 1e-12);
    let set_vals = out.result.arena.eval_all(&values);
    let mut numeric_sum = 0.0;
    let mut symbolic_sum = 0.0;
    let mut dedup_wins = 0usize;
    let mut seq_n = 0usize;
    for id in nl.seq_nodes() {
        let i = id.index();
        let sym = set_vals[out.result.fwd[i].index()].min(set_vals[out.result.bwd[i].index()]);
        let num = numeric.avf(id);
        numeric_sum += num;
        symbolic_sum += sym;
        if num > sym + 1e-12 {
            dedup_wins += 1;
        }
        seq_n += 1;
    }
    let seq_n = seq_n.max(1) as f64;

    SymbolicReport {
        nodes: nl.node_count(),
        terms: out.result.terms.len(),
        distinct_sets: out.result.arena.len(),
        sharing_factor: (2 * nl.node_count()) as f64 / out.result.arena.len().max(1) as f64,
        full_run_seconds,
        reeval_seconds,
        speedup: full_run_seconds / reeval_seconds.max(1e-9),
        max_difference,
        numeric_seq_avf: numeric_sum / seq_n,
        symbolic_seq_avf: symbolic_sum / seq_n,
        dedup_wins,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_forms_reproduce_full_run_exactly() {
        let r = run(Scale::Quick, 23);
        assert!(
            r.max_difference < 1e-12,
            "closed-form reuse must be exact, diff {}",
            r.max_difference
        );
    }

    #[test]
    fn reevaluation_is_much_faster() {
        let r = run(Scale::Quick, 23);
        assert!(r.speedup > 5.0, "speedup {} too small", r.speedup);
    }

    #[test]
    fn numeric_union_dominates_symbolic() {
        let r = run(Scale::Quick, 23);
        assert!(
            r.numeric_seq_avf >= r.symbolic_seq_avf - 1e-12,
            "naive sums must be at least as conservative: {} vs {}",
            r.numeric_seq_avf,
            r.symbolic_seq_avf
        );
        assert!(
            r.dedup_wins > 0,
            "reconvergent paths exist, so dedup must refine somewhere"
        );
    }

    #[test]
    fn hash_consing_shares_heavily() {
        let r = run(Scale::Quick, 23);
        assert!(
            r.sharing_factor > 3.0,
            "expected heavy set sharing, factor {}",
            r.sharing_factor
        );
        assert!(r.distinct_sets < 2 * r.nodes);
    }
}
