//! E19 — incremental sweep-DAG patching latency (`BENCH_10.json`).
//!
//! E18 measured the *solve* half of the interactive-edit loop: warm
//! relaxation re-walks only the dirty cone. This experiment measures the
//! other half — rebuilding the compiled symbolic sweep DAG. The cold
//! path pays a full [`CompiledSweep::compile`] (O(nodes) lowering) after
//! every edit; the patch path reuses the previous revision's DAG,
//! relocating clean FUBs' slots through a compaction remap and
//! re-lowering only the dirty cone
//! ([`CompiledSweep::patch_traced`]).
//!
//! Per edit magnitude (one FUB / 5% of FUBs / full rewrite) we report
//! end-to-end warm latency (warm relax + patch) against end-to-end cold
//! latency (cold relax + full compile), plus how many DAG ops the patch
//! actually touched. Bit-identity of the patched DAG against an
//! independent cold compile is checked before any ratio is reported.
//!
//! The acceptance bar is a ≥3× wall speedup for the one-FUB edit on the
//! production-size (~102k node) design; the full-rewrite row documents
//! the honest ~1× floor where the patch degrades to a rebuild.

use std::time::Instant;

use serde::{Deserialize, Serialize};

use seqavf_core::compile::CompiledSweep;
use seqavf_core::engine::{SartConfig, SartEngine, WarmStatus};
use seqavf_core::fixpoint::StoredFixpoint;
use seqavf_core::mapping::{PavfInputs, StructureMapping};
use seqavf_netlist::exlif;
use seqavf_netlist::flatten;
use seqavf_netlist::synth::{generate, SynthConfig};

use crate::common::{Provenance, Scale};
use crate::warmstart::flip_spread;

/// One edit magnitude's cold-rebuild vs patch comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EditPoint {
    /// Edit kind: `one_fub`, `five_percent_fubs`, or `full_rewrite`.
    pub edit: String,
    /// Gates flipped in the EXLIF text to produce the edit.
    pub flipped_gates: usize,
    /// FUBs whose content digest changed.
    pub dirty_fubs: usize,
    /// Whether the patch applied; `false` means it degraded to a full
    /// rebuild (the fallback the full-rewrite row is expected to hit).
    pub patched: bool,
    /// Why the patch fell back, when it did.
    pub rebuild_reason: Option<String>,
    /// DAG ops the patch wrote (re-lowered slots + new ops).
    pub ops_patched: usize,
    /// Ops tombstoned and compacted away.
    pub ops_orphaned: usize,
    /// Ops in the cold-compiled DAG of the edited revision.
    pub total_ops: usize,
    /// Cold relax + full compile wall time, milliseconds.
    pub cold_wall_ms: f64,
    /// Warm relax + patch (or fallback rebuild) wall time, milliseconds.
    pub warm_wall_ms: f64,
    /// `cold_wall_ms / warm_wall_ms`.
    pub wall_speedup: f64,
    /// Whether the patched DAG's sweep matched the cold-compiled DAG's
    /// bit for bit.
    pub bit_identical: bool,
}

/// One design size's measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Design label.
    pub label: String,
    /// Nodes in the design.
    pub nodes: usize,
    /// FUB partitions.
    pub fubs: usize,
    /// Ops in the base revision's compiled DAG.
    pub base_ops: usize,
    /// Base-revision cold solve + compile (the run that paid for the
    /// artifacts the warm path reuses).
    pub base_build_ms: f64,
    /// One point per edit magnitude.
    pub edits: Vec<EditPoint>,
}

/// The E19 report, emitted as `BENCH_10.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DagPatchReport {
    /// Measurement provenance (base design digest, host, thread counts).
    pub provenance: Provenance,
    /// One entry per design size, ascending.
    pub points: Vec<DesignPoint>,
}

impl DagPatchReport {
    /// The one-FUB wall speedup on the largest design — the acceptance
    /// metric.
    pub fn headline_wall_speedup(&self) -> Option<f64> {
        let p = self.points.last()?;
        p.edits
            .iter()
            .find(|e| e.edit == "one_fub")
            .map(|e| e.wall_speedup)
    }

    /// Renders the per-design tables.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "incremental DAG-patch study (host parallelism: {}, threads: {:?})",
            self.provenance.host_parallelism, self.provenance.threads
        );
        for p in &self.points {
            let _ = writeln!(
                out,
                "\n== {} — {} nodes, {} FUBs, {} base ops, base build {:.1} ms\n\
                 {:<18} {:>6} {:>8} {:>11} {:>11} {:>11} {:>10} {:>10} {:>8}",
                p.label,
                p.nodes,
                p.fubs,
                p.base_ops,
                p.base_build_ms,
                "edit",
                "dirty",
                "path",
                "ops patched",
                "orphaned",
                "total ops",
                "cold ms",
                "warm ms",
                "wall x"
            );
            for e in &p.edits {
                let _ = writeln!(
                    out,
                    "{:<18} {:>6} {:>8} {:>11} {:>11} {:>11} {:>10.2} {:>10.2} {:>7.2}x{}",
                    e.edit,
                    e.dirty_fubs,
                    if e.patched { "patch" } else { "rebuild" },
                    e.ops_patched,
                    e.ops_orphaned,
                    e.total_ops,
                    e.cold_wall_ms,
                    e.warm_wall_ms,
                    e.wall_speedup,
                    if e.bit_identical {
                        ""
                    } else {
                        "  AVF MISMATCH"
                    }
                );
            }
        }
        if let Some(r) = self.headline_wall_speedup() {
            let _ = writeln!(
                out,
                "\nheadline: a one-FUB edit reaches a fresh sweep DAG {r:.1}x faster than \
                 a cold relax + recompile on the largest design"
            );
        }
        out
    }
}

/// Cold rebuild vs patch for one edited revision. Both sides pay their
/// solve: cold = full relax + full compile, warm = seeded relax + patch
/// (or fallback rebuild when the patch refuses). Disk artifact I/O is
/// excluded from both sides. Each side runs `REPS` times and reports the
/// minimum wall time — single-shot numbers on a loaded host conflate
/// scheduler noise (first-touch page faults, oversubscribed relax
/// workers) with the algorithmic cost being compared.
const REPS: usize = 3;

/// The base revision's artifacts every edit is measured against.
struct BaseRevision<'a> {
    text: &'a str,
    mapping: &'a StructureMapping,
    inputs: &'a PavfInputs,
    stored: &'a StoredFixpoint,
    dag: &'a CompiledSweep,
    threads: usize,
}

fn measure_edit(edit: &str, flips: usize, base: &BaseRevision) -> EditPoint {
    let BaseRevision {
        text: base_text,
        mapping,
        inputs,
        stored,
        dag: old_dag,
        threads,
    } = *base;
    let (edited, flipped_gates) = flip_spread(base_text, flips);
    let nl = flatten::parse_netlist(&edited).expect("edited EXLIF parses");
    let config = SartConfig {
        threads,
        ..SartConfig::default()
    };
    let engine = SartEngine::new(&nl, mapping, config);
    let layout: Vec<(&str, usize)> = stored
        .fubs
        .iter()
        .map(|f| (f.name.as_str(), f.fwd.len()))
        .collect();

    let mut cold_wall_ms = f64::INFINITY;
    let mut cold_dag = None;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let cold = engine.run(inputs);
        let dag = CompiledSweep::compile(&cold, &nl);
        cold_wall_ms = cold_wall_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        cold_dag = Some(dag);
    }
    let cold_dag = cold_dag.expect("REPS > 0");

    let mut warm_wall_ms = f64::INFINITY;
    let mut outcome = None;
    for _ in 0..REPS {
        let t1 = Instant::now();
        let (warm, status, mask) =
            engine.run_warm_patch_traced(inputs, stored, &seqavf_obs::Collector::disabled());
        let attempt = match &mask {
            Some(m) => old_dag.patch(&warm, &nl, &layout, m),
            None => Err("warm solve fell back to cold"),
        };
        let resolved = match attempt {
            Ok((dag, st)) => (dag, true, None, st.nodes_patched(), st.ops_orphaned),
            Err(why) => (
                CompiledSweep::compile(&warm, &nl),
                false,
                Some(why.to_owned()),
                0,
                0,
            ),
        };
        warm_wall_ms = warm_wall_ms.min(t1.elapsed().as_secs_f64() * 1e3);
        outcome = Some((resolved, status));
    }
    let ((warm_dag, patched, rebuild_reason, ops_patched, ops_orphaned), status) =
        outcome.expect("REPS > 0");

    let dirty_fubs = match status {
        WarmStatus::Warm { dirty_fubs, .. } => dirty_fubs,
        WarmStatus::Cold(_) => nl.fub_count(),
    };
    let reference = cold_dag.evaluate(inputs);
    let swept = warm_dag.evaluate(inputs);
    let bit_identical = reference.len() == swept.len()
        && reference
            .iter()
            .zip(&swept)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    let st = cold_dag.stats();
    EditPoint {
        edit: edit.to_owned(),
        flipped_gates,
        dirty_fubs,
        patched,
        rebuild_reason,
        ops_patched,
        ops_orphaned,
        total_ops: st.sum_ops + st.min_ops,
        cold_wall_ms,
        warm_wall_ms,
        wall_speedup: cold_wall_ms / warm_wall_ms.max(1e-9),
        bit_identical,
    }
}

/// Measures one design size: base solve + DAG + fixpoint capture, then
/// the three edit magnitudes against those artifacts.
fn measure_design(label: &str, cfg: &SynthConfig, threads: usize) -> DesignPoint {
    let design = generate(cfg);
    let base_text = exlif::write(&design.netlist);
    let mapping = StructureMapping::from_pairs(design.meta.structure_map.clone());
    let mut inputs = PavfInputs::new();
    inputs.set_port("uops_executed", 0.21, 0.34);

    let nl = flatten::parse_netlist(&base_text).expect("generated EXLIF parses");
    let config = SartConfig {
        threads,
        ..SartConfig::default()
    };
    let engine = SartEngine::new(&nl, &mapping, config);
    let t0 = Instant::now();
    let result = engine.run(&inputs);
    let old_dag = CompiledSweep::compile(&result, &nl);
    let base_build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let stored = engine
        .capture_fixpoint(&result)
        .expect("base revision converges");

    let fubs = nl.fub_count();
    let base_stats = old_dag.stats();
    let base = BaseRevision {
        text: &base_text,
        mapping: &mapping,
        inputs: &inputs,
        stored: &stored,
        dag: &old_dag,
        threads,
    };
    let edits = vec![
        measure_edit("one_fub", 1, &base),
        measure_edit("five_percent_fubs", fubs.div_ceil(20), &base),
        measure_edit("full_rewrite", usize::MAX, &base),
    ];
    DesignPoint {
        label: label.to_owned(),
        nodes: nl.node_count(),
        fubs,
        base_ops: base_stats.sum_ops + base_stats.min_ops,
        base_build_ms,
        edits,
    }
}

/// Runs E19. Quick measures the ~3k-node reference; full adds the
/// production-size (~102k node) design the acceptance bar is set on.
pub fn run(scale: Scale, seed: u64) -> DagPatchReport {
    let threads = 8usize;
    let mut points = vec![measure_design(
        "xeon_like",
        &SynthConfig::xeon_like(seed),
        threads,
    )];
    if scale == Scale::Full {
        points.push(measure_design(
            "xeon_like_x8 @ 2.0",
            &SynthConfig::xeon_like(seed).scaled(2.0).with_cores(8),
            threads,
        ));
    }
    DagPatchReport {
        provenance: Provenance::capture(
            generate(&SynthConfig::xeon_like(seed))
                .netlist
                .content_digest(),
            &[threads],
        ),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_patches_and_stays_bit_identical() {
        let report = run(Scale::Quick, 42);
        assert_eq!(report.points.len(), 1);
        let p = &report.points[0];
        assert_eq!(p.edits.len(), 3);
        for e in &p.edits {
            assert!(e.bit_identical, "{} diverged", e.edit);
        }
        let one = &p.edits[0];
        assert!(one.patched, "one-FUB edit must take the patch path");
        assert_eq!(one.dirty_fubs, 1, "one gate flip dirties one FUB");
        assert!(
            one.ops_patched < one.total_ops,
            "patch touched {} of {} ops — not incremental",
            one.ops_patched,
            one.total_ops
        );
        let five = &p.edits[1];
        assert!(five.patched, "5% edit must take the patch path");
        assert!(
            one.ops_patched <= five.ops_patched,
            "a bigger edit should patch at least as many ops"
        );
    }
}
