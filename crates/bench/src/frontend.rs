//! **E14 — zero-copy frontend and binary graph snapshots**: cold parse +
//! flatten + SCC against a warm `seqavf-graph/2` snapshot load on the
//! same design.
//!
//! The frontend rebuild interns every identifier into a global symbol
//! table (so the hot paths carry `u32` symbols, not owned strings),
//! flattens FUBs in parallel with a deterministic merge, and persists the
//! finished graph — loop analysis included — as a versioned binary
//! snapshot. This study measures what that buys: the cold pipeline is
//! timed stage by stage (parse, flatten at one and many threads, SCC),
//! the warm path is one snapshot load, and the restored graph is checked
//! equal to the cold one before any number is reported. The headline
//! `warm_speedup` (cold total / warm load, both best-of) is the
//! acceptance metric: ≥3× on the xeon-like design.

use serde::{Deserialize, Serialize};

use seqavf_netlist::exlif;
use seqavf_netlist::flatten;
use seqavf_netlist::scc::find_loops;
use seqavf_netlist::snapshot;
use seqavf_netlist::synth::{generate, SynthConfig};

use crate::common::{Provenance, Scale};

/// The cold-vs-warm frontend comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontendReport {
    /// Measurement provenance (design digest, host, thread counts).
    pub provenance: Provenance,
    /// Nodes in the benchmarked design.
    pub nodes: usize,
    /// Sequential nodes.
    pub seq_nodes: usize,
    /// Fan-in edges.
    pub edges: usize,
    /// FUB partitions.
    pub fubs: usize,
    /// EXLIF source size in bytes.
    pub exlif_bytes: usize,
    /// Snapshot size in bytes.
    pub snapshot_bytes: usize,
    /// Cold stage: EXLIF text → AST, best-of milliseconds.
    pub parse_ms: f64,
    /// Cold stage: AST → graph, single-threaded, best-of milliseconds.
    pub flatten_1t_ms: f64,
    /// Cold stage: AST → graph at 8 worker threads, best-of milliseconds.
    pub flatten_8t_ms: f64,
    /// Cold stage: Tarjan loop detection, best-of milliseconds.
    pub scc_ms: f64,
    /// Cold total (parse + parallel flatten + SCC), milliseconds.
    pub cold_total_ms: f64,
    /// Warm path: snapshot load (graph + loops), best-of milliseconds.
    pub warm_load_ms: f64,
    /// Cold total / warm load — the acceptance metric.
    pub warm_speedup: f64,
    /// Single-threaded / 8-thread flatten time.
    pub flatten_parallel_speedup: f64,
    /// Whether the snapshot-restored graph and loop analysis compare
    /// equal to the cold-built ones (checked before reporting anything).
    pub identical: bool,
}

impl FrontendReport {
    /// Renders the stage table and headline ratios.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "frontend snapshot study ({} nodes, {} seq, {} edges, {} FUBs)\n\
             EXLIF source: {} bytes   snapshot: {} bytes\n",
            self.nodes,
            self.seq_nodes,
            self.edges,
            self.fubs,
            self.exlif_bytes,
            self.snapshot_bytes
        );
        let _ = writeln!(out, "{:<26} {:>12}", "stage", "best (ms)");
        for (stage, ms) in [
            ("parse (EXLIF → AST)", self.parse_ms),
            ("flatten, 1 thread", self.flatten_1t_ms),
            ("flatten, 8 threads", self.flatten_8t_ms),
            ("SCC loop detection", self.scc_ms),
            ("cold total", self.cold_total_ms),
            ("warm snapshot load", self.warm_load_ms),
        ] {
            let _ = writeln!(out, "{stage:<26} {ms:>12.3}");
        }
        let _ = writeln!(
            out,
            "\nwarm snapshot speedup (cold total / warm load): {:.2}x\n\
             parallel flatten speedup (1t / 8t): {:.2}x\n\
             restored graph identical to cold build: {}",
            self.warm_speedup,
            self.flatten_parallel_speedup,
            if self.identical { "yes" } else { "NO (BUG)" }
        );
        out
    }
}

fn best_of_ms<T>(repeats: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..repeats {
        let t0 = std::time::Instant::now();
        let v = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        last = Some(v);
    }
    (best, last.expect("at least one repeat"))
}

/// Runs the study (best of `repeats` timings per stage).
pub fn run(scale: Scale, seed: u64) -> FrontendReport {
    let factor = match scale {
        Scale::Quick => 1.0,
        Scale::Full => 3.0,
    };
    let repeats = 5usize;
    let design = generate(&SynthConfig::xeon_like(seed).scaled(factor));
    let src = exlif::write(&design.netlist);

    let (parse_ms, ast) = best_of_ms(repeats, || exlif::parse(&src).expect("round-trips"));
    let (flatten_1t_ms, _) = best_of_ms(repeats, || {
        flatten::build_netlist_threaded(&ast, 1).unwrap()
    });
    let (flatten_8t_ms, nl) = best_of_ms(repeats, || {
        flatten::build_netlist_threaded(&ast, 8).unwrap()
    });
    let (scc_ms, loops) = best_of_ms(repeats, || find_loops(&nl));
    let cold_total_ms = parse_ms + flatten_8t_ms.min(flatten_1t_ms) + scc_ms;

    let bytes = snapshot::save(&nl, &loops);
    let (warm_load_ms, restored) =
        best_of_ms(repeats, || snapshot::load(&bytes).expect("snapshot loads"));
    let identical = restored.0 == nl && restored.1 == loops;

    let edges = nl.nodes().map(|id| nl.fanin(id).len()).sum();
    FrontendReport {
        provenance: Provenance::capture(nl.content_digest(), &[1, 8]),
        nodes: nl.node_count(),
        seq_nodes: nl.seq_count(),
        edges,
        fubs: nl.fub_count(),
        exlif_bytes: src.len(),
        snapshot_bytes: bytes.len(),
        parse_ms,
        flatten_1t_ms,
        flatten_8t_ms,
        scc_ms,
        cold_total_ms,
        warm_load_ms,
        warm_speedup: cold_total_ms / warm_load_ms.max(1e-9),
        flatten_parallel_speedup: flatten_1t_ms / flatten_8t_ms.max(1e-9),
        identical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_load_beats_cold_frontend() {
        let report = run(Scale::Quick, 42);
        assert!(
            report.identical,
            "snapshot restore diverged from cold build"
        );
        assert!(
            report.warm_speedup > 1.0,
            "snapshot load ({:.3} ms) not faster than cold frontend ({:.3} ms)",
            report.warm_load_ms,
            report.cold_total_ms
        );
    }
}
