//! **E17 — validation campaign throughput and sampling efficiency**:
//! trial-indexed fault-injection campaigns vs thread count and vs
//! target-selection strategy.
//!
//! Three questions, one report (`BENCH_8.json`):
//!
//! 1. **Thread scaling.** The campaign splits the trial index space into
//!    contiguous ranges over `std::thread::scope` workers; every draw is
//!    a pure function of `(seed, trial, draw)` (counter-mode RNG), so
//!    tallies must be bit-identical at any thread count. This sweeps
//!    threads ∈ {1, 8, 32}, measures trials/sec with the exact paired
//!    simulation, and *checks* the identity contract with `==` on the
//!    all-integer tallies. Expect near-linear speedup on hosts with free
//!    cores and a flat curve on a single-core host — the report records
//!    `host_parallelism` so flat numbers read as what they are.
//! 2. **Kernel fast path.** One extra point times the
//!    propagation-probability kernel (no trace re-simulation; one
//!    Bernoulli draw against the precomputed masking model per trial) on
//!    the same budget.
//! 3. **Importance sampling.** At equal trial budgets, uniform selection
//!    vs selection weighted by the predicted AVF. Importance sampling
//!    spends trials where the AVF (and thus the soft-error contribution)
//!    is large, so the *AVF-weighted* mean Wilson interval width — the
//!    uncertainty on the bits that matter — should tighten; the
//!    Horvitz–Thompson reweighting keeps the population-mean estimate
//!    unbiased (property-tested in `seqavf-beam`).
//!
//! The analytical prediction used for weighting and correlation is the
//! one `seqavf validate` defaults to: SART under conservative all-1.0
//! inputs, derated by the propagation model (see `DESIGN.md` §13).

use std::time::Instant;

use serde::{Deserialize, Serialize};

use seqavf_beam::validate::{
    importance_weights, run_validate, Sampling, ValidateConfig, ValidationReport,
};
use seqavf_core::engine::{SartConfig, SartEngine};
use seqavf_core::mapping::{PavfInputs, StructureMapping};
use seqavf_netlist::graph::NodeId;
use seqavf_netlist::synth::{generate, SynthConfig};
use seqavf_sfi::campaign::{run_trials, Kernel, TrialConfig};
use seqavf_sfi::inject::observation_points;
use seqavf_sfi::logic::PropModel;

use crate::common::{Provenance, Scale};

/// One thread-sweep point (exact kernel).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CampaignPoint {
    /// Worker threads used.
    pub threads: usize,
    /// Campaign wall time, seconds.
    pub seconds: f64,
    /// Trials per second.
    pub trials_per_sec: f64,
    /// Speedup over the single-thread point.
    pub speedup: f64,
}

/// One target-selection arm of the equal-budget comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SamplingArm {
    /// `"uniform"` or `"importance"`.
    pub sampling: String,
    /// Pearson correlation of per-FUB injection vs predicted AVF.
    pub pearson: f64,
    /// Unweighted mean per-FUB Wilson interval width.
    pub mean_ci_width: f64,
    /// Mean per-FUB interval width weighted by the predicted AVF — the
    /// uncertainty on the bits that dominate the soft-error rate.
    pub weighted_ci_width: f64,
    /// Horvitz–Thompson population-mean estimate (should agree between
    /// arms: the reweighting is unbiased).
    pub mean_injected_avf: f64,
}

/// The E17 report, emitted as `BENCH_8.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidateBenchReport {
    /// Measurement provenance (design digest, host, thread counts).
    pub provenance: Provenance,
    /// Nodes in the benchmarked design.
    pub nodes: usize,
    /// Sequential bits targeted.
    pub bits: usize,
    /// Trials per thread-sweep point.
    pub trials: usize,
    /// Trials per sampling arm.
    pub arm_trials: usize,
    /// `std::thread::available_parallelism()` of the measuring host; a
    /// flat thread curve on a 1-core host is expected, not a bug.
    pub host_parallelism: usize,
    /// Thread sweep, ascending thread count, exact kernel.
    pub points: Vec<CampaignPoint>,
    /// Trials/sec of the propagation-probability kernel at the largest
    /// thread count, same budget as the sweep points.
    pub propagation_trials_per_sec: f64,
    /// Whether every thread count produced bit-identical tallies.
    pub bit_identical: bool,
    /// Uniform-selection arm.
    pub uniform: SamplingArm,
    /// Importance-selection arm (floor 0.01), equal budget.
    pub importance: SamplingArm,
    /// Whether importance sampling tightened the AVF-weighted interval
    /// width at the equal budget.
    pub importance_tightens: bool,
}

impl ValidateBenchReport {
    /// Renders the report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "validation campaign throughput ({} nodes, {} bits, {} trials/point, host parallelism {})\n\
             {:<8} {:>10} {:>14} {:>9}",
            self.nodes, self.bits, self.trials, self.host_parallelism,
            "threads", "secs", "trials/sec", "speedup"
        );
        for p in &self.points {
            let _ = writeln!(
                out,
                "{:<8} {:>10.3} {:>14.0} {:>8.2}x",
                p.threads, p.seconds, p.trials_per_sec, p.speedup
            );
        }
        let _ = writeln!(
            out,
            "propagation kernel: {:.0} trials/sec\n\
             tallies bit-identical across thread counts: {}\n",
            self.propagation_trials_per_sec,
            if self.bit_identical {
                "yes"
            } else {
                "NO (BUG)"
            }
        );
        let _ = writeln!(
            out,
            "equal-budget sampling arms ({} trials each):\n\
             {:<12} {:>9} {:>14} {:>18} {:>12}",
            self.arm_trials, "sampling", "pearson", "mean ci width", "weighted ci width", "HT mean"
        );
        for arm in [&self.uniform, &self.importance] {
            let _ = writeln!(
                out,
                "{:<12} {:>9.4} {:>14.4} {:>18.4} {:>12.4}",
                arm.sampling,
                arm.pearson,
                arm.mean_ci_width,
                arm.weighted_ci_width,
                arm.mean_injected_avf
            );
        }
        let _ = writeln!(
            out,
            "\nimportance sampling tightens AVF-weighted intervals: {}",
            if self.importance_tightens {
                "yes"
            } else {
                "no"
            }
        );
        out
    }
}

/// Predicted-AVF-weighted mean of the per-FUB Wilson interval widths.
fn weighted_width(report: &ValidationReport) -> f64 {
    let (mut num, mut den) = (0.0, 0.0);
    for row in &report.fubs {
        let w = row.sart_avf.max(0.0);
        num += w * (row.ci.1 - row.ci.0);
        den += w;
    }
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

fn arm(report: &ValidationReport, name: &str) -> SamplingArm {
    SamplingArm {
        sampling: name.to_owned(),
        pearson: report.pearson,
        mean_ci_width: report.mean_ci_width,
        weighted_ci_width: weighted_width(report),
        mean_injected_avf: report.mean_injected_avf,
    }
}

/// Runs the campaign sweep and the sampling comparison.
pub fn run(scale: Scale, seed: u64, thread_counts: &[usize]) -> ValidateBenchReport {
    let (factor, cores, trials, arm_trials) = match scale {
        Scale::Quick => (0.5, 1, 2_000, 4_000),
        Scale::Full => (2.0, 8, 50_000, 100_000),
    };
    let design = generate(
        &SynthConfig::xeon_like(seed)
            .scaled(factor)
            .with_cores(cores),
    );
    let nl = &design.netlist;
    let mapping = StructureMapping::from_pairs(design.meta.structure_map.clone());
    let targets: Vec<NodeId> = nl.seq_nodes().collect();

    // The analytical prediction: conservative SART × propagation derating.
    let engine = SartEngine::new(nl, &mapping, SartConfig::default());
    let analytical = engine.run(&PavfInputs::new());
    let model = PropModel::build(nl, &observation_points(nl));
    let predicted: Vec<f64> = targets
        .iter()
        .map(|&b| analytical.avf(b).clamp(0.0, 1.0) * model.propagation(b))
        .collect();

    // Thread sweep, exact kernel, bit-identity checked against the first
    // point's tallies.
    let mut points = Vec::new();
    let mut reference = None;
    let mut bit_identical = true;
    let mut base_secs = 0.0;
    for &threads in thread_counts {
        let cfg = TrialConfig {
            trials,
            threads,
            ..TrialConfig::default()
        };
        let start = Instant::now();
        let result = run_trials(nl, &targets, None, &cfg);
        let secs = start.elapsed().as_secs_f64();
        match &reference {
            None => {
                reference = Some(result);
                base_secs = secs;
            }
            Some(first) => {
                if first != &result {
                    bit_identical = false;
                }
            }
        }
        points.push(CampaignPoint {
            threads,
            seconds: secs,
            trials_per_sec: trials as f64 / secs.max(1e-12),
            speedup: base_secs / secs.max(1e-12),
        });
    }

    // Propagation-probability fast path at the widest thread count.
    let prop_cfg = TrialConfig {
        trials,
        threads: thread_counts.last().copied().unwrap_or(1),
        kernel: Kernel::Propagation,
        ..TrialConfig::default()
    };
    let start = Instant::now();
    let _ = run_trials(nl, &targets, None, &prop_cfg);
    let propagation_trials_per_sec = trials as f64 / start.elapsed().as_secs_f64().max(1e-12);

    // Equal-budget sampling arms. Weight sanity: `importance_weights`
    // floors at 0.01 so every bit keeps full support.
    let arm_cfg = |sampling| ValidateConfig {
        trial: TrialConfig {
            trials: arm_trials,
            threads: thread_counts.last().copied().unwrap_or(1),
            ..TrialConfig::default()
        },
        sampling,
    };
    let uniform_report = run_validate(
        nl,
        nl.design_name(),
        &targets,
        &predicted,
        &arm_cfg(Sampling::Uniform),
    );
    let importance_report = run_validate(
        nl,
        nl.design_name(),
        &targets,
        &predicted,
        &arm_cfg(Sampling::Importance { floor: 0.01 }),
    );
    debug_assert_eq!(importance_weights(&predicted, 0.01).len(), predicted.len());

    let uniform = arm(&uniform_report, "uniform");
    let importance = arm(&importance_report, "importance");
    let importance_tightens = importance.weighted_ci_width < uniform.weighted_ci_width;
    ValidateBenchReport {
        provenance: Provenance::capture(nl.content_digest(), thread_counts),
        nodes: nl.node_count(),
        bits: targets.len(),
        trials,
        arm_trials,
        host_parallelism: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        points,
        propagation_trials_per_sec,
        bit_identical,
        uniform,
        importance,
        importance_tightens,
    }
}
