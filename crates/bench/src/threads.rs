//! **E12 — relaxation thread scaling**: wall-clock of the sharded
//! parallel relaxation engine versus worker-thread count.
//!
//! The per-FUB walks of one relaxation iteration read cross-FUB values
//! only from the iteration-start snapshot, so they are data parallel;
//! `seqavf-core` fans them out over scoped workers with per-worker arena
//! shards that are canonicalized into the shared arena at the iteration
//! barrier. This study sweeps the thread count on one design, measures
//! relaxation wall time (from the engine's own per-iteration telemetry,
//! so preparation and resolution cost are excluded), and *checks* the
//! bit-identity contract: every thread count must produce exactly the
//! same `SetId` annotations and AVFs.
//!
//! Expect near-linear speedup while FUBs outnumber workers and the host
//! has free cores; on a single-core host the curve is flat.

use serde::{Deserialize, Serialize};

use seqavf_core::engine::{SartConfig, SartEngine};
use seqavf_core::mapping::{PavfInputs, StructureMapping};
use seqavf_netlist::synth::{generate, SynthConfig};

use crate::common::Scale;

/// One point of the thread sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThreadPoint {
    /// Worker threads used.
    pub threads: usize,
    /// Relaxation wall time (sum over sweeps), seconds.
    pub relax_seconds: f64,
    /// Speedup over the single-thread point.
    pub speedup: f64,
    /// Productive relaxation iterations (identical across points).
    pub iterations: usize,
}

/// The thread-scaling report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreadScalingReport {
    /// Nodes in the benchmarked design.
    pub nodes: usize,
    /// FUB partitions (the parallelism grain).
    pub fubs: usize,
    /// Sweep points in ascending thread count.
    pub points: Vec<ThreadPoint>,
    /// Whether every thread count produced bit-identical annotations.
    pub bit_identical: bool,
}

impl ThreadScalingReport {
    /// Best speedup observed anywhere in the sweep.
    pub fn best_speedup(&self) -> f64 {
        self.points.iter().map(|p| p.speedup).fold(1.0, f64::max)
    }

    /// Renders the sweep.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "relaxation thread scaling ({} nodes, {} FUBs)\n\
             {:<8} {:>12} {:>9} {:>11}",
            self.nodes, self.fubs, "threads", "relax (s)", "speedup", "iterations"
        );
        for p in &self.points {
            let _ = writeln!(
                out,
                "{:<8} {:>12.4} {:>8.2}x {:>11}",
                p.threads, p.relax_seconds, p.speedup, p.iterations
            );
        }
        let _ = writeln!(
            out,
            "\nannotations bit-identical across thread counts: {}",
            if self.bit_identical {
                "yes"
            } else {
                "NO (BUG)"
            }
        );
        out
    }
}

/// Runs the thread sweep (best of `repeats` runs per point).
pub fn run(scale: Scale, seed: u64, thread_counts: &[usize]) -> ThreadScalingReport {
    let factor = match scale {
        Scale::Quick => 1.0,
        Scale::Full => 4.0,
    };
    let design = generate(&SynthConfig::xeon_like(seed).scaled(factor));
    let nl = &design.netlist;
    let mapping = StructureMapping::from_pairs(design.meta.structure_map.clone());
    let inputs = PavfInputs::new();
    let repeats = 3usize;

    let mut points = Vec::new();
    let mut baseline: Option<(f64, Vec<f64>)> = None;
    let mut bit_identical = true;
    for &threads in thread_counts {
        let engine = SartEngine::new(
            nl,
            &mapping,
            SartConfig {
                threads,
                ..SartConfig::default()
            },
        );
        let mut best = f64::INFINITY;
        let mut last = None;
        for _ in 0..repeats {
            let r = engine.run(&inputs);
            best = best.min(r.outcome.total_wall_seconds());
            last = Some(r);
        }
        let r = last.expect("at least one run");
        match &baseline {
            None => baseline = Some((best, r.avf.clone())),
            Some((base_secs, base_avf)) => {
                if base_avf != &r.avf {
                    bit_identical = false;
                }
                points.push(ThreadPoint {
                    threads,
                    relax_seconds: best,
                    speedup: base_secs / best.max(1e-12),
                    iterations: r.outcome.iterations,
                });
                continue;
            }
        }
        points.push(ThreadPoint {
            threads,
            relax_seconds: best,
            speedup: 1.0,
            iterations: r.outcome.iterations,
        });
    }

    ThreadScalingReport {
        nodes: nl.node_count(),
        fubs: nl.fub_count(),
        points,
        bit_identical,
    }
}
