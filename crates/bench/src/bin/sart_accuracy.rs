//! E8 — SART conservatism validated against SFI ground truth (§3.1).
//! Usage: `sart_accuracy [--scale full]`.
use seqavf_bench::common::{emit, Scale};

fn main() {
    let scale = Scale::from_args();
    let report = seqavf_bench::accuracy::run(scale, 42);
    emit("sart_accuracy", &report.render(), &report);
}
