//! E3 — regenerates Figure 9 (per-FUB average sequential/node AVF).
//! Usage: `fig9_fub_avf [--scale full]`.
use seqavf_bench::common::{emit, Scale};

fn main() {
    let scale = Scale::from_args();
    let report = seqavf_bench::fig9::run(scale, 42);
    emit("fig9_fub_avf", &report.render(), &report);
}
