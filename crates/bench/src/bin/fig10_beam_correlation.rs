//! E5 — regenerates Figure 10 (modeled vs measured SER for the Lattice and
//! MD5Sum beam workloads). Usage: `fig10_beam_correlation [--scale full]`.
use seqavf_bench::common::{emit, Scale};

fn main() {
    let scale = Scale::from_args();
    let report = seqavf_bench::fig10::run(scale, 42);
    emit("fig10_beam_correlation", &report.render(), &report);
}
