//! E19 — incremental sweep-DAG patching: end-to-end warm latency (seeded
//! relax + DAG patch) vs cold (full relax + recompile) for one-FUB /
//! 5%-of-FUBs / full-rewrite edits. Usage: `dagpatch_latency
//! [--scale full]` (full adds the production-size ~102k-node design the
//! acceptance bar is set on).
use seqavf_bench::common::{emit, Scale};

fn main() {
    let scale = Scale::from_args();
    let report = seqavf_bench::dagpatch::run(scale, 42);
    emit("BENCH_10", &report.render(), &report);
}
