//! E4 — regenerates the §6.1 convergence study (per-FUB mean pAVF by
//! relaxation iteration). Usage: `convergence [--scale full]`.
use seqavf_bench::common::{emit, Scale};

fn main() {
    let scale = Scale::from_args();
    let report = seqavf_bench::convergence::run(scale, 42);
    emit("convergence", &report.render(), &report);
}
