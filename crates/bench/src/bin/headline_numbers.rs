//! E6 — the paper's headline numbers (§1/§6): average sequential AVF,
//! modeled SDC FIT reduction, censuses, coverage, iteration count.
//! Usage: `headline_numbers [--scale full]`.
use seqavf_bench::common::{emit, Scale};

fn main() {
    let scale = Scale::from_args();
    let report = seqavf_bench::headline::run(scale, 42);
    emit("headline_numbers", &report.render(), &report);
}
