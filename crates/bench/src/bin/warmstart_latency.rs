//! E18 — cross-run warm-start: walked-node and wall-time ratios for
//! one-FUB / 5%-of-FUBs / full-rewrite edits re-solved from a stored
//! fixpoint. Usage: `warmstart_latency [--scale full]` (full adds the
//! production-size ~102k-node design the acceptance bar is set on).
use seqavf_bench::common::{emit, Scale};

fn main() {
    let scale = Scale::from_args();
    let report = seqavf_bench::warmstart::run(scale, 42);
    emit("BENCH_9", &report.render(), &report);
}
