//! E16 — AVF-as-a-service cold/warm latency and warm throughput.
//! Usage: `serve_throughput [--scale full]`.
use seqavf_bench::common::{emit, Scale};

fn main() {
    let scale = Scale::from_args();
    let report = seqavf_bench::service::run(scale, 42);
    emit("BENCH_7", &report.render(), &report);
}
