//! E15 — production-scale thread curves and peak RSS.
//! Usage: `production_scale [--scale full]`.
use seqavf_bench::common::{emit, Scale};

fn main() {
    let scale = Scale::from_args();
    let report = seqavf_bench::production::run(scale, 42);
    emit("BENCH_6", &report.render(), &report);
}
