//! E13 — incremental dirty-FUB relaxation vs full sweeps.
//! Usage: `relax_incremental [--scale full]`.
use seqavf_bench::common::{emit, Scale};

fn main() {
    let scale = Scale::from_args();
    let report = seqavf_bench::incremental::run(scale, 42, &[1, 8]);
    emit("BENCH_4", &report.render(), &report);
}
