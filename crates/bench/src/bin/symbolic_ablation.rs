//! E9 — closed-form re-evaluation vs full SART re-run (§5.2).
//! Usage: `symbolic_ablation [--scale full]`.
use seqavf_bench::common::{emit, Scale};

fn main() {
    let scale = Scale::from_args();
    let report = seqavf_bench::symbolic::run(scale, 42);
    emit("symbolic_ablation", &report.render(), &report);
}
