//! E11 — SART cost vs design size (supports the paper's runtime claims).
//! Usage: `scaling [--scale full]`.
use seqavf_bench::common::{emit, Scale};

fn main() {
    let scale = Scale::from_args();
    let report = seqavf_bench::scaling::run(scale, 42);
    emit("scaling", &report.render(), &report);
}
