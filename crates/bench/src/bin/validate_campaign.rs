//! E17 — validation campaign trials/sec vs thread count, exact vs
//! propagation kernel, uniform vs importance sampling at equal budgets.
//! Usage: `validate_campaign [--scale full]`.
use seqavf_bench::common::{emit, Scale};

fn main() {
    let scale = Scale::from_args();
    let report = seqavf_bench::validate::run(scale, 42, &[1, 8, 32]);
    emit("BENCH_8", &report.render(), &report);
}
