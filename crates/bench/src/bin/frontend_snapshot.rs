//! E14 — zero-copy frontend vs binary graph snapshot load.
//! Usage: `frontend_snapshot [--scale full]`.
use seqavf_bench::common::{emit, Scale};

fn main() {
    let scale = Scale::from_args();
    let report = seqavf_bench::frontend::run(scale, 42);
    emit("BENCH_5", &report.render(), &report);
}
