//! E10 — design-choice ablations (§4/§5.1): backward walk, bit-field
//! analysis, HD-1, residency mode, partitioning.
//! Usage: `ablations [--scale full]`.
use seqavf_bench::common::{emit, Scale};

fn main() {
    let scale = Scale::from_args();
    let report = seqavf_bench::ablations::run(scale, 42);
    emit("ablations", &report.render(), &report);
}
