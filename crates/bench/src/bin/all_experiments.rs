//! Runs every experiment (E2–E10) in sequence and writes all reports —
//! the one-command reproduction of the paper's evaluation section.
//! Usage: `all_experiments [--scale full]`.
use seqavf_bench::common::{emit, Scale};

fn main() {
    let scale = Scale::from_args();
    println!("=== E2: Figure 8 — loop-boundary pAVF sweep ===");
    let r = seqavf_bench::fig8::run(scale, 42);
    emit("fig8_loop_sweep", &r.render(), &r);
    println!("\n=== E3: Figure 9 — per-FUB AVF ===");
    let r = seqavf_bench::fig9::run(scale, 42);
    emit("fig9_fub_avf", &r.render(), &r);
    println!("\n=== E4: convergence ===");
    let r = seqavf_bench::convergence::run(scale, 42);
    emit("convergence", &r.render(), &r);
    println!("\n=== E5: Figure 10 — beam correlation ===");
    let r = seqavf_bench::fig10::run(scale, 42);
    emit("fig10_beam_correlation", &r.render(), &r);
    println!("\n=== E6: headline numbers ===");
    let r = seqavf_bench::headline::run(scale, 42);
    emit("headline_numbers", &r.render(), &r);
    println!("\n=== E7: speed comparison ===");
    let r = seqavf_bench::speed::run(scale, 42);
    emit("speed_comparison", &r.render(), &r);
    println!("\n=== E8: SART accuracy vs SFI ===");
    let r = seqavf_bench::accuracy::run(scale, 42);
    emit("sart_accuracy", &r.render(), &r);
    println!("\n=== E9: symbolic re-evaluation ===");
    let r = seqavf_bench::symbolic::run(scale, 42);
    emit("symbolic_ablation", &r.render(), &r);
    println!("\n=== E10: ablations ===");
    let r = seqavf_bench::ablations::run(scale, 42);
    emit("ablations", &r.render(), &r);
    println!("\n=== E11: scaling ===");
    let r = seqavf_bench::scaling::run(scale, 42);
    emit("scaling", &r.render(), &r);
    println!("\n=== E17: validation campaign ===");
    let r = seqavf_bench::validate::run(scale, 42, &[1, 8, 32]);
    emit("BENCH_8", &r.render(), &r);
    println!("\n=== E18: cross-run warm-start ===");
    let r = seqavf_bench::warmstart::run(scale, 42);
    emit("BENCH_9", &r.render(), &r);
    println!("\n=== E19: incremental DAG patching ===");
    let r = seqavf_bench::dagpatch::run(scale, 42);
    emit("BENCH_10", &r.render(), &r);
}
