//! E2 — regenerates Figure 8 (loop-boundary pAVF sweep).
//! Usage: `fig8_loop_sweep [--scale full]`.
use seqavf_bench::common::{emit, Scale};

fn main() {
    let scale = Scale::from_args();
    let report = seqavf_bench::fig8::run(scale, 42);
    emit("fig8_loop_sweep", &report.render(), &report);
}
