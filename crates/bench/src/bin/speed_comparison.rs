//! E7 — SART vs SFI cost per statistically-significant node AVF (§3.1 vs
//! §5). Usage: `speed_comparison [--scale full]`.
use seqavf_bench::common::{emit, Scale};

fn main() {
    let scale = Scale::from_args();
    let report = seqavf_bench::speed::run(scale, 42);
    emit("speed_comparison", &report.render(), &report);
}
