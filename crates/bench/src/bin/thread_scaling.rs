//! E12 — sharded relaxation wall time vs worker-thread count.
//! Usage: `thread_scaling [--scale full]`.
use seqavf_bench::common::{emit, Scale};

fn main() {
    let scale = Scale::from_args();
    let report = seqavf_bench::threads::run(scale, 42, &[1, 2, 4, 8]);
    emit("thread_scaling", &report.render(), &report);
}
