//! **E3 — Figure 9**: average per-FUB sequential AVF and all-node AVF
//! after the final relaxation iteration.
//!
//! Paper observations reproduced here: most FUBs have significantly
//! smaller sequential pAVFs than the average structure AVF from the ACE
//! model; the weighted overall average lands near 14%; and per-FUB
//! sequential and all-node averages do not correlate tightly.

use serde::{Deserialize, Serialize};

use crate::common::{flow_config, Scale};
use seqavf::flow::run_flow;
use seqavf_core::report::FubAvfRow;

/// The Figure 9 report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig9Report {
    /// Per-FUB rows.
    pub rows: Vec<FubAvfRow>,
    /// Sequential-count-weighted overall sequential AVF.
    pub weighted_seq_avf: f64,
    /// Node-count-weighted overall node AVF.
    pub weighted_node_avf: f64,
    /// Mean structure AVF from the ACE model (the conservative reference
    /// line in the paper's plot).
    pub mean_structure_avf: f64,
    /// Relaxation iterations executed.
    pub iterations: usize,
    /// Fraction of nodes visited by walks.
    pub visited_fraction: f64,
}

impl Fig9Report {
    /// Renders the per-FUB table with bars.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Figure 9 — per-FUB average AVF after iteration {}\n\
             (visited {:.1}% of nodes; ACE-model mean structure AVF = {:.4})\n",
            self.iterations,
            self.visited_fraction * 100.0,
            self.mean_structure_avf
        );
        let _ = writeln!(
            out,
            "{:<8} {:>7} {:>9} {:>9}  seqAVF",
            "FUB", "seqs", "seqAVF", "nodeAVF"
        );
        for r in &self.rows {
            let bar = "#".repeat((r.seq_avf * 80.0) as usize);
            let _ = writeln!(
                out,
                "{:<8} {:>7} {:>9.4} {:>9.4}  {}",
                r.fub, r.seq_count, r.seq_avf, r.node_avf, bar
            );
        }
        let _ = writeln!(
            out,
            "\nweighted sequential AVF = {:.4}   weighted node AVF = {:.4}",
            self.weighted_seq_avf, self.weighted_node_avf
        );
        out
    }
}

/// Runs the Figure 9 experiment.
pub fn run(scale: Scale, seed: u64) -> Fig9Report {
    let cfg = flow_config(scale, seed);
    let out = run_flow(&cfg);
    let avfs = out.suite_report.mean_structure_avfs();
    let mean_structure_avf = if avfs.is_empty() {
        0.0
    } else {
        avfs.values().sum::<f64>() / avfs.len() as f64
    };
    Fig9Report {
        rows: out.summary.rows.clone(),
        weighted_seq_avf: out.summary.weighted_seq_avf,
        weighted_node_avf: out.summary.weighted_node_avf,
        mean_structure_avf,
        iterations: out.summary.iterations,
        visited_fraction: out.summary.visited_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_fub_report_has_paper_shape() {
        let r = run(Scale::Quick, 5);
        assert_eq!(r.rows.len(), 12, "twelve Xeon-like FUBs");
        // The weighted average sits in the paper's band (they report 14%).
        assert!(
            r.weighted_seq_avf > 0.05 && r.weighted_seq_avf < 0.40,
            "weighted seq AVF {} out of band",
            r.weighted_seq_avf
        );
        // Every FUB average is a probability and the design never
        // saturates.
        for row in &r.rows {
            assert!((0.0..=1.0).contains(&row.seq_avf), "{}", row.fub);
            assert!(row.seq_avf < 0.9, "{} saturated", row.fub);
        }
        assert!(r.visited_fraction > 0.98, "paper: >98% of nodes visited");
    }

    #[test]
    fn fub_averages_vary() {
        // "for any individual FUB, there is little correlation between the
        // total average node AVF and the average sequential node AVF" — at
        // minimum the FUBs must not all be identical.
        let r = run(Scale::Quick, 5);
        let min = r.rows.iter().map(|x| x.seq_avf).fold(1.0, f64::min);
        let max = r.rows.iter().map(|x| x.seq_avf).fold(0.0, f64::max);
        assert!(max - min > 0.02, "FUB AVFs suspiciously uniform");
    }

    #[test]
    fn render_mentions_all_fubs() {
        let r = run(Scale::Quick, 5);
        let text = r.render();
        for row in &r.rows {
            assert!(text.contains(&row.fub));
        }
    }
}
