//! **E6 — §1/§6 headline numbers**: the single-run summary the paper
//! quotes — average sequential AVF (paper: 14%), the reduction in overall
//! modeled SDC FIT from applying sequential AVFs (paper: ~10%), node
//! visitation (>98%), and the control-register / loop-bit censuses.

use serde::{Deserialize, Serialize};

use crate::common::{flow_config, Scale};
use seqavf::flow::{run_flow, run_suite};
use seqavf_beam::fit::{core_model, FitBreakdown};
use seqavf_perf::pipeline::PerfConfig;

/// The headline report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeadlineReport {
    /// Design size.
    pub nodes: usize,
    /// Sequential bits.
    pub seq_bits: usize,
    /// Structure bit cells.
    pub struct_bits: usize,
    /// Sequential-count-weighted mean sequential AVF (paper: 14%).
    pub weighted_seq_avf: f64,
    /// Suite-wide conservative structure-AVF proxy.
    pub proxy_avf: f64,
    /// Whole-core modeled SDC FIT reduction from replacing the
    /// resident-entry proxy with computed sequential AVFs.
    pub sdc_fit_reduction: f64,
    /// Whole-core SDC FIT reduction measured against the mean conservative
    /// structure-AVF proxy (§4.3's "typical conservative AVF value") — the
    /// aggregate-budget convention that corresponds to the paper's ~10%.
    pub sdc_fit_reduction_structure_proxy: f64,
    /// Control-register bits identified (paper: 6,825).
    pub control_reg_bits: usize,
    /// Sequential bits on loops (paper: 201,530).
    pub loop_seq_bits: usize,
    /// Loop fraction of sequentials (paper: 2–3%).
    pub loop_fraction: f64,
    /// Fraction of nodes visited by walks (paper: >98%).
    pub visited_fraction: f64,
    /// Relaxation iterations (paper: 20).
    pub iterations: usize,
    /// Workloads analyzed.
    pub workloads: usize,
    /// End-to-end flow wall-clock in seconds.
    pub flow_seconds: f64,
}

impl HeadlineReport {
    /// Renders the summary.
    pub fn render(&self) -> String {
        format!(
            "Headline numbers (paper reference in parentheses)\n\
             design: {} nodes, {} sequential bits, {} structure bits\n\
             workloads analyzed:        {}\n\
             average sequential AVF:    {:.1}%   (14%)\n\
             conservative proxy AVF:    {:.1}%\n\
             modeled SDC FIT reduction: {:.1}%  (resident proxy)\n\
             …vs structure-AVF proxy:   {:.1}%   (~10%)\n\
             control-register bits:     {}   (6,825)\n\
             loop sequential bits:      {} = {:.1}% of sequentials   (2-3%)\n\
             nodes visited by walks:    {:.1}%   (>98%)\n\
             relaxation iterations:     {}   (20)\n\
             end-to-end flow time:      {:.2} s\n",
            self.nodes,
            self.seq_bits,
            self.struct_bits,
            self.workloads,
            self.weighted_seq_avf * 100.0,
            self.proxy_avf * 100.0,
            self.sdc_fit_reduction * 100.0,
            self.sdc_fit_reduction_structure_proxy * 100.0,
            self.control_reg_bits,
            self.loop_seq_bits,
            self.loop_fraction * 100.0,
            self.visited_fraction * 100.0,
            self.iterations,
            self.flow_seconds,
        )
    }
}

/// Runs the headline experiment.
pub fn run(scale: Scale, seed: u64) -> HeadlineReport {
    let cfg = flow_config(scale, seed);
    let t0 = std::time::Instant::now();
    let out = run_flow(&cfg);
    let flow_seconds = t0.elapsed().as_secs_f64();
    let nl = &out.design.netlist;

    // Conservative proxy from a conservative-residency suite pass.
    let traces = seqavf_workloads::suite::standard_suite(&cfg.suite);
    let cons = run_suite(
        &traces,
        &PerfConfig {
            conservative_residency: true,
            ..cfg.perf
        },
    );
    let proxy_avf = cons.mean_resident_avf();
    // The aggregate-budget proxy: the mean conservative structure AVF (the
    // "typical conservative AVF value" of §4.3, ~30% in the paper's flow).
    let cons_avfs = cons.mean_structure_avfs();
    let struct_proxy_avf = cons_avfs.values().sum::<f64>() / cons_avfs.len().max(1) as f64;

    // Whole-core SDC: sequentials plus arrays (half parity-protected,
    // matching the paper's observation that sequentials are roughly half
    // the SDC).
    let struct_bits: usize = nl
        .structure_ids()
        .map(|s| nl.structure(s).width() as usize)
        .sum();
    let array_avf = out.suite_report.average_structure_avf();
    let seq_bits = nl.seq_count();
    let fit = |seq_avf: f64| {
        FitBreakdown::from_populations(&core_model(
            seq_bits as u64,
            seq_avf,
            (struct_bits as u64) * 40, // arrays dwarf visible cells
            array_avf,
            1e-4,
        ))
        .sdc
    };
    let before = fit(proxy_avf);
    let before_struct = fit(struct_proxy_avf);
    let after = fit(out.summary.weighted_seq_avf);

    let loop_fraction = out.summary.loop_seq_bits as f64 / seq_bits.max(1) as f64;
    HeadlineReport {
        nodes: nl.node_count(),
        seq_bits,
        struct_bits,
        weighted_seq_avf: out.summary.weighted_seq_avf,
        proxy_avf,
        sdc_fit_reduction: 1.0 - after / before.max(1e-12),
        sdc_fit_reduction_structure_proxy: 1.0 - after / before_struct.max(1e-12),
        control_reg_bits: out.summary.control_reg_bits,
        loop_seq_bits: out.summary.loop_seq_bits,
        loop_fraction,
        visited_fraction: out.summary.visited_fraction,
        iterations: out.summary.iterations,
        workloads: cfg.suite.workloads,
        flow_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_numbers_in_paper_band() {
        let r = run(Scale::Quick, 13);
        assert!(
            r.weighted_seq_avf > 0.05 && r.weighted_seq_avf < 0.40,
            "seq AVF {}",
            r.weighted_seq_avf
        );
        assert!(
            r.sdc_fit_reduction > 0.0,
            "applying sequential AVFs must cut SDC"
        );
        assert!(r.visited_fraction > 0.98);
        assert!(r.control_reg_bits > 0);
        assert!(r.loop_seq_bits > 0);
        assert!(r.iterations <= 20, "paper: 20 iterations suffice");
    }

    #[test]
    fn render_is_complete() {
        let r = run(Scale::Quick, 13);
        let t = r.render();
        assert!(t.contains("average sequential AVF"));
        assert!(t.contains("SDC FIT reduction"));
    }
}
