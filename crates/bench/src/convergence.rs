//! **E4 — §6.1 convergence study**: per-FUB mean sequential pAVF across
//! relaxation iterations.
//!
//! "The results presented here required 20 iterations, with intermediate
//! data indicating that this was a sufficient number of iterations for
//! convergence. We evaluated convergence here by plotting the average pAVF
//! of sequentials for each FUB over each iteration."

use serde::{Deserialize, Serialize};

use crate::common::{flow_config, Scale};
use seqavf::flow::run_flow;

/// The convergence report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceReport {
    /// FUB names, indexing the inner vectors of `series`.
    pub fubs: Vec<String>,
    /// `series[iteration][fub]` = mean sequential `MIN(F, B)` after that
    /// iteration.
    pub series: Vec<Vec<f64>>,
    /// Structural changes per iteration (0 at convergence).
    pub changed_sets: Vec<usize>,
    /// Largest numeric movement per iteration.
    pub max_delta: Vec<f64>,
    /// Whether the relaxation converged within the iteration cap.
    pub converged: bool,
}

impl ConvergenceReport {
    /// Renders iteration-by-iteration averages.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Convergence — per-FUB mean sequential pAVF by iteration (converged: {})\n",
            self.converged
        );
        let _ = write!(out, "{:<5}", "iter");
        for f in &self.fubs {
            let _ = write!(out, " {f:>7}");
        }
        let _ = writeln!(out, " {:>9} {:>10}", "changed", "maxΔ");
        for (i, row) in self.series.iter().enumerate() {
            let _ = write!(out, "{:<5}", i + 1);
            for v in row {
                let _ = write!(out, " {v:>7.4}");
            }
            let _ = writeln!(
                out,
                " {:>9} {:>10.2e}",
                self.changed_sets[i], self.max_delta[i]
            );
        }
        out
    }
}

/// Runs the convergence study.
pub fn run(scale: Scale, seed: u64) -> ConvergenceReport {
    let cfg = flow_config(scale, seed);
    let out = run_flow(&cfg);
    let nl = &out.design.netlist;
    ConvergenceReport {
        fubs: nl.fub_ids().map(|f| nl.fub_name(f).to_owned()).collect(),
        series: out
            .result
            .outcome
            .trace
            .iter()
            .map(|s| s.fub_seq_mean.clone())
            .collect(),
        changed_sets: out
            .result
            .outcome
            .trace
            .iter()
            .map(|s| s.changed_sets)
            .collect(),
        max_delta: out
            .result
            .outcome
            .trace
            .iter()
            .map(|s| s.max_delta)
            .collect(),
        converged: out.result.outcome.converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relaxation_converges_within_twenty_iterations() {
        let r = run(Scale::Quick, 9);
        assert!(r.converged, "paper: 20 iterations sufficed");
        assert!(r.series.len() <= 20);
        assert_eq!(*r.changed_sets.last().unwrap(), 0);
    }

    #[test]
    fn fub_means_refine_monotonically_downward() {
        // Annotations start conservative (TOP = 1.0) and only refine down.
        let r = run(Scale::Quick, 9);
        for fub in 0..r.fubs.len() {
            for w in r.series.windows(2) {
                assert!(
                    w[1][fub] <= w[0][fub] + 1e-9,
                    "fub {} mean increased across iterations",
                    r.fubs[fub]
                );
            }
        }
    }

    #[test]
    fn changes_eventually_stop() {
        let r = run(Scale::Quick, 9);
        assert!(r.changed_sets[0] > 0, "first iteration floods the design");
        let last = r.changed_sets.len() - 1;
        assert_eq!(r.changed_sets[last], 0);
        assert_eq!(r.max_delta[last], 0.0);
    }

    #[test]
    fn render_has_one_row_per_iteration() {
        let r = run(Scale::Quick, 9);
        let text = r.render();
        assert_eq!(text.lines().count(), r.series.len() + 3);
    }
}
