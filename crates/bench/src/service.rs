//! E16 — AVF-as-a-service throughput: cold vs warm query latency against
//! a live `serve` instance, at production scale.
//!
//! The service's pitch is that residency turns the paper's §5.2
//! amortization into an online capability: after one cold load
//! (parse → SCC → relax → compile), every query is a single compiled-DAG
//! batch evaluation — no file IO on the warm path at all (the client
//! addresses the design by `design_ref`). This experiment measures that
//! claim over real sockets and real JSON:
//!
//! * **cold** — first request for a design: full pipeline, one number.
//! * **warm** — repeated batch requests against resident state:
//!   p50/p90/p99 latency and throughput in *queries* (workload-table
//!   evaluations) per second.
//! * **bit identity** — the cold response's rows are compared bitwise
//!   against the library's `run_sweep` on identical inputs; a service
//!   that drifts numerically fails the experiment, not just a test.

use std::path::PathBuf;
use std::time::Instant;

use seqavf_core::engine::SartConfig;
use seqavf_core::mapping::{PavfInputs, StructureMapping};
use seqavf_core::sweep::{run_sweep, SweepOptions};
use seqavf_netlist::exlif;
use seqavf_netlist::flatten;
use seqavf_netlist::synth::{generate, SynthConfig};
use seqavf_obs::Collector;
use seqavf_serve::api::{AvfRequest, AvfResponse, NamedTable};
use seqavf_serve::client;
use seqavf_serve::resident::ResidentConfig;
use seqavf_serve::server::{spawn, ServeConfig};

use crate::common::{Provenance, Scale};

/// One design's service measurements.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ServePoint {
    /// Design label.
    pub label: String,
    /// Flattened node count.
    pub nodes: usize,
    /// Sequential bits.
    pub seq_nodes: usize,
    /// Workload tables per request (a "query" is one table).
    pub tables_per_request: usize,
    /// Warm requests measured.
    pub warm_requests: usize,
    /// Cold-path latency (file read, parse, SCC, relax, compile, eval).
    pub cold_ms: f64,
    /// Warm latency percentiles over the socket, per request.
    pub warm_p50_ms: f64,
    /// 90th percentile.
    pub warm_p90_ms: f64,
    /// 99th percentile.
    pub warm_p99_ms: f64,
    /// Workload-table evaluations per second on the warm path.
    pub warm_queries_per_sec: f64,
    /// Whole requests per second on the warm path.
    pub warm_requests_per_sec: f64,
    /// Cold/warm speedup (cold_ms over warm p50).
    pub cold_over_warm: f64,
    /// Service rows match the library's `run_sweep` bitwise.
    pub bit_identical_to_library: bool,
}

/// The whole report.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ServeReport {
    /// Measurement provenance (base design digest, host, thread counts).
    pub provenance: Provenance,
    /// `available_parallelism` of the host.
    pub host_parallelism: usize,
    /// One entry per design scale.
    pub points: Vec<ServePoint>,
}

impl ServeReport {
    /// Plain-text rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "E16 service throughput (host parallelism {})\n",
            self.host_parallelism
        ));
        out.push_str(&format!(
            "{:<22} {:>9} {:>10} {:>10} {:>10} {:>10} {:>12} {:>9}\n",
            "design", "nodes", "cold ms", "p50 ms", "p90 ms", "p99 ms", "queries/s", "bit-id"
        ));
        for p in &self.points {
            out.push_str(&format!(
                "{:<22} {:>9} {:>10.2} {:>10.3} {:>10.3} {:>10.3} {:>12.0} {:>9}\n",
                p.label,
                p.nodes,
                p.cold_ms,
                p.warm_p50_ms,
                p.warm_p90_ms,
                p.warm_p99_ms,
                p.warm_queries_per_sec,
                if p.bit_identical_to_library {
                    "yes"
                } else {
                    "NO"
                },
            ));
        }
        out
    }
}

/// Synthetic per-workload tables: distinct values per workload so a
/// row-mixup would be caught by the bit-identity check.
fn tables(n: usize) -> Vec<NamedTable> {
    (0..n)
        .map(|i| {
            let mut inputs = PavfInputs::new();
            inputs.set_port("uops_executed", 0.10 + 0.04 * i as f64, 0.35);
            inputs.set_port("rob_occupancy", 0.55 - 0.02 * i as f64, 0.25);
            NamedTable {
                workload: format!("w{i:02}"),
                inputs,
            }
        })
        .collect()
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Measures one design through a live server.
fn measure_point(
    label: &str,
    cfg: &SynthConfig,
    tables_per_request: usize,
    warm_requests: usize,
    scratch: &std::path::Path,
) -> ServePoint {
    let design = generate(cfg);
    let nl_text = exlif::write(&design.netlist);
    let design_path = scratch.join(format!("{}.exlif", label.replace([' ', '@', '/'], "_")));
    std::fs::write(&design_path, &nl_text).unwrap();
    let mapping = StructureMapping::from_pairs(design.meta.structure_map.clone());
    let map_path = design_path.with_extension("map");
    std::fs::write(&map_path, mapping.to_text(&design.netlist)).unwrap();

    let server = spawn(
        ServeConfig {
            workers: 2,
            queue_cap: 64,
            resident: ResidentConfig::default(),
            ..ServeConfig::default()
        },
        Collector::disabled(),
    )
    .unwrap();
    let addr = server.addr();

    let batch = tables(tables_per_request);
    let cold_req = AvfRequest {
        design_path: Some(design_path.display().to_string()),
        design_ref: None,
        map_path: Some(map_path.display().to_string()),
        config: None,
        base_inputs: None,
        tables: batch.clone(),
        include_nodes: None,
        include_fubs: None,
    };
    let body = serde_json::to_string(&cold_req).unwrap();
    let t0 = Instant::now();
    let (status, cold_text) = client::post_json(addr, "/v1/avf", &body).unwrap();
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(status, 200, "cold request failed: {cold_text}");
    let cold: AvfResponse = serde_json::from_str(&cold_text).unwrap();

    // Warm path: address the resident graph by ref — zero file IO.
    let warm_req = AvfRequest {
        design_path: None,
        map_path: None,
        design_ref: Some(cold.design_ref.clone()),
        ..cold_req
    };
    let warm_body = serde_json::to_string(&warm_req).unwrap();
    let mut latencies_ms = Vec::with_capacity(warm_requests);
    let mut warm_first: Option<AvfResponse> = None;
    let wall = Instant::now();
    for _ in 0..warm_requests {
        let t = Instant::now();
        let (status, text) = client::post_json(addr, "/v1/avf", &warm_body).unwrap();
        latencies_ms.push(t.elapsed().as_secs_f64() * 1e3);
        assert_eq!(status, 200, "warm request failed: {text}");
        if warm_first.is_none() {
            warm_first = Some(serde_json::from_str(&text).unwrap());
        }
    }
    let wall_s = wall.elapsed().as_secs_f64();
    server.shutdown();
    server.join();

    // Bit-identity: service rows vs the library sweep on identical
    // inputs, and cold vs warm.
    let nl = flatten::parse_netlist_traced(&nl_text, &Collector::disabled()).unwrap();
    let workloads: Vec<(String, PavfInputs)> = batch
        .iter()
        .map(|t| (t.workload.clone(), t.inputs.clone()))
        .collect();
    let outcome = run_sweep(
        &nl,
        &mapping,
        &SartConfig::default(),
        &batch[0].inputs,
        &workloads,
        &SweepOptions::default(),
    )
    .unwrap();
    let warm_first = warm_first.unwrap();
    let bit_identical = cold.rows.len() == outcome.rows.len()
        && cold.rows.iter().zip(&outcome.rows).all(|(s, c)| {
            s.workload == c.workload
                && s.mean_seq_avf.to_bits() == c.mean_seq_avf.to_bits()
                && s.min_seq_avf.to_bits() == c.min_seq_avf.to_bits()
                && s.max_seq_avf.to_bits() == c.max_seq_avf.to_bits()
        })
        && cold
            .rows
            .iter()
            .zip(&warm_first.rows)
            .all(|(a, b)| a.mean_seq_avf.to_bits() == b.mean_seq_avf.to_bits());

    latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p50 = percentile(&latencies_ms, 0.50);
    ServePoint {
        label: label.to_owned(),
        nodes: nl.node_count(),
        seq_nodes: nl.seq_count(),
        tables_per_request,
        warm_requests,
        cold_ms,
        warm_p50_ms: p50,
        warm_p90_ms: percentile(&latencies_ms, 0.90),
        warm_p99_ms: percentile(&latencies_ms, 0.99),
        warm_queries_per_sec: (warm_requests * tables_per_request) as f64 / wall_s,
        warm_requests_per_sec: warm_requests as f64 / wall_s,
        cold_over_warm: cold_ms / p50.max(1e-9),
        bit_identical_to_library: bit_identical,
    }
}

/// Runs the study. `Quick` measures the reference design plus the ~100k
/// 8-core production point; `Full` lengthens the warm phase for tighter
/// percentiles.
pub fn run(scale: Scale, seed: u64) -> ServeReport {
    let scratch: PathBuf = std::env::temp_dir().join("seqavf-bench-service");
    let _ = std::fs::create_dir_all(&scratch);
    let warm = match scale {
        Scale::Quick => 200,
        Scale::Full => 500,
    };
    let points = vec![
        measure_point(
            "xeon_like",
            &SynthConfig::xeon_like(seed),
            16,
            warm,
            &scratch,
        ),
        measure_point(
            "xeon_like_x8 @ 2.0",
            &SynthConfig::xeon_like(seed).scaled(2.0).with_cores(8),
            16,
            warm.min(250),
            &scratch,
        ),
    ];
    ServeReport {
        provenance: Provenance::capture(
            generate(&SynthConfig::xeon_like(seed))
                .netlist
                .content_digest(),
            &[2],
        ),
        host_parallelism: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exploratory scan for picking the headline batch size; run with
    /// `cargo test --release -p seqavf-bench service -- --ignored --nocapture`.
    #[test]
    #[ignore]
    fn batch_size_scan_at_production_scale() {
        let scratch = std::env::temp_dir().join("seqavf-bench-service-scan");
        let _ = std::fs::create_dir_all(&scratch);
        for batch in [1usize, 16, 64, 128] {
            let p = measure_point(
                "xeon_like_x8 @ 2.0",
                &SynthConfig::xeon_like(42).scaled(2.0).with_cores(8),
                batch,
                30,
                &scratch,
            );
            println!(
                "batch {batch:>4}: p50 {:.3} ms   {:.0} queries/s",
                p.warm_p50_ms, p.warm_queries_per_sec
            );
        }
    }

    #[test]
    fn small_point_is_fast_warm_and_bit_identical() {
        let scratch = std::env::temp_dir().join("seqavf-bench-service-test");
        let _ = std::fs::create_dir_all(&scratch);
        let p = measure_point("xeon_like", &SynthConfig::xeon_like(5), 4, 20, &scratch);
        assert!(p.bit_identical_to_library, "service drifted from library");
        assert!(p.warm_p50_ms > 0.0);
        assert!(
            p.cold_ms > p.warm_p50_ms,
            "cold ({} ms) should dominate warm ({} ms)",
            p.cold_ms,
            p.warm_p50_ms
        );
        assert_eq!(p.tables_per_request, 4);
        assert_eq!(p.warm_requests, 20);
        assert!(p.warm_queries_per_sec > 0.0);
    }
}
