//! **E8 — SART conservatism vs SFI ground truth** (§3.1).
//!
//! The paper positions SFI as "the best way to compute limited AVFs …
//! appropriate … to validate analytically modeled results". This
//! experiment does that validation on an SFI-tractable design:
//!
//! - Run SART in its **fully conservative** configuration (all port pAVFs,
//!   boundaries and loop injections at 1.0), which reduces every node's
//!   AVF to a pure reachability bound: can a fault here reach an
//!   observation point at all?
//! - Run an SFI campaign over the sequential nodes and compare per node:
//!   the SART bound must dominate the SFI *error* rate (unknown-resident
//!   faults are SFI's own conservatism and are reported separately), and
//!   SART = 0 must imply SFI found no errors — a strong structural check
//!   of the walk rules.

use serde::{Deserialize, Serialize};

use crate::common::Scale;
use seqavf_core::engine::{SartConfig, SartEngine};
use seqavf_core::mapping::{PavfInputs, StructureMapping};
use seqavf_netlist::graph::NodeId;
use seqavf_netlist::synth::{generate, SynthConfig};
use seqavf_sfi::campaign::{run_campaign, CampaignConfig};

/// Per-node comparison record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeComparison {
    /// Node index in the netlist.
    pub node: usize,
    /// SART conservative bound.
    pub sart: f64,
    /// SFI error rate (errors / injections).
    pub sfi_error_rate: f64,
    /// SFI unknown rate.
    pub sfi_unknown_rate: f64,
}

/// The accuracy-validation report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyReport {
    /// Per-node records.
    pub nodes: Vec<NodeComparison>,
    /// Nodes where the conservative SART bound ≥ the SFI error rate.
    pub conservative_ok: usize,
    /// Nodes violating conservatism (should be 0).
    pub violations: usize,
    /// Nodes with SART = 0 (proved safe) where SFI found an error
    /// (must be 0: would indicate a walk-rule bug).
    pub zero_violations: usize,
    /// Mean SART bound and mean SFI error rate.
    pub mean_sart: f64,
    /// Mean SFI-measured error rate.
    pub mean_sfi: f64,
}

impl AccuracyReport {
    /// Renders the validation summary.
    pub fn render(&self) -> String {
        format!(
            "SART conservatism vs SFI ground truth ({} nodes compared)\n\
             conservative (SART ≥ SFI errors): {} / {}\n\
             violations:                        {}\n\
             SART=0 with SFI errors:            {}  (must be 0)\n\
             mean SART bound = {:.4}, mean SFI error rate = {:.4}\n\
             conservatism ratio = {:.2}×\n",
            self.nodes.len(),
            self.conservative_ok,
            self.nodes.len(),
            self.violations,
            self.zero_violations,
            self.mean_sart,
            self.mean_sfi,
            self.mean_sart / self.mean_sfi.max(1e-12),
        )
    }
}

/// Runs the conservatism validation.
pub fn run(scale: Scale, seed: u64) -> AccuracyReport {
    // SFI needs a small design; even at Full scale the validation runs on
    // a modest core so every sequential gets enough injections.
    let factor = if scale == Scale::Full { 0.6 } else { 0.3 };
    let design = generate(&SynthConfig::xeon_like(seed).scaled(factor));
    let nl = &design.netlist;
    let mapping = StructureMapping::from_pairs(design.meta.structure_map.clone());

    // Fully conservative SART: every source term at 1.0.
    let config = SartConfig {
        loop_pavf: 1.0,
        boundary_in_pavf: 1.0,
        boundary_out_pavf: 1.0,
        default_port_pavf: 1.0,
        ..SartConfig::default()
    };
    let engine = SartEngine::new(nl, &mapping, config);
    let result = engine.run(&PavfInputs::new());

    let seqs: Vec<NodeId> = nl.seq_nodes().collect();
    let stride = (seqs.len() / 200).max(1);
    let sample: Vec<NodeId> = seqs.iter().step_by(stride).copied().collect();
    let camp = run_campaign(
        nl,
        &sample,
        &CampaignConfig {
            injections_per_node: if scale == Scale::Full { 24 } else { 12 },
            threads: 8,
            ..CampaignConfig::default()
        },
    );

    let mut nodes = Vec::with_capacity(camp.nodes.len());
    let mut conservative_ok = 0;
    let mut violations = 0;
    let mut zero_violations = 0;
    let mut sum_sart = 0.0;
    let mut sum_sfi = 0.0;
    for est in &camp.nodes {
        let sart = result.avf(est.node);
        let err = est.errors as f64 / est.injections.max(1) as f64;
        let unk = est.unknowns as f64 / est.injections.max(1) as f64;
        if sart + 1e-9 >= err {
            conservative_ok += 1;
        } else {
            violations += 1;
        }
        if sart <= 1e-12 && est.errors > 0 {
            zero_violations += 1;
        }
        sum_sart += sart;
        sum_sfi += err;
        nodes.push(NodeComparison {
            node: est.node.index(),
            sart,
            sfi_error_rate: err,
            sfi_unknown_rate: unk,
        });
    }
    let n = nodes.len().max(1) as f64;
    AccuracyReport {
        conservative_ok,
        violations,
        zero_violations,
        mean_sart: sum_sart / n,
        mean_sfi: sum_sfi / n,
        nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sart_bound_dominates_sfi_errors() {
        let r = run(Scale::Quick, 19);
        assert!(!r.nodes.is_empty());
        assert_eq!(
            r.violations, 0,
            "conservative SART bound violated on {} nodes",
            r.violations
        );
        assert_eq!(r.zero_violations, 0, "walk-rule soundness violated");
        assert!(r.mean_sart >= r.mean_sfi);
    }

    #[test]
    fn sfi_finds_real_masking() {
        // The ground truth should show genuine masking (mean error rate
        // strictly below the conservative bound), otherwise the comparison
        // is vacuous.
        let r = run(Scale::Quick, 19);
        assert!(
            r.mean_sfi < r.mean_sart,
            "SFI {} vs SART {}",
            r.mean_sfi,
            r.mean_sart
        );
        assert!(r.mean_sfi > 0.0, "some faults must propagate");
    }
}
