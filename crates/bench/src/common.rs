//! Shared experiment scaffolding: standard design/suite scales and a tiny
//! output helper.

use seqavf_core::engine::SartConfig;
use seqavf_netlist::synth::SynthConfig;
use seqavf_perf::pipeline::PerfConfig;
use seqavf_workloads::suite::SuiteConfig;

/// Experiment scale, selectable from the command line (`--scale full`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-fast: small design, few short workloads. Default for CI and
    /// Criterion.
    Quick,
    /// The paper-scale run: full Xeon-like design, 547 workloads.
    Full,
}

impl Scale {
    /// Parses `--scale <quick|full>` style arguments; defaults to quick.
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        match args.iter().position(|a| a == "--scale") {
            Some(i) if args.get(i + 1).map(String::as_str) == Some("full") => Scale::Full,
            _ => Scale::Quick,
        }
    }
}

/// The standard flow configuration for experiments at a scale.
pub fn flow_config(scale: Scale, seed: u64) -> seqavf::flow::FlowConfig {
    let sart = SartConfig {
        boundary_in_pavf: 0.35,
        boundary_out_pavf: 0.35,
        ..SartConfig::default()
    };
    match scale {
        Scale::Quick => seqavf::flow::FlowConfig {
            design: SynthConfig::xeon_like(seed).scaled(0.5),
            suite: SuiteConfig {
                workloads: 12,
                len: 3_000,
                ..SuiteConfig::default()
            },
            perf: PerfConfig::default(),
            sart,
            graph_cache: None,
        },
        Scale::Full => seqavf::flow::FlowConfig {
            design: SynthConfig::xeon_like(seed).scaled(3.0),
            suite: SuiteConfig::default(),
            perf: PerfConfig::default(),
            sart,
            graph_cache: None,
        },
    }
}

/// Writes a report JSON next to the binary's working directory and prints
/// the text rendering.
pub fn emit(name: &str, text: &str, json: &impl serde::Serialize) {
    println!("{text}");
    let path = format!("{name}.json");
    match serde_json::to_string_pretty(json) {
        Ok(s) => {
            if std::fs::write(&path, s).is_ok() {
                println!("[report written to {path}]");
            }
        }
        Err(e) => eprintln!("could not serialize report: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_config_is_smaller_than_full() {
        let q = flow_config(Scale::Quick, 1);
        let f = flow_config(Scale::Full, 1);
        assert!(q.suite.workloads < f.suite.workloads);
    }
}
