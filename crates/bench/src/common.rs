//! Shared experiment scaffolding: standard design/suite scales, a
//! provenance stamp for every report, and a tiny output helper.

use serde::{Deserialize, Serialize};

use seqavf_core::engine::SartConfig;
use seqavf_netlist::synth::SynthConfig;
use seqavf_perf::pipeline::PerfConfig;
use seqavf_workloads::suite::SuiteConfig;

/// Experiment scale, selectable from the command line (`--scale full`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-fast: small design, few short workloads. Default for CI and
    /// Criterion.
    Quick,
    /// The paper-scale run: full Xeon-like design, 547 workloads.
    Full,
}

impl Scale {
    /// Parses `--scale <quick|full>` style arguments; defaults to quick.
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        match args.iter().position(|a| a == "--scale") {
            Some(i) if args.get(i + 1).map(String::as_str) == Some("full") => Scale::Full,
            _ => Scale::Quick,
        }
    }
}

/// Measurement provenance stamped into every `BENCH_*.json`, so any
/// recorded ratio can be traced to the exact design revision and host
/// concurrency that produced it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Provenance {
    /// Hex content digest of the (base) benchmarked netlist.
    pub design_digest: String,
    /// `std::thread::available_parallelism()` on the measuring host —
    /// wall-clock speedups above 1.0 require this to exceed 1.
    pub host_parallelism: usize,
    /// Thread counts exercised by the experiment.
    pub threads: Vec<usize>,
}

impl Provenance {
    /// Captures the stamp for a run over `threads` of a design whose
    /// content digest is `design_digest`.
    pub fn capture(design_digest: u64, threads: &[usize]) -> Provenance {
        Provenance {
            design_digest: format!("{design_digest:016x}"),
            host_parallelism: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            threads: threads.to_vec(),
        }
    }
}

/// The standard flow configuration for experiments at a scale.
pub fn flow_config(scale: Scale, seed: u64) -> seqavf::flow::FlowConfig {
    let sart = SartConfig {
        boundary_in_pavf: 0.35,
        boundary_out_pavf: 0.35,
        ..SartConfig::default()
    };
    match scale {
        Scale::Quick => seqavf::flow::FlowConfig {
            design: SynthConfig::xeon_like(seed).scaled(0.5),
            suite: SuiteConfig {
                workloads: 12,
                len: 3_000,
                ..SuiteConfig::default()
            },
            perf: PerfConfig::default(),
            sart,
            graph_cache: None,
        },
        Scale::Full => seqavf::flow::FlowConfig {
            design: SynthConfig::xeon_like(seed).scaled(3.0),
            suite: SuiteConfig::default(),
            perf: PerfConfig::default(),
            sart,
            graph_cache: None,
        },
    }
}

/// Writes a report JSON under `results/` (created if absent, next to the
/// binary's working directory) and prints the text rendering.
pub fn emit(name: &str, text: &str, json: &impl serde::Serialize) {
    println!("{text}");
    let _ = std::fs::create_dir_all("results");
    let path = format!("results/{name}.json");
    match serde_json::to_string_pretty(json) {
        Ok(s) => {
            if std::fs::write(&path, s).is_ok() {
                println!("[report written to {path}]");
            }
        }
        Err(e) => eprintln!("could not serialize report: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_config_is_smaller_than_full() {
        let q = flow_config(Scale::Quick, 1);
        let f = flow_config(Scale::Full, 1);
        assert!(q.suite.workloads < f.suite.workloads);
    }
}
