//! **E7 — SART vs SFI cost** (§3.1 vs §5): wall-clock per
//! statistically-significant node AVF.
//!
//! The paper's motivating arithmetic: complete SFI coverage of a design is
//! `#nodes × #cycles` paired RTL simulations ("months to years … for just
//! a few workloads"), while SART computes every node's AVF analytically in
//! about a day, a speedup of 3–4 orders of magnitude *per node* before
//! even counting the workload dimension (SART amortizes all workloads into
//! one walk via the closed forms).

use serde::{Deserialize, Serialize};

use crate::common::{flow_config, Scale};
use seqavf_core::engine::SartEngine;
use seqavf_core::mapping::StructureMapping;
use seqavf_netlist::graph::NodeId;
use seqavf_netlist::synth::generate;
use seqavf_sfi::campaign::{run_campaign, CampaignConfig};

/// Injections per node needed for a statistically significant SFI AVF
/// (the ±10%-at-95% ballpark for a proportion near 0.5).
pub const SIGNIFICANT_INJECTIONS: u64 = 100;

/// The speed-comparison report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeedReport {
    /// Nodes in the benchmarked design.
    pub nodes: usize,
    /// Sequential nodes (the SFI target population).
    pub seq_nodes: usize,
    /// SART wall-clock for the complete design, seconds.
    pub sart_seconds: f64,
    /// SART cost per node AVF, microseconds.
    pub sart_us_per_node: f64,
    /// Measured SFI cost per injection, microseconds.
    pub sfi_us_per_injection: f64,
    /// SFI cost per statistically-significant node AVF, microseconds.
    pub sfi_us_per_node: f64,
    /// Speedup of SART over SFI per node AVF.
    pub speedup: f64,
    /// Extrapolated SFI campaign for every sequential in the design, in
    /// hours.
    pub sfi_full_campaign_hours: f64,
}

impl SpeedReport {
    /// Renders the comparison.
    pub fn render(&self) -> String {
        format!(
            "SART vs SFI cost per statistically-significant node AVF\n\
             design: {} nodes ({} sequential)\n\
             SART full design:       {:.3} s  ({:.2} µs/node)\n\
             SFI per injection:      {:.1} µs\n\
             SFI per node (×{} inj): {:.1} µs\n\
             speedup:                {:.0}× ({:.1} orders of magnitude; paper: 3-4)\n\
             full SFI campaign over all sequentials: {:.2} h\n",
            self.nodes,
            self.seq_nodes,
            self.sart_seconds,
            self.sart_us_per_node,
            self.sfi_us_per_injection,
            SIGNIFICANT_INJECTIONS,
            self.sfi_us_per_node,
            self.speedup,
            self.speedup.log10(),
            self.sfi_full_campaign_hours,
        )
    }
}

/// Runs the speed comparison.
pub fn run(scale: Scale, seed: u64) -> SpeedReport {
    let cfg = flow_config(scale, seed);
    let design = generate(&cfg.design);
    let nl = &design.netlist;
    let mapping = StructureMapping::from_pairs(design.meta.structure_map.clone());
    let inputs = seqavf_core::mapping::PavfInputs::new();

    // SART: time preparation + solve for the whole design.
    let t0 = std::time::Instant::now();
    let engine = SartEngine::new(nl, &mapping, cfg.sart.clone());
    let result = engine.run(&inputs);
    let sart_seconds = t0.elapsed().as_secs_f64();
    assert_eq!(result.node_avfs().len(), nl.node_count());
    let sart_us_per_node = sart_seconds * 1e6 / nl.node_count() as f64;

    // SFI: time a bounded batch and derive the per-injection cost.
    let seqs: Vec<NodeId> = nl.seq_nodes().collect();
    let probe: Vec<NodeId> = seqs
        .iter()
        .step_by((seqs.len() / 24).max(1))
        .copied()
        .collect();
    let camp_cfg = CampaignConfig {
        injections_per_node: 4,
        threads: 1, // single-threaded for a fair per-core comparison
        ..CampaignConfig::default()
    };
    let t1 = std::time::Instant::now();
    let camp = run_campaign(nl, &probe, &camp_cfg);
    let sfi_seconds = t1.elapsed().as_secs_f64();
    let sfi_us_per_injection = sfi_seconds * 1e6 / camp.total_injections.max(1) as f64;
    let sfi_us_per_node = sfi_us_per_injection * SIGNIFICANT_INJECTIONS as f64;
    let sfi_full_campaign_hours = sfi_us_per_node * seqs.len() as f64 / 1e6 / 3600.0;

    SpeedReport {
        nodes: nl.node_count(),
        seq_nodes: seqs.len(),
        sart_seconds,
        sart_us_per_node,
        sfi_us_per_injection,
        sfi_us_per_node,
        speedup: sfi_us_per_node / sart_us_per_node.max(1e-9),
        sfi_full_campaign_hours,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sart_is_orders_of_magnitude_faster() {
        let r = run(Scale::Quick, 17);
        assert!(
            r.speedup > 100.0,
            "expected ≥2 orders of magnitude, got {:.0}×",
            r.speedup
        );
        assert!(r.sart_us_per_node < r.sfi_us_per_node);
        assert!(r.sfi_full_campaign_hours > 0.0);
    }

    #[test]
    fn render_reports_speedup() {
        let r = run(Scale::Quick, 17);
        assert!(r.render().contains("speedup"));
    }
}
