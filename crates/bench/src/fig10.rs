//! **E5 — Figure 10**: modeled vs measured SER for the two beam-test
//! workloads (Lattice, MD5Sum), normalized to Arbitrary Units.
//!
//! The silicon + proton-beam measurement is simulated (see `DESIGN.md`):
//! the device's *true* per-node sequential AVF is constructed from two
//! measurements that are independent of the SART estimate being validated —
//!
//! 1. the **logical-masking** probability of each sampled node, measured by
//!    statistical fault injection into the gate-level netlist
//!    (`seqavf-sfi`) — the derating SART deliberately does *not* credit
//!    ("we conservatively assume that there is no logical masking", §4),
//!    and
//! 2. the node's **ACE rate** under the workload — the probability the bit
//!    holds data that both arrived as ACE and is consumed as ACE
//!    downstream (SART's `MIN(forward, backward)` value) —
//!
//! multiplied per node: `truth = sfi_error_prob × ace_rate`. By
//! construction the SART estimate is conservative against this truth by
//! exactly the logical-masking margin, which is the paper's own
//! characterization of the technique's residual conservatism. The *before*
//! model reproduces the paper's prior practice: a single suite-wide
//! **conservative structure AVF** carried as a proxy for every sequential
//! ("we were conservatively using structure AVFs as a proxy for the
//! sequential AVF").
//!
//! Paper results reproduced: the before-model overshoots the measurement
//! by roughly 2× ("off by nearly 100%"), the sequential AVFs come out far
//! below the conservative proxy (paper: 63% lower), the corrected model
//! lands within the beam measurement's counting-statistics error, and the
//! correlation improves by a large fraction (paper: ~66%).

use serde::{Deserialize, Serialize};

use crate::common::{flow_config, Scale};
use seqavf::flow::{inputs_from_report, run_flow, run_suite};
use seqavf_beam::campaign::{run_beam, BeamConfig};
use seqavf_beam::correlate::CorrelationRow;
use seqavf_beam::fit::BitPopulation;
use seqavf_netlist::graph::NodeId;
use seqavf_perf::pipeline::{run_ace, PerfConfig};
use seqavf_sfi::campaign::{run_campaign, CampaignConfig};
use seqavf_workloads::kernels::lattice::{lattice_trace, LatticeConfig};
use seqavf_workloads::kernels::md5::{md5_trace, Md5Config};
use seqavf_workloads::trace::Trace;

/// Per-bit intrinsic FIT rate used for the simulated device (absolute FITs
/// are normalized to AU, so only the resulting beam counting statistics
/// matter).
const INTRINSIC_FIT_PER_BIT: f64 = 1.0e-3;

/// The Figure 10 report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig10Report {
    /// One row per beam workload.
    pub rows: Vec<CorrelationRow>,
    /// The suite-wide conservative structure AVF used as the before-proxy.
    pub proxy_avf: f64,
    /// Mean SART sequential AVF per workload (after-model basis).
    pub sart_seq_avf: Vec<f64>,
    /// How much lower the sequential AVFs are than the proxy (paper: 63%).
    pub avf_reduction_vs_proxy: f64,
    /// Mean correlation improvement across workloads (paper: ~66%).
    pub mean_improvement: f64,
}

impl Fig10Report {
    /// Renders the figure as a text chart.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Figure 10 — normalized SER (AU): measured vs modeled\n\
             (conservative proxy AVF = {:.4}; sequential AVFs {:.0}% lower than proxy)\n",
            self.proxy_avf,
            self.avf_reduction_vs_proxy * 100.0
        );
        for r in &self.rows {
            let _ = writeln!(out, "{}:", r.workload);
            let bar = |v: f64| "#".repeat((v * 30.0).min(120.0) as usize);
            let _ = writeln!(
                out,
                "  measured        {:>6.3} AU  [{:.3}, {:.3}]  {}",
                r.measured_au,
                r.measured_interval_au.0,
                r.measured_interval_au.1,
                bar(r.measured_au)
            );
            let _ = writeln!(
                out,
                "  modeled before  {:>6.3} AU  (off by {:>5.1}%)     {}",
                r.modeled_before_au,
                r.miscorrelation_before() * 100.0,
                bar(r.modeled_before_au)
            );
            let _ = writeln!(
                out,
                "  modeled after   {:>6.3} AU  (off by {:>5.1}%, within error: {})  {}",
                r.modeled_after_au,
                r.miscorrelation_after() * 100.0,
                r.after_within_measurement(),
                bar(r.modeled_after_au)
            );
            let _ = writeln!(
                out,
                "  correlation improvement: {:.1}%",
                r.improvement() * 100.0
            );
        }
        let _ = writeln!(
            out,
            "\nmean correlation improvement = {:.1}% (paper: ~66%)",
            self.mean_improvement * 100.0
        );
        out
    }
}

/// Runs the Figure 10 experiment.
pub fn run(scale: Scale, seed: u64) -> Fig10Report {
    let cfg = flow_config(scale, seed);
    let out = run_flow(&cfg);
    let nl = &out.design.netlist;

    // The before-model's proxy: the suite-wide conservative structure AVF
    // (one number carried for all sequentials, as in the paper's prior
    // practice).
    let cons_perf = PerfConfig {
        conservative_residency: true,
        ..cfg.perf
    };
    let traces = seqavf_workloads::suite::standard_suite(&cfg.suite);
    let cons_suite = run_suite(&traces, &cons_perf);
    // The proxy is the conservative *resident-entry* vulnerability: unlike
    // an array, a pipeline flop has no empty entries, so the occupancy-
    // diluted structure AVF would understate what engineers actually carry.
    let proxy_avf = cons_suite.mean_resident_avf();

    // Logical-masking measurement: SFI into a systematic sample of
    // sequential nodes.
    let seqs: Vec<NodeId> = nl.seq_nodes().collect();
    let stride = (seqs.len() / 120).max(1);
    let sample: Vec<NodeId> = seqs.iter().step_by(stride).copied().collect();
    let camp = run_campaign(
        nl,
        &sample,
        &CampaignConfig {
            injections_per_node: if scale == Scale::Full { 12 } else { 8 },
            threads: 8,
            ..CampaignConfig::default()
        },
    );

    let workloads: Vec<(String, Trace)> = vec![
        (
            "Lattice".to_owned(),
            lattice_trace(&LatticeConfig::default()),
        ),
        ("MD5Sum".to_owned(), md5_trace(&Md5Config::default())),
    ];

    let seq_bits = nl.seq_count() as u64;
    let mut rows = Vec::new();
    let mut sart_seq_avf = Vec::new();
    let mut reference = None;
    for (wi, (name, trace)) in workloads.iter().enumerate() {
        let rep = run_ace(trace, &cfg.perf);
        let inputs = inputs_from_report(&rep);
        let node_avfs = out.result.reevaluate(nl, &inputs);

        // Per-node device truth over the sample: logical masking × ACE
        // rate; sample means extrapolate to the sequential population.
        let mut truth_sum = 0.0;
        let mut after_sum = 0.0;
        for est in &camp.nodes {
            let sfi_err = est.errors as f64 / est.injections.max(1) as f64;
            truth_sum += sfi_err * node_avfs[est.node.index()];
            after_sum += node_avfs[est.node.index()];
        }
        let n_s = camp.nodes.len().max(1) as f64;
        let truth_seq_avf = truth_sum / n_s;
        let after_seq_avf = after_sum / n_s;
        sart_seq_avf.push(after_seq_avf);

        // Structure (array) contribution, identical across device and both
        // models: the per-workload bit-weighted precise structure AVF over
        // an array population the same size as the sequential population
        // ("about half of the processor's total SDC SER comes from
        // sequentials", §1).
        let total_bits: f64 = rep.structures.values().map(|s| s.total_bits() as f64).sum();
        let array_avf: f64 = rep
            .structures
            .values()
            .map(|s| s.avf * s.total_bits() as f64)
            .sum::<f64>()
            / total_bits.max(1.0);
        let array_fit = array_avf * seq_bits as f64 * INTRINSIC_FIT_PER_BIT;
        let seq_fit = |avf: f64| {
            BitPopulation::unprotected("seq", seq_bits, avf, INTRINSIC_FIT_PER_BIT).fit()
        };
        let true_fit = seq_fit(truth_seq_avf) + array_fit;
        let before_fit = seq_fit(proxy_avf) + array_fit;
        let after_fit = seq_fit(after_seq_avf) + array_fit;

        let beam = BeamConfig {
            acceleration: 3.0e8,
            // Enough beam time for meaningful counting statistics at the
            // selected design scale (small designs have tiny absolute FITs).
            hours: if scale == Scale::Full { 6.0 } else { 300.0 },
            seed: seed ^ (0xbea0 + wi as u64),
        };
        let measurement = run_beam(true_fit, &beam);
        let reference_fit = *reference.get_or_insert(measurement.measured_fit);
        rows.push(CorrelationRow::new(
            name.clone(),
            &measurement,
            before_fit,
            after_fit,
            reference_fit,
        ));
    }

    let mean_improvement =
        rows.iter().map(CorrelationRow::improvement).sum::<f64>() / rows.len().max(1) as f64;
    let mean_after = sart_seq_avf.iter().sum::<f64>() / sart_seq_avf.len().max(1) as f64;
    Fig10Report {
        rows,
        proxy_avf,
        avf_reduction_vs_proxy: 1.0 - mean_after / proxy_avf.max(1e-12),
        sart_seq_avf,
        mean_improvement,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correlation_shape_matches_paper() {
        let r = run(Scale::Quick, 11);
        assert_eq!(r.rows.len(), 2);
        for row in &r.rows {
            // The structure-AVF proxy overshoots the measurement…
            assert!(
                row.modeled_before_au > row.measured_au,
                "{}: before-model must overshoot",
                row.workload
            );
            // …and the sequential-AVF model is strictly closer.
            assert!(
                row.miscorrelation_after() < row.miscorrelation_before(),
                "{}: correlation must improve",
                row.workload
            );
            // The corrected model stays conservative (above the measured
            // central value is allowed; below its lower bound is not).
            assert!(
                row.modeled_after_au >= row.measured_interval_au.0,
                "{}: after-model fell below the measurement interval",
                row.workload
            );
        }
        assert!(
            r.mean_improvement > 0.25,
            "improvement {} too small",
            r.mean_improvement
        );
        // Sequential AVFs land well below the conservative proxy.
        assert!(
            r.avf_reduction_vs_proxy > 0.15,
            "{}",
            r.avf_reduction_vs_proxy
        );
    }

    #[test]
    fn render_mentions_both_workloads() {
        let r = run(Scale::Quick, 11);
        let text = r.render();
        assert!(text.contains("Lattice"));
        assert!(text.contains("MD5Sum"));
        assert!(text.contains("measured"));
    }
}
