//! **E11 — scaling study** (§1, §5.2): how SART's cost grows with design
//! size.
//!
//! The paper reports "computation times … on the order of a week to
//! compute the AVF over thousands of workloads" and "about a day" of SART
//! analysis for an Intel Xeon core, and argues the approach scales because
//! each relaxation iteration is linear in nodes and edges and the
//! closed-form reuse amortizes workloads. This study sweeps the synthetic
//! design scale and measures preparation, relaxation, and re-evaluation
//! cost, checking the per-node cost stays roughly flat (near-linear total
//! scaling).

use serde::{Deserialize, Serialize};

use seqavf_core::engine::{SartConfig, SartEngine};
use seqavf_core::mapping::{PavfInputs, StructureMapping};
use seqavf_netlist::synth::{generate, SynthConfig};

use crate::common::Scale;

/// One scaling point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalePoint {
    /// Generator scale factor.
    pub factor: f64,
    /// Nodes in the design.
    pub nodes: usize,
    /// Edges in the design.
    pub edges: usize,
    /// Full SART run (prepare + relax + resolve), seconds.
    pub sart_seconds: f64,
    /// Closed-form re-evaluation, seconds.
    pub reeval_seconds: f64,
    /// SART cost per node, microseconds.
    pub us_per_node: f64,
}

/// The scaling report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingReport {
    /// Sweep points in ascending size.
    pub points: Vec<ScalePoint>,
}

impl ScalingReport {
    /// Ratio of per-node cost between the largest and smallest design —
    /// near 1.0 means linear scaling.
    pub fn per_node_growth(&self) -> f64 {
        match (self.points.first(), self.points.last()) {
            (Some(a), Some(b)) if a.us_per_node > 0.0 => b.us_per_node / a.us_per_node,
            _ => 1.0,
        }
    }

    /// Renders the sweep.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "SART scaling with design size\n\
             {:<8} {:>9} {:>10} {:>10} {:>11} {:>10}",
            "scale", "nodes", "edges", "sart (s)", "reeval (s)", "µs/node"
        );
        for p in &self.points {
            let _ = writeln!(
                out,
                "{:<8.2} {:>9} {:>10} {:>10.4} {:>11.6} {:>10.2}",
                p.factor, p.nodes, p.edges, p.sart_seconds, p.reeval_seconds, p.us_per_node
            );
        }
        let _ = writeln!(
            out,
            "\nper-node cost growth across the sweep: {:.2}× (≈1 means linear scaling)",
            self.per_node_growth()
        );
        out
    }
}

/// Runs the scaling sweep.
pub fn run(scale: Scale, seed: u64) -> ScalingReport {
    let factors: &[f64] = match scale {
        Scale::Quick => &[0.3, 0.6, 1.0, 2.0],
        Scale::Full => &[0.5, 1.0, 2.0, 4.0, 8.0],
    };
    let inputs = PavfInputs::new();
    let mut points = Vec::new();
    for &factor in factors {
        let design = generate(&SynthConfig::xeon_like(seed).scaled(factor));
        let nl = &design.netlist;
        let mapping = StructureMapping::from_pairs(design.meta.structure_map.clone());
        let t0 = std::time::Instant::now();
        let engine = SartEngine::new(nl, &mapping, SartConfig::default());
        let result = engine.run(&inputs);
        let sart_seconds = t0.elapsed().as_secs_f64();
        let t1 = std::time::Instant::now();
        let _ = result.reevaluate(nl, &inputs);
        let reeval_seconds = t1.elapsed().as_secs_f64();
        points.push(ScalePoint {
            factor,
            nodes: nl.node_count(),
            edges: nl.edge_count(),
            sart_seconds,
            reeval_seconds,
            us_per_node: sart_seconds * 1e6 / nl.node_count() as f64,
        });
    }
    ScalingReport { points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_scales_near_linearly() {
        let r = run(Scale::Quick, 37);
        assert_eq!(r.points.len(), 4);
        for w in r.points.windows(2) {
            assert!(w[1].nodes > w[0].nodes, "sizes must ascend");
        }
        // Per-node cost may wobble with cache effects but must not blow up
        // quadratically across a ~7x node range.
        assert!(
            r.per_node_growth() < 8.0,
            "per-node growth {:.2}",
            r.per_node_growth()
        );
    }

    #[test]
    fn render_lists_all_points() {
        let r = run(Scale::Quick, 37);
        assert_eq!(r.render().lines().count(), r.points.len() + 4);
    }
}
