//! **E13 — incremental dirty-FUB relaxation**: sweep work and wall time
//! of incremental (dirty-FUB) versus full partitioned relaxation.
//!
//! After the first sweep, most FUBs' boundary reads stop changing long
//! before the global fixpoint is reached; the incremental engine diffs
//! the cross-FUB boundary values at each barrier and re-walks only the
//! FUBs that consume a changed value. This study runs the same design
//! through both modes at one and many worker threads, records the
//! per-sweep trajectory (`walked_nodes`, `dirty_fubs`, wall time), and
//! *checks* the contract: incremental mode must produce bit-identical
//! AVFs while walking strictly fewer (or equal) nodes.
//!
//! The node-walk reduction is deterministic (a property of the design's
//! convergence trajectory, not the host); wall-time speedup tracks it
//! minus barrier and diffing overhead.

use serde::{Deserialize, Serialize};

use seqavf_core::engine::{SartConfig, SartEngine};
use seqavf_core::mapping::{PavfInputs, StructureMapping};
use seqavf_netlist::synth::{generate, SynthConfig};

use crate::common::{Provenance, Scale};

/// One sweep of one mode's convergence trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Sweep index (the last one is the verification sweep).
    pub iter: usize,
    /// FUBs walked this sweep.
    pub dirty_fubs: usize,
    /// FUBs skipped because none of their boundary reads changed.
    pub skipped_fubs: usize,
    /// Nodes walked this sweep (the work metric).
    pub walked_nodes: usize,
    /// Annotations whose term set changed this sweep.
    pub changed_sets: usize,
    /// Wall-clock seconds for this sweep.
    pub wall_seconds: f64,
}

/// One (threads, mode) measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModePoint {
    /// Worker threads used.
    pub threads: usize,
    /// Whether dirty-FUB skipping was enabled.
    pub incremental: bool,
    /// Relaxation wall time (sum over sweeps), best of the repeats,
    /// seconds.
    pub relax_seconds: f64,
    /// Total nodes walked across all sweeps (identical across repeats).
    pub total_walked_nodes: usize,
    /// Productive relaxation iterations.
    pub iterations: usize,
    /// Per-sweep trajectory from the last repeat.
    pub trajectory: Vec<SweepPoint>,
}

/// The full-vs-incremental comparison report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IncrementalReport {
    /// Measurement provenance (design digest, host, thread counts).
    pub provenance: Provenance,
    /// Nodes in the benchmarked design.
    pub nodes: usize,
    /// FUB partitions.
    pub fubs: usize,
    /// One entry per (threads, mode) pair.
    pub points: Vec<ModePoint>,
    /// Full-sweep node walks divided by incremental node walks (the
    /// deterministic work reduction; identical at every thread count).
    pub node_walk_reduction: f64,
    /// Whether every (threads, mode) pair produced bit-identical AVFs.
    pub bit_identical: bool,
}

impl IncrementalReport {
    /// Wall-time speedup of incremental over full sweeps at a thread
    /// count, if both points were measured.
    pub fn wall_speedup(&self, threads: usize) -> Option<f64> {
        let full = self
            .points
            .iter()
            .find(|p| p.threads == threads && !p.incremental)?;
        let inc = self
            .points
            .iter()
            .find(|p| p.threads == threads && p.incremental)?;
        Some(full.relax_seconds / inc.relax_seconds.max(1e-12))
    }

    /// Renders the comparison and the incremental trajectory.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "incremental dirty-FUB relaxation ({} nodes, {} FUBs)\n\
             {:<8} {:<12} {:>12} {:>13} {:>11}",
            self.nodes, self.fubs, "threads", "mode", "relax (s)", "node walks", "iterations"
        );
        for p in &self.points {
            let _ = writeln!(
                out,
                "{:<8} {:<12} {:>12.4} {:>13} {:>11}",
                p.threads,
                if p.incremental { "incremental" } else { "full" },
                p.relax_seconds,
                p.total_walked_nodes,
                p.iterations
            );
        }
        let _ = writeln!(
            out,
            "\nnode-walk reduction (full / incremental): {:.2}x",
            self.node_walk_reduction
        );
        for p in &self.points {
            if let (true, Some(s)) = (p.incremental, self.wall_speedup(p.threads)) {
                let _ = writeln!(out, "wall-time speedup at {} threads: {:.2}x", p.threads, s);
            }
        }
        if let Some(p) = self.points.iter().find(|p| p.incremental) {
            let _ = writeln!(
                out,
                "\nincremental trajectory ({} threads)\n{:<6} {:>11} {:>13} {:>13} {:>13}",
                p.threads, "sweep", "dirty FUBs", "skipped", "nodes walked", "changed sets"
            );
            for s in &p.trajectory {
                let _ = writeln!(
                    out,
                    "{:<6} {:>11} {:>13} {:>13} {:>13}",
                    s.iter, s.dirty_fubs, s.skipped_fubs, s.walked_nodes, s.changed_sets
                );
            }
        }
        let _ = writeln!(
            out,
            "\nAVFs bit-identical across modes and thread counts: {}",
            if self.bit_identical {
                "yes"
            } else {
                "NO (BUG)"
            }
        );
        out
    }
}

/// Runs the comparison (best of `repeats` runs per point).
pub fn run(scale: Scale, seed: u64, thread_counts: &[usize]) -> IncrementalReport {
    let factor = match scale {
        Scale::Quick => 1.0,
        Scale::Full => 4.0,
    };
    let design = generate(&SynthConfig::xeon_like(seed).scaled(factor));
    let nl = &design.netlist;
    let mapping = StructureMapping::from_pairs(design.meta.structure_map.clone());
    let inputs = PavfInputs::new();
    let repeats = 3usize;

    let mut points = Vec::new();
    let mut baseline_avf: Option<Vec<f64>> = None;
    let mut bit_identical = true;
    let mut walks = (0usize, 0usize); // (full, incremental) at any thread count
    for &threads in thread_counts {
        for incremental in [false, true] {
            let engine = SartEngine::new(
                nl,
                &mapping,
                SartConfig {
                    threads,
                    incremental,
                    ..SartConfig::default()
                },
            );
            let mut best = f64::INFINITY;
            let mut last = None;
            for _ in 0..repeats {
                let r = engine.run(&inputs);
                best = best.min(r.outcome.total_wall_seconds());
                last = Some(r);
            }
            let r = last.expect("at least one run");
            match &baseline_avf {
                None => baseline_avf = Some(r.avf.clone()),
                Some(base) => {
                    if base != &r.avf {
                        bit_identical = false;
                    }
                }
            }
            if incremental {
                walks.1 = r.outcome.total_walked_nodes();
            } else {
                walks.0 = r.outcome.total_walked_nodes();
            }
            points.push(ModePoint {
                threads,
                incremental,
                relax_seconds: best,
                total_walked_nodes: r.outcome.total_walked_nodes(),
                iterations: r.outcome.iterations,
                trajectory: r
                    .outcome
                    .trace
                    .iter()
                    .enumerate()
                    .map(|(i, s)| SweepPoint {
                        iter: i,
                        dirty_fubs: s.dirty_fubs,
                        skipped_fubs: s.skipped_fubs,
                        walked_nodes: s.walked_nodes,
                        changed_sets: s.changed_sets,
                        wall_seconds: s.wall_seconds,
                    })
                    .collect(),
            });
        }
    }

    IncrementalReport {
        provenance: Provenance::capture(nl.content_digest(), thread_counts),
        nodes: nl.node_count(),
        fubs: nl.fub_count(),
        points,
        node_walk_reduction: walks.0 as f64 / (walks.1 as f64).max(1.0),
        bit_identical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incremental_reduces_work_and_stays_bit_identical() {
        let report = run(Scale::Quick, 7, &[1]);
        assert!(report.bit_identical);
        assert!(
            report.node_walk_reduction >= 1.0,
            "incremental walked more nodes than full sweeps: {:.2}x",
            report.node_walk_reduction
        );
        let inc = report
            .points
            .iter()
            .find(|p| p.incremental)
            .expect("incremental point");
        assert!(inc.trajectory.iter().any(|s| s.skipped_fubs > 0));
    }
}
