//! E18 — cross-run warm-start latency (`BENCH_9.json`).
//!
//! The interactive-edit scenario: a design is solved once and its
//! converged fixpoint captured as a `seqavf-fixpoint/1` artifact; then
//! the designer edits the netlist and re-solves. The warm path diffs
//! per-FUB content digests against the artifact, seeds the relaxation
//! with the stored annotations, and re-walks only the dirty cone —
//! bit-identical to a cold solve by construction (property-tested in
//! `warmstart_equivalence.rs`); this experiment records how much *work*
//! the seed removes.
//!
//! Three edit magnitudes per design size:
//!
//! * **one FUB** — a single gate flip, the paper's latency headline;
//! * **5% of FUBs** — a medium refactor touching several blocks;
//! * **full rewrite** — every FUB's digest changes, the adversarial
//!   bound where warm must degrade gracefully to cold-equivalent work.
//!
//! Reported per edit: walked-node and wall-time ratios of cold over
//! warm. The acceptance bar is a ≥5× walked-node reduction for the
//! one-FUB edit on the production-size (~102k node) design.

use std::time::Instant;

use serde::{Deserialize, Serialize};

use seqavf_core::engine::{SartConfig, SartEngine, SartResult, WarmStatus};
use seqavf_core::fixpoint::StoredFixpoint;
use seqavf_core::mapping::{PavfInputs, StructureMapping};
use seqavf_netlist::exlif;
use seqavf_netlist::flatten;
use seqavf_netlist::synth::{generate, SynthConfig};

use crate::common::{Provenance, Scale};

/// One edit magnitude's cold-vs-warm comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EditPoint {
    /// Edit kind: `one_fub`, `five_percent_fubs`, or `full_rewrite`.
    pub edit: String,
    /// Gates flipped in the EXLIF text to produce the edit.
    pub flipped_gates: usize,
    /// FUBs whose content digest changed (re-relaxed from scratch).
    pub dirty_fubs: usize,
    /// FUBs seeded from the stored fixpoint.
    pub seeded_fubs: usize,
    /// Nodes walked by the cold re-solve of the edited design.
    pub cold_walked_nodes: usize,
    /// Nodes walked by the warm re-solve.
    pub warm_walked_nodes: usize,
    /// `cold_walked_nodes / warm_walked_nodes` — the work reduction.
    pub walk_reduction: f64,
    /// Cold re-solve wall time, milliseconds.
    pub cold_wall_ms: f64,
    /// Warm re-solve wall time (seed + dirty-cone relaxation).
    pub warm_wall_ms: f64,
    /// `cold_wall_ms / warm_wall_ms`.
    pub wall_speedup: f64,
    /// Whether warm and cold AVFs matched bit for bit (checked before
    /// any ratio is reported).
    pub bit_identical: bool,
}

/// One design size's measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Design label.
    pub label: String,
    /// Nodes in the design.
    pub nodes: usize,
    /// FUB partitions.
    pub fubs: usize,
    /// Encoded `seqavf-fixpoint/1` artifact size in bytes.
    pub artifact_bytes: usize,
    /// Base-revision cold solve (the one that paid for the artifact).
    pub base_solve_ms: f64,
    /// One point per edit magnitude.
    pub edits: Vec<EditPoint>,
}

/// The E18 report, emitted as `BENCH_9.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WarmstartReport {
    /// Measurement provenance (base design digest, host, thread counts).
    pub provenance: Provenance,
    /// One entry per design size, ascending.
    pub points: Vec<DesignPoint>,
}

impl WarmstartReport {
    /// The one-FUB walked-node reduction on the largest design — the
    /// acceptance metric.
    pub fn headline_walk_reduction(&self) -> Option<f64> {
        let p = self.points.last()?;
        p.edits
            .iter()
            .find(|e| e.edit == "one_fub")
            .map(|e| e.walk_reduction)
    }

    /// Renders the per-design tables.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "cross-run warm-start study (host parallelism: {}, threads: {:?})",
            self.provenance.host_parallelism, self.provenance.threads
        );
        for p in &self.points {
            let _ = writeln!(
                out,
                "\n== {} — {} nodes, {} FUBs, artifact {} bytes, base solve {:.1} ms\n\
                 {:<18} {:>6} {:>7} {:>12} {:>12} {:>8} {:>10} {:>10} {:>8}",
                p.label,
                p.nodes,
                p.fubs,
                p.artifact_bytes,
                p.base_solve_ms,
                "edit",
                "dirty",
                "seeded",
                "cold walks",
                "warm walks",
                "walk x",
                "cold ms",
                "warm ms",
                "wall x"
            );
            for e in &p.edits {
                let _ = writeln!(
                    out,
                    "{:<18} {:>6} {:>7} {:>12} {:>12} {:>7.1}x {:>10.2} {:>10.2} {:>7.2}x{}",
                    e.edit,
                    e.dirty_fubs,
                    e.seeded_fubs,
                    e.cold_walked_nodes,
                    e.warm_walked_nodes,
                    e.walk_reduction,
                    e.cold_wall_ms,
                    e.warm_wall_ms,
                    e.wall_speedup,
                    if e.bit_identical {
                        ""
                    } else {
                        "  AVF MISMATCH"
                    }
                );
            }
        }
        if let Some(r) = self.headline_walk_reduction() {
            let _ = writeln!(
                out,
                "\nheadline: one-FUB edit re-walks {r:.1}x fewer nodes than a cold solve \
                 on the largest design"
            );
        }
        out
    }
}

/// Flips `count` and/or gate lines spread evenly across the EXLIF text,
/// so the flips land in distinct regions (and therefore mostly distinct
/// FUBs). Returns the edited text and the number of gates flipped.
pub(crate) fn flip_spread(text: &str, count: usize) -> (String, usize) {
    let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
    let gate_lines: Vec<usize> = lines
        .iter()
        .enumerate()
        .filter(|(_, l)| {
            let t = l.trim_start();
            t.starts_with(".gate and ") || t.starts_with(".gate or ")
        })
        .map(|(i, _)| i)
        .collect();
    let count = count.clamp(1, gate_lines.len());
    let stride = gate_lines.len() / count;
    let mut flipped = 0usize;
    for k in 0..count {
        let i = gate_lines[k * stride.max(1)];
        lines[i] = if lines[i].trim_start().starts_with(".gate and ") {
            lines[i].replacen(".gate and ", ".gate or ", 1)
        } else {
            lines[i].replacen(".gate or ", ".gate and ", 1)
        };
        flipped += 1;
    }
    (lines.join("\n") + "\n", flipped)
}

/// Cold + warm re-solve of one edited revision; panics on AVF mismatch
/// only indirectly (the flag is recorded, not asserted, so a full run
/// still reports the failure).
fn measure_edit(
    edit: &str,
    base_text: &str,
    flips: usize,
    mapping: &StructureMapping,
    inputs: &PavfInputs,
    stored: &StoredFixpoint,
    threads: usize,
) -> EditPoint {
    let (edited, flipped_gates) = flip_spread(base_text, flips);
    let nl = flatten::parse_netlist(&edited).expect("edited EXLIF parses");
    let config = SartConfig {
        threads,
        ..SartConfig::default()
    };
    let engine = SartEngine::new(&nl, mapping, config);

    let t0 = Instant::now();
    let cold = engine.run(inputs);
    let cold_wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t1 = Instant::now();
    let (warm, status) = engine.run_warm_traced(inputs, stored, &seqavf_obs::Collector::disabled());
    let warm_wall_ms = t1.elapsed().as_secs_f64() * 1e3;

    let (seeded_fubs, dirty_fubs) = match status {
        WarmStatus::Warm {
            seeded_fubs,
            dirty_fubs,
        } => (seeded_fubs, dirty_fubs),
        WarmStatus::Cold(_) => (0, nl.fub_count()),
    };
    let bit_identical = cold.avf.len() == warm.avf.len()
        && cold
            .avf
            .iter()
            .zip(&warm.avf)
            .all(|(c, w)| c.to_bits() == w.to_bits());
    let cold_walked = cold.outcome.total_walked_nodes();
    let warm_walked = warm.outcome.total_walked_nodes();
    EditPoint {
        edit: edit.to_owned(),
        flipped_gates,
        dirty_fubs,
        seeded_fubs,
        cold_walked_nodes: cold_walked,
        warm_walked_nodes: warm_walked,
        walk_reduction: cold_walked as f64 / (warm_walked as f64).max(1.0),
        cold_wall_ms,
        warm_wall_ms,
        wall_speedup: cold_wall_ms / warm_wall_ms.max(1e-9),
        bit_identical,
    }
}

/// Measures one design size: base solve + artifact capture, then the
/// three edit magnitudes.
fn measure_design(label: &str, cfg: &SynthConfig, threads: usize) -> DesignPoint {
    let design = generate(cfg);
    let base_text = exlif::write(&design.netlist);
    let mapping = StructureMapping::from_pairs(design.meta.structure_map.clone());
    let mut inputs = PavfInputs::new();
    inputs.set_port("uops_executed", 0.21, 0.34);

    let nl = flatten::parse_netlist(&base_text).expect("generated EXLIF parses");
    let config = SartConfig {
        threads,
        ..SartConfig::default()
    };
    let engine = SartEngine::new(&nl, &mapping, config);
    let t0 = Instant::now();
    let result: SartResult = engine.run(&inputs);
    let base_solve_ms = t0.elapsed().as_secs_f64() * 1e3;
    let stored = engine
        .capture_fixpoint(&result)
        .expect("base revision converges");
    let artifact_bytes = stored.encode().len();

    let fubs = nl.fub_count();
    let edits = vec![
        measure_edit(
            "one_fub", &base_text, 1, &mapping, &inputs, &stored, threads,
        ),
        measure_edit(
            "five_percent_fubs",
            &base_text,
            fubs.div_ceil(20),
            &mapping,
            &inputs,
            &stored,
            threads,
        ),
        measure_edit(
            "full_rewrite",
            &base_text,
            usize::MAX,
            &mapping,
            &inputs,
            &stored,
            threads,
        ),
    ];
    DesignPoint {
        label: label.to_owned(),
        nodes: nl.node_count(),
        fubs,
        artifact_bytes,
        base_solve_ms,
        edits,
    }
}

/// Runs E18. Quick measures the ~3k-node reference; full adds the
/// production-size (~102k node) design the acceptance bar is set on.
pub fn run(scale: Scale, seed: u64) -> WarmstartReport {
    let threads = 8usize;
    let mut points = vec![measure_design(
        "xeon_like",
        &SynthConfig::xeon_like(seed),
        threads,
    )];
    if scale == Scale::Full {
        points.push(measure_design(
            "xeon_like_x8 @ 2.0",
            &SynthConfig::xeon_like(seed).scaled(2.0).with_cores(8),
            threads,
        ));
    }
    WarmstartReport {
        provenance: Provenance::capture(
            generate(&SynthConfig::xeon_like(seed))
                .netlist
                .content_digest(),
            &[threads],
        ),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reduces_walks_and_stays_bit_identical() {
        let report = run(Scale::Quick, 42);
        assert_eq!(report.points.len(), 1);
        let p = &report.points[0];
        assert_eq!(p.edits.len(), 3);
        for e in &p.edits {
            assert!(e.bit_identical, "{} diverged", e.edit);
            assert!(e.warm_walked_nodes <= e.cold_walked_nodes, "{}", e.edit);
        }
        let one = &p.edits[0];
        assert_eq!(one.dirty_fubs, 1, "one gate flip dirties one FUB");
        assert!(
            one.walk_reduction > 2.0,
            "one-FUB edit reduction {} too small even at 3k nodes",
            one.walk_reduction
        );
        let rewrite = &p.edits[2];
        assert!(rewrite.dirty_fubs >= p.fubs / 2, "rewrite barely dirtied");
    }
}
