//! **E10 — design-choice ablations** (§4, §5.1): what each ingredient of
//! the methodology buys.
//!
//! - **Backward walks off** (forward only): the paper's key claim is that
//!   using `MIN(forward, backward)` "is the main reason why the node AVF
//!   values do not simply saturate to 100%".
//! - **Bit-field analysis off**: control-structure pAVFs become more
//!   conservative ("the resulting pAVFs can be much less conservative" with
//!   it on).
//! - **HD-1 analysis off**: CAM structures lose their tag-bit refinement.
//! - **Conservative vs precise residency**: the magnitude of the structure
//!   AVF conservatism the sequential flow removes.
//! - **Partitioned vs global analysis**: identical results, different
//!   iteration counts (validates the FUBIO relaxation).

use serde::{Deserialize, Serialize};

use crate::common::{flow_config, Scale};
use seqavf::flow::{inputs_from_suite, run_flow, run_suite};
use seqavf_core::engine::{SartConfig, SartEngine};
use seqavf_perf::pipeline::PerfConfig;

/// The ablation report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationReport {
    /// Baseline mean sequential AVF (all features on).
    pub baseline_seq_avf: f64,
    /// Mean sequential AVF using only the forward walk.
    pub forward_only_seq_avf: f64,
    /// Mean sequential AVF without bit-field analysis.
    pub no_bitfield_seq_avf: f64,
    /// Mean sequential AVF without HD-1 analysis.
    pub no_hd1_seq_avf: f64,
    /// Mean structure AVF, precise residency.
    pub precise_struct_avf: f64,
    /// Mean structure AVF, conservative residency.
    pub conservative_struct_avf: f64,
    /// Iterations used by partitioned relaxation.
    pub partitioned_iterations: usize,
    /// Largest per-node difference between partitioned and global modes.
    pub partition_vs_global_max_diff: f64,
}

impl AblationReport {
    /// Renders the ablation table.
    pub fn render(&self) -> String {
        format!(
            "Design-choice ablations (mean sequential AVF unless noted)\n\
             baseline (all on):          {:.4}\n\
             forward walk only:          {:.4}  (+{:.1}% — MIN(F,B) prevents saturation)\n\
             bit-field analysis off:     {:.4}  (+{:.1}%)\n\
             HD-1 analysis off:          {:.4}  (+{:.1}%)\n\
             structure AVF precise:      {:.4}\n\
             structure AVF conservative: {:.4}  ({:.1}× inflation removed by the flow)\n\
             partitioned iterations:     {}\n\
             partitioned vs global max |Δ|: {:.2e} (same fixpoint)\n",
            self.baseline_seq_avf,
            self.forward_only_seq_avf,
            100.0 * (self.forward_only_seq_avf / self.baseline_seq_avf - 1.0),
            self.no_bitfield_seq_avf,
            100.0 * (self.no_bitfield_seq_avf / self.baseline_seq_avf - 1.0),
            self.no_hd1_seq_avf,
            100.0 * (self.no_hd1_seq_avf / self.baseline_seq_avf - 1.0),
            self.precise_struct_avf,
            self.conservative_struct_avf,
            self.conservative_struct_avf / self.precise_struct_avf.max(1e-12),
            self.partitioned_iterations,
            self.partition_vs_global_max_diff,
        )
    }
}

/// Runs all ablations.
pub fn run(scale: Scale, seed: u64) -> AblationReport {
    let cfg = flow_config(scale, seed);
    let out = run_flow(&cfg);
    let nl = &out.design.netlist;
    let baseline_seq_avf = out.result.mean_seq_avf(nl);

    // Forward-only: evaluate each sequential's forward walk value alone.
    let mut fsum = 0.0;
    let mut fcount = 0usize;
    for id in nl.seq_nodes() {
        fsum += out.result.forward_value(id, &out.inputs);
        fcount += 1;
    }
    let forward_only_seq_avf = fsum / fcount.max(1) as f64;

    // Re-derive inputs with analyses disabled; closed forms are reused.
    let traces = seqavf_workloads::suite::standard_suite(&cfg.suite);
    let mut no_bf_seq_avf = 0.0;
    let mut no_hd1_seq_avf = 0.0;
    for (bitfield, hd1, slot) in [
        (false, true, &mut no_bf_seq_avf),
        (true, false, &mut no_hd1_seq_avf),
    ] {
        let suite = run_suite(
            &traces,
            &PerfConfig {
                bitfield,
                hd1,
                ..cfg.perf
            },
        );
        let inputs = inputs_from_suite(&suite);
        let avfs = out.result.reevaluate(nl, &inputs);
        *slot = nl.seq_nodes().map(|id| avfs[id.index()]).sum::<f64>() / fcount.max(1) as f64;
    }

    // Residency modes.
    let precise = out.suite_report.mean_structure_avfs();
    let precise_struct_avf = precise.values().sum::<f64>() / precise.len().max(1) as f64;
    let cons_suite = run_suite(
        &traces,
        &PerfConfig {
            conservative_residency: true,
            ..cfg.perf
        },
    );
    let cons = cons_suite.mean_structure_avfs();
    let conservative_struct_avf = cons.values().sum::<f64>() / cons.len().max(1) as f64;

    // Partitioned vs global.
    let global_engine = SartEngine::new(
        nl,
        &out.mapping,
        SartConfig {
            partitioned: false,
            ..cfg.sart.clone()
        },
    );
    let global = global_engine.run(&out.inputs);
    let partition_vs_global_max_diff = nl
        .nodes()
        .map(|id| (out.result.avf(id) - global.avf(id)).abs())
        .fold(0.0, f64::max);

    AblationReport {
        baseline_seq_avf,
        forward_only_seq_avf,
        no_bitfield_seq_avf: no_bf_seq_avf,
        no_hd1_seq_avf,
        precise_struct_avf,
        conservative_struct_avf,
        partitioned_iterations: out.result.iterations(),
        partition_vs_global_max_diff,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_only_saturates_relative_to_min() {
        let r = run(Scale::Quick, 29);
        assert!(
            r.forward_only_seq_avf > r.baseline_seq_avf,
            "forward {} must exceed MIN {} — the backward walk refines",
            r.forward_only_seq_avf,
            r.baseline_seq_avf
        );
    }

    #[test]
    fn refinements_only_lower_avf() {
        let r = run(Scale::Quick, 29);
        assert!(
            r.no_bitfield_seq_avf >= r.baseline_seq_avf - 1e-9,
            "bit-field analysis must not raise AVF"
        );
        assert!(
            r.no_hd1_seq_avf >= r.baseline_seq_avf - 1e-9,
            "HD-1 analysis must not raise AVF"
        );
    }

    #[test]
    fn conservative_residency_inflates_structure_avf() {
        let r = run(Scale::Quick, 29);
        assert!(r.conservative_struct_avf > r.precise_struct_avf);
    }

    #[test]
    fn partitioned_and_global_agree() {
        let r = run(Scale::Quick, 29);
        assert!(r.partition_vs_global_max_diff < 1e-12);
        assert!(r.partitioned_iterations >= 2, "relaxation crosses FUBs");
    }
}
