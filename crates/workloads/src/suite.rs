//! Parametric workload-suite generation.
//!
//! The paper's pAVF data came from 547 workloads mixing SPEC-style
//! benchmarks with server traces (§6.1). This module generates a suite of
//! the same scale: each workload is drawn from a [`MixFamily`] describing an
//! instruction-class mix, working-set size, branch behaviour, and a fraction
//! of dynamically dead code (results never consumed — the first-order
//! source of un-ACE state that ACE analysis exploits).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::kernels::lattice::{lattice_trace, LatticeConfig};
use crate::kernels::md5::{md5_trace, Md5Config};
use crate::trace::{Instr, OpClass, Reg, Trace};

/// An instruction-mix family from which workloads are sampled.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixFamily {
    /// Family name; generated workloads are named `<family>_<index>`.
    pub name: String,
    /// Relative weights for (int ALU, int mul, fp add, fp mul, load, store,
    /// branch, nop).
    pub weights: [f64; 8],
    /// Probability a value-producing instruction is dynamically dead (its
    /// result is overwritten before any use).
    pub dead_fraction: f64,
    /// Log2 of the working-set size in bytes, bounding generated addresses.
    pub working_set_log2: u32,
    /// Probability that a conditional branch is taken.
    pub taken_prob: f64,
}

impl MixFamily {
    fn new(
        name: &str,
        weights: [f64; 8],
        dead_fraction: f64,
        working_set_log2: u32,
        taken_prob: f64,
    ) -> Self {
        MixFamily {
            name: name.to_owned(),
            weights,
            dead_fraction,
            working_set_log2,
            taken_prob,
        }
    }

    /// The six built-in families: SPEC-int-like, SPEC-fp-like, server OLTP,
    /// web serving, HPC stencil, and pointer chasing.
    pub fn builtin() -> Vec<MixFamily> {
        vec![
            //                        alu   mul   fpa   fpm   ld    st    br    nop
            MixFamily::new(
                "spec_int",
                [0.42, 0.05, 0.00, 0.00, 0.22, 0.10, 0.18, 0.03],
                0.12,
                22,
                0.62,
            ),
            MixFamily::new(
                "spec_fp",
                [0.18, 0.03, 0.22, 0.20, 0.22, 0.10, 0.04, 0.01],
                0.06,
                25,
                0.55,
            ),
            MixFamily::new(
                "server_oltp",
                [0.36, 0.02, 0.01, 0.01, 0.26, 0.14, 0.17, 0.03],
                0.18,
                27,
                0.58,
            ),
            MixFamily::new(
                "web",
                [0.40, 0.02, 0.01, 0.01, 0.24, 0.12, 0.16, 0.04],
                0.22,
                26,
                0.60,
            ),
            MixFamily::new(
                "hpc_stencil",
                [0.15, 0.02, 0.28, 0.25, 0.18, 0.09, 0.03, 0.00],
                0.04,
                28,
                0.52,
            ),
            MixFamily::new(
                "pointer_chase",
                [0.30, 0.01, 0.00, 0.00, 0.40, 0.05, 0.20, 0.04],
                0.10,
                29,
                0.50,
            ),
        ]
    }

    /// Generates one workload of `len` instructions with the given seed.
    pub fn generate(&self, index: usize, len: usize, seed: u64) -> Trace {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let total: f64 = self.weights.iter().sum();
        let mask = (1u64 << self.working_set_log2) - 1;
        let mut instrs = Vec::with_capacity(len);
        for _ in 0..len {
            let mut roll = rng.gen::<f64>() * total;
            let mut class = OpClass::Nop;
            for (w, op) in self.weights.iter().zip([
                OpClass::IntAlu,
                OpClass::IntMul,
                OpClass::FpAdd,
                OpClass::FpMul,
                OpClass::Load,
                OpClass::Store,
                OpClass::Branch,
                OpClass::Nop,
            ]) {
                if roll < *w {
                    class = op;
                    break;
                }
                roll -= w;
            }
            let r = |rng: &mut ChaCha8Rng| Reg::new(rng.gen::<u8>());
            let instr = match class {
                OpClass::Load => {
                    Instr::load(r(&mut rng), Some(r(&mut rng)), rng.gen::<u64>() & mask)
                }
                OpClass::Store => {
                    Instr::store(r(&mut rng), Some(r(&mut rng)), rng.gen::<u64>() & mask)
                }
                OpClass::Branch => Instr::branch(r(&mut rng), rng.gen_bool(self.taken_prob)),
                OpClass::Nop => Instr::nop(),
                op => {
                    let two_src = rng.gen_bool(0.7);
                    Instr::alu(op, r(&mut rng), r(&mut rng), two_src.then(|| r(&mut rng)))
                }
            };
            instrs.push(instr);
        }
        // Inject dead chains: overwrite a register immediately, making the
        // first producer dynamically dead.
        let dead_count = (len as f64 * self.dead_fraction) as usize;
        for _ in 0..dead_count {
            if instrs.len() < 2 {
                break;
            }
            let pos = rng.gen_range(0..instrs.len() - 1);
            if let Some(dst) = instrs[pos].dst {
                // Rewrite the following instruction to clobber `dst` without
                // reading it.
                let nxt = &mut instrs[pos + 1];
                if nxt.op == OpClass::IntAlu || nxt.op == OpClass::FpAdd {
                    nxt.dst = Some(dst);
                    if nxt.srcs[0] == Some(dst) {
                        nxt.srcs[0] = Some(Reg::new(dst.index() as u8 ^ 1));
                    }
                    if nxt.srcs[1] == Some(dst) {
                        nxt.srcs[1] = None;
                    }
                }
            }
        }
        Trace::new(format!("{}_{index:03}", self.name), instrs)
    }
}

/// Configuration for [`standard_suite`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteConfig {
    /// Total number of workloads (the paper used 547).
    pub workloads: usize,
    /// Dynamic instructions per generated workload.
    pub len: usize,
    /// Master seed.
    pub seed: u64,
    /// Whether to include the two beam-test kernels (lattice, md5sum) as
    /// the first two workloads.
    pub include_kernels: bool,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            workloads: 547,
            len: 10_000,
            seed: 0xace_5eed,
            include_kernels: true,
        }
    }
}

/// Generates the standard suite: the two beam-test kernels (optionally)
/// followed by workloads cycled across the built-in mix families.
pub fn standard_suite(config: &SuiteConfig) -> Vec<Trace> {
    let families = MixFamily::builtin();
    let mut out = Vec::with_capacity(config.workloads);
    if config.include_kernels && config.workloads >= 2 {
        out.push(lattice_trace(&LatticeConfig::default()));
        out.push(md5_trace(&Md5Config::default()));
    }
    let mut idx = 0usize;
    while out.len() < config.workloads {
        let fam = &families[idx % families.len()];
        out.push(fam.generate(
            idx / families.len(),
            config.len,
            config.seed.wrapping_add(idx as u64),
        ));
        idx += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_suite_has_547_workloads() {
        let cfg = SuiteConfig {
            len: 100,
            ..SuiteConfig::default()
        };
        let suite = standard_suite(&cfg);
        assert_eq!(suite.len(), 547);
        assert!(suite[0].name().starts_with("lattice"));
        assert!(suite[1].name().starts_with("md5sum"));
        // All names unique.
        let mut names: Vec<_> = suite.iter().map(|t| t.name().to_owned()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 547);
    }

    #[test]
    fn generation_is_deterministic() {
        let fam = &MixFamily::builtin()[0];
        let a = fam.generate(0, 500, 9);
        let b = fam.generate(0, 500, 9);
        assert_eq!(a, b);
        let c = fam.generate(0, 500, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn mixes_roughly_match_weights() {
        let fam = &MixFamily::builtin()[0]; // spec_int
        let t = fam.generate(0, 20_000, 3);
        let ld = t.class_fraction(OpClass::Load);
        assert!((ld - 0.22).abs() < 0.03, "load fraction {ld}");
        let fp = t.class_fraction(OpClass::FpAdd) + t.class_fraction(OpClass::FpMul);
        assert!(fp < 0.05, "spec_int should have almost no fp, got {fp}");
    }

    #[test]
    fn fp_family_is_fp_heavy() {
        let fam = &MixFamily::builtin()[4]; // hpc_stencil
        let t = fam.generate(0, 20_000, 3);
        let fp = t.class_fraction(OpClass::FpAdd) + t.class_fraction(OpClass::FpMul);
        assert!(fp > 0.4, "stencil fp fraction {fp}");
    }

    #[test]
    fn addresses_respect_working_set() {
        let fam = &MixFamily::builtin()[0];
        let t = fam.generate(0, 5_000, 3);
        let bound = 1u64 << fam.working_set_log2;
        for i in t.instrs() {
            if let Some(a) = i.addr {
                assert!(a < bound);
            }
        }
    }

    #[test]
    fn suite_without_kernels() {
        let cfg = SuiteConfig {
            workloads: 10,
            len: 50,
            include_kernels: false,
            ..SuiteConfig::default()
        };
        let suite = standard_suite(&cfg);
        assert_eq!(suite.len(), 10);
        assert!(!suite[0].name().starts_with("lattice"));
    }
}
