//! Dynamic instruction traces.
//!
//! A [`Trace`] is the unit of work the performance model consumes: a named
//! sequence of dynamic instructions with register and memory operands. The
//! format deliberately carries only what ACE analysis needs — operand
//! dependences (for dead-instruction analysis), memory addresses (for
//! hamming-distance-1 analysis of address-based structures), branch
//! outcomes, and per-instruction hints that make an instruction un-ACE at
//! the architectural level (NOPs, prefetches).

use serde::{Deserialize, Serialize};

/// Number of architectural registers in the trace ISA.
pub const NUM_REGS: u8 = 32;

/// An architectural register `r0`–`r31`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Reg(u8);

impl Reg {
    /// Creates a register, wrapping into the valid range.
    pub fn new(i: u8) -> Self {
        Reg(i % NUM_REGS)
    }

    /// Raw register index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Dynamic instruction class, the granularity the pipeline model schedules
/// at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Single-cycle integer ALU operation.
    IntAlu,
    /// Multi-cycle integer multiply/divide.
    IntMul,
    /// Floating-point add/sub.
    FpAdd,
    /// Floating-point multiply/divide.
    FpMul,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch.
    Branch,
    /// Architectural no-op (un-ACE by definition).
    Nop,
}

impl OpClass {
    /// Whether the class reads or writes memory.
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// Whether the class uses the floating-point pipes.
    pub fn is_fp(self) -> bool {
        matches!(self, OpClass::FpAdd | OpClass::FpMul)
    }

    /// Nominal execution latency in cycles in the performance model.
    pub fn latency(self) -> u32 {
        match self {
            OpClass::IntAlu | OpClass::Nop => 1,
            OpClass::Branch => 1,
            OpClass::IntMul => 3,
            OpClass::FpAdd => 3,
            OpClass::FpMul => 5,
            OpClass::Load => 4,
            OpClass::Store => 1,
        }
    }
}

/// One dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Instr {
    /// Operation class.
    pub op: OpClass,
    /// Destination register, if the instruction produces a value.
    pub dst: Option<Reg>,
    /// Up to two source registers.
    pub srcs: [Option<Reg>; 2],
    /// Effective address for loads/stores.
    pub addr: Option<u64>,
    /// Branch outcome (meaningful for [`OpClass::Branch`]).
    pub taken: bool,
    /// Architecturally discardable (software prefetch, hint): the result is
    /// un-ACE regardless of dataflow.
    pub hint: bool,
}

impl Instr {
    /// A canonical NOP.
    pub fn nop() -> Self {
        Instr {
            op: OpClass::Nop,
            dst: None,
            srcs: [None, None],
            addr: None,
            taken: false,
            hint: true,
        }
    }

    /// A register-to-register ALU-style instruction.
    pub fn alu(op: OpClass, dst: Reg, a: Reg, b: Option<Reg>) -> Self {
        Instr {
            op,
            dst: Some(dst),
            srcs: [Some(a), b],
            addr: None,
            taken: false,
            hint: false,
        }
    }

    /// A load from `addr` into `dst`, with optional address register `base`.
    pub fn load(dst: Reg, base: Option<Reg>, addr: u64) -> Self {
        Instr {
            op: OpClass::Load,
            dst: Some(dst),
            srcs: [base, None],
            addr: Some(addr),
            taken: false,
            hint: false,
        }
    }

    /// A store of `src` to `addr`, with optional address register `base`.
    pub fn store(src: Reg, base: Option<Reg>, addr: u64) -> Self {
        Instr {
            op: OpClass::Store,
            dst: None,
            srcs: [Some(src), base],
            addr: Some(addr),
            taken: false,
            hint: false,
        }
    }

    /// A conditional branch testing `cond`.
    pub fn branch(cond: Reg, taken: bool) -> Self {
        Instr {
            op: OpClass::Branch,
            dst: None,
            srcs: [Some(cond), None],
            addr: None,
            taken,
            hint: false,
        }
    }

    /// Iterates over the source registers that are present.
    pub fn sources(&self) -> impl Iterator<Item = Reg> + '_ {
        self.srcs.iter().flatten().copied()
    }
}

/// A named dynamic instruction trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    name: String,
    instrs: Vec<Instr>,
}

impl Trace {
    /// Creates a trace from parts.
    pub fn new(name: impl Into<String>, instrs: Vec<Instr>) -> Self {
        Trace {
            name: name.into(),
            instrs,
        }
    }

    /// The workload name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of dynamic instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The instructions in program order.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Fraction of instructions in a given class.
    pub fn class_fraction(&self, op: OpClass) -> f64 {
        if self.instrs.is_empty() {
            return 0.0;
        }
        self.instrs.iter().filter(|i| i.op == op).count() as f64 / self.instrs.len() as f64
    }
}

/// Convenience builder for hand-written or kernel-generated traces.
#[derive(Debug, Clone, Default)]
pub struct TraceBuilder {
    name: String,
    instrs: Vec<Instr>,
}

impl TraceBuilder {
    /// Starts an empty trace with a name.
    pub fn new(name: impl Into<String>) -> Self {
        TraceBuilder {
            name: name.into(),
            instrs: Vec::new(),
        }
    }

    /// Appends one instruction.
    pub fn push(&mut self, i: Instr) -> &mut Self {
        self.instrs.push(i);
        self
    }

    /// Number of instructions so far.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether no instructions have been added.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Finishes the trace.
    pub fn finish(self) -> Trace {
        Trace {
            name: self.name,
            instrs: self.instrs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_wraps_into_range() {
        assert_eq!(Reg::new(5).index(), 5);
        assert_eq!(Reg::new(NUM_REGS + 3).index(), 3);
        assert_eq!(Reg::new(7).to_string(), "r7");
    }

    #[test]
    fn constructors_fill_fields() {
        let a = Reg::new(1);
        let b = Reg::new(2);
        let i = Instr::alu(OpClass::IntAlu, Reg::new(0), a, Some(b));
        assert_eq!(i.dst, Some(Reg::new(0)));
        assert_eq!(i.sources().count(), 2);

        let l = Instr::load(a, Some(b), 0x100);
        assert_eq!(l.op, OpClass::Load);
        assert_eq!(l.addr, Some(0x100));

        let s = Instr::store(a, None, 0x200);
        assert_eq!(s.dst, None);
        assert_eq!(s.sources().count(), 1);

        let br = Instr::branch(a, true);
        assert!(br.taken);

        let n = Instr::nop();
        assert!(n.hint);
        assert_eq!(n.op, OpClass::Nop);
    }

    #[test]
    fn op_class_properties() {
        assert!(OpClass::Load.is_mem());
        assert!(OpClass::Store.is_mem());
        assert!(!OpClass::IntAlu.is_mem());
        assert!(OpClass::FpMul.is_fp());
        assert!(OpClass::FpMul.latency() > OpClass::IntAlu.latency());
    }

    #[test]
    fn trace_builder_and_queries() {
        let mut b = TraceBuilder::new("t");
        assert!(b.is_empty());
        b.push(Instr::nop());
        b.push(Instr::alu(OpClass::IntAlu, Reg::new(0), Reg::new(1), None));
        let t = b.finish();
        assert_eq!(t.name(), "t");
        assert_eq!(t.len(), 2);
        assert!((t.class_fraction(OpClass::Nop) - 0.5).abs() < 1e-12);
        assert_eq!(t.class_fraction(OpClass::Load), 0.0);
    }

    #[test]
    fn empty_trace_fraction_is_zero() {
        let t = Trace::new("e", vec![]);
        assert!(t.is_empty());
        assert_eq!(t.class_fraction(OpClass::IntAlu), 0.0);
    }
}
