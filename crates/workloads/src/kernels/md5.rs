//! The MD5Sum kernel, memory accesses removed.
//!
//! The beam-test workload "calculates 128-bit MD5 hashes as per [RFC 1321].
//! It was modified to remove memory accesses (to reduce cache DUE …), and
//! therefore does not calculate a true MD5 hash, though it does all the same
//! calculations" (§6.2). Matching that description, this generator executes
//! the genuine MD5 block transform over synthesized message blocks held in
//! registers — the message schedule is produced by a register-resident PRNG
//! instead of loads — and records the dynamic instruction stream of the 64
//! transform steps per block.

use crate::trace::{Instr, OpClass, Reg, Trace, TraceBuilder};

/// MD5 per-round shift amounts.
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// MD5 sine-derived constants.
const K: [u32; 64] = {
    // floor(abs(sin(i+1)) * 2^32) — precomputed per RFC 1321.
    [
        0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613,
        0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193,
        0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d,
        0x02441453, 0xd8a1e681, 0xe7d3fbc8, 0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed,
        0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122,
        0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
        0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665, 0xf4292244,
        0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
        0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb,
        0xeb86d391,
    ]
};

/// Parameters for the MD5 kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Md5Config {
    /// Number of 512-bit blocks to transform.
    pub blocks: usize,
    /// Seed for the register-resident message-schedule generator.
    pub seed: u32,
}

impl Default for Md5Config {
    fn default() -> Self {
        Md5Config {
            blocks: 16,
            seed: 0x5eed_cafe,
        }
    }
}

/// Runs the kernel and returns `(trace, final 128-bit state)`.
pub fn md5_kernel(config: &Md5Config) -> (Trace, [u32; 4]) {
    let mut tb = TraceBuilder::new(format!("md5sum_{}blk", config.blocks));

    // Register conventions.
    let ra = Reg::new(0);
    let rb = Reg::new(1);
    let rc = Reg::new(2);
    let rd = Reg::new(3);
    let rf = Reg::new(4); // round function value
    let rk = Reg::new(5); // round constant
    let rm = Reg::new(6); // message word (register-resident)
    let rt = Reg::new(7); // rotate temporary
    let rseed = Reg::new(8); // PRNG state

    let mut state: [u32; 4] = [0x6745_2301, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476];
    let mut prng = config.seed.max(1);
    let mut next_word = || {
        // xorshift32 — stands in for the removed memory loads.
        prng ^= prng << 13;
        prng ^= prng >> 17;
        prng ^= prng << 5;
        prng
    };

    for _blk in 0..config.blocks {
        // Message schedule synthesized in registers (the "removed memory
        // accesses"): 3 ALU ops per word for the xorshift.
        let mut msg = [0u32; 16];
        for w in msg.iter_mut() {
            *w = next_word();
            tb.push(Instr::alu(OpClass::IntAlu, rseed, rseed, None));
            tb.push(Instr::alu(OpClass::IntAlu, rseed, rseed, None));
            tb.push(Instr::alu(OpClass::IntAlu, rm, rseed, None));
        }

        let [mut a, mut b, mut c, mut d] = state;
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            // Round function: 3 logic ops.
            tb.push(Instr::alu(OpClass::IntAlu, rf, rb, Some(rc)));
            tb.push(Instr::alu(OpClass::IntAlu, rf, rf, Some(rd)));
            tb.push(Instr::alu(OpClass::IntAlu, rf, rf, Some(rb)));
            // f + a + K[i] + M[g]
            tb.push(Instr::alu(OpClass::IntAlu, rt, rf, Some(ra)));
            tb.push(Instr::alu(OpClass::IntAlu, rt, rt, Some(rk)));
            tb.push(Instr::alu(OpClass::IntAlu, rt, rt, Some(rm)));
            // rotate-left and add b: rotate modeled as two shifts + or,
            // then the new b value is produced into the rotating register
            // set — this is the serial cross-round dependence that makes
            // MD5 latency-bound.
            tb.push(Instr::alu(OpClass::IntAlu, rt, rt, None));
            tb.push(Instr::alu(OpClass::IntAlu, rt, rt, None));
            tb.push(Instr::alu(OpClass::IntAlu, rb, rt, Some(rb)));

            let tmp = d;
            d = c;
            c = b;
            b = b.wrapping_add(
                a.wrapping_add(f)
                    .wrapping_add(K[i])
                    .wrapping_add(msg[g])
                    .rotate_left(S[i]),
            );
            a = tmp;
            // Register rotation is register renaming — no instructions.
        }
        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
        // Final per-block state accumulation.
        for _ in 0..4 {
            tb.push(Instr::alu(OpClass::IntAlu, ra, ra, Some(rb)));
        }
    }
    (tb.finish(), state)
}

/// Runs the kernel with `config` and returns just the trace.
pub fn md5_trace(config: &Md5Config) -> Trace {
    md5_kernel(config).0
}

/// Reference MD5 block transform over explicit message words, used to test
/// that the kernel computes real MD5.
pub fn md5_transform(state: [u32; 4], msg: &[u32; 16]) -> [u32; 4] {
    let [mut a, mut b, mut c, mut d] = state;
    for i in 0..64 {
        let (f, g) = match i / 16 {
            0 => ((b & c) | (!b & d), i),
            1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
            2 => (b ^ c ^ d, (3 * i + 5) % 16),
            _ => (c ^ (b | !d), (7 * i) % 16),
        };
        let tmp = d;
        d = c;
        c = b;
        b = b.wrapping_add(
            a.wrapping_add(f)
                .wrapping_add(K[i])
                .wrapping_add(msg[g])
                .rotate_left(S[i]),
        );
        a = tmp;
    }
    [
        state[0].wrapping_add(a),
        state[1].wrapping_add(b),
        state[2].wrapping_add(c),
        state[3].wrapping_add(d),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 1321 test vector: MD5("") = d41d8cd98f00b204e9800998ecf8427e.
    #[test]
    fn transform_matches_rfc1321_empty_string() {
        let mut msg = [0u32; 16];
        msg[0] = 0x80; // padding: single 1 bit
        msg[14] = 0; // bit length low word
        let out = md5_transform([0x6745_2301, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476], &msg);
        let digest: Vec<u8> = out.iter().flat_map(|w| w.to_le_bytes()).collect();
        let hex: String = digest.iter().map(|b| format!("{b:02x}")).collect();
        assert_eq!(hex, "d41d8cd98f00b204e9800998ecf8427e");
    }

    /// RFC 1321 test vector: MD5("abc") = 900150983cd24fb0d6963f7d28e17f72.
    #[test]
    fn transform_matches_rfc1321_abc() {
        let mut msg = [0u32; 16];
        msg[0] = u32::from_le_bytes([b'a', b'b', b'c', 0x80]);
        msg[14] = 24; // message length in bits
        let out = md5_transform([0x6745_2301, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476], &msg);
        let hex: String = out
            .iter()
            .flat_map(|w| w.to_le_bytes())
            .map(|b| format!("{b:02x}"))
            .collect();
        assert_eq!(hex, "900150983cd24fb0d6963f7d28e17f72");
    }

    #[test]
    fn kernel_has_no_memory_accesses() {
        let t = md5_trace(&Md5Config::default());
        assert_eq!(t.class_fraction(OpClass::Load), 0.0);
        assert_eq!(t.class_fraction(OpClass::Store), 0.0);
        assert!(t.class_fraction(OpClass::IntAlu) > 0.99);
    }

    #[test]
    fn kernel_is_deterministic() {
        let cfg = Md5Config::default();
        let (ta, sa) = md5_kernel(&cfg);
        let (tb, sb) = md5_kernel(&cfg);
        assert_eq!(ta, tb);
        assert_eq!(sa, sb);
    }

    #[test]
    fn kernel_state_depends_on_seed() {
        let (_, s1) = md5_kernel(&Md5Config {
            seed: 1,
            ..Md5Config::default()
        });
        let (_, s2) = md5_kernel(&Md5Config {
            seed: 2,
            ..Md5Config::default()
        });
        assert_ne!(s1, s2);
    }

    #[test]
    fn trace_scales_with_blocks() {
        let a = md5_trace(&Md5Config {
            blocks: 2,
            ..Md5Config::default()
        });
        let b = md5_trace(&Md5Config {
            blocks: 4,
            ..Md5Config::default()
        });
        assert_eq!(b.len(), a.len() * 2);
    }
}
