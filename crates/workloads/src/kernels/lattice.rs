//! The 2-D lattice particle kernel.
//!
//! The beam-test workload "calculates the location of a particle in a 3d
//! lattice with inter-particle forces. We modified it to be a 2d lattice"
//! (§6.2). This re-implementation integrates point particles on a 2-D
//! periodic grid under pairwise spring-like forces from their four lattice
//! neighbours, and records the dynamic instruction stream: position/velocity
//! loads, floating-point force evaluation, integration arithmetic, and
//! position stores, with a branch per neighbour distance test.

use crate::trace::{Instr, OpClass, Reg, Trace, TraceBuilder};

/// Parameters for the lattice kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatticeConfig {
    /// Grid side length; the kernel simulates `side × side` particles.
    pub side: usize,
    /// Number of integration timesteps.
    pub steps: usize,
    /// Spring constant for neighbour forces.
    pub stiffness: f64,
    /// Integration timestep.
    pub dt: f64,
}

impl Default for LatticeConfig {
    fn default() -> Self {
        LatticeConfig {
            side: 8,
            steps: 4,
            stiffness: 0.35,
            dt: 0.01,
        }
    }
}

/// State of the simulated particle field (exposed for testing physical
/// plausibility of the kernel itself).
#[derive(Debug, Clone)]
pub struct LatticeState {
    side: usize,
    /// Displacements from rest position, row-major `(x, y)` pairs.
    pub disp: Vec<(f64, f64)>,
    /// Velocities, row-major `(x, y)` pairs.
    pub vel: Vec<(f64, f64)>,
}

impl LatticeState {
    fn new(side: usize) -> Self {
        // Deterministic, mildly irregular initial displacement field.
        let mut disp = Vec::with_capacity(side * side);
        for i in 0..side * side {
            let phase = i as f64 * 0.7;
            disp.push((0.05 * phase.sin(), 0.05 * (1.3 * phase).cos()));
        }
        LatticeState {
            side,
            disp,
            vel: vec![(0.0, 0.0); side * side],
        }
    }

    /// Total kinetic energy (used to sanity-check the integration).
    pub fn kinetic_energy(&self) -> f64 {
        self.vel.iter().map(|(x, y)| 0.5 * (x * x + y * y)).sum()
    }

    fn idx(&self, r: usize, c: usize) -> usize {
        (r % self.side) * self.side + (c % self.side)
    }
}

/// Runs the kernel and returns `(trace, final state)`.
///
/// The trace length scales as `O(side² × steps)`.
pub fn lattice_kernel(config: &LatticeConfig) -> (Trace, LatticeState) {
    let side = config.side.max(2);
    let mut state = LatticeState::new(side);
    let mut tb = TraceBuilder::new(format!("lattice_{side}x{side}_{}", config.steps));

    // Register conventions for the recorded stream.
    let rx = Reg::new(0); // position x
    let ry = Reg::new(1); // position y
    let rvx = Reg::new(2); // velocity x
    let rvy = Reg::new(3); // velocity y
    let rfx = Reg::new(4); // force accumulator x
    let rfy = Reg::new(5); // force accumulator y
    let rnx = Reg::new(6); // neighbour x
    let rny = Reg::new(7); // neighbour y
    let rk = Reg::new(8); // stiffness constant
    let rdt = Reg::new(9); // dt constant
    let rbase = Reg::new(10); // array base pointer
    let rtmp = Reg::new(11);

    let base_pos = 0x1000_0000u64;
    let base_vel = 0x2000_0000u64;
    let elem = 16u64; // two f64s

    for _step in 0..config.steps {
        let prev = state.clone();
        for r in 0..side {
            for c in 0..side {
                let i = state.idx(r, c);
                let a = base_pos + i as u64 * elem;
                // Load own position and velocity.
                tb.push(Instr::load(rx, Some(rbase), a));
                tb.push(Instr::load(ry, Some(rbase), a + 8));
                tb.push(Instr::load(rvx, Some(rbase), base_vel + i as u64 * elem));
                tb.push(Instr::load(
                    rvy,
                    Some(rbase),
                    base_vel + i as u64 * elem + 8,
                ));
                // Zero the force accumulators.
                tb.push(Instr::alu(OpClass::IntAlu, rfx, rfx, None));
                tb.push(Instr::alu(OpClass::IntAlu, rfy, rfy, None));

                let (px, py) = prev.disp[i];
                let mut fx = 0.0;
                let mut fy = 0.0;
                let neighbours = [
                    state.idx(r + 1, c),
                    state.idx(r + side - 1, c),
                    state.idx(r, c + 1),
                    state.idx(r, c + side - 1),
                ];
                for &n in &neighbours {
                    let na = base_pos + n as u64 * elem;
                    tb.push(Instr::load(rnx, Some(rbase), na));
                    tb.push(Instr::load(rny, Some(rbase), na + 8));
                    // dx = nx - x ; dy = ny - y
                    tb.push(Instr::alu(OpClass::FpAdd, rtmp, rnx, Some(rx)));
                    tb.push(Instr::alu(OpClass::FpAdd, rtmp, rny, Some(ry)));
                    // f += k * d
                    tb.push(Instr::alu(OpClass::FpMul, rfx, rk, Some(rfx)));
                    tb.push(Instr::alu(OpClass::FpMul, rfy, rk, Some(rfy)));
                    let (nx, ny) = prev.disp[n];
                    let dx = nx - px;
                    let dy = ny - py;
                    fx += config.stiffness * dx;
                    fy += config.stiffness * dy;
                    // Distance cutoff test.
                    let near = dx * dx + dy * dy < 1.0;
                    tb.push(Instr::branch(rtmp, near));
                }
                // v += f * dt ; x += v * dt (semi-implicit Euler)
                tb.push(Instr::alu(OpClass::FpMul, rvx, rfx, Some(rdt)));
                tb.push(Instr::alu(OpClass::FpMul, rvy, rfy, Some(rdt)));
                tb.push(Instr::alu(OpClass::FpMul, rx, rvx, Some(rdt)));
                tb.push(Instr::alu(OpClass::FpMul, ry, rvy, Some(rdt)));
                let (vx, vy) = prev.vel[i];
                let nvx = vx + fx * config.dt;
                let nvy = vy + fy * config.dt;
                state.vel[i] = (nvx, nvy);
                state.disp[i] = (px + nvx * config.dt, py + nvy * config.dt);
                // Store updated state.
                tb.push(Instr::store(rx, Some(rbase), a));
                tb.push(Instr::store(ry, Some(rbase), a + 8));
                tb.push(Instr::store(rvx, Some(rbase), base_vel + i as u64 * elem));
                tb.push(Instr::store(
                    rvy,
                    Some(rbase),
                    base_vel + i as u64 * elem + 8,
                ));
            }
        }
    }
    (tb.finish(), state)
}

/// Runs the kernel with `config` and returns just the trace.
pub fn lattice_trace(config: &LatticeConfig) -> Trace {
    lattice_kernel(config).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic_and_nonempty() {
        let cfg = LatticeConfig::default();
        let a = lattice_trace(&cfg);
        let b = lattice_trace(&cfg);
        assert_eq!(a, b);
        assert!(a.len() > 1000);
    }

    #[test]
    fn trace_is_memory_heavy() {
        let t = lattice_trace(&LatticeConfig::default());
        let mem = t.class_fraction(OpClass::Load) + t.class_fraction(OpClass::Store);
        assert!(mem > 0.3, "lattice should be memory-heavy, got {mem}");
        assert!(t.class_fraction(OpClass::FpMul) > 0.1);
        assert!(t.class_fraction(OpClass::Branch) > 0.05);
    }

    #[test]
    fn physics_moves_particles() {
        let (_, state) = lattice_kernel(&LatticeConfig {
            side: 6,
            steps: 10,
            ..LatticeConfig::default()
        });
        assert!(state.kinetic_energy() > 0.0, "forces should induce motion");
        assert!(
            state.kinetic_energy().is_finite(),
            "integration must not blow up"
        );
    }

    #[test]
    fn scales_with_parameters() {
        let small = lattice_trace(&LatticeConfig {
            side: 4,
            steps: 2,
            ..LatticeConfig::default()
        });
        let large = lattice_trace(&LatticeConfig {
            side: 8,
            steps: 2,
            ..LatticeConfig::default()
        });
        assert!(large.len() > small.len() * 3);
    }
}
