//! An SDC-virus-style stress workload.
//!
//! The paper's measurement setup "was the same as that used for prior work
//! such as the SDC virus measurement testing" (§6.2, citing Dey et al.,
//! SELSE 2014): a workload deliberately constructed so that nearly every
//! in-flight bit is ACE, maximizing SDC observability under the beam. This
//! generator produces such a stream: long chains of value-producing
//! instructions in which every result is consumed, no dead code, no NOPs,
//! and stores that commit every accumulated value to memory — the
//! worst-case (highest-AVF) counterpoint to the mixed suites.

use crate::trace::{Instr, OpClass, Reg, Trace, TraceBuilder};

/// Parameters for the SDC-virus workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SdcVirusConfig {
    /// Total dynamic instructions (rounded up to a whole chain).
    pub len: usize,
    /// Registers rotated through the dependence lattice.
    pub live_regs: u8,
}

impl Default for SdcVirusConfig {
    fn default() -> Self {
        SdcVirusConfig {
            len: 10_000,
            live_regs: 24,
        }
    }
}

/// Generates the virus trace: a dependence lattice where every register is
/// read before being overwritten and every chain ends in a store.
pub fn sdc_virus_trace(config: &SdcVirusConfig) -> Trace {
    let regs = config.live_regs.clamp(4, 30);
    let mut tb = TraceBuilder::new(format!("sdc_virus_{}", config.len));
    let mut addr = 0x4000_0000u64;
    while tb.len() < config.len {
        // One round: every live register is combined with its neighbour,
        // so every previous value is consumed…
        for r in 0..regs {
            tb.push(Instr::alu(
                OpClass::IntAlu,
                Reg::new(r),
                Reg::new(r),
                Some(Reg::new((r + 1) % regs)),
            ));
        }
        // …and one representative value is made architecturally visible.
        tb.push(Instr::store(Reg::new(0), Some(Reg::new(1)), addr));
        addr += 8;
    }
    tb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virus_has_no_slack() {
        let t = sdc_virus_trace(&SdcVirusConfig::default());
        assert!(t.len() >= 10_000);
        assert_eq!(t.class_fraction(OpClass::Nop), 0.0);
        assert!(t.class_fraction(OpClass::IntAlu) > 0.9);
        assert!(t.class_fraction(OpClass::Store) > 0.0);
    }

    #[test]
    fn virus_is_deterministic() {
        let cfg = SdcVirusConfig::default();
        assert_eq!(sdc_virus_trace(&cfg), sdc_virus_trace(&cfg));
    }

    #[test]
    fn register_count_is_clamped() {
        let t = sdc_virus_trace(&SdcVirusConfig {
            len: 100,
            live_regs: 200,
        });
        assert!(t.len() >= 100);
    }
}
