//! Re-implementations of the paper's two beam-test kernels (§6.2).
//!
//! - [`lattice`] — "calculates the location of a particle in a 3d lattice
//!   with inter-particle forces. We modified it to be a 2d lattice."
//! - [`md5`] — "calculates 128-bit MD5 hashes … modified to remove memory
//!   accesses … does all the same calculations."
//!
//! Both generators execute the real computation while recording the dynamic
//! instruction stream, so the traces carry authentic dependence structure.

pub mod lattice;
pub mod md5;
pub mod sdc_virus;

pub use lattice::lattice_trace;
pub use md5::md5_trace;
pub use sdc_virus::sdc_virus_trace;
