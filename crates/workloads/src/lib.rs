//! Workload substrate: instruction traces that drive the ACE-instrumented
//! performance model in `seqavf-perf`.
//!
//! The paper collects port-AVF data from "a set of 547 workloads from a
//! custom server benchmark suite … industry-standard benchmarks such as SPEC
//! as well as traces of actual server workloads" (§6.1), plus two kernels
//! with silicon beam-test data: a 2-D particle *lattice* kernel and an
//! *MD5Sum* variant with memory accesses removed (§6.2). None of those
//! binaries or traces are public, so this crate substitutes:
//!
//! - [`trace`] — a compact dynamic-instruction trace format.
//! - [`kernels`] — re-implementations of the two beam-test kernels from
//!   their paper descriptions, emitting traces with realistic dependence
//!   structure (the MD5 kernel executes the real MD5 block transform).
//! - [`suite`] — parametric instruction-mix families that expand into an
//!   arbitrarily large seeded suite (547 workloads by default).

pub mod kernels;
pub mod suite;
pub mod trace;

pub use suite::{standard_suite, MixFamily, SuiteConfig};
pub use trace::{Instr, OpClass, Reg, Trace, TraceBuilder};
