//! Statistical fault injection (SFI) into the gate-level netlist — the
//! paper's baseline technique (§3.1).
//!
//! "SFI works by running two copies of the RTL simulation. A fault is
//! injected into one copy by artificially flipping a random bit at a random
//! timestep. The simulations are then run for some number of cycles … If a
//! state mismatch occurs at a point that impacts correct program operation,
//! the fault is considered to have propagated to an error. … The sequential
//! AVF is computed as the number of errors seen at the observation points
//! divided by the number of injected faults" plus the unknown component
//! (Equation 2).
//!
//! This crate provides:
//!
//! - [`logic`] — a two-valued, levelized gate-level simulator over
//!   `seqavf-netlist` graphs (the "RTL simulation").
//! - [`inject`] — golden/faulty paired simulation with single-bit (or
//!   multi-bit burst) flips and observation-point mismatch detection.
//! - [`campaign`] — injection campaigns with per-node AVF estimates and
//!   Wilson confidence intervals; this is both the speed baseline (§3.1:
//!   months-to-years vs days) and the accuracy ground truth used to
//!   validate SART's conservatism. The trial-indexed variant
//!   ([`campaign::run_trials`]) scales the same estimator to
//!   production-size designs: a global trial budget, counter-mode
//!   per-trial RNG streams (bit-identical results at any thread count),
//!   optional importance weighting, and a propagation-probability
//!   fast-path kernel ([`logic::PropModel`]).

pub mod campaign;
pub mod inject;
pub mod logic;

pub use campaign::{
    run_campaign, run_campaign_traced, run_exhaustive, run_trials, run_trials_traced,
    CampaignConfig, CampaignResult, Kernel, NodeAvfEstimate, TrialCampaignResult, TrialConfig,
    TrialRng, TrialTally,
};
pub use inject::{run_injection, run_injection_burst, InjectConfig, Outcome};
pub use logic::{LogicSim, PropModel};
