//! Injection campaigns: per-node AVF estimation with confidence intervals.
//!
//! A campaign injects into every target node at several randomized
//! `(seed, cycle)` points and estimates the node's AVF per Equation 2:
//!
//! ```text
//! Sequential AVF = (# Errors + # Unknown) / # Injected
//! ```
//!
//! The per-node estimates come with Wilson score intervals; the campaign is
//! parallelized across nodes with std scoped threads. This is the
//! paper's "brute force" baseline (§3.1): complete coverage of a design
//! requires `#nodes × #cycles` simulations, which is what makes SART's
//! analytic approach necessary.

use seqavf_netlist::graph::{Netlist, NodeId};

use crate::inject::{observation_points, run_injection, InjectConfig, Outcome};

/// Configuration of an injection campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Injections per target node.
    pub injections_per_node: usize,
    /// Base stimulus seed; each injection perturbs it deterministically.
    pub seed: u64,
    /// Maximum warmup cycles (each injection picks a warmup in
    /// `[1, max_warmup]`, randomizing the flip cycle).
    pub max_warmup: u64,
    /// Propagation horizon after the flip.
    pub horizon: u64,
    /// Worker threads (1 = sequential).
    pub threads: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            injections_per_node: 20,
            seed: 0xfau64,
            max_warmup: 32,
            horizon: 150,
            threads: 4,
        }
    }
}

/// Per-node AVF estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeAvfEstimate {
    /// The injected node.
    pub node: NodeId,
    /// Number of injections performed.
    pub injections: usize,
    /// Injections that produced observation-point errors.
    pub errors: usize,
    /// Injections whose fault was still resident at the horizon.
    pub unknowns: usize,
    /// Equation 2: `(errors + unknowns) / injections`.
    pub avf: f64,
    /// Wilson 95% confidence interval for the AVF.
    pub ci: (f64, f64),
}

/// Result of a campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// Per-node estimates, in target order.
    pub nodes: Vec<NodeAvfEstimate>,
    /// Total injections performed.
    pub total_injections: usize,
    /// Lookup index: `(node, position in `nodes`)`, sorted by node id.
    /// When a node was targeted more than once, only its first estimate
    /// is indexed (matching the old linear scan's front-to-back order).
    index: Vec<(NodeId, u32)>,
}

impl CampaignResult {
    /// Builds a result from per-node estimates, deriving the lookup index
    /// and the injection total.
    pub fn new(nodes: Vec<NodeAvfEstimate>) -> Self {
        let mut index: Vec<(NodeId, u32)> = nodes
            .iter()
            .enumerate()
            .map(|(i, e)| (e.node, i as u32))
            .collect();
        index.sort(); // stable order: by node, then by first occurrence
        index.dedup_by_key(|&mut (node, _)| node);
        CampaignResult {
            total_injections: nodes.iter().map(|n| n.injections).sum(),
            nodes,
            index,
        }
    }

    /// Mean AVF across targeted nodes.
    pub fn mean_avf(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        self.nodes.iter().map(|n| n.avf).sum::<f64>() / self.nodes.len() as f64
    }

    /// The estimate for a specific node, if targeted. `O(log n)` via the
    /// sorted index — callers iterating every target no longer pay a
    /// quadratic scan.
    pub fn estimate(&self, node: NodeId) -> Option<&NodeAvfEstimate> {
        self.index
            .binary_search_by_key(&node, |&(n, _)| n)
            .ok()
            .map(|k| &self.nodes[self.index[k].1 as usize])
    }
}

/// Wilson score interval for a binomial proportion at ~95% confidence.
pub fn wilson_interval(successes: usize, n: usize) -> (f64, f64) {
    if n == 0 {
        return (0.0, 1.0);
    }
    let z = 1.96f64;
    let nf = n as f64;
    let p = successes as f64 / nf;
    let z2 = z * z;
    let denom = 1.0 + z2 / nf;
    let center = (p + z2 / (2.0 * nf)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / nf + z2 / (4.0 * nf * nf)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// Runs an injection campaign over `targets` (typically the design's
/// sequential nodes).
pub fn run_campaign(nl: &Netlist, targets: &[NodeId], config: &CampaignConfig) -> CampaignResult {
    run_campaign_traced(nl, targets, config, &seqavf_obs::Collector::disabled())
}

/// [`run_campaign`] with observability: records one `sfi.campaign` span
/// with target/outcome fields plus `sfi.injections`, `sfi.errors` and
/// `sfi.unknowns` counters. Telemetry is aggregated after the workers
/// join — nothing touches the collector on the per-injection hot path.
pub fn run_campaign_traced(
    nl: &Netlist,
    targets: &[NodeId],
    config: &CampaignConfig,
    obs: &seqavf_obs::Collector,
) -> CampaignResult {
    let mut span = obs.span("sfi.campaign");
    let result = run_campaign_impl(nl, targets, config);
    let errors: u64 = result.nodes.iter().map(|n| n.errors as u64).sum();
    let unknowns: u64 = result.nodes.iter().map(|n| n.unknowns as u64).sum();
    span.field_u64("targets", targets.len() as u64);
    span.field_u64("injections", result.total_injections as u64);
    span.field_u64("threads", config.threads.max(1) as u64);
    obs.count("sfi.injections", result.total_injections as u64);
    obs.count("sfi.errors", errors);
    obs.count("sfi.unknowns", unknowns);
    result
}

fn run_campaign_impl(nl: &Netlist, targets: &[NodeId], config: &CampaignConfig) -> CampaignResult {
    let observed = observation_points(nl);
    let threads = config.threads.max(1);

    let estimate_one = |&node: &NodeId| -> NodeAvfEstimate {
        let mut errors = 0usize;
        let mut unknowns = 0usize;
        for k in 0..config.injections_per_node {
            // Deterministic per-injection seed and flip cycle.
            let mix = config
                .seed
                .wrapping_add((node.index() as u64) << 20)
                .wrapping_add(k as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let warmup = 1 + (mix >> 8) % config.max_warmup.max(1);
            let icfg = InjectConfig {
                warmup,
                horizon: config.horizon,
                seed: mix,
            };
            match run_injection(nl, node, &icfg, &observed) {
                Outcome::Error => errors += 1,
                Outcome::Unknown => unknowns += 1,
                Outcome::Masked => {}
            }
        }
        let n = config.injections_per_node;
        NodeAvfEstimate {
            node,
            injections: n,
            errors,
            unknowns,
            avf: if n == 0 {
                0.0
            } else {
                (errors + unknowns) as f64 / n as f64
            },
            ci: wilson_interval(errors + unknowns, n),
        }
    };

    let nodes: Vec<NodeAvfEstimate> = if threads == 1 || targets.len() < 2 {
        targets.iter().map(estimate_one).collect()
    } else {
        let chunk = targets.len().div_ceil(threads);
        let mut results: Vec<Vec<NodeAvfEstimate>> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = targets
                .chunks(chunk)
                .map(|part| s.spawn(|| part.iter().map(estimate_one).collect::<Vec<_>>()))
                .collect();
            for h in handles {
                results.push(h.join().expect("campaign worker panicked"));
            }
        });
        results.into_iter().flatten().collect()
    };

    CampaignResult::new(nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqavf_netlist::flatten::parse_netlist;

    const PIPE: &str = r"
.design t
.fub f
  .input i
  .flop q1 i
  .flop q2 q1
  .flop dangling q1
  .output o q2
.endfub
.end
";

    #[test]
    fn wilson_interval_properties() {
        let (lo, hi) = wilson_interval(0, 0);
        assert_eq!((lo, hi), (0.0, 1.0));
        let (lo, hi) = wilson_interval(10, 20);
        assert!(lo < 0.5 && hi > 0.5);
        let (lo, hi) = wilson_interval(20, 20);
        assert!(lo > 0.8 && hi <= 1.0);
        let (lo, hi) = wilson_interval(0, 20);
        assert!(lo == 0.0 && hi < 0.2);
    }

    #[test]
    fn wilson_interval_edge_cases_stay_in_unit_range() {
        // n = 0: no information, full interval.
        assert_eq!(wilson_interval(0, 0), (0.0, 1.0));
        for n in [1usize, 2, 20, 1_000, 1_000_000_000] {
            // Zero successes: the lower bound is pinned to 0.
            let (lo, hi) = wilson_interval(0, n);
            assert_eq!(lo, 0.0, "n={n}");
            assert!(hi > 0.0 && hi <= 1.0, "n={n}");
            // All successes: the upper bound is pinned to 1.
            let (lo, hi) = wilson_interval(n, n);
            assert!((0.0..1.0).contains(&lo), "n={n}");
            assert!((hi - 1.0).abs() < 1e-9 && hi <= 1.0, "n={n}");
        }
        // Large n: the interval tightens around p.
        let (lo, hi) = wilson_interval(500_000_000, 1_000_000_000);
        assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        assert!(hi - lo < 1e-3, "large-n interval should be tight");
        assert!(lo < 0.5 && hi > 0.5);
    }

    #[test]
    fn wilson_interval_is_monotone_in_successes() {
        for n in [7usize, 20, 1_000] {
            let mut prev = wilson_interval(0, n);
            assert!(prev.0 <= prev.1);
            for s in 1..=n {
                let cur = wilson_interval(s, n);
                assert!((0.0..=1.0).contains(&cur.0) && (0.0..=1.0).contains(&cur.1));
                assert!(cur.0 <= cur.1, "s={s} n={n}");
                assert!(
                    cur.0 >= prev.0 - 1e-12,
                    "lower bound regressed at s={s} n={n}"
                );
                assert!(
                    cur.1 >= prev.1 - 1e-12,
                    "upper bound regressed at s={s} n={n}"
                );
                prev = cur;
            }
        }
    }

    #[test]
    fn campaign_separates_live_and_dead_paths() {
        let nl = parse_netlist(PIPE).unwrap();
        let q1 = nl.lookup("f.q1").unwrap();
        let q2 = nl.lookup("f.q2").unwrap();
        let dangling = nl.lookup("f.dangling").unwrap();
        let cfg = CampaignConfig {
            injections_per_node: 10,
            threads: 1,
            ..CampaignConfig::default()
        };
        let r = run_campaign(&nl, &[q1, q2, dangling], &cfg);
        assert_eq!(r.total_injections, 30);
        let e_q1 = r.estimate(q1).unwrap();
        let e_dang = r.estimate(dangling).unwrap();
        assert!(e_q1.avf > 0.9, "on-path flop should almost always error");
        assert_eq!(e_dang.avf, 0.0, "dangling flop can never error");
    }

    #[test]
    fn parallel_matches_sequential() {
        let nl = parse_netlist(PIPE).unwrap();
        let targets: Vec<NodeId> = nl.seq_nodes().collect();
        let seq_cfg = CampaignConfig {
            injections_per_node: 6,
            threads: 1,
            ..CampaignConfig::default()
        };
        let par_cfg = CampaignConfig {
            threads: 3,
            ..seq_cfg
        };
        let a = run_campaign(&nl, &targets, &seq_cfg);
        let b = run_campaign(&nl, &targets, &par_cfg);
        assert_eq!(
            a, b,
            "campaigns must be deterministic regardless of threads"
        );
    }

    #[test]
    fn mean_avf_aggregates() {
        let nl = parse_netlist(PIPE).unwrap();
        let q1 = nl.lookup("f.q1").unwrap();
        let dangling = nl.lookup("f.dangling").unwrap();
        let cfg = CampaignConfig {
            injections_per_node: 8,
            threads: 1,
            ..CampaignConfig::default()
        };
        let r = run_campaign(&nl, &[q1, dangling], &cfg);
        let expected = (r.nodes[0].avf + r.nodes[1].avf) / 2.0;
        assert!((r.mean_avf() - expected).abs() < 1e-12);
    }

    #[test]
    fn empty_campaign() {
        let nl = parse_netlist(PIPE).unwrap();
        let r = run_campaign(&nl, &[], &CampaignConfig::default());
        assert_eq!(r.total_injections, 0);
        assert_eq!(r.mean_avf(), 0.0);
        assert_eq!(r.estimate(NodeId::from_index(0)), None);
    }

    #[test]
    fn estimate_resolves_every_target_through_the_index() {
        let nl = parse_netlist(PIPE).unwrap();
        // Deliberately out of id order so index order ≠ target order.
        let mut targets: Vec<NodeId> = nl.seq_nodes().collect();
        targets.reverse();
        let cfg = CampaignConfig {
            injections_per_node: 4,
            threads: 1,
            ..CampaignConfig::default()
        };
        let r = run_campaign(&nl, &targets, &cfg);
        for (k, &node) in targets.iter().enumerate() {
            let est = r.estimate(node).expect("targeted node resolves");
            assert_eq!(est.node, node);
            // The estimate must be the one recorded at the target's
            // position, not just any estimate.
            assert_eq!(est, &r.nodes[k]);
        }
        // An untargeted node (a primary input) resolves to None.
        let input = nl.lookup("f.i").unwrap();
        assert_eq!(r.estimate(input), None);
    }

    #[test]
    fn duplicate_targets_resolve_to_the_first_estimate() {
        let nl = parse_netlist(PIPE).unwrap();
        let q1 = nl.lookup("f.q1").unwrap();
        let cfg = CampaignConfig {
            injections_per_node: 4,
            threads: 1,
            ..CampaignConfig::default()
        };
        let r = run_campaign(&nl, &[q1, q1], &cfg);
        assert_eq!(r.nodes.len(), 2);
        let est = r.estimate(q1).unwrap();
        assert!(std::ptr::eq(est, &r.nodes[0]), "first occurrence wins");
    }

    #[test]
    fn traced_campaign_records_span_and_counters() {
        let nl = parse_netlist(PIPE).unwrap();
        let targets: Vec<NodeId> = nl.seq_nodes().collect();
        let cfg = CampaignConfig {
            injections_per_node: 5,
            threads: 2,
            ..CampaignConfig::default()
        };
        let obs = seqavf_obs::Collector::new();
        let traced = run_campaign_traced(&nl, &targets, &cfg, &obs);
        let plain = run_campaign(&nl, &targets, &cfg);
        assert_eq!(traced, plain, "collection must not perturb the campaign");
        let report = obs.report();
        assert_eq!(report.span("sfi.campaign").unwrap().count, 1);
        assert_eq!(
            report.counter("sfi.injections"),
            Some(traced.total_injections as u64)
        );
        let errors: u64 = traced.nodes.iter().map(|n| n.errors as u64).sum();
        assert_eq!(report.counter("sfi.errors"), Some(errors));
    }
}
