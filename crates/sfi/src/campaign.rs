//! Injection campaigns: per-node AVF estimation with confidence intervals.
//!
//! A campaign injects into every target node at several randomized
//! `(seed, cycle)` points and estimates the node's AVF per Equation 2:
//!
//! ```text
//! Sequential AVF = (# Errors + # Unknown) / # Injected
//! ```
//!
//! The per-node estimates come with Wilson score intervals; the campaign is
//! parallelized across nodes with std scoped threads. This is the
//! paper's "brute force" baseline (§3.1): complete coverage of a design
//! requires `#nodes × #cycles` simulations, which is what makes SART's
//! analytic approach necessary.

use seqavf_netlist::graph::{Netlist, NodeId};

use crate::inject::{
    observation_points, run_injection, run_injection_burst, InjectConfig, Outcome,
};
use crate::logic::{splitmix64, PropModel};

/// Configuration of an injection campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Injections per target node.
    pub injections_per_node: usize,
    /// Base stimulus seed; each injection perturbs it deterministically.
    pub seed: u64,
    /// Maximum warmup cycles (each injection picks a warmup in
    /// `[1, max_warmup]`, randomizing the flip cycle).
    pub max_warmup: u64,
    /// Propagation horizon after the flip.
    pub horizon: u64,
    /// Worker threads (1 = sequential).
    pub threads: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            injections_per_node: 20,
            seed: 0xfau64,
            max_warmup: 32,
            horizon: 150,
            threads: 4,
        }
    }
}

/// Per-node AVF estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeAvfEstimate {
    /// The injected node.
    pub node: NodeId,
    /// Number of injections performed.
    pub injections: usize,
    /// Injections that produced observation-point errors.
    pub errors: usize,
    /// Injections whose fault was still resident at the horizon.
    pub unknowns: usize,
    /// Equation 2: `(errors + unknowns) / injections`.
    pub avf: f64,
    /// Wilson 95% confidence interval for the AVF.
    pub ci: (f64, f64),
}

/// Result of a campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// Per-node estimates, in target order.
    pub nodes: Vec<NodeAvfEstimate>,
    /// Total injections performed.
    pub total_injections: usize,
    /// Lookup index: `(node, position in `nodes`)`, sorted by node id.
    /// When a node was targeted more than once, only its first estimate
    /// is indexed (matching the old linear scan's front-to-back order).
    index: Vec<(NodeId, u32)>,
}

impl CampaignResult {
    /// Builds a result from per-node estimates, deriving the lookup index
    /// and the injection total.
    pub fn new(nodes: Vec<NodeAvfEstimate>) -> Self {
        let mut index: Vec<(NodeId, u32)> = nodes
            .iter()
            .enumerate()
            .map(|(i, e)| (e.node, i as u32))
            .collect();
        index.sort(); // stable order: by node, then by first occurrence
        index.dedup_by_key(|&mut (node, _)| node);
        CampaignResult {
            total_injections: nodes.iter().map(|n| n.injections).sum(),
            nodes,
            index,
        }
    }

    /// Mean AVF across targeted nodes.
    pub fn mean_avf(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        self.nodes.iter().map(|n| n.avf).sum::<f64>() / self.nodes.len() as f64
    }

    /// The estimate for a specific node, if targeted. `O(log n)` via the
    /// sorted index — callers iterating every target no longer pay a
    /// quadratic scan.
    ///
    /// **Duplicate-target semantics:** when the same node appears more
    /// than once in a campaign's target list, `nodes` keeps one
    /// independent estimate per occurrence (in target order), and this
    /// lookup returns the **first occurrence's** estimate — the same
    /// answer the original front-to-back linear scan gave. Later
    /// occurrences remain reachable through `nodes` by position. This
    /// holds at every thread count (the index is built after the workers
    /// join, from the canonical target-ordered `nodes`).
    pub fn estimate(&self, node: NodeId) -> Option<&NodeAvfEstimate> {
        self.index
            .binary_search_by_key(&node, |&(n, _)| n)
            .ok()
            .map(|k| &self.nodes[self.index[k].1 as usize])
    }
}

/// Wilson score interval for a binomial proportion at ~95% confidence.
pub fn wilson_interval(successes: usize, n: usize) -> (f64, f64) {
    if n == 0 {
        return (0.0, 1.0);
    }
    let z = 1.96f64;
    let nf = n as f64;
    let p = successes as f64 / nf;
    let z2 = z * z;
    let denom = 1.0 + z2 / nf;
    let center = (p + z2 / (2.0 * nf)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / nf + z2 / (4.0 * nf * nf)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// Runs an injection campaign over `targets` (typically the design's
/// sequential nodes).
pub fn run_campaign(nl: &Netlist, targets: &[NodeId], config: &CampaignConfig) -> CampaignResult {
    run_campaign_traced(nl, targets, config, &seqavf_obs::Collector::disabled())
}

/// [`run_campaign`] with observability: records one `sfi.campaign` span
/// with target/outcome fields plus `sfi.injections`, `sfi.errors` and
/// `sfi.unknowns` counters. Telemetry is aggregated after the workers
/// join — nothing touches the collector on the per-injection hot path.
pub fn run_campaign_traced(
    nl: &Netlist,
    targets: &[NodeId],
    config: &CampaignConfig,
    obs: &seqavf_obs::Collector,
) -> CampaignResult {
    let mut span = obs.span("sfi.campaign");
    let result = run_campaign_impl(nl, targets, config);
    let errors: u64 = result.nodes.iter().map(|n| n.errors as u64).sum();
    let unknowns: u64 = result.nodes.iter().map(|n| n.unknowns as u64).sum();
    span.field_u64("targets", targets.len() as u64);
    span.field_u64("injections", result.total_injections as u64);
    span.field_u64("threads", config.threads.max(1) as u64);
    obs.count("sfi.injections", result.total_injections as u64);
    obs.count("sfi.errors", errors);
    obs.count("sfi.unknowns", unknowns);
    result
}

fn run_campaign_impl(nl: &Netlist, targets: &[NodeId], config: &CampaignConfig) -> CampaignResult {
    let observed = observation_points(nl);
    let threads = config.threads.max(1);

    let estimate_one = |&node: &NodeId| -> NodeAvfEstimate {
        let mut errors = 0usize;
        let mut unknowns = 0usize;
        for k in 0..config.injections_per_node {
            // Deterministic per-injection seed and flip cycle.
            let mix = config
                .seed
                .wrapping_add((node.index() as u64) << 20)
                .wrapping_add(k as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let warmup = 1 + (mix >> 8) % config.max_warmup.max(1);
            let icfg = InjectConfig {
                warmup,
                horizon: config.horizon,
                seed: mix,
            };
            match run_injection(nl, node, &icfg, &observed) {
                Outcome::Error => errors += 1,
                Outcome::Unknown => unknowns += 1,
                Outcome::Masked => {}
            }
        }
        let n = config.injections_per_node;
        NodeAvfEstimate {
            node,
            injections: n,
            errors,
            unknowns,
            avf: if n == 0 {
                0.0
            } else {
                (errors + unknowns) as f64 / n as f64
            },
            ci: wilson_interval(errors + unknowns, n),
        }
    };

    let nodes: Vec<NodeAvfEstimate> = if threads == 1 || targets.len() < 2 {
        targets.iter().map(estimate_one).collect()
    } else {
        let chunk = targets.len().div_ceil(threads);
        let mut results: Vec<Vec<NodeAvfEstimate>> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = targets
                .chunks(chunk)
                .map(|part| s.spawn(|| part.iter().map(estimate_one).collect::<Vec<_>>()))
                .collect();
            for h in handles {
                results.push(h.join().expect("campaign worker panicked"));
            }
        });
        results.into_iter().flatten().collect()
    };

    CampaignResult::new(nodes)
}

/// A counter-mode per-trial random stream.
///
/// Every draw is a pure function of `(seed, trial index, draw index)` via
/// splitmix64, so a trial's entire outcome depends only on its index —
/// never on which worker thread ran it or what ran before it. That is
/// what makes [`run_trials`] bit-identical at any thread count: workers
/// split the trial index space, not a shared generator.
#[derive(Debug, Clone)]
pub struct TrialRng {
    base: u64,
    counter: u64,
}

impl TrialRng {
    /// The stream for one trial of a campaign keyed by `seed`.
    pub fn new(seed: u64, trial: u64) -> TrialRng {
        TrialRng {
            base: splitmix64(splitmix64(seed) ^ trial.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            counter: 0,
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.counter = self.counter.wrapping_add(1);
        splitmix64(self.base.wrapping_add(self.counter))
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Per-trial evaluation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Full golden/faulty logic simulation per trial ([`run_injection_burst`]).
    /// Distinguishes `Error` from `Unknown` outcomes.
    Exact,
    /// Propagation-probability fast path: one [`PropModel`] build amortized
    /// across the campaign, then a single Bernoulli draw per trial against
    /// the burst's reach probability. Orders of magnitude cheaper, but it
    /// models only observable errors — residual-state `Unknown`s are not
    /// represented and tally as zero.
    Propagation,
}

/// Configuration of a trial-indexed campaign ([`run_trials`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialConfig {
    /// Total trials across all targets (the budget, not per-node).
    pub trials: usize,
    /// Campaign seed; every trial derives its own [`TrialRng`] from it.
    pub seed: u64,
    /// Each trial picks a warmup in `[1, max_warmup]`.
    pub max_warmup: u64,
    /// Propagation horizon after the flip.
    pub horizon: u64,
    /// Worker threads (1 = sequential). Never affects results.
    pub threads: usize,
    /// Bits upset per trial (≥ 1). A burst flips the selected target plus
    /// `burst - 1` further draws from the same distribution in the same
    /// cycle; the outcome is attributed to the first (primary) target.
    pub burst: usize,
    /// Per-trial evaluation strategy.
    pub kernel: Kernel,
}

impl Default for TrialConfig {
    fn default() -> Self {
        TrialConfig {
            trials: 10_000,
            seed: 0xace_5eed,
            max_warmup: 32,
            horizon: 150,
            threads: 4,
            burst: 1,
            kernel: Kernel::Exact,
        }
    }
}

/// Per-target tally of a trial-indexed campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialTally {
    /// The target node.
    pub node: NodeId,
    /// Trials whose primary selection was this target.
    pub trials: usize,
    /// Of those, observation-point errors.
    pub errors: usize,
    /// Of those, faults still resident at the horizon (always 0 under
    /// [`Kernel::Propagation`]).
    pub unknowns: usize,
}

impl TrialTally {
    /// Equation 2 on this target's own trials; 0 when never selected.
    pub fn avf(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            (self.errors + self.unknowns) as f64 / self.trials as f64
        }
    }

    /// Wilson ~95% interval for this target's AVF.
    pub fn ci(&self) -> (f64, f64) {
        wilson_interval(self.errors + self.unknowns, self.trials)
    }
}

/// Result of a trial-indexed campaign. All-integer contents, so
/// bit-identity across thread counts is plain `==`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialCampaignResult {
    /// Per-target tallies, in target order (duplicates keep their own
    /// rows, mirroring [`CampaignResult::nodes`]).
    pub tallies: Vec<TrialTally>,
    /// Total trials run.
    pub trials: usize,
    /// Total error outcomes.
    pub errors: usize,
    /// Total unknown outcomes.
    pub unknowns: usize,
}

/// Runs a trial-indexed campaign: `config.trials` independent trials, each
/// picking a target (uniformly, or ∝ `weights` when given), a warmup
/// cycle, and a stimulus seed from its own [`TrialRng`] stream.
///
/// Unlike [`run_campaign`] (a fixed per-node budget), this is the
/// estimator for production-scale designs: the budget is global, sampling
/// can be importance-weighted toward bits an analytical model predicts
/// matter, and the per-target binomial estimates stay unbiased because
/// each trial's outcome is conditioned on its selected target.
///
/// `weights`, when present, must be parallel to `targets`, finite,
/// non-negative, and not all zero.
pub fn run_trials(
    nl: &Netlist,
    targets: &[NodeId],
    weights: Option<&[f64]>,
    config: &TrialConfig,
) -> TrialCampaignResult {
    run_trials_traced(
        nl,
        targets,
        weights,
        config,
        &seqavf_obs::Collector::disabled(),
    )
}

/// [`run_trials`] with observability: one `sfi.trials` span (trial,
/// target, thread, burst, kernel and sampling-mode fields) plus
/// `sfi.trials`, `sfi.errors` and `sfi.unknowns` counters. Telemetry is
/// folded in after the workers join; the per-trial hot path never touches
/// the collector.
pub fn run_trials_traced(
    nl: &Netlist,
    targets: &[NodeId],
    weights: Option<&[f64]>,
    config: &TrialConfig,
    obs: &seqavf_obs::Collector,
) -> TrialCampaignResult {
    let mut span = obs.span("sfi.trials");
    let result = run_trials_impl(nl, targets, weights, config);
    span.field_u64("trials", result.trials as u64);
    span.field_u64("targets", targets.len() as u64);
    span.field_u64("threads", config.threads.max(1) as u64);
    span.field_u64("burst", config.burst.max(1) as u64);
    span.field_str(
        "kernel",
        match config.kernel {
            Kernel::Exact => "exact",
            Kernel::Propagation => "propagation",
        },
    );
    span.field_bool("importance", weights.is_some());
    obs.count("sfi.trials", result.trials as u64);
    obs.count("sfi.errors", result.errors as u64);
    obs.count("sfi.unknowns", result.unknowns as u64);
    result
}

fn run_trials_impl(
    nl: &Netlist,
    targets: &[NodeId],
    weights: Option<&[f64]>,
    config: &TrialConfig,
) -> TrialCampaignResult {
    if targets.is_empty() || config.trials == 0 {
        return TrialCampaignResult {
            tallies: targets
                .iter()
                .map(|&node| TrialTally {
                    node,
                    trials: 0,
                    errors: 0,
                    unknowns: 0,
                })
                .collect(),
            trials: 0,
            errors: 0,
            unknowns: 0,
        };
    }

    // Cumulative selection weights (None = uniform via modulo draw).
    let cumulative: Option<Vec<f64>> = weights.map(|w| {
        assert_eq!(
            w.len(),
            targets.len(),
            "weights must be parallel to targets"
        );
        let mut acc = 0.0f64;
        let cum: Vec<f64> = w
            .iter()
            .map(|&x| {
                assert!(
                    x.is_finite() && x >= 0.0,
                    "selection weights must be finite and non-negative"
                );
                acc += x;
                acc
            })
            .collect();
        assert!(acc > 0.0, "selection weights must not all be zero");
        cum
    });

    let observed = observation_points(nl);
    let model = match config.kernel {
        Kernel::Exact => None,
        Kernel::Propagation => Some(PropModel::build(nl, &observed)),
    };
    let burst = config.burst.max(1);
    let max_warmup = config.max_warmup.max(1);

    let pick = |rng: &mut TrialRng| -> usize {
        match &cumulative {
            None => (rng.next_u64() % targets.len() as u64) as usize,
            Some(cum) => {
                let total = *cum.last().expect("non-empty");
                let u = rng.next_f64() * total;
                cum.partition_point(|&c| c <= u).min(targets.len() - 1)
            }
        }
    };

    // Integer tallies per target position; one vector per worker, summed
    // after the join (addition is order-independent, so the merge order
    // cannot affect the result).
    let run_range = |lo: usize, hi: usize| -> Vec<(u64, u64, u64)> {
        let mut tally = vec![(0u64, 0u64, 0u64); targets.len()];
        let mut buf: Vec<NodeId> = Vec::with_capacity(burst);
        for t in lo..hi {
            let mut rng = TrialRng::new(config.seed, t as u64);
            let primary = pick(&mut rng);
            buf.clear();
            buf.push(targets[primary]);
            for _ in 1..burst {
                buf.push(targets[pick(&mut rng)]);
            }
            let slot = &mut tally[primary];
            slot.0 += 1;
            match &model {
                None => {
                    let warmup = 1 + rng.next_u64() % max_warmup;
                    let icfg = InjectConfig {
                        warmup,
                        horizon: config.horizon,
                        seed: rng.next_u64(),
                    };
                    match run_injection_burst(nl, &buf, &icfg, &observed) {
                        Outcome::Error => slot.1 += 1,
                        Outcome::Unknown => slot.2 += 1,
                        Outcome::Masked => {}
                    }
                }
                Some(m) => {
                    // Keep the draw sequence aligned with the exact
                    // kernel's (warmup + seed) so the selection stream is
                    // identical under either kernel.
                    let _ = rng.next_u64();
                    let p = m.burst_propagation(&buf);
                    if rng.next_f64() < p {
                        slot.1 += 1;
                    }
                }
            }
        }
        tally
    };

    let threads = config.threads.max(1).min(config.trials);
    let mut merged = vec![(0u64, 0u64, 0u64); targets.len()];
    if threads == 1 {
        merged = run_range(0, config.trials);
    } else {
        let chunk = config.trials.div_ceil(threads);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let lo = w * chunk;
                    let hi = ((w + 1) * chunk).min(config.trials);
                    let run_range = &run_range;
                    s.spawn(move || run_range(lo, hi))
                })
                .collect();
            for h in handles {
                for (acc, part) in merged
                    .iter_mut()
                    .zip(h.join().expect("trial worker panicked"))
                {
                    acc.0 += part.0;
                    acc.1 += part.1;
                    acc.2 += part.2;
                }
            }
        });
    }

    let tallies: Vec<TrialTally> = targets
        .iter()
        .zip(&merged)
        .map(|(&node, &(trials, errors, unknowns))| TrialTally {
            node,
            trials: trials as usize,
            errors: errors as usize,
            unknowns: unknowns as usize,
        })
        .collect();
    TrialCampaignResult {
        trials: tallies.iter().map(|t| t.trials).sum(),
        errors: tallies.iter().map(|t| t.errors).sum(),
        unknowns: tallies.iter().map(|t| t.unknowns).sum(),
        tallies,
    }
}

/// Exhaustively injects into every target at every flip cycle in
/// `[1, cycles]` under one stimulus seed — the ground-truth estimator for
/// netlists small enough to enumerate (the oracle tests' reference, per
/// the paper's observation that complete coverage needs
/// `#nodes × #cycles` simulations).
pub fn run_exhaustive(
    nl: &Netlist,
    targets: &[NodeId],
    cycles: u64,
    horizon: u64,
    seed: u64,
) -> CampaignResult {
    let observed = observation_points(nl);
    let cycles = cycles.max(1);
    let nodes = targets
        .iter()
        .map(|&node| {
            let mut errors = 0usize;
            let mut unknowns = 0usize;
            for warmup in 1..=cycles {
                let icfg = InjectConfig {
                    warmup,
                    horizon,
                    seed,
                };
                match run_injection(nl, node, &icfg, &observed) {
                    Outcome::Error => errors += 1,
                    Outcome::Unknown => unknowns += 1,
                    Outcome::Masked => {}
                }
            }
            let n = cycles as usize;
            NodeAvfEstimate {
                node,
                injections: n,
                errors,
                unknowns,
                avf: (errors + unknowns) as f64 / n as f64,
                ci: wilson_interval(errors + unknowns, n),
            }
        })
        .collect();
    CampaignResult::new(nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqavf_netlist::flatten::parse_netlist;

    const PIPE: &str = r"
.design t
.fub f
  .input i
  .flop q1 i
  .flop q2 q1
  .flop dangling q1
  .output o q2
.endfub
.end
";

    #[test]
    fn wilson_interval_properties() {
        let (lo, hi) = wilson_interval(0, 0);
        assert_eq!((lo, hi), (0.0, 1.0));
        let (lo, hi) = wilson_interval(10, 20);
        assert!(lo < 0.5 && hi > 0.5);
        let (lo, hi) = wilson_interval(20, 20);
        assert!(lo > 0.8 && hi <= 1.0);
        let (lo, hi) = wilson_interval(0, 20);
        assert!(lo == 0.0 && hi < 0.2);
    }

    #[test]
    fn wilson_interval_edge_cases_stay_in_unit_range() {
        // n = 0: no information, full interval.
        assert_eq!(wilson_interval(0, 0), (0.0, 1.0));
        for n in [1usize, 2, 20, 1_000, 1_000_000_000] {
            // Zero successes: the lower bound is pinned to 0.
            let (lo, hi) = wilson_interval(0, n);
            assert_eq!(lo, 0.0, "n={n}");
            assert!(hi > 0.0 && hi <= 1.0, "n={n}");
            // All successes: the upper bound is pinned to 1.
            let (lo, hi) = wilson_interval(n, n);
            assert!((0.0..1.0).contains(&lo), "n={n}");
            assert!((hi - 1.0).abs() < 1e-9 && hi <= 1.0, "n={n}");
        }
        // Large n: the interval tightens around p.
        let (lo, hi) = wilson_interval(500_000_000, 1_000_000_000);
        assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        assert!(hi - lo < 1e-3, "large-n interval should be tight");
        assert!(lo < 0.5 && hi > 0.5);
    }

    #[test]
    fn wilson_interval_is_monotone_in_successes() {
        for n in [7usize, 20, 1_000] {
            let mut prev = wilson_interval(0, n);
            assert!(prev.0 <= prev.1);
            for s in 1..=n {
                let cur = wilson_interval(s, n);
                assert!((0.0..=1.0).contains(&cur.0) && (0.0..=1.0).contains(&cur.1));
                assert!(cur.0 <= cur.1, "s={s} n={n}");
                assert!(
                    cur.0 >= prev.0 - 1e-12,
                    "lower bound regressed at s={s} n={n}"
                );
                assert!(
                    cur.1 >= prev.1 - 1e-12,
                    "upper bound regressed at s={s} n={n}"
                );
                prev = cur;
            }
        }
    }

    #[test]
    fn campaign_separates_live_and_dead_paths() {
        let nl = parse_netlist(PIPE).unwrap();
        let q1 = nl.lookup("f.q1").unwrap();
        let q2 = nl.lookup("f.q2").unwrap();
        let dangling = nl.lookup("f.dangling").unwrap();
        let cfg = CampaignConfig {
            injections_per_node: 10,
            threads: 1,
            ..CampaignConfig::default()
        };
        let r = run_campaign(&nl, &[q1, q2, dangling], &cfg);
        assert_eq!(r.total_injections, 30);
        let e_q1 = r.estimate(q1).unwrap();
        let e_dang = r.estimate(dangling).unwrap();
        assert!(e_q1.avf > 0.9, "on-path flop should almost always error");
        assert_eq!(e_dang.avf, 0.0, "dangling flop can never error");
    }

    #[test]
    fn parallel_matches_sequential() {
        let nl = parse_netlist(PIPE).unwrap();
        let targets: Vec<NodeId> = nl.seq_nodes().collect();
        let seq_cfg = CampaignConfig {
            injections_per_node: 6,
            threads: 1,
            ..CampaignConfig::default()
        };
        let par_cfg = CampaignConfig {
            threads: 3,
            ..seq_cfg
        };
        let a = run_campaign(&nl, &targets, &seq_cfg);
        let b = run_campaign(&nl, &targets, &par_cfg);
        assert_eq!(
            a, b,
            "campaigns must be deterministic regardless of threads"
        );
    }

    #[test]
    fn mean_avf_aggregates() {
        let nl = parse_netlist(PIPE).unwrap();
        let q1 = nl.lookup("f.q1").unwrap();
        let dangling = nl.lookup("f.dangling").unwrap();
        let cfg = CampaignConfig {
            injections_per_node: 8,
            threads: 1,
            ..CampaignConfig::default()
        };
        let r = run_campaign(&nl, &[q1, dangling], &cfg);
        let expected = (r.nodes[0].avf + r.nodes[1].avf) / 2.0;
        assert!((r.mean_avf() - expected).abs() < 1e-12);
    }

    #[test]
    fn empty_campaign() {
        let nl = parse_netlist(PIPE).unwrap();
        let r = run_campaign(&nl, &[], &CampaignConfig::default());
        assert_eq!(r.total_injections, 0);
        assert_eq!(r.mean_avf(), 0.0);
        assert_eq!(r.estimate(NodeId::from_index(0)), None);
    }

    #[test]
    fn estimate_resolves_every_target_through_the_index() {
        let nl = parse_netlist(PIPE).unwrap();
        // Deliberately out of id order so index order ≠ target order.
        let mut targets: Vec<NodeId> = nl.seq_nodes().collect();
        targets.reverse();
        let cfg = CampaignConfig {
            injections_per_node: 4,
            threads: 1,
            ..CampaignConfig::default()
        };
        let r = run_campaign(&nl, &targets, &cfg);
        for (k, &node) in targets.iter().enumerate() {
            let est = r.estimate(node).expect("targeted node resolves");
            assert_eq!(est.node, node);
            // The estimate must be the one recorded at the target's
            // position, not just any estimate.
            assert_eq!(est, &r.nodes[k]);
        }
        // An untargeted node (a primary input) resolves to None.
        let input = nl.lookup("f.i").unwrap();
        assert_eq!(r.estimate(input), None);
    }

    #[test]
    fn duplicate_targets_resolve_to_the_first_estimate() {
        let nl = parse_netlist(PIPE).unwrap();
        let q1 = nl.lookup("f.q1").unwrap();
        let cfg = CampaignConfig {
            injections_per_node: 4,
            threads: 1,
            ..CampaignConfig::default()
        };
        let r = run_campaign(&nl, &[q1, q1], &cfg);
        assert_eq!(r.nodes.len(), 2);
        let est = r.estimate(q1).unwrap();
        assert!(std::ptr::eq(est, &r.nodes[0]), "first occurrence wins");
    }

    #[test]
    fn trial_rng_is_a_pure_function_of_seed_and_trial() {
        let mut a = TrialRng::new(7, 42);
        let mut b = TrialRng::new(7, 42);
        let draws_a: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let draws_b: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(draws_a, draws_b);
        // Adjacent trials diverge immediately.
        let mut c = TrialRng::new(7, 43);
        assert_ne!(draws_a[0], c.next_u64());
        // Floats stay in [0, 1).
        let mut d = TrialRng::new(99, 0);
        for _ in 0..100 {
            let u = d.next_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn trial_campaign_is_bit_identical_across_thread_counts() {
        let nl = parse_netlist(PIPE).unwrap();
        let targets: Vec<NodeId> = nl.seq_nodes().collect();
        let base = TrialConfig {
            trials: 400,
            threads: 1,
            ..TrialConfig::default()
        };
        let reference = run_trials(&nl, &targets, None, &base);
        assert_eq!(reference.trials, 400);
        for threads in [2usize, 8] {
            let cfg = TrialConfig { threads, ..base };
            assert_eq!(
                run_trials(&nl, &targets, None, &cfg),
                reference,
                "threads={threads} must be bit-identical to sequential"
            );
        }
        // Same property under importance weights.
        let weights = vec![3.0, 1.0, 0.25];
        let weighted = run_trials(&nl, &targets, Some(&weights), &base);
        for threads in [2usize, 8] {
            let cfg = TrialConfig { threads, ..base };
            assert_eq!(
                run_trials(&nl, &targets, Some(&weights), &cfg),
                weighted,
                "weighted, threads={threads}"
            );
        }
    }

    #[test]
    fn trial_campaign_separates_live_and_dead_paths() {
        let nl = parse_netlist(PIPE).unwrap();
        let q1 = nl.lookup("f.q1").unwrap();
        let dangling = nl.lookup("f.dangling").unwrap();
        let cfg = TrialConfig {
            trials: 600,
            threads: 2,
            ..TrialConfig::default()
        };
        let r = run_trials(&nl, &[q1, dangling], None, &cfg);
        assert_eq!(r.trials, 600);
        assert_eq!(r.trials, r.tallies.iter().map(|t| t.trials).sum());
        let t_q1 = &r.tallies[0];
        let t_dang = &r.tallies[1];
        assert!(t_q1.trials > 200 && t_dang.trials > 200, "roughly uniform");
        assert!(t_q1.avf() > 0.9, "live flop should almost always error");
        assert_eq!(t_dang.avf(), 0.0, "dangling flop can never error");
        let (lo, hi) = t_q1.ci();
        assert!(lo <= t_q1.avf() && t_q1.avf() <= hi);
    }

    #[test]
    fn importance_weights_steer_selection() {
        let nl = parse_netlist(PIPE).unwrap();
        let q1 = nl.lookup("f.q1").unwrap();
        let dangling = nl.lookup("f.dangling").unwrap();
        let cfg = TrialConfig {
            trials: 1000,
            threads: 2,
            ..TrialConfig::default()
        };
        // 9:1 weighting toward the live flop.
        let r = run_trials(&nl, &[q1, dangling], Some(&[9.0, 1.0]), &cfg);
        let share = r.tallies[0].trials as f64 / r.trials as f64;
        assert!(
            (0.85..0.95).contains(&share),
            "q1 share {share} should track its 0.9 selection probability"
        );
        // A zero weight excludes a target entirely.
        let r0 = run_trials(&nl, &[q1, dangling], Some(&[1.0, 0.0]), &cfg);
        assert_eq!(r0.tallies[1].trials, 0);
        assert_eq!(r0.tallies[0].trials, r0.trials);
    }

    #[test]
    fn propagation_kernel_agrees_on_extreme_avfs() {
        // On the pipe the exact answers are 1.0 (live) and 0.0 (dead);
        // the propagation fast path must reproduce both extremes.
        let nl = parse_netlist(PIPE).unwrap();
        let q1 = nl.lookup("f.q1").unwrap();
        let dangling = nl.lookup("f.dangling").unwrap();
        let cfg = TrialConfig {
            trials: 400,
            threads: 2,
            kernel: Kernel::Propagation,
            ..TrialConfig::default()
        };
        let r = run_trials(&nl, &[q1, dangling], None, &cfg);
        assert_eq!(r.unknowns, 0, "fast path never reports unknowns");
        assert!(r.tallies[0].avf() > 0.95);
        assert_eq!(r.tallies[1].avf(), 0.0);
        // Same thread-count invariance as the exact kernel.
        let seq = TrialConfig { threads: 1, ..cfg };
        assert_eq!(r, run_trials(&nl, &[q1, dangling], None, &seq));
    }

    #[test]
    fn burst_trials_attribute_to_the_primary_target() {
        let nl = parse_netlist(PIPE).unwrap();
        let targets: Vec<NodeId> = nl.seq_nodes().collect();
        let cfg = TrialConfig {
            trials: 300,
            threads: 2,
            burst: 3,
            ..TrialConfig::default()
        };
        let r = run_trials(&nl, &targets, None, &cfg);
        assert_eq!(r.trials, 300);
        assert_eq!(r.trials, r.tallies.iter().map(|t| t.trials).sum());
        let seq = TrialConfig { threads: 1, ..cfg };
        assert_eq!(r, run_trials(&nl, &targets, None, &seq));
    }

    #[test]
    fn empty_trial_campaign() {
        let nl = parse_netlist(PIPE).unwrap();
        let r = run_trials(&nl, &[], None, &TrialConfig::default());
        assert_eq!(r.trials, 0);
        assert!(r.tallies.is_empty());
        let q1 = nl.lookup("f.q1").unwrap();
        let zero = TrialConfig {
            trials: 0,
            ..TrialConfig::default()
        };
        let r = run_trials(&nl, &[q1], None, &zero);
        assert_eq!(r.trials, 0);
        assert_eq!(r.tallies.len(), 1);
        assert_eq!(r.tallies[0].trials, 0);
        assert_eq!(r.tallies[0].avf(), 0.0);
    }

    #[test]
    fn exhaustive_campaign_covers_every_cycle() {
        let nl = parse_netlist(PIPE).unwrap();
        let q1 = nl.lookup("f.q1").unwrap();
        let dangling = nl.lookup("f.dangling").unwrap();
        let r = run_exhaustive(&nl, &[q1, dangling], 16, 50, 0xfeed);
        assert_eq!(r.total_injections, 32);
        assert_eq!(r.estimate(q1).unwrap().injections, 16);
        assert_eq!(r.estimate(q1).unwrap().avf, 1.0);
        assert_eq!(r.estimate(dangling).unwrap().avf, 0.0);
    }

    #[test]
    fn traced_trial_campaign_records_span_and_counters() {
        let nl = parse_netlist(PIPE).unwrap();
        let targets: Vec<NodeId> = nl.seq_nodes().collect();
        let cfg = TrialConfig {
            trials: 200,
            threads: 2,
            ..TrialConfig::default()
        };
        let obs = seqavf_obs::Collector::new();
        let traced = run_trials_traced(&nl, &targets, None, &cfg, &obs);
        assert_eq!(
            traced,
            run_trials(&nl, &targets, None, &cfg),
            "collection must not perturb the campaign"
        );
        let report = obs.report();
        assert_eq!(report.span("sfi.trials").unwrap().count, 1);
        assert_eq!(report.counter("sfi.trials"), Some(200));
        assert_eq!(report.counter("sfi.errors"), Some(traced.errors as u64));
    }

    #[test]
    fn traced_campaign_records_span_and_counters() {
        let nl = parse_netlist(PIPE).unwrap();
        let targets: Vec<NodeId> = nl.seq_nodes().collect();
        let cfg = CampaignConfig {
            injections_per_node: 5,
            threads: 2,
            ..CampaignConfig::default()
        };
        let obs = seqavf_obs::Collector::new();
        let traced = run_campaign_traced(&nl, &targets, &cfg, &obs);
        let plain = run_campaign(&nl, &targets, &cfg);
        assert_eq!(traced, plain, "collection must not perturb the campaign");
        let report = obs.report();
        assert_eq!(report.span("sfi.campaign").unwrap().count, 1);
        assert_eq!(
            report.counter("sfi.injections"),
            Some(traced.total_injections as u64)
        );
        let errors: u64 = traced.nodes.iter().map(|n| n.errors as u64).sum();
        assert_eq!(report.counter("sfi.errors"), Some(errors));
    }
}
